"""Calibration helper: prints every paper-quoted metric for the current
machine profiles so the constants in repro/sim/machines.py can be tuned.

Paper targets (eager vs 2021.3.6-defer unless noted):
  micro put speedup:        Intel +92%   IBM +95%   Marvell +95%
  micro fadd(value):        Intel +46%   IBM +15%   Marvell +52%
  micro nonvalue-vs-value:  66% (Marvell fadd) ... ~90% (IBM fadd & get)
  GUPS rma_promise:         Intel +15%   IBM +9%    Marvell +25%
  GUPS amo_promise:         +1-4%
  GUPS rma_future ratio:    2.4x (Marvell) ... 13.5x (IBM)
  GUPS amo_future ratio:    1.5x (Intel)  ... 7.1x (IBM)
  manual vs rma_promise_eager gap: Intel 32%, IBM 25%, Marvell 36%
  matching eager speedup:   channel ~0%, venturi 2%, random 5%,
                            delaunay 6%, youtube 11%
"""

import sys
import time

from repro.bench.harness import gups_grid, matching_grid, micro_grid, graph_localities
from repro.runtime.config import Version

V0, VD, VE = Version.V2021_3_0, Version.V2021_3_6_DEFER, Version.V2021_3_6_EAGER


def pct(new, old):
    return (old / new - 1) * 100


def micro(machine):
    g = micro_grid(machine, n_ops=60, n_samples=1)
    put = pct(g[("put", VE)].ns_per_op, g[("put", VD)].ns_per_op)
    fadd = pct(g[("fadd", VE)].ns_per_op, g[("fadd", VD)].ns_per_op)
    get = pct(g[("get", VE)].ns_per_op, g[("get", VD)].ns_per_op)
    gap_fadd = pct(g[("fadd_nv", VE)].ns_per_op, g[("fadd", VE)].ns_per_op)
    gap_get = pct(g[("get_nv", VE)].ns_per_op, g[("get", VE)].ns_per_op)
    print(
        f"[{machine}] micro: put +{put:.0f}%  fadd +{fadd:.0f}%  "
        f"get +{get:.0f}%  nv-gap fadd {gap_fadd:.0f}% get {gap_get:.0f}%"
    )
    return g


def gups(machine, ranks=16, upd=96):
    g = gups_grid(
        machine, ranks=ranks, table_log2=12, updates_per_rank=upd, batch=32
    )
    def t(var, ver):
        return g[(var, ver)].solve_ns
    rp = pct(t("rma_promise", VE), t("rma_promise", VD))
    ap = pct(t("amo_promise", VE), t("amo_promise", VD))
    rf = t("rma_future", VD) / t("rma_future", VE)
    af = t("amo_future", VD) / t("amo_future", VE)
    man_gap = pct(t("manual", VE), t("rma_promise", VE))
    raw_ok = t("raw", VE) <= t("manual", VE)
    amo_cross = t("amo_future", VE) / t("amo_promise", VE)
    print(
        f"[{machine}] gups: rma_promise +{rp:.0f}%  amo_promise +{ap:.1f}%  "
        f"rma_future {rf:.1f}x  amo_future {af:.1f}x  "
        f"rma_prom_eager slower than manual by {-man_gap:.0f}%  "
        f"raw<=manual {raw_ok}  amoF/amoP eager {amo_cross:.2f}"
    )
    return g


def matching(ranks=16, scale=3):
    loc = graph_localities(ranks=ranks, scale=scale)
    g = matching_grid("intel", ranks=ranks, scale=scale)
    for name in ("channel", "venturi", "random", "delaunay", "youtube"):
        sp = pct(g[(name, VE)].solve_ns, g[(name, VD)].solve_ns)
        print(
            f"[matching] {name}: +{sp:.1f}%  "
            f"(cross={loc[name]['cross_rank']*100:.0f}%)"
        )


if __name__ == "__main__":
    what = sys.argv[1] if len(sys.argv) > 1 else "all"
    t0 = time.time()
    if what in ("all", "micro"):
        for m in ("intel", "ibm", "marvell"):
            micro(m)
    if what in ("all", "gups"):
        for m in ("intel", "ibm", "marvell"):
            gups(m)
    if what in ("all", "matching"):
        matching()
    print(f"({time.time() - t0:.1f}s)")
