"""Diagnostic tool: per-operation cost breakdowns with the tracer.

Prints, for each (build × operation), the exact sequence of cost-model
events on the critical path — the "receipt" behind every microbenchmark
number, and the quickest way to see what eager notification removes.

Usage::

    python tools/diagnose.py [machine]
"""

import sys

from repro import (
    AtomicDomain,
    new_,
    operation_cx,
    rget,
    rget_into,
    rput,
)
from repro.runtime.config import RuntimeConfig, Version
from repro.runtime.context import set_current_ctx
from repro.runtime.runtime import build_world
from repro.sim.trace import Tracer

OPS = {
    "put": lambda: rput(0, new_("u64"), operation_cx.as_future()).wait(),
    "get": lambda: rget(new_("u64"), operation_cx.as_future()).wait(),
    "get_nv": lambda: rget_into(
        new_("u64"), new_("u64"), 1, operation_cx.as_future()
    ).wait(),
    "fadd": lambda: AtomicDomain({"fetch_add"})
    .fetch_add(new_("u64"), 1, operation_cx.as_future())
    .wait(),
}


def breakdown(version: Version, machine: str, op: str) -> tuple[float, str]:
    world = build_world(
        RuntimeConfig(version=version, machine=machine, conduit="smp")
    )
    ctx = world.contexts[0]
    set_current_ctx(ctx)
    try:
        OPS[op]()  # warm up allocation paths outside the trace
        tracer = Tracer()
        tracer.attach(ctx)
        t0 = ctx.clock.now_ns
        OPS[op]()
        elapsed = ctx.clock.now_ns - t0
        tracer.detach(ctx)
        lines = []
        for e in tracer.events:
            cost = ctx.profile.cost_ns(e.action) * e.times
            label = e.action.value + (f" x{e.times}" if e.times > 1 else "")
            lines.append(f"    {cost:7.1f} ns  {label}")
        return elapsed, "\n".join(lines)
    finally:
        set_current_ctx(None)


def main(machine: str = "intel") -> None:
    for op in OPS:
        print(f"=== {op} on {machine} " + "=" * 30)
        for version in (Version.V2021_3_6_DEFER, Version.V2021_3_6_EAGER):
            total, detail = breakdown(version, machine, op)
            print(f"  {version.value}: {total:.1f} ns")
            print(detail)
        print()


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "intel")
