"""Diagnostic tool: per-operation lifecycle spans and cost breakdowns.

For each (build × operation) this prints two receipts:

* the **span view** — the operation's lifecycle timestamps (init,
  injected, transfer-complete, notification-dispatched, waited) and the
  notification gap, straight from the observability layer
  (``FeatureFlags.obs_spans``); the quickest way to *see* what eager
  notification removes is the defer row's nonzero gap collapsing to zero
  in the eager row;
* the **cost view** — the exact sequence of cost-model events on the
  critical path (the tracer), the "receipt" behind every
  microbenchmark number.

Usage::

    python tools/diagnose.py [machine] [--json]

``--json`` emits one machine-readable document (per-op spans, gap,
cost events, and the rank's metrics counters) instead of the text
report.
"""

import argparse
import json
import sys

from repro import (
    AtomicDomain,
    new_,
    operation_cx,
    rget,
    rget_into,
    rput,
)
from repro.runtime.config import RuntimeConfig, Version, flags_for
from repro.runtime.context import set_current_ctx
from repro.runtime.runtime import build_world
from repro.sim.trace import Tracer

OPS = {
    "put": lambda: rput(0, new_("u64"), operation_cx.as_future()).wait(),
    "get": lambda: rget(new_("u64"), operation_cx.as_future()).wait(),
    "get_nv": lambda: rget_into(
        new_("u64"), new_("u64"), 1, operation_cx.as_future()
    ).wait(),
    "fadd": lambda: AtomicDomain({"fetch_add"})
    .fetch_add(new_("u64"), 1, operation_cx.as_future())
    .wait(),
}

VERSIONS = (Version.V2021_3_6_DEFER, Version.V2021_3_6_EAGER)


def diagnose(version: Version, machine: str, op: str) -> dict:
    """Run one warmed-up operation with spans + tracer attached; return
    the structured receipt."""
    world = build_world(
        RuntimeConfig(
            version=version,
            machine=machine,
            conduit="smp",
            flags=flags_for(version).replace(obs_spans=True),
        )
    )
    ctx = world.contexts[0]
    set_current_ctx(ctx)
    try:
        OPS[op]()  # warm up allocation paths outside the trace
        n_before = len(ctx.obs.spans.spans)
        tracer = Tracer()
        tracer.attach(ctx)
        t0 = ctx.clock.now_ns
        OPS[op]()
        elapsed = ctx.clock.now_ns - t0
        tracer.detach(ctx)
        # the timed op's span is the first one recorded after the mark
        span = ctx.obs.spans.spans[n_before]
        events = [
            {
                "action": e.action.value,
                "times": e.times,
                "cost_ns": ctx.profile.cost_ns(e.action) * e.times,
            }
            for e in tracer.events
        ]
        return {
            "op": op,
            "version": version.value,
            "machine": machine,
            "elapsed_ns": elapsed,
            "span": {
                "op": span.op,
                "mode": span.mode,
                "locality": span.locality,
                "nbytes": span.nbytes,
                "t_init": span.t_init,
                "t_injected": span.t_injected,
                "t_transfer": span.t_transfer,
                "t_dispatched": span.t_dispatched,
                "t_waited": span.t_waited,
                "notification_gap_ns": span.notification_gap_ns,
            },
            "cost_events": events,
            "counters": dict(ctx.obs.metrics.snapshot().counters),
        }
    finally:
        set_current_ctx(None)


def _fmt_ts(t, t0):
    return "-" if t is None else f"{t - t0:+.1f}"


def render_text(receipt: dict) -> str:
    s = receipt["span"]
    t0 = s["t_init"]
    lines = [
        f"  {receipt['version']}: {receipt['elapsed_ns']:.1f} ns   "
        f"[mode={s['mode']} locality={s['locality']} "
        f"gap={s['notification_gap_ns']:.1f} ns]",
        f"    span: init{_fmt_ts(s['t_init'], t0)}  "
        f"inject{_fmt_ts(s['t_injected'], t0)}  "
        f"transfer{_fmt_ts(s['t_transfer'], t0)}  "
        f"dispatch{_fmt_ts(s['t_dispatched'], t0)}  "
        f"wait{_fmt_ts(s['t_waited'], t0)}",
    ]
    for e in receipt["cost_events"]:
        label = e["action"] + (f" x{e['times']}" if e["times"] > 1 else "")
        lines.append(f"    {e['cost_ns']:7.1f} ns  {label}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python tools/diagnose.py",
        description="Per-operation span + cost-model receipts.",
    )
    parser.add_argument("machine", nargs="?", default="intel")
    parser.add_argument(
        "--json", action="store_true",
        help="emit one JSON document instead of the text report",
    )
    args = parser.parse_args(argv)

    receipts = [
        diagnose(version, args.machine, op)
        for op in OPS
        for version in VERSIONS
    ]
    if args.json:
        print(json.dumps({"machine": args.machine, "ops": receipts},
                         indent=2))
        return 0
    for op in OPS:
        print(f"=== {op} on {args.machine} " + "=" * 30)
        for r in receipts:
            if r["op"] == op:
                print(render_text(r))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
