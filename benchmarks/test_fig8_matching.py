"""Figure 8: graph-matching solve time, Intel profile, 16 processes.

Paper quantities (§IV-C): the eager-vs-defer speedup tracks the fraction
of updates targeting co-located processes — channel ≈ 0%, venturi ≈ 2%,
random ≈ 5%, delaunay ≈ 6%, youtube ≈ 11% — and the solve result itself
is unchanged (transparent enhancement of unmodified application code).
"""

import pytest

from benchmarks.conftest import bench_scale, write_figure
from repro.apps.matching import MatchingConfig, run_matching, serial_matching
from repro.bench.harness import graph_localities, matching_grid
from repro.bench.report import export_matching_csv, format_matching_figure
from repro.runtime.config import Version

V0 = Version.V2021_3_0
VD, VE = Version.V2021_3_6_DEFER, Version.V2021_3_6_EAGER


def test_fig8_matching(benchmark, figure_dir):
    scale = 3 + (bench_scale() - 1)
    loc = graph_localities(ranks=16, scale=scale)
    grid = matching_grid("intel", ranks=16, scale=scale)
    write_figure(
        figure_dir,
        "fig8_matching.txt",
        format_matching_figure(
            "Figure 8: graph matching solve time, Intel, 16 processes "
            "[virtual ms]",
            grid,
            loc,
        ),
    )
    (figure_dir / "fig8_matching.csv").write_text(
        export_matching_csv(grid, loc)
    )

    def speedup(name):
        return grid[(name, VD)].solve_ns / grid[(name, VE)].solve_ns - 1

    sp = {name: speedup(name) for name, _ in loc.items()}
    # the locality gradient of Figure 8
    assert sp["channel"] <= sp["random"] <= sp["youtube"]
    assert sp["venturi"] <= sp["delaunay"]
    assert sp["channel"] < 0.05  # paper: ~0% ("minimal difference")
    assert 0.05 <= sp["youtube"] <= 0.16  # paper: 11%
    # every version computes the identical (unique) matching
    for name in ("channel", "youtube"):
        cfg = MatchingConfig(graph=name, scale=scale)
        g = cfg.build_graph()
        ref = serial_matching(g)
        for v in (V0, VD, VE):
            assert grid[(name, v)].mate == ref
    # eager never slows any input
    for name in sp:
        assert sp[name] >= -0.01

    benchmark.pedantic(
        lambda: run_matching(
            MatchingConfig(graph="random", scale=1),
            ranks=4,
            version=VE,
            machine="intel",
        ),
        rounds=3,
        iterations=1,
    )
