"""Extension: open-loop DHT serving saturation sweep (quick mode).

Runs the CI-sized serving sweep (same workload as ``python -m repro.bench
serve --quick``), validates the artifact schema, and asserts the shape
claims the full ``BENCH_serve.json`` headline rests on:

* every (config, rate) cell completes with zero missing keys;
* each swept config exhibits a p99 saturation knee within the rate grid;
* the eager build's knee is at least as high as the deferred build's
  (the paper's mechanism, restated as sustainable offered load);
* the event-loop scheduler substrate is tick-identical to threads at
  every swept rate (parity cells are asserted inside the sweep itself).
"""

import time

from benchmarks.conftest import write_figure
from repro.bench.report import format_serve_report
from repro.bench.servebench import (
    GATE_CONFIG,
    GATE_RATE_RPS,
    run_serve_bench,
    validate_serve_doc,
)

#: generous wall budget; the quick sweep is a CI smoke, not a soak
SWEEP_BUDGET_S = 300.0


def test_serve_quick_sweep(figure_dir):
    t0 = time.perf_counter()
    doc = run_serve_bench(quick=True)
    wall = time.perf_counter() - t0

    assert validate_serve_doc(doc) == []
    assert doc["quick"] is True

    rows = doc["sweep"]["rows"]
    configs = {r["config"] for r in rows}
    head = doc["headline"]

    # every swept config has a knee entry; the coarse quick grid may
    # miss some configs' knees (None), but any located knee is a swept
    # rate, and the two headline configs must both saturate in-grid
    knees = head["knee_rate_rps_by_config"]
    assert set(knees) == configs
    rates = set(doc["sweep"]["rates_rps"])
    for config, knee in knees.items():
        assert knee is None or knee in rates, (
            f"{config} knee {knee} not a swept rate"
        )
    assert knees["eager"] is not None
    assert knees["defer"] is not None

    # the paper's claim as sustainable load: eager >= defer
    assert knees["eager"] >= knees["defer"]
    assert head["eager_over_defer_knee"] >= 1.0

    # substrate parity was checked cell-by-cell inside the sweep
    assert head["evloop_parity_rates_checked"] == len(
        doc["sweep"]["rates_rps"]
    )

    # the CI gate cell exists and reports a positive p99
    gate = head["gate"]
    assert gate["config"] == GATE_CONFIG
    assert gate["offered_rate_rps"] == GATE_RATE_RPS
    assert gate["p99_total_ns"] > 0.0

    # mean/p999 inversions are only claimed with both witnesses present
    for inv in head["inversions"]:
        assert inv["mean_winner"] != inv["p999_winner"]
        assert {inv["mean_winner"], inv["p999_winner"]} <= configs

    write_figure(
        figure_dir,
        "ext_serve_sweep.txt",
        format_serve_report(
            "Extension: open-loop DHT serving (quick sweep, ibv 2-node) "
            "[virtual ns]",
            doc,
        ),
    )

    assert wall < SWEEP_BUDGET_S, (
        f"quick serving sweep took {wall:.1f}s (budget {SWEEP_BUDGET_S}s)"
    )
