"""§IV-B's process-count sweep: "We ran experiments using 1, 2, 4, 8, and
16 processes … results for other process counts show the same trends."

Checks that the eager-vs-defer trends quoted for 16 processes hold across
the sweep (the promise gain exists at every count; the future-conjoining
blowup exists at every count).
"""

from benchmarks.conftest import bench_scale, write_figure
from repro.apps.gups import GupsConfig, run_gups
from repro.bench.report import format_table
from repro.runtime.config import Version

VD, VE = Version.V2021_3_6_DEFER, Version.V2021_3_6_EAGER

RANK_SWEEP = (1, 2, 4, 8, 16)


def test_gups_scaling(benchmark, figure_dir):
    s = bench_scale()
    rows = []
    trends = {}
    for ranks in RANK_SWEEP:
        cells = {}
        for variant in ("rma_promise", "rma_future"):
            cfg = GupsConfig(
                variant=variant,
                table_log2=12,
                updates_per_rank=64 * s,
                batch=32,
            )
            for v in (VD, VE):
                cells[(variant, v)] = run_gups(
                    cfg, ranks=ranks, version=v, machine="intel"
                ).solve_ns
        promise_sp = cells[("rma_promise", VD)] / cells[("rma_promise", VE)]
        future_sp = cells[("rma_future", VD)] / cells[("rma_future", VE)]
        trends[ranks] = (promise_sp, future_sp)
        rows.append(
            [
                str(ranks),
                f"{promise_sp:.2f}x",
                f"{future_sp:.2f}x",
            ]
        )
    write_figure(
        figure_dir,
        "gups_scaling.txt",
        format_table(
            "GUPS eager/defer speedup vs process count (Intel)",
            ["ranks", "rma_promise", "rma_future"],
            rows,
        ),
    )
    for ranks, (p_sp, f_sp) in trends.items():
        assert p_sp > 1.02, f"promise gain vanished at {ranks} ranks"
        assert f_sp > 1.5, f"future blowup vanished at {ranks} ranks"
        assert f_sp > p_sp, "futures must gain more than promises"

    benchmark.pedantic(
        lambda: run_gups(
            GupsConfig(
                variant="rma_promise", table_log2=10,
                updates_per_rank=32, batch=16,
            ),
            ranks=8,
            version=VE,
            machine="intel",
        ),
        rounds=3,
        iterations=1,
    )
