"""§IV-B's process-count sweep: "We ran experiments using 1, 2, 4, 8, and
16 processes … results for other process counts show the same trends."

Checks that the eager-vs-defer trends quoted for 16 processes hold across
the sweep (the promise gain exists at every count; the future-conjoining
blowup exists at every count).
"""

from benchmarks.conftest import bench_scale, write_figure
from repro.apps.gups import GupsConfig, run_gups
from repro.bench.report import format_aggregation_report, format_table
from repro.runtime.config import Version, flags_for

VD, VE = Version.V2021_3_6_DEFER, Version.V2021_3_6_EAGER

RANK_SWEEP = (1, 2, 4, 8, 16)

#: node counts of the off-node sweep (16 ranks spread over each)
NODE_SWEEP = (2, 4, 8)


def test_gups_scaling(benchmark, figure_dir):
    s = bench_scale()
    rows = []
    trends = {}
    for ranks in RANK_SWEEP:
        cells = {}
        for variant in ("rma_promise", "rma_future"):
            cfg = GupsConfig(
                variant=variant,
                table_log2=12,
                updates_per_rank=64 * s,
                batch=32,
            )
            for v in (VD, VE):
                cells[(variant, v)] = run_gups(
                    cfg, ranks=ranks, version=v, machine="intel"
                ).solve_ns
        promise_sp = cells[("rma_promise", VD)] / cells[("rma_promise", VE)]
        future_sp = cells[("rma_future", VD)] / cells[("rma_future", VE)]
        trends[ranks] = (promise_sp, future_sp)
        rows.append(
            [
                str(ranks),
                f"{promise_sp:.2f}x",
                f"{future_sp:.2f}x",
            ]
        )
    write_figure(
        figure_dir,
        "gups_scaling.txt",
        format_table(
            "GUPS eager/defer speedup vs process count (Intel)",
            ["ranks", "rma_promise", "rma_future"],
            rows,
        ),
    )
    for ranks, (p_sp, f_sp) in trends.items():
        assert p_sp > 1.02, f"promise gain vanished at {ranks} ranks"
        assert f_sp > 1.5, f"future blowup vanished at {ranks} ranks"
        assert f_sp > p_sp, "futures must gain more than promises"

    benchmark.pedantic(
        lambda: run_gups(
            GupsConfig(
                variant="rma_promise", table_log2=10,
                updates_per_rank=32, batch=16,
            ),
            ranks=8,
            version=VE,
            machine="intel",
        ),
        rounds=3,
        iterations=1,
    )


def test_gups_adaptive_offnode_scaling(benchmark, figure_dir):
    """Off-node sweep: where does destination batching overtake eager
    notification?  16 ranks over 2/4/8 nodes (ibv); per node count the
    grid is eager-vs-defer (amo_promise, the paper's effect) against
    aggregation off / static thresholds / adaptive thresholds on the
    ``agg`` variant.  Eager's gain is per-operation CPU overhead and
    stays flat as ranks spread out, while batching amortizes the
    injection costs that *grow* with the off-node traffic share — so in
    every off-node configuration the batching gain must exceed the eager
    gain, and the adaptive controller must preserve the static injection
    cut (dense traffic drives it to the ceiling thresholds).
    """
    s = bench_scale()
    ranks = 16
    rows = []
    adaptive_cells = {}
    for n_nodes in NODE_SWEEP:
        # eager-vs-defer gain in this regime (aggregation off)
        pcfg = GupsConfig(
            variant="amo_promise", table_log2=12,
            updates_per_rank=128 * s, batch=32,
        )
        psolve = {
            v: run_gups(
                pcfg, ranks=ranks, n_nodes=n_nodes, version=v,
                machine="intel", conduit="ibv",
            ).solve_ns
            for v in (VD, VE)
        }
        eager_gain = psolve[VD] / psolve[VE]

        # batching gain on the agg variant (eager build throughout)
        acfg = GupsConfig(
            variant="agg", table_log2=12,
            updates_per_rank=128 * s, batch=32,
        )
        cells = {}
        for mode, agg_on, adaptive in (
            ("off", False, False),
            ("static", True, False),
            ("adaptive", True, True),
        ):
            fl = flags_for(VE).replace(
                am_aggregation=agg_on,
                agg_max_entries=32,
                agg_adaptive=adaptive,
            )
            r = run_gups(
                acfg, ranks=ranks, n_nodes=n_nodes, version=VE,
                machine="intel", conduit="ibv", flags=fl,
            )
            assert r.matches_oracle, f"n_nodes={n_nodes} {mode}"
            cells[mode] = r
        adaptive_cells[n_nodes] = cells["adaptive"]

        static_gain = cells["off"].solve_ns / cells["static"].solve_ns
        adaptive_gain = cells["off"].solve_ns / cells["adaptive"].solve_ns
        rows.append([
            str(n_nodes),
            f"{eager_gain:.3f}x",
            f"{static_gain:.3f}x",
            f"{adaptive_gain:.3f}x",
            str(cells["off"].am_injects),
            str(cells["static"].am_injects),
            str(cells["adaptive"].am_injects),
        ])

        # batching overtakes eager everywhere off-node, with the static
        # injection reduction intact under the adaptive controller
        assert static_gain > eager_gain, f"n_nodes={n_nodes}"
        assert adaptive_gain > eager_gain, f"n_nodes={n_nodes}"
        # whole-world injection cut: on-node AMs always inject directly,
        # so at 2 nodes (half the peers on-node) they dilute the ratio
        # below the >= 2x that pure off-node traffic achieves
        off_inj = cells["off"].am_injects
        inj_cut = off_inj / cells["static"].am_injects
        assert inj_cut >= (2.0 if n_nodes >= 4 else 1.5), f"n_nodes={n_nodes}"
        assert cells["adaptive"].am_injects <= cells["static"].am_injects
        assert cells["adaptive"].solve_ns < cells["off"].solve_ns

    sections = [format_table(
        "Extension: off-node GUPS, eager gain vs batching gain "
        "(Intel, ibv, 16 ranks)",
        ["nodes", "eager gain", "agg gain", "adaptive gain",
         "injects off", "injects static", "injects adaptive"],
        rows,
    )]
    widest = adaptive_cells[NODE_SWEEP[-1]]
    sections.append(format_aggregation_report(
        f"Aggregation activity: adaptive cell, {NODE_SWEEP[-1]} nodes",
        widest.agg_stats,
    ))
    write_figure(figure_dir, "ext_gups_adaptive.txt", "\n\n".join(sections))

    benchmark.pedantic(
        lambda: run_gups(
            GupsConfig(
                variant="agg", table_log2=10, updates_per_rank=32, batch=8
            ),
            ranks=4,
            n_nodes=2,
            version=VE,
            machine="intel",
            conduit="ibv",
            flags=flags_for(VE).replace(
                am_aggregation=True, agg_adaptive=True
            ),
        ),
        rounds=3,
        iterations=1,
    )
