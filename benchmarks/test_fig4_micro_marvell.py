"""Figure 4: microbenchmark latencies on the Marvell (ThunderX2) profile.

Paper quantities checked (§IV-A):
  * put speedup ≈ +95%;
  * value fetch-add speedup ≈ +52%;
  * non-value fetch-add beats value fetch-add by ≈ 66% under eager.
"""

from benchmarks.conftest import bench_scale, write_figure
from repro.bench.harness import micro_grid, run_micro
from repro.bench.report import export_micro_csv, format_micro_figure
from repro.runtime.config import Version

VD, VE = Version.V2021_3_6_DEFER, Version.V2021_3_6_EAGER

MACHINE = "marvell"


def _speedup(grid, op):
    return grid[(op, VD)].ns_per_op / grid[(op, VE)].ns_per_op - 1


def test_fig4_micro_marvell(benchmark, figure_dir):
    n_ops = 150 * bench_scale()
    grid = micro_grid(MACHINE, n_ops=n_ops, n_samples=3)
    write_figure(
        figure_dir,
        "fig4_micro_marvell.txt",
        format_micro_figure(
            "Figure 4: Marvell (ThunderX2) microbenchmarks [virtual ns/op]",
            grid,
        ),
    )
    (figure_dir / "fig4_micro_marvell.csv").write_text(
        export_micro_csv(grid)
    )
    assert 0.80 <= _speedup(grid, "put") <= 1.15  # paper: +95%
    assert 0.38 <= _speedup(grid, "fadd") <= 0.70  # paper: +52%
    gap = (
        grid[("fadd", VE)].ns_per_op / grid[("fadd_nv", VE)].ns_per_op - 1
    )
    assert 0.50 <= gap <= 0.90  # paper: 66%

    benchmark.pedantic(
        lambda: run_micro("get_nv", VE, MACHINE, n_ops=50, n_samples=1),
        rounds=3,
        iterations=1,
    )
