"""Figure 7: GUPS, Marvell (ThunderX2) profile, 16 processes.

Paper quantities (§IV-B): RMA w/promises +25% (the largest promise gain);
RMA w/futures 2.4× (the smallest future-conjoining ratio).
"""

from benchmarks.conftest import bench_scale, write_figure
from repro.apps.gups import GupsConfig, run_gups
from repro.bench.harness import gups_grid
from repro.bench.report import export_gups_csv, format_gups_figure
from repro.runtime.config import Version

from benchmarks.test_fig5_gups_intel import check_common_gups_shapes

VD, VE = Version.V2021_3_6_DEFER, Version.V2021_3_6_EAGER

MACHINE = "marvell"


def test_fig7_gups_marvell(benchmark, figure_dir):
    s = bench_scale()
    grid = gups_grid(
        MACHINE, ranks=16, table_log2=12, updates_per_rank=96 * s, batch=32
    )
    write_figure(
        figure_dir,
        "fig7_gups_marvell.txt",
        format_gups_figure(
            "Figure 7: GUPS on Marvell, 16 processes "
            "[giga-updates/sec of virtual time]",
            grid,
        ),
    )
    (figure_dir / "fig7_gups_marvell.csv").write_text(
        export_gups_csv(grid)
    )
    check_common_gups_shapes(grid)

    def sp(var):
        return grid[(var, VD)].solve_ns / grid[(var, VE)].solve_ns

    assert 1.15 <= sp("rma_promise") <= 1.40  # paper: 1.25
    assert sp("amo_promise") < sp("rma_promise")
    assert 1.8 <= sp("rma_future") <= 4.0  # paper: 2.4x
    assert sp("rma_future") < 8.0  # well below IBM's ratio

    benchmark.pedantic(
        lambda: run_gups(
            GupsConfig(
                variant="amo_future", table_log2=10,
                updates_per_rank=32, batch=16,
            ),
            ranks=4,
            version=VE,
            machine=MACHINE,
        ),
        rounds=3,
        iterations=1,
    )
