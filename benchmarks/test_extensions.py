"""Extension studies beyond the paper's figures.

1. **DHT** — the eager-notification effect on a different fine-grained
   RMA application (distributed hash table): eager should help roughly
   like GUPS's promise variants.
2. **Stencil** — the negative control: a coarse-grained halo-exchange
   solver where per-operation overheads are amortized and eager wins
   almost nothing; the relative gain must *shrink* as blocks grow.
3. **Sensitivity** — how the GUPS futures blowup scales with batch size
   (the conjoined-chain length): the deferred build's penalty per update
   should stay roughly flat (it is per-op), while wait-amortization makes
   tiny batches slightly worse.
4. **Aggregation** — destination-batched AM coalescing in the off-node
   regime: the ``agg`` GUPS variant must cut AM injections >= 2x and
   lower the per-update time, and the win must *compose* with eager
   notification (measured on ``amo_promise``, where both effects apply
   to disjoint parts of each update: aggregation to the off-node request,
   eager to the on-node completion).
"""

from benchmarks.conftest import bench_scale, write_figure
from repro.apps.dht import DhtConfig, run_dht
from repro.apps.gups import GupsConfig, run_gups
from repro.apps.stencil import StencilConfig, run_stencil
from repro.bench.report import format_table
from repro.runtime.config import Version, flags_for

V0 = Version.V2021_3_0
VD, VE = Version.V2021_3_6_DEFER, Version.V2021_3_6_EAGER


def test_dht_extension(benchmark, figure_dir):
    s = bench_scale()
    cfg = DhtConfig(
        log2_slots=11, inserts_per_rank=48 * s, finds_per_rank=48 * s
    )
    rows = []
    times = {}
    for v in (V0, VD, VE):
        r = run_dht(cfg, ranks=8, version=v, machine="intel")
        assert r.correct
        times[v] = r.solve_ns
        rows.append([v.value, f"{r.solve_ns / 1e3:.1f}",
                     f"{r.ops / r.solve_ns * 1e3:.2f}"])
    write_figure(
        figure_dir,
        "ext_dht.txt",
        format_table(
            "Extension: DHT insert+find (Intel, 8 ranks)",
            ["build", "solve us", "Mops/s"],
            rows,
        ),
    )
    assert times[V0] >= times[VD] >= times[VE]
    assert times[VD] / times[VE] > 1.1  # fine-grained: eager matters

    benchmark.pedantic(
        lambda: run_dht(
            DhtConfig(log2_slots=9, inserts_per_rank=16, finds_per_rank=16),
            ranks=4,
            version=VE,
            machine="intel",
        ),
        rounds=3,
        iterations=1,
    )


def test_stencil_negative_control(benchmark, figure_dir):
    s = bench_scale()
    rows = []
    gains = []
    for n in (256 * s, 4096 * s):
        cfg = StencilConfig(n=n, iterations=10)
        td = run_stencil(cfg, ranks=8, version=VD, machine="intel")
        te = run_stencil(cfg, ranks=8, version=VE, machine="intel")
        assert td.matches_serial and te.matches_serial
        gain = td.solve_ns / te.solve_ns - 1
        gains.append(gain)
        rows.append(
            [str(n), f"{td.solve_ns / 1e3:.1f}", f"{te.solve_ns / 1e3:.1f}",
             f"+{gain * 100:.1f}%"]
        )
    write_figure(
        figure_dir,
        "ext_stencil.txt",
        format_table(
            "Extension: Jacobi stencil halo exchange (Intel, 8 ranks) — "
            "negative control",
            ["cells", "defer us", "eager us", "eager gain"],
            rows,
        ),
    )
    assert all(0 <= g < 0.10 for g in gains)
    assert gains[1] < gains[0]  # gain shrinks with block size

    benchmark.pedantic(
        lambda: run_stencil(
            StencilConfig(n=128, iterations=5),
            ranks=4,
            version=VE,
            machine="intel",
        ),
        rounds=3,
        iterations=1,
    )


def test_gups_batch_sensitivity(benchmark, figure_dir):
    s = bench_scale()
    rows = []
    ratios = {}
    for batch in (8, 32, 128):
        cfg = GupsConfig(
            variant="rma_future",
            table_log2=11,
            updates_per_rank=128 * s,
            batch=batch,
        )
        td = run_gups(cfg, ranks=8, version=VD, machine="intel").solve_ns
        te = run_gups(cfg, ranks=8, version=VE, machine="intel").solve_ns
        ratios[batch] = td / te
        rows.append([str(batch), f"{td / 1e3:.0f}", f"{te / 1e3:.0f}",
                     f"{td / te:.2f}x"])
    write_figure(
        figure_dir,
        "ext_gups_batch.txt",
        format_table(
            "Extension: GUPS rma_future eager gain vs batch size "
            "(Intel, 8 ranks)",
            ["batch", "defer us", "eager us", "ratio"],
            rows,
        ),
    )
    # the conjoining penalty is per-op: the ratio persists at every batch
    for batch, ratio in ratios.items():
        assert ratio > 1.5, f"batch {batch}"

    benchmark.pedantic(
        lambda: run_gups(
            GupsConfig(
                variant="rma_future", table_log2=10,
                updates_per_rank=32, batch=8,
            ),
            ranks=4,
            version=VE,
            machine="intel",
        ),
        rounds=3,
        iterations=1,
    )


def _agg_grid(variant, s, agg_states=(False, True)):
    """Run one GUPS variant over builds x aggregation (8 ranks, 4 nodes,
    ibv conduit: the off-node regime aggregation targets)."""
    cfg = GupsConfig(
        variant=variant, table_log2=12, updates_per_rank=256 * s, batch=32
    )
    grid = {}
    for v in (VD, VE):
        for agg in agg_states:
            fl = flags_for(v).replace(
                am_aggregation=agg, agg_max_entries=32
            )
            r = run_gups(
                cfg,
                ranks=8,
                n_nodes=4,
                version=v,
                machine="intel",
                conduit="ibv",
                flags=fl,
            )
            assert r.matches_oracle, f"{variant} {v.value} agg={agg}"
            grid[v, agg] = r
    return cfg, grid


def test_gups_agg_extension(benchmark, figure_dir):
    s = bench_scale()
    sections = []

    # -- headline: the agg variant (pure one-sided rpc_ff updates) --------
    cfg, grid = _agg_grid("agg", s)
    updates = cfg.updates_per_rank * 8
    rows = []
    for (v, agg), r in grid.items():
        mean = (
            f"{r.am_agg_entries / r.am_bundles:.1f}" if r.am_bundles else "-"
        )
        rows.append([
            v.value,
            "on" if agg else "off",
            f"{r.solve_ns / 1e3:.1f}",
            f"{r.solve_ns / updates:.0f}",
            str(r.am_injects),
            str(r.am_bundles),
            mean,
        ])
    sections.append(format_table(
        "Extension: GUPS agg variant with destination-batched AMs "
        "(Intel, ibv, 8 ranks / 4 nodes)",
        ["build", "agg", "solve us", "ns/update", "AM injects",
         "bundles", "mean bundle"],
        rows,
    ))
    for v in (VD, VE):
        off, on = grid[v, False], grid[v, True]
        assert off.am_injects / on.am_injects >= 2.0, v.value
        assert on.solve_ns < off.solve_ns, v.value

    # -- composition: amo_promise, where eager notification also bites ----
    _, pgrid = _agg_grid("amo_promise", s)
    rows = []
    for (v, agg), r in pgrid.items():
        rows.append([
            v.value,
            "on" if agg else "off",
            f"{r.solve_ns / 1e3:.1f}",
            str(r.am_injects),
        ])
    eager_gain_off = pgrid[VD, False].solve_ns / pgrid[VE, False].solve_ns
    eager_gain_on = pgrid[VD, True].solve_ns / pgrid[VE, True].solve_ns
    rows.append(["eager gain", "off", f"{eager_gain_off:.3f}x", ""])
    rows.append(["eager gain", "on", f"{eager_gain_on:.3f}x", ""])
    sections.append(format_table(
        "Composition: GUPS amo_promise, eager x aggregation "
        "(Intel, ibv, 8 ranks / 4 nodes)",
        ["build", "agg", "solve us", "AM injects"],
        rows,
    ))
    write_figure(figure_dir, "ext_gups_agg.txt", "\n".join(sections))

    # the two optimizations attack different costs and must stack:
    # aggregation helps both builds, eager keeps its gain under
    # aggregation, and eager+agg is the best cell of the grid
    for v in (VD, VE):
        assert pgrid[v, True].solve_ns < pgrid[v, False].solve_ns, v.value
    assert eager_gain_on > 1.005
    best = min(r.solve_ns for r in pgrid.values())
    assert pgrid[VE, True].solve_ns == best
    # eager never hurts the agg variant itself (no completions to defer)
    assert grid[VE, True].solve_ns <= grid[VD, True].solve_ns

    benchmark.pedantic(
        lambda: run_gups(
            GupsConfig(
                variant="agg", table_log2=10, updates_per_rank=32, batch=8
            ),
            ranks=4,
            n_nodes=2,
            version=VE,
            machine="intel",
            conduit="ibv",
            flags=flags_for(VE).replace(am_aggregation=True),
        ),
        rounds=3,
        iterations=1,
    )
