"""The paper's sampling protocol, exercised end-to-end under noise.

§IV: "Each experimental result was obtained by running twenty samples,
taking the average of the top ten.  The exception is GUPS on IBM with 16
processes; due to higher noise in this experiment, we ran 60 samples and
took the average of the top ten."

With the one-sided noise model enabled, this benchmark reproduces the
methodology itself: on the noisy IBM GUPS cell, the 60-sample top-10
estimate is closer to the noise-free truth than the 20-sample one, and
both beat the plain mean — the reason the authors escalated the sample
count for exactly this cell.
"""

import statistics

from benchmarks.conftest import bench_scale, write_figure
from repro.apps.gups import GupsConfig, run_gups
from repro.bench.report import format_table
from repro.runtime.config import Version
from repro.sim.stats import paper_average

VE = Version.V2021_3_6_EAGER

#: IBM's GUPS is "higher noise" in the paper; model that with a larger σ.
IBM_NOISE = 0.12


def _sample(cfg, i):
    return run_gups(
        cfg, ranks=8, version=VE, machine="ibm",
        noise=IBM_NOISE, noise_seed=i + 1,
    ).solve_ns


def test_sampling_protocol_ibm_gups(benchmark, figure_dir):
    s = bench_scale()
    cfg = GupsConfig(
        variant="rma_promise", table_log2=11, updates_per_rank=48 * s,
        batch=16,
    )
    truth = run_gups(cfg, ranks=8, version=VE, machine="ibm").solve_ns
    samples60 = [_sample(cfg, i) for i in range(60)]
    samples20 = samples60[:20]
    est20 = paper_average(samples20, top=10).value
    est60 = paper_average(samples60, top=10).value
    mean20 = statistics.mean(samples20)

    write_figure(
        figure_dir,
        "sampling_protocol.txt",
        format_table(
            "Sampling protocol on the noisy IBM GUPS cell "
            "(truth = noise-free virtual time)",
            ["estimator", "value us", "error vs truth"],
            [
                ["noise-free truth", f"{truth / 1e3:.1f}", "--"],
                ["mean of 20", f"{mean20 / 1e3:.1f}",
                 f"{(mean20 / truth - 1) * 100:+.1f}%"],
                ["top-10 of 20 (paper default)", f"{est20 / 1e3:.1f}",
                 f"{(est20 / truth - 1) * 100:+.1f}%"],
                ["top-10 of 60 (paper, IBM GUPS)", f"{est60 / 1e3:.1f}",
                 f"{(est60 / truth - 1) * 100:+.1f}%"],
            ],
        ),
    )
    # one-sided noise: every estimator sits above the truth
    assert truth <= est60 <= est20 <= mean20
    # escalating the sample count tightens the estimate — the reason for
    # the paper's 60-sample exception on this cell
    assert (est60 - truth) <= (est20 - truth)
    assert (est20 - truth) < (mean20 - truth)

    benchmark.pedantic(lambda: _sample(cfg, 0), rounds=3, iterations=1)
