"""Extension: 1024-rank GUPS on the event-loop scheduler.

The thread-per-rank substrate capped every experiment at ~16 ranks (one OS
thread per simulated rank); the event loop
(:class:`~repro.runtime.event_loop.EventLoopScheduler`) runs all rank
bodies as generator continuations on one thread, so this figure sweeps to
1024 ranks — a rank count no earlier benchmark could produce.

Strong scaling: the total update count is fixed and spread across the
ranks, so the per-rank work shrinks as the sweep widens.  The paper's
eager-vs-defer gain is per-operation CPU overhead and must persist at
every rank count.
"""

import dataclasses
import time

from benchmarks.conftest import bench_scale, write_figure
from repro.apps.gups import GupsConfig, run_gups
from repro.bench.report import format_table
from repro.runtime.config import Version, flags_for

VD, VE = Version.V2021_3_6_DEFER, Version.V2021_3_6_EAGER

RANK_SWEEP = (64, 256, 1024)

#: fixed total updates, divided across the ranks (strong scaling)
TOTAL_UPDATES = 4096

#: generous wall-clock budget for the whole sweep — a scheduler or
#: cost-model regression that re-introduces per-switch O(n) scans blows
#: straight through this
SWEEP_BUDGET_S = 120.0


def _event_flags(version):
    return dataclasses.replace(flags_for(version), sched_event_loop=True)


def test_gups_1k(benchmark, figure_dir):
    s = bench_scale()
    rows = []
    gains = {}
    t_sweep = time.perf_counter()
    for ranks in RANK_SWEEP:
        upr = max(1, TOTAL_UPDATES * s // ranks)
        cfg = GupsConfig(
            variant="rma_promise", table_log2=12,
            updates_per_rank=upr, batch=min(32, upr),
        )
        cells = {}
        walls = {}
        for v in (VD, VE):
            t0 = time.perf_counter()
            cells[v] = run_gups(
                cfg, ranks=ranks, version=v, machine="intel",
                flags=_event_flags(v),
            )
            walls[v] = time.perf_counter() - t0
        gain = cells[VD].solve_ns / cells[VE].solve_ns
        gains[ranks] = gain
        rows.append([
            str(ranks),
            str(upr),
            f"{cells[VD].gups:.4g}",
            f"{cells[VE].gups:.4g}",
            f"{gain:.3f}x",
            f"{walls[VE]:.2f}s",
        ])
    sweep_wall = time.perf_counter() - t_sweep

    write_figure(
        figure_dir,
        "ext_gups_1k.txt",
        format_table(
            "Extension: 1024-rank GUPS, event-loop scheduler "
            "(Intel, rma_promise, strong scaling "
            f"[{TOTAL_UPDATES * s} total updates])",
            ["ranks", "updates/rank", "defer GUPS", "eager GUPS",
             "eager gain", "wall (eager)"],
            rows,
        ),
    )

    # the paper's per-op eager gain persists at every rank count, up to
    # and including 1024 ranks
    for ranks, gain in gains.items():
        assert gain > 1.02, f"eager gain vanished at {ranks} ranks"
    # 1024 simulated ranks on one OS thread, within the wall budget
    assert sweep_wall < SWEEP_BUDGET_S, (
        f"1k-rank sweep took {sweep_wall:.1f}s (budget {SWEEP_BUDGET_S}s) "
        "— scheduler hot path regressed?"
    )

    benchmark.pedantic(
        lambda: run_gups(
            GupsConfig(
                variant="rma_promise", table_log2=12,
                updates_per_rank=4, batch=4,
            ),
            ranks=256,
            version=VE,
            machine="intel",
            flags=_event_flags(VE),
        ),
        rounds=3,
        iterations=1,
    )
