"""Figure 6: GUPS, IBM (POWER9) profile, 16 processes.

Paper quantities (§IV-B): RMA w/promises +9%; RMA w/futures 13.5× (the
largest of the three platforms); atomics w/futures 7.1×; RMA-promise-eager
within 25% of manual localization (our model's gap is larger — recorded in
EXPERIMENTS.md).
"""

from benchmarks.conftest import bench_scale, write_figure
from repro.apps.gups import GupsConfig, run_gups
from repro.bench.harness import gups_grid
from repro.bench.report import export_gups_csv, format_gups_figure
from repro.runtime.config import Version

from benchmarks.test_fig5_gups_intel import check_common_gups_shapes

VD, VE = Version.V2021_3_6_DEFER, Version.V2021_3_6_EAGER

MACHINE = "ibm"


def test_fig6_gups_ibm(benchmark, figure_dir):
    s = bench_scale()
    grid = gups_grid(
        MACHINE, ranks=16, table_log2=12, updates_per_rank=96 * s, batch=32
    )
    write_figure(
        figure_dir,
        "fig6_gups_ibm.txt",
        format_gups_figure(
            "Figure 6: GUPS on IBM, 16 processes "
            "[giga-updates/sec of virtual time]",
            grid,
        ),
    )
    (figure_dir / "fig6_gups_ibm.csv").write_text(
        export_gups_csv(grid)
    )
    check_common_gups_shapes(grid)

    def sp(var):
        return grid[(var, VD)].solve_ns / grid[(var, VE)].solve_ns

    assert 1.05 <= sp("rma_promise") <= 1.20  # paper: 1.09
    assert sp("amo_promise") < sp("rma_promise")
    assert 8.0 <= sp("rma_future") <= 20.0  # paper: 13.5x
    assert 3.5 <= sp("amo_future") <= 9.0  # paper: 7.1x
    # IBM shows the largest future-conjoining blowup of the three systems

    benchmark.pedantic(
        lambda: run_gups(
            GupsConfig(
                variant="rma_future", table_log2=10,
                updates_per_rank=32, batch=16,
            ),
            ranks=4,
            version=VD,
            machine=MACHINE,
        ),
        rounds=3,
        iterations=1,
    )
