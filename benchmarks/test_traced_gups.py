"""Traced GUPS: a fig5-style run with operation-lifecycle spans on.

This is the observability acceptance run (and the CI tier-2 trace job):
a 4-rank Intel GUPS config executed under both notification modes with
``FeatureFlags.obs_spans`` enabled, producing

* ``benchmarks/results/gups_trace_{eager,defer}.json`` — Chrome/Perfetto
  trace-event files (load them at https://ui.perfetto.dev), validated
  here against the trace-event schema (``ph``/``ts``/``pid``/``tid``);
* ``benchmarks/results/gups_trace_report.txt`` — the notification-gap
  histogram report.

Claims pinned:

* under eager notification every pshm-local value-less update completes
  with a **zero** notification gap;
* under deferred notification every gap is positive and bounded below by
  the progress-poll cost (a notification cannot be cheaper than entering
  the progress engine that delivers it);
* enabling spans changes no measured figure: solve times are
  bit-identical to an untraced run.
"""

import json

from benchmarks.conftest import write_figure
from repro.apps.gups import GupsConfig, run_gups
from repro.bench.harness import traced_gups
from repro.bench.report import format_notification_report
from repro.obs import validate_trace_events
from repro.runtime.config import Version
from repro.sim.costmodel import CostAction

VD, VE = Version.V2021_3_6_DEFER, Version.V2021_3_6_EAGER

MACHINE = "intel"
RANKS = 4
CFG = GupsConfig(variant="rma_promise", table_log2=10,
                 updates_per_rank=48, batch=16)


def _traced(version, figure_dir):
    tag = "eager" if version is VE else "defer"
    path = figure_dir / f"gups_trace_{tag}.json"
    res = traced_gups(
        CFG, ranks=RANKS, version=version, machine=MACHINE, trace_path=path
    )
    return res, path


def test_traced_gups_eager_zero_gap(figure_dir):
    res, path = _traced(VE, figure_dir)
    gap = res.obs_stats.gap("eager", "pshm")
    assert gap is not None and gap.count > 0
    # every pshm-local eager notification: gap exactly zero
    assert gap.zeros == gap.count
    assert gap.mean_ns == 0.0
    doc = json.loads(path.read_text())
    assert validate_trace_events(doc) == []


def test_traced_gups_defer_gap_bounded_below(figure_dir):
    res, path = _traced(VD, figure_dir)
    gap = res.obs_stats.gap("defer", "pshm")
    assert gap is not None and gap.count > 0
    assert gap.zeros == 0
    from repro.sim.machines import profile_by_name

    floor = profile_by_name(MACHINE).cost_ns(CostAction.PROGRESS_POLL)
    assert gap.hist.min is not None and gap.hist.min >= floor
    doc = json.loads(path.read_text())
    assert validate_trace_events(doc) == []
    # the trace must carry all four rank timelines
    tids = {
        e["tid"] for e in doc["traceEvents"] if e["ph"] != "M"
    }
    assert tids == set(range(RANKS))


def test_tracing_does_not_perturb_figures(figure_dir):
    base = run_gups(CFG, ranks=RANKS, version=VE, machine=MACHINE)
    traced, _ = _traced(VE, figure_dir)
    assert traced.solve_ns == base.solve_ns
    assert traced.checksum == base.checksum


def test_write_gap_report(figure_dir):
    res, _ = _traced(VD, figure_dir)
    text = format_notification_report(
        f"GUPS {CFG.variant} on {MACHINE}, {RANKS} ranks, defer vs eager "
        "[notification gaps]",
        res.obs_stats,
    )
    res_e, _ = _traced(VE, figure_dir)
    text += "\n\n" + format_notification_report(
        "same config, eager", res_e.obs_stats
    )
    write_figure(figure_dir, "gups_trace_report.txt", text)
