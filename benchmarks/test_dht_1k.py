"""Extension: 1024-rank DHT smoke on the event-loop scheduler.

The DHT body is now a generator (``_dht_body_gen``): every rank runs as an
in-place continuation on one OS thread, so the workload scales to 1024
ranks — a blocked-heavy shape (CAS waits, value puts, barrier fences, a
final find phase) quite unlike the all-ready GUPS storm.  The wake-list
scheduler keeps the parked-rank bookkeeping O(1) per switch; the wall
budget below blows up if a per-switch O(ranks) scan sneaks back in.
"""

import dataclasses
import time

from benchmarks.conftest import bench_scale, write_figure
from repro.apps.dht import DhtConfig, run_dht
from repro.bench.report import format_table
from repro.runtime.config import Version, flags_for

RANK_SWEEP = (256, 1024)

#: per-rank inserts/finds (constant: the point is rank count, not volume)
OPS_PER_RANK = 4

#: generous wall budget for the full sweep; a scheduler hot-path
#: regression at 1024 blocked-heavy ranks lands far beyond this
SWEEP_BUDGET_S = 120.0


def _event_flags(version):
    return dataclasses.replace(flags_for(version), sched_event_loop=True)


def test_dht_1k(benchmark, figure_dir):
    s = bench_scale()
    ver = Version.V2021_3_6_EAGER
    rows = []
    t_sweep = time.perf_counter()
    for ranks in RANK_SWEEP:
        # keep load factor <= 0.5 at every rank count
        total_keys = ranks * OPS_PER_RANK * s
        log2_slots = max(8, (total_keys * 4 - 1).bit_length())
        cfg = DhtConfig(
            log2_slots=log2_slots,
            inserts_per_rank=OPS_PER_RANK * s,
            finds_per_rank=OPS_PER_RANK * s,
        )
        t0 = time.perf_counter()
        r = run_dht(cfg, ranks=ranks, version=ver, machine="intel",
                    flags=_event_flags(ver))
        wall = time.perf_counter() - t0
        assert r.correct, f"lookup misses at {ranks} ranks"
        rows.append([
            str(ranks),
            str(r.ops),
            f"{r.solve_ns / 1e6:.3f}",
            f"{wall:.2f}s",
        ])
    sweep_wall = time.perf_counter() - t_sweep

    write_figure(
        figure_dir,
        "ext_dht_1k.txt",
        format_table(
            "Extension: 1024-rank DHT smoke, event-loop scheduler "
            "(Intel, generator continuations)",
            ["ranks", "ops", "solve [virtual ms]", "wall"],
            rows,
        ),
    )

    assert sweep_wall < SWEEP_BUDGET_S, (
        f"1k-rank DHT sweep took {sweep_wall:.1f}s "
        f"(budget {SWEEP_BUDGET_S}s) — scheduler hot path regressed?"
    )

    benchmark.pedantic(
        lambda: run_dht(
            DhtConfig(log2_slots=12, inserts_per_rank=2, finds_per_rank=2),
            ranks=256,
            version=ver,
            machine="intel",
            flags=_event_flags(ver),
        ),
        rounds=3,
        iterations=1,
    )
