"""Benchmark-suite fixtures.

Each ``test_fig*.py`` regenerates one figure of the paper: it computes the
full grid in *virtual* time, writes the paper-style table under
``benchmarks/results/``, asserts the paper's shape claims, and times a
representative scaled-down cell with pytest-benchmark (wall-clock of the
simulator itself).

Grid sizes are scaled for simulator throughput; set ``REPRO_BENCH_SCALE=2``
(or higher) in the environment to run larger grids.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> int:
    return max(1, int(os.environ.get("REPRO_BENCH_SCALE", "1")))


@pytest.fixture(scope="session")
def figure_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_figure(figure_dir: Path, name: str, text: str) -> None:
    (figure_dir / name).write_text(text + "\n")
    print("\n" + text)
