"""Extension: wait-aware completion targeting in a backlog-probe GUPS sweep.

The ``wait_hints`` GUPS variant parks a batch of promise-tracked backlog
notifications on the deferred queue, then waits a few future-tracked
probe updates whose notifications sit *behind* that backlog in FIFO
order.  The adaptive controller's drain cap — the very mechanism that
keeps its polls cheap — forces the awaited probe to wait out
``ceil(backlog/cap)`` capped polls; targeted drains under
``FeatureFlags.wait_hints`` dispatch exactly the awaited completion on
the first poll of the wait instead.  The claims, per sweep point:

* **latency** — the mean *waited* defer notification gap (gap restricted
  to spans a caller actually blocked on, ``ObsStats.waited_gaps``) drops
  measurably versus ``progress_adaptive`` alone on the same knobs;
* **overhead** — the total ``PROGRESS_POLL`` charge stays within
  ``POLL_BUDGET_FACTOR`` of the plain static-defer run's (in practice it
  comes out far *below* static: hints ride on the controller's
  poll-thinning, they do not add polls).
"""

from benchmarks.conftest import bench_scale, write_figure
from repro.apps.gups import GupsConfig, run_gups
from repro.bench.report import format_progress_report, format_table
from repro.runtime.config import Version, flags_for

VD = Version.V2021_3_6_DEFER

#: documented overhead bound: hinted total PROGRESS_POLL charge must
#: stay within this factor of the static defer run's
POLL_BUDGET_FACTOR = 1.05

#: the waited probes are deferred on-node atomics
GAP_KEY = ("defer", "pshm")


def _flags(adaptive: bool, hints: bool = False):
    base = flags_for(VD).replace(obs_spans=True)
    if not adaptive:
        return base
    # a small drain cap (the backlog outruns it) and an age bound far
    # beyond the run length: the probe's dispatch is gated by the cap
    # alone, so the sweep isolates what targeting buys
    return base.replace(
        progress_adaptive=True,
        progress_min_batch=2,
        progress_max_batch=8,
        progress_max_poll_interval=32,
        progress_max_age_ticks=65536.0,
        wait_hints=hints,
    )


def _run(cfg, adaptive, hints=False):
    return run_gups(
        cfg,
        ranks=8,
        version=VD,
        machine="intel",
        flags=_flags(adaptive, hints),
    )


def _waited_gap(result) -> float:
    stats = result.obs_stats.waited_gaps[GAP_KEY]
    return stats.hist.mean


def test_wait_hints_sweep(benchmark, figure_dir):
    s = bench_scale()
    rows = []
    last_hinted = None
    for batch in (16, 32, 64):
        cfg = GupsConfig(
            variant="wait_hints",
            table_log2=10,
            updates_per_rank=128 * s,
            batch=batch,
        )
        static = _run(cfg, adaptive=False)
        adaptive = _run(cfg, adaptive=True)
        hinted = _run(cfg, adaptive=True, hints=True)
        last_hinted = hinted
        assert static.matches_oracle
        assert adaptive.matches_oracle
        assert hinted.matches_oracle

        gap_s = _waited_gap(static)
        gap_a = _waited_gap(adaptive)
        gap_h = _waited_gap(hinted)
        # the headline claims, per sweep point
        assert gap_h < 0.9 * gap_a, (
            f"batch={batch}: waited gap did not improve measurably "
            f"(hinted {gap_h:.0f} vs adaptive {gap_a:.0f})"
        )
        assert (
            hinted.progress_polls <= static.progress_polls * POLL_BUDGET_FACTOR
        ), f"batch={batch}: poll budget exceeded"
        # the mechanism fired, and only under the flag
        assert hinted.prog_stats.hinted_dispatched > 0
        assert hinted.prog_stats.hinted_scans > 0
        assert adaptive.prog_stats.hinted_dispatched == 0
        # hints ride on poll-thinning rather than replacing it
        assert hinted.progress_poll_skips > 0
        assert static.progress_poll_skips == 0

        rows.append([
            str(batch),
            f"{gap_s:.0f}",
            f"{gap_a:.0f}",
            f"{gap_h:.0f}",
            f"{gap_a / gap_h:.2f}x",
            str(static.progress_polls),
            str(hinted.progress_polls),
            str(hinted.prog_stats.hinted_dispatched),
            str(hinted.progress_poll_skips),
        ])

    table = format_table(
        "Extension: wait-aware targeting vs. adaptive-alone "
        f"(GUPS wait_hints, Intel, 8 ranks, poll budget x{POLL_BUDGET_FACTOR})",
        [
            "batch", "waited gap static", "waited gap adaptive",
            "waited gap hinted", "gap gain", "polls static",
            "polls hinted", "hinted disp", "skips",
        ],
        rows,
    )
    controller = format_progress_report(
        "controller rollup (last sweep point)", last_hinted.prog_stats
    )
    write_figure(
        figure_dir, "ext_gups_wait_hints.txt", table + "\n\n" + controller
    )

    benchmark.pedantic(
        lambda: _run(
            GupsConfig(
                variant="wait_hints",
                table_log2=9,
                updates_per_rank=32,
                batch=16,
            ),
            adaptive=True,
            hints=True,
        ),
        rounds=3,
        iterations=1,
    )


def test_flag_off_is_bit_identical(figure_dir):
    """With ``wait_hints`` off the new code paths are dead: the defer
    figure is bit-identical whatever the wait knobs hold, including under
    an active adaptive controller."""
    cfg = GupsConfig(
        variant="wait_hints", table_log2=9, updates_per_rank=48, batch=16
    )
    base = _flags(adaptive=True)
    a = run_gups(cfg, ranks=8, version=VD, machine="intel", flags=base)
    b = run_gups(
        cfg, ranks=8, version=VD, machine="intel",
        flags=base.replace(wait_flush_fill_frac=0.9),
    )
    assert a.solve_ns == b.solve_ns
    assert a.checksum == b.checksum
    assert a.progress_polls == b.progress_polls
    assert a.prog_stats.hinted_dispatched == 0
    assert b.prog_stats.hinted_dispatched == 0
