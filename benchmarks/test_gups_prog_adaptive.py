"""Extension: adaptive progress control in a defer-heavy GUPS sweep.

The ``prog_adaptive`` GUPS variant is a drain-loop workout: every update
is a promise-tracked atomic whose completion parks on the deferred queue
(deferred notification), and each batch is followed by a polling-driven
idle segment where the static engine pays a full ``PROGRESS_POLL`` per
call for nothing.  The adaptive controller must show the paper-style
trade on this workload:

* **latency** — the mean defer notification gap drops versus the static
  engine (the age bound plus enqueue-time mini-drains retire parked
  completions instead of letting them wait for the next natural poll);
* **overhead** — the total ``PROGRESS_POLL`` charge does not exceed the
  static run's by more than ``POLL_BUDGET_FACTOR`` (the poll-thinning
  elisions must at least pay for the mini-drain polls the age guarantee
  introduces — in practice the total comes out *below* static).
"""

from benchmarks.conftest import bench_scale, write_figure
from repro.apps.gups import GupsConfig, run_gups
from repro.bench.report import format_progress_report, format_table
from repro.runtime.config import Version, flags_for

VD = Version.V2021_3_6_DEFER

#: documented overhead bound: adaptive total PROGRESS_POLL charge must
#: stay within this factor of the static defer run's
POLL_BUDGET_FACTOR = 1.05

GAP_KEY = ("defer", "pshm")


def _flags(adaptive: bool):
    base = flags_for(VD).replace(obs_spans=True)
    if not adaptive:
        return base
    return base.replace(
        progress_adaptive=True,
        progress_min_batch=2,
        progress_max_batch=64,
        progress_max_poll_interval=32,
        progress_max_age_ticks=4000.0,
    )


def _run(cfg, adaptive):
    return run_gups(
        cfg, ranks=8, version=VD, machine="intel", flags=_flags(adaptive)
    )


def test_adaptive_progress_sweep(benchmark, figure_dir):
    s = bench_scale()
    rows = []
    last_adaptive = None
    for batch in (16, 32, 64):
        cfg = GupsConfig(
            variant="prog_adaptive",
            table_log2=10,
            updates_per_rank=128 * s,
            batch=batch,
        )
        static = _run(cfg, adaptive=False)
        adaptive = _run(cfg, adaptive=True)
        last_adaptive = adaptive
        assert static.matches_oracle and adaptive.matches_oracle

        gap_s = static.obs_stats.gaps[GAP_KEY].hist.mean
        gap_a = adaptive.obs_stats.gaps[GAP_KEY].hist.mean
        # the headline claims, per sweep point
        assert gap_a < gap_s, f"batch={batch}: gap did not improve"
        assert (
            adaptive.progress_polls
            <= static.progress_polls * POLL_BUDGET_FACTOR
        ), f"batch={batch}: poll budget exceeded"
        assert adaptive.progress_poll_skips > 0
        assert static.progress_poll_skips == 0

        rows.append([
            str(batch),
            f"{gap_s:.0f}",
            f"{gap_a:.0f}",
            f"{gap_s / gap_a:.2f}x",
            str(static.progress_polls),
            str(adaptive.progress_polls),
            str(adaptive.progress_poll_skips),
            str(adaptive.prog_stats.aged_dispatched),
        ])

    table = format_table(
        "Extension: adaptive progress vs. static defer "
        f"(GUPS prog_adaptive, Intel, 8 ranks, poll budget x{POLL_BUDGET_FACTOR})",
        [
            "batch", "gap static ns", "gap adaptive ns", "gap gain",
            "polls static", "polls adaptive", "skips", "aged disp",
        ],
        rows,
    )
    controller = format_progress_report(
        "controller rollup (last sweep point)", last_adaptive.prog_stats
    )
    write_figure(
        figure_dir, "ext_gups_prog_adaptive.txt", table + "\n\n" + controller
    )

    benchmark.pedantic(
        lambda: _run(
            GupsConfig(
                variant="prog_adaptive",
                table_log2=9,
                updates_per_rank=32,
                batch=16,
            ),
            adaptive=True,
        ),
        rounds=3,
        iterations=1,
    )


def test_flag_off_is_bit_identical(figure_dir):
    """With ``progress_adaptive`` off the new code paths are dead: the
    defer figure is bit-identical whatever the progress knobs hold."""
    cfg = GupsConfig(
        variant="prog_adaptive", table_log2=9, updates_per_rank=48, batch=16
    )
    a = run_gups(cfg, ranks=8, version=VD, machine="intel")
    b = run_gups(
        cfg, ranks=8, version=VD, machine="intel",
        flags=flags_for(VD).replace(
            progress_min_batch=1,
            progress_max_batch=2,
            progress_max_age_ticks=1.0,
        ),
    )
    assert a.solve_ns == b.solve_ns
    assert a.checksum == b.checksum
    assert a.progress_polls == b.progress_polls
    assert b.progress_poll_skips == 0
