"""The locality-crossover study (extension): eager-notification gain as a
function of the fraction of operations resolved on-node.

Quantifies the paper's motivating claim (§I): deferral costs matter "for
applications where most asynchronous communication operations are
resolved on-node, or that happen to be run on a single node", while the
off-node path is unharmed (the −0/+0 end of the sweep is the §IV-A
off-node result seen from another angle).
"""

from benchmarks.conftest import bench_scale, write_figure
from repro.bench.report import format_table
from repro.bench.sweeps import locality_sweep


def test_locality_crossover(benchmark, figure_dir):
    s = bench_scale()
    points = locality_sweep(
        fractions=(0.0, 0.25, 0.5, 0.75, 0.9, 1.0),
        ranks=4,
        updates=96 * s,
        machine="intel",
    )
    rows = [
        [
            f"{p.local_fraction * 100:.0f}%",
            f"{p.defer_ns / 1e3:.1f}",
            f"{p.eager_ns / 1e3:.1f}",
            f"{p.speedup * 100:+.1f}%",
        ]
        for p in points
    ]
    write_figure(
        figure_dir,
        "ext_locality_crossover.txt",
        format_table(
            "Extension: eager gain vs fraction of on-node targets "
            "(Intel, 4 ranks, 2 nodes)",
            ["on-node", "defer us", "eager us", "eager gain"],
            rows,
        ),
    )
    by_frac = {p.local_fraction: p.speedup for p in points}
    # fully off-node: within noise of zero (the one-branch §IV-A claim)
    assert abs(by_frac[0.0]) < 0.02
    # fully on-node: a substantial gain
    assert by_frac[1.0] > 0.15
    # monotone trend across the sweep (allowing small noise at the bottom)
    assert by_frac[1.0] > by_frac[0.9] > by_frac[0.5] > by_frac[0.0] - 0.02

    benchmark.pedantic(
        lambda: locality_sweep(fractions=(1.0,), ranks=4, updates=32),
        rounds=3,
        iterations=1,
    )
