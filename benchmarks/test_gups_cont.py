"""Extension: continuation completions vs the future path in a GUPS sweep.

The ``cont`` GUPS variant tracks each atomic update with
``operation_cx.as_continuation`` (``FeatureFlags.cx_continuations``), a
callback ticking a done counter — no future or promise cell, and the
completion never parks on the deferred queue: it dispatches inline at
whichever agent observes the ack.  The claims, per sweep point on the
deferred-notification build:

* **latency** — the mean notification gap of the continuation path is
  strictly below the future path's (``amo_future`` on the same knobs),
  because futures park on the deferred queue until the batch-end drain
  while continuations dispatch at observation;
* **classification** — continuation spans land in the ``eager`` gap
  class even on the defer build (they are eager-by-construction), while
  the future path's land in ``defer``;
* **identity** — with no continuation requests in the workload, turning
  the flag on leaves the future-path figure bit-identical (virtual
  clocks included).
"""

from benchmarks.conftest import bench_scale, write_figure
from repro.apps.gups import GupsConfig, run_gups
from repro.bench.contbench import _mean_update_gap
from repro.bench.report import format_table
from repro.runtime.config import Version, flags_for

VD = Version.V2021_3_6_DEFER


def _flags(cx: bool = True):
    return flags_for(VD).replace(obs_spans=True, cx_continuations=cx)


def _run(cfg, cx: bool = True):
    return run_gups(
        cfg, ranks=8, version=VD, machine="intel", flags=_flags(cx)
    )


def test_cont_gap_sweep(benchmark, figure_dir):
    s = bench_scale()
    rows = []
    for batch in (16, 32, 64):
        mk = lambda variant: GupsConfig(
            variant=variant,
            table_log2=10,
            updates_per_rank=128 * s,
            batch=batch,
        )
        fut = _run(mk("amo_future"))
        cont = _run(mk("cont"))
        assert fut.matches_oracle
        assert cont.matches_oracle

        gap_f, n_f = _mean_update_gap(fut.obs_stats)
        gap_c, n_c = _mean_update_gap(cont.obs_stats)
        assert n_f > 0 and n_c > 0
        # the headline claim: the callback path beats the future path on
        # mean notification gap at every sweep point
        assert gap_c < gap_f, (
            f"batch={batch}: continuation gap did not beat the future "
            f"path ({gap_c:.0f} vs {gap_f:.0f})"
        )
        # and the mechanism is the one documented: continuations are
        # eager-by-construction (never parked), futures park under defer
        cont_modes = {
            m for (m, _loc) in cont.obs_stats.gaps if m != "none"
        }
        fut_modes = {
            m for (m, _loc) in fut.obs_stats.gaps if m != "none"
        }
        assert cont_modes == {"eager"}, cont_modes
        assert "defer" in fut_modes, fut_modes

        rows.append([
            str(batch),
            f"{gap_f:.0f}",
            f"{gap_c:.0f}",
            f"{gap_f / gap_c:.1f}x" if gap_c else "inf",
            str(n_f),
            str(n_c),
        ])

    table = format_table(
        "Extension: continuation completions vs the future path "
        "(GUPS, defer build, Intel, 8 ranks) [mean notify gap, ns]",
        [
            "batch", "gap future", "gap cont", "gap gain",
            "spans future", "spans cont",
        ],
        rows,
    )
    write_figure(figure_dir, "ext_gups_cont.txt", table)

    benchmark.pedantic(
        lambda: _run(
            GupsConfig(
                variant="cont",
                table_log2=9,
                updates_per_rank=32,
                batch=16,
            )
        ),
        rounds=3,
        iterations=1,
    )


def test_flag_on_without_requests_is_bit_identical(figure_dir):
    """``cx_continuations`` only changes runs that *use* the new kinds:
    the future-path figure is bit-identical with the flag on or off."""
    cfg = GupsConfig(
        variant="amo_future", table_log2=9, updates_per_rank=48, batch=16
    )
    a = _run(cfg, cx=False)
    b = _run(cfg, cx=True)
    assert a.solve_ns == b.solve_ns
    assert a.checksum == b.checksum
    assert a.progress_polls == b.progress_polls
