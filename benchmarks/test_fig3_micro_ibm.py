"""Figure 3: microbenchmark latencies on the IBM (POWER9) profile.

Paper quantities checked (§IV-A):
  * put speedup ≈ +95%;
  * value fetch-add speedup ≈ +15% (smallest of the three platforms);
  * non-value vs value gap ≈ 90% for both atomics and gets.
"""

from benchmarks.conftest import bench_scale, write_figure
from repro.bench.harness import micro_grid, run_micro
from repro.bench.report import export_micro_csv, format_micro_figure
from repro.runtime.config import Version

VD, VE = Version.V2021_3_6_DEFER, Version.V2021_3_6_EAGER

MACHINE = "ibm"


def _speedup(grid, op):
    return grid[(op, VD)].ns_per_op / grid[(op, VE)].ns_per_op - 1


def _gap(grid, value_op, nv_op):
    return grid[(value_op, VE)].ns_per_op / grid[(nv_op, VE)].ns_per_op - 1


def test_fig3_micro_ibm(benchmark, figure_dir):
    n_ops = 150 * bench_scale()
    grid = micro_grid(MACHINE, n_ops=n_ops, n_samples=3)
    write_figure(
        figure_dir,
        "fig3_micro_ibm.txt",
        format_micro_figure(
            "Figure 3: IBM (POWER9) microbenchmarks [virtual ns/op]", grid
        ),
    )
    (figure_dir / "fig3_micro_ibm.csv").write_text(
        export_micro_csv(grid)
    )
    assert 0.80 <= _speedup(grid, "put") <= 1.15  # paper: +95%
    assert 0.08 <= _speedup(grid, "fadd") <= 0.25  # paper: +15%
    # "about 90% for both atomics and gets on IBM"
    assert 0.70 <= _gap(grid, "fadd", "fadd_nv") <= 1.10
    assert 0.70 <= _gap(grid, "get", "get_nv") <= 1.10

    benchmark.pedantic(
        lambda: run_micro("fadd", VE, MACHINE, n_ops=50, n_samples=1),
        rounds=3,
        iterations=1,
    )
