"""Ablation benchmarks: isolating each design choice DESIGN.md calls out.

The paper's eager build bundles several mechanisms; these ablations toggle
them one at a time (via FeatureFlags overrides on the eager build) to show
each one's individual contribution:

  1. the when_all short-cuts (§III-C) — carry the future-conjoining gain;
  2. the shared ready cell (§III-B) — makes eager value-less futures free;
  3. the local-RMA allocation elision (§IV-A, orthogonal) — the
     2021.3.0 → 2021.3.6-defer delta;
  4. non-value fetching atomics (§III-B) — value vs into-memory forms;
  5. eager notification itself with everything else held fixed.
"""

from benchmarks.conftest import bench_scale, write_figure
from repro.apps.gups import GupsConfig, run_gups
from repro.bench.harness import run_micro
from repro.bench.report import format_table
from repro.runtime.config import Version, flags_for

VE = Version.V2021_3_6_EAGER
VD = Version.V2021_3_6_DEFER

EAGER = flags_for(VE)


def _gups(variant, flags, ranks=8, s=1):
    cfg = GupsConfig(
        variant=variant, table_log2=11, updates_per_rank=64 * s, batch=32
    )
    return run_gups(
        cfg, ranks=ranks, version=VE, machine="intel", flags=flags
    ).solve_ns


def test_ablation_when_all_shortcuts(benchmark, figure_dir):
    """Disabling only the §III-C short-cuts on the eager build must
    reintroduce a large part of the future-conjoining cost."""
    s = bench_scale()
    full = _gups("rma_future", EAGER, s=s)
    no_shortcut = _gups(
        "rma_future", EAGER.replace(when_all_shortcuts=False), s=s
    )
    ratio = no_shortcut / full
    write_figure(
        figure_dir,
        "ablation_when_all.txt",
        format_table(
            "Ablation: when_all short-cuts (GUPS rma_future, eager, Intel)",
            ["config", "solve ns", "vs full"],
            [
                ["full eager", f"{full:.0f}", "1.00x"],
                ["no when_all short-cuts", f"{no_shortcut:.0f}",
                 f"{ratio:.2f}x"],
            ],
        ),
    )
    assert ratio > 1.3

    benchmark.pedantic(lambda: _gups("rma_future", EAGER), rounds=2,
                       iterations=1)


def test_ablation_shared_ready_cell(benchmark, figure_dir):
    """Without the shared ready cell, every eager value-less completion
    allocates — the micro put latency must rise."""
    full = run_micro("put", VE, "intel", n_ops=100, n_samples=1)
    no_cell = run_micro(
        "put", VE, "intel", n_ops=100, n_samples=1,
        flags=EAGER.replace(ready_future_shared_cell=False),
    )
    ratio = no_cell.ns_per_op / full.ns_per_op
    write_figure(
        figure_dir,
        "ablation_ready_cell.txt",
        format_table(
            "Ablation: shared ready cell (micro put, eager, Intel)",
            ["config", "ns/op", "vs full"],
            [
                ["full eager", f"{full.ns_per_op:.1f}", "1.00x"],
                ["no shared ready cell", f"{no_cell.ns_per_op:.1f}",
                 f"{ratio:.2f}x"],
            ],
        ),
    )
    assert ratio > 1.2

    benchmark.pedantic(
        lambda: run_micro("put", VE, "intel", n_ops=50, n_samples=1),
        rounds=3,
        iterations=1,
    )


def test_ablation_alloc_elision(benchmark, figure_dir):
    """The orthogonal §IV-A optimization: re-enabling the extra local-RMA
    allocation on the defer build reproduces the 2021.3.0 gap."""
    defer = flags_for(VD)
    with_elision = run_micro("put", VD, "intel", n_ops=100, n_samples=1)
    without = run_micro(
        "put", VD, "intel", n_ops=100, n_samples=1,
        flags=defer.replace(elide_local_rma_alloc=False),
    )
    legacy = run_micro(
        "put", Version.V2021_3_0, "intel", n_ops=100, n_samples=1
    )
    write_figure(
        figure_dir,
        "ablation_alloc_elision.txt",
        format_table(
            "Ablation: local-RMA allocation elision (micro put, defer, "
            "Intel)",
            ["config", "ns/op"],
            [
                ["3.6-defer (elided)", f"{with_elision.ns_per_op:.1f}"],
                ["3.6-defer w/o elision", f"{without.ns_per_op:.1f}"],
                ["2021.3.0", f"{legacy.ns_per_op:.1f}"],
            ],
        ),
    )
    assert without.ns_per_op > with_elision.ns_per_op
    # removing just the elision accounts for most of the 3.0 gap (the
    # remainder is the constexpr is_local branch and ready-future allocs)
    assert without.ns_per_op <= legacy.ns_per_op + 1e-9

    benchmark.pedantic(
        lambda: run_micro("put", VD, "intel", n_ops=50, n_samples=1),
        rounds=3,
        iterations=1,
    )


def test_ablation_nonvalue_atomics(benchmark, figure_dir):
    """§III-B: the into-memory fetching form vs the value-producing form
    under eager notification, on all three platforms."""
    rows = []
    gaps = {}
    for machine in ("intel", "ibm", "marvell"):
        value = run_micro("fadd", VE, machine, n_ops=100, n_samples=1)
        nonvalue = run_micro("fadd_nv", VE, machine, n_ops=100, n_samples=1)
        gap = value.ns_per_op / nonvalue.ns_per_op - 1
        gaps[machine] = gap
        rows.append(
            [machine, f"{value.ns_per_op:.1f}", f"{nonvalue.ns_per_op:.1f}",
             f"+{gap * 100:.0f}%"]
        )
    write_figure(
        figure_dir,
        "ablation_nonvalue_atomics.txt",
        format_table(
            "Ablation: value vs non-value fetch-add (eager)",
            ["machine", "fadd ns", "fadd_into ns", "nv advantage"],
            rows,
        ),
    )
    # paper band: 66% (Marvell) … ~90% (IBM)
    assert 0.5 <= gaps["marvell"] <= 0.95
    assert 0.7 <= gaps["ibm"] <= 1.1
    assert all(g > 0.3 for g in gaps.values())

    benchmark.pedantic(
        lambda: run_micro("fadd_nv", VE, "ibm", n_ops=50, n_samples=1),
        rounds=3,
        iterations=1,
    )


def test_ablation_eager_alone(benchmark, figure_dir):
    """Eager notification with every other 2021.3.6 optimization held
    fixed: the pure contribution of the paper's semantic change."""
    s = bench_scale()
    eager = _gups("rma_promise", EAGER, s=s)
    defer_only = _gups(
        "rma_promise", EAGER.replace(eager_notification=False), s=s
    )
    gain = defer_only / eager - 1
    write_figure(
        figure_dir,
        "ablation_eager_alone.txt",
        format_table(
            "Ablation: eager notification alone (GUPS rma_promise, Intel)",
            ["config", "solve ns", "gain"],
            [
                ["defer (3.6 opts on)", f"{defer_only:.0f}", "--"],
                ["eager (3.6 opts on)", f"{eager:.0f}",
                 f"+{gain * 100:.0f}%"],
            ],
        ),
    )
    assert gain > 0.05

    benchmark.pedantic(lambda: _gups("rma_promise", EAGER), rounds=2,
                       iterations=1)
