"""§IV-A's off-node check (the study "omitted due to space limitations").

Two nodes communicating over the network: the build with eager-completion
support pays exactly one extra branch on the off-node RMA path, which must
be statistically invisible next to the network latency — and the off-node
AMO path is unchanged entirely.
"""

from benchmarks.conftest import write_figure
from repro.bench.harness import offnode_grid
from repro.bench.report import format_offnode_figure
from repro.runtime.config import Version

VD, VE = Version.V2021_3_6_DEFER, Version.V2021_3_6_EAGER


def test_offnode_rma(benchmark, figure_dir):
    grid = offnode_grid("intel", n_ops=40)
    write_figure(
        figure_dir,
        "offnode_rma.txt",
        format_offnode_figure(
            "Off-node RMA latency (two nodes, Intel + ibv): "
            "defer vs eager-capable build",
            grid,
        ),
    )
    for op in ("put", "get"):
        d, e = grid[(op, VD)], grid[(op, VE)]
        delta = abs(e - d) / d
        assert delta < 0.005, (
            f"off-node {op} changed by {delta * 100:.2f}% — the eager "
            "branch must be statistically insignificant"
        )
        assert e >= d  # the branch adds, never removes, work

    benchmark.pedantic(
        lambda: offnode_grid("intel", ops=("put",), n_ops=10),
        rounds=3,
        iterations=1,
    )
