"""Figure 2: microbenchmark latencies on the Intel (Skylake) profile.

Paper quantities checked (eager vs 2021.3.6-defer, §IV-A):
  * put speedup ≈ +92%;
  * value-producing fetch-add speedup ≈ +46%;
  * 2021.3.0 slower than 2021.3.6-defer (the orthogonal allocation
    elision);
  * no 2021.3.0 bar for the non-value fetching atomic (didn't exist).
"""

import pytest

from benchmarks.conftest import bench_scale, write_figure
from repro.bench.harness import micro_grid, run_micro
from repro.bench.report import export_micro_csv, format_micro_figure
from repro.runtime.config import Version

VD, VE = Version.V2021_3_6_DEFER, Version.V2021_3_6_EAGER
V0 = Version.V2021_3_0

MACHINE = "intel"
PUT_BAND = (0.75, 1.15)  # paper: +92%
FADD_BAND = (0.30, 0.65)  # paper: +46%


def _speedup(grid, op):
    return grid[(op, VD)].ns_per_op / grid[(op, VE)].ns_per_op - 1


def test_fig2_micro_intel(benchmark, figure_dir):
    n_ops = 150 * bench_scale()
    grid = micro_grid(MACHINE, n_ops=n_ops, n_samples=3)
    write_figure(
        figure_dir,
        "fig2_micro_intel.txt",
        format_micro_figure(
            "Figure 2: Intel (Skylake) microbenchmarks [virtual ns/op]",
            grid,
        ),
    )
    (figure_dir / "fig2_micro_intel.csv").write_text(
        export_micro_csv(grid)
    )
    # paper shape assertions
    assert PUT_BAND[0] <= _speedup(grid, "put") <= PUT_BAND[1]
    assert FADD_BAND[0] <= _speedup(grid, "fadd") <= FADD_BAND[1]
    assert grid[("fadd_nv", V0)] is None  # op didn't exist in 2021.3.0
    for op in ("put", "get", "get_nv", "fadd"):
        assert (
            grid[(op, V0)].ns_per_op
            >= grid[(op, VD)].ns_per_op
            >= grid[(op, VE)].ns_per_op
        )
    # non-value ops beat their value-producing counterparts under eager
    assert grid[("get_nv", VE)].ns_per_op < grid[("get", VE)].ns_per_op
    assert grid[("fadd_nv", VE)].ns_per_op < grid[("fadd", VE)].ns_per_op

    # wall-clock of the simulator on one representative cell
    benchmark.pedantic(
        lambda: run_micro("put", VE, MACHINE, n_ops=50, n_samples=1),
        rounds=3,
        iterations=1,
    )
