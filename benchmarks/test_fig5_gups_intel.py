"""Figure 5: GUPS (HPCC RandomAccess), Intel profile, 16 processes.

Paper quantities checked (§IV-B, eager vs 2021.3.6-defer):
  * pure RMA w/promises speedup ≈ +15%;
  * atomics w/promises: small (paper: 1–4%; our cost model lands slightly
    higher — see EXPERIMENTS.md);
  * pure RMA w/futures ratio large (Intel sits between the quoted 2.4×
    Marvell and 13.5× IBM endpoints);
  * atomics w/futures ≈ 1.5× (the paper's Intel endpoint);
  * under eager, futures variants come very close to promise variants;
  * raw ≥ manual ≥ everything (manual localization ordering).
"""

import pytest

from benchmarks.conftest import bench_scale, write_figure
from repro.apps.gups import GupsConfig, run_gups
from repro.bench.harness import gups_grid
from repro.bench.report import export_gups_csv, format_gups_figure
from repro.runtime.config import Version

V0 = Version.V2021_3_0
VD, VE = Version.V2021_3_6_DEFER, Version.V2021_3_6_EAGER

MACHINE = "intel"


def _grid():
    s = bench_scale()
    return gups_grid(
        MACHINE,
        ranks=16,
        table_log2=12,
        updates_per_rank=96 * s,
        batch=32,
    )


def check_common_gups_shapes(grid):
    """Orderings common to Figures 5–7."""
    def t(var, ver):
        return grid[(var, ver)].solve_ns

    # raw is the upper bound; manual localization next
    assert t("raw", VE) <= t("manual", VE)
    assert t("manual", VE) <= t("rma_promise", VE)
    # 2021.3.0 never beats the 3.6 snapshot
    for var in ("rma_promise", "rma_future", "amo_promise", "amo_future"):
        assert t(var, V0) >= t(var, VD) * 0.999
    # eager never hurts
    for var in ("rma_promise", "rma_future", "amo_promise", "amo_future"):
        assert t(var, VE) <= t(var, VD)
    # manual localization is insensitive to the notification mode
    assert t("manual", VD) == pytest.approx(t("manual", VE), rel=1e-9)
    # with eager completion, futures get very close to promises
    assert t("rma_future", VE) == pytest.approx(
        t("rma_promise", VE), rel=0.2
    )
    assert t("amo_future", VE) == pytest.approx(
        t("amo_promise", VE), rel=0.2
    )
    # functional integrity: atomic variants exactly match the oracle
    assert grid[("amo_promise", VE)].matches_oracle
    assert grid[("amo_future", VD)].matches_oracle


def test_fig5_gups_intel(benchmark, figure_dir):
    grid = _grid()
    write_figure(
        figure_dir,
        "fig5_gups_intel.txt",
        format_gups_figure(
            "Figure 5: GUPS on Intel, 16 processes "
            "[giga-updates/sec of virtual time]",
            grid,
        ),
    )
    (figure_dir / "fig5_gups_intel.csv").write_text(
        export_gups_csv(grid)
    )
    check_common_gups_shapes(grid)

    def sp(var):
        return grid[(var, VD)].solve_ns / grid[(var, VE)].solve_ns

    assert 1.08 <= sp("rma_promise") <= 1.30  # paper: 1.15
    assert sp("amo_promise") < sp("rma_promise")  # paper: 1.01-1.04
    assert 1.8 <= sp("rma_future") <= 8.0  # between the quoted endpoints
    assert 1.25 <= sp("amo_future") <= 2.2  # paper: 1.5

    benchmark.pedantic(
        lambda: run_gups(
            GupsConfig(
                variant="rma_promise", table_log2=10,
                updates_per_rank=32, batch=16,
            ),
            ranks=4,
            version=VE,
            machine=MACHINE,
        ),
        rounds=3,
        iterations=1,
    )
