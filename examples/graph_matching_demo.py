#!/usr/bin/env python
"""Graph-matching demo: the paper's Figure 8 experiment at laptop scale.

Computes a half-approximate maximum-weight matching with the distributed
locally-dominant algorithm over UPC++-style RMA, across the five input
graphs and three library builds, and shows how the eager-notification
speedup tracks each graph's cross-rank edge fraction.

Usage::

    python examples/graph_matching_demo.py [ranks] [scale]
"""

import sys

from repro.apps.graphs import GRAPH_NAMES, make_graph
from repro.apps.matching import (
    MatchingConfig,
    matching_weight,
    run_matching,
    serial_matching,
)
from repro.bench.harness import graph_localities
from repro.bench.report import format_matching_figure
from repro.runtime.config import Version

V0 = Version.V2021_3_0
VD, VE = Version.V2021_3_6_DEFER, Version.V2021_3_6_EAGER


def main(ranks: int = 16, scale: int = 3) -> None:
    print(
        f"Distributed half-approx matching: {ranks} simulated processes, "
        f"scale {scale}\n"
    )
    loc = graph_localities(ranks=ranks, scale=scale)
    grid = {}
    for name in GRAPH_NAMES:
        cfg = MatchingConfig(graph=name, scale=scale)
        g = cfg.build_graph()
        ref = serial_matching(g)
        for v in (V0, VD, VE):
            r = run_matching(cfg, ranks=ranks, version=v, graph=g)
            grid[(name, v)] = r
            assert r.mate == ref, "distributed result must equal serial"
        opt_hint = matching_weight(g, ref)
        print(
            f"  {name:9s} n={g.n:6d} m={g.n_edges:6d} "
            f"weight={opt_hint:9.2f} rounds={r.rounds:2d} "
            f"msgs={r.cross_messages}"
        )
    print()
    print(
        format_matching_figure(
            f"Matching solve time, Intel, {ranks} processes [virtual ms]",
            grid,
            loc,
        )
    )
    print(
        "\nPaper (Figure 8): channel ~0%, venturi 2%, random 5%, "
        "delaunay 6%, youtube 11% —\nthe speedup follows the fraction of "
        "updates that target co-located processes."
    )


if __name__ == "__main__":
    ranks = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    scale = int(sys.argv[2]) if len(sys.argv) > 2 else 3
    main(ranks, scale)
