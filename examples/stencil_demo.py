#!/usr/bin/env python
"""Stencil demo: when eager notification does NOT matter.

Runs the Jacobi halo-exchange solver across the three builds and block
sizes, showing the complementary regime to GUPS: coarse-grained
communication amortizes the per-operation overhead that eager
notification removes, so the speedup fades as blocks grow.

Usage::

    python examples/stencil_demo.py [ranks]
"""

import sys

from repro.apps.stencil import StencilConfig, run_stencil
from repro.bench.report import format_table
from repro.runtime.config import Version

VD, VE = Version.V2021_3_6_DEFER, Version.V2021_3_6_EAGER


def main(ranks: int = 8) -> None:
    rows = []
    for n in (256, 1024, 4096):
        cfg = StencilConfig(n=n, iterations=10)
        td = run_stencil(cfg, ranks=ranks, version=VD, machine="intel")
        te = run_stencil(cfg, ranks=ranks, version=VE, machine="intel")
        assert td.matches_serial and te.matches_serial
        rows.append(
            [
                str(n),
                f"{td.solve_ns / 1e3:.1f}",
                f"{te.solve_ns / 1e3:.1f}",
                f"+{(td.solve_ns / te.solve_ns - 1) * 100:.1f}%",
            ]
        )
    print(
        format_table(
            f"Jacobi stencil, {ranks} ranks, 10 iterations (Intel profile)",
            ["cells", "defer us", "eager us", "eager gain"],
            rows,
        )
    )
    print(
        "\nCompare with GUPS (examples/gups_demo.py): the same eager\n"
        "machinery that wins 2-15x on fine-grained random access buys only\n"
        "a few percent here, because each halo exchange is two operations\n"
        "per iteration regardless of block size."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 8)
