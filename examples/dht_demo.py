#!/usr/bin/env python
"""Distributed hash table demo — an extension study beyond the paper.

Inserts and looks up keys in an RMA/atomics-based open-addressing DHT
(every operation is a handful of fine-grained on-node transfers), and
compares the three library builds: the same eager-notification effect the
paper demonstrates on GUPS shows up on this different fine-grained
application.

Usage::

    python examples/dht_demo.py [ranks] [inserts_per_rank]
"""

import sys

from repro.apps.dht import DhtConfig, run_dht
from repro.bench.report import format_table
from repro.runtime.config import Version

VERSIONS = (
    Version.V2021_3_0,
    Version.V2021_3_6_DEFER,
    Version.V2021_3_6_EAGER,
)


def main(ranks: int = 8, inserts: int = 64) -> None:
    log2_slots = 4
    while (1 << log2_slots) < 2 * ranks * inserts:
        log2_slots += 1
    cfg = DhtConfig(
        log2_slots=log2_slots,
        inserts_per_rank=inserts,
        finds_per_rank=inserts,
    )
    print(
        f"DHT: {ranks} ranks x {inserts} inserts+finds, "
        f"{1 << log2_slots} slots (load factor "
        f"{ranks * inserts / (1 << log2_slots):.2f})\n"
    )
    rows = []
    results = {}
    for v in VERSIONS:
        r = run_dht(cfg, ranks=ranks, version=v, machine="intel")
        results[v] = r
        rate = r.ops / r.solve_ns * 1e3  # mega-ops/s of virtual time
        rows.append([v.value, f"{r.solve_ns / 1e3:.1f}", f"{rate:.2f}",
                     str(r.correct)])
    print(
        format_table(
            "DHT insert+find throughput (Intel profile)",
            ["build", "solve us", "Mops/s", "correct"],
            rows,
        )
    )
    eager = results[Version.V2021_3_6_EAGER]
    defer = results[Version.V2021_3_6_DEFER]
    print(
        f"\neager vs defer speedup: "
        f"+{(defer.solve_ns / eager.solve_ns - 1) * 100:.0f}%"
    )
    print(f"lookups correct: {all(r.correct for r in results.values())}")


if __name__ == "__main__":
    ranks = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    inserts = int(sys.argv[2]) if len(sys.argv) > 2 else 64
    main(ranks, inserts)
