#!/usr/bin/env python
"""Quickstart: the UPC++-style API in five minutes.

Runs a 4-rank SPMD program exercising global pointers, RMA, futures,
promises, completions (including the paper's eager/deferred distinction),
atomics, and RPC — then prints what the eager build saved.

Usage::

    python examples/quickstart.py
"""

from repro import (
    AtomicDomain,
    Promise,
    Version,
    barrier,
    current_ctx,
    new_,
    new_array,
    operation_cx,
    rank_me,
    rank_n,
    rget,
    rpc,
    rput,
    when_all,
)
from repro.memory.global_ptr import GlobalPtr
from repro.runtime import spmd_run
from repro.sim.costmodel import CostAction


def main():
    me, n = rank_me(), rank_n()

    # -- shared-heap allocation and global pointers -----------------------
    # Every rank allocates a counter in its shared segment.  Allocation is
    # lock-step SPMD, so the offsets agree and pointers can be exchanged
    # by rank substitution (a dist_object would carry the same info).
    counter = new_("u64", 0)
    neighbors = [GlobalPtr(r, counter.offset, counter.ts) for r in range(n)]
    barrier()

    # -- one-sided RMA with future completion ------------------------------
    right = neighbors[(me + 1) % n]
    fut = rput(100 + me, right)  # write into my right neighbor
    fut.wait()
    barrier()
    got = rget(counter).wait()  # what my left neighbor wrote
    assert got == 100 + (me - 1) % n

    # -- promises: one allocation tracking many operations ----------------
    table = new_array("u64", 8)
    p = Promise()
    for i in range(8):
        rput(i * i, table + i, operation_cx.as_promise(p))
    p.finalize().wait()
    assert [table.local()[i] for i in range(8)] == [i * i for i in range(8)]

    # -- conjoining futures (the Figure 1 idiom) ---------------------------
    f = when_all(*(rput(1, table + i) for i in range(8)))
    f.wait()

    # -- atomics, including the new non-value fetching form ----------------
    # (a dedicated cell: the ring counters above may still be being read)
    hits = new_("u64", 0)
    barrier()
    ad = AtomicDomain({"fetch_add", "add"}, "u64")
    hits0 = GlobalPtr(0, hits.offset, hits.ts)
    old = ad.fetch_add(hits0, 1).wait()  # everyone bumps rank 0's cell
    result_slot = new_("u64")
    ad.fetch_add_into(hits0, 0, result_slot).wait()  # fetch into memory
    barrier()

    # -- RPC ---------------------------------------------------------------
    if me == 0:
        peer_rank = rpc(n - 1, rank_me).wait()
        assert peer_rank == n - 1
    barrier()

    # -- what did eager notification buy this rank? ------------------------
    ctx = current_ctx()
    return {
        "rank": me,
        "virtual_us": round(ctx.clock.now_ns / 1000, 1),
        "promise_cells_allocated": ctx.costs.count(
            CostAction.HEAP_ALLOC_PROMISE_CELL
        ),
        "deferred_dispatches": ctx.costs.count(
            CostAction.PROGRESS_DISPATCH
        ),
        "fetch_add_old_value": int(old),
    }


if __name__ == "__main__":
    for version in (Version.V2021_3_6_DEFER, Version.V2021_3_6_EAGER):
        print(f"== {version.value} ==")
        result = spmd_run(main, ranks=4, version=version, machine="intel")
        for row in result.values:
            print("  ", row)
    print(
        "\nNote how the eager build allocates far fewer internal promise "
        "cells\nand performs almost no deferred dispatches for the same "
        "program."
    )
