#!/usr/bin/env python
"""A tour of the completions mechanism (paper §II-A and §III-A).

Demonstrates, with running code, every notification kind the paper
discusses — futures, promises, LPCs, remote RPCs, source/operation
events — and the one observable semantic difference between deferred and
eager notification (the paper's Listing 1 / footnote 3).

Usage::

    python examples/completions_tour.py
"""

from repro import (
    Promise,
    Version,
    barrier,
    new_,
    new_array,
    operation_cx,
    progress,
    rank_me,
    remote_cx,
    rput,
    source_cx,
)
from repro.memory.global_ptr import GlobalPtr
from repro.runtime import spmd_run


def tour():
    me = rank_me()
    log = []

    gptr = new_("u64", 0)
    array = new_array("u64", 4, fill=1)
    barrier()
    peer = GlobalPtr((me + 1) % 2, gptr.offset, gptr.ts)

    # 1. The §II-A composition example: source future + remote RPC +
    #    operation future + operation promise, all on one put.
    prom = Promise()
    remote_hits = []
    src_fut, op_fut = rput(
        7,
        peer,
        source_cx.as_future()
        | remote_cx.as_rpc(lambda: remote_hits.append(rank_me()))
        | operation_cx.as_future()
        | operation_cx.as_promise(prom),
    )
    src_fut.wait()
    op_fut.wait()
    prom.finalize().wait()
    log.append("composed 4 completions on one rput")

    # 2. The Listing 1 semantic difference, observed directly:
    ran_during_then = []
    f2 = rput(1, peer).then(lambda: ran_during_then.append(True))
    eager_observed = bool(ran_during_then)
    f2.wait()
    log.append(
        "callback ran during .then()"
        if eager_observed
        else "callback deferred to wait()"
    )

    # 3. Explicit factories override the build default either way:
    assert not rput(2, peer, operation_cx.as_defer_future()).is_ready()
    progress()  # drain the deferred notification
    log.append("as_defer_future stayed non-ready at initiation")
    if rput(3, peer, operation_cx.as_eager_future()).is_ready():
        log.append("as_eager_future was ready at initiation")

    # 4. An LPC completion runs back on the initiator inside progress:
    lpc_ran = []
    rput(4, peer, operation_cx.as_lpc(lambda: lpc_ran.append(me)))
    progress()
    assert lpc_ran == [me]
    log.append("LPC completion ran in my own progress engine")

    barrier()
    progress()  # let the remote_cx RPC land everywhere
    barrier()
    return log, remote_hits


if __name__ == "__main__":
    for version in (Version.V2021_3_6_DEFER, Version.V2021_3_6_EAGER):
        print(f"== {version.value} ==")
        res = spmd_run(tour, ranks=2, version=version, machine="intel")
        for rank, (log, hits) in enumerate(res.values):
            print(f"  rank {rank}: remote-completion RPC hits: {hits}")
            for line in log:
                print(f"    - {line}")
