#!/usr/bin/env python
"""GUPS demo: the paper's Figure 5 experiment at laptop scale.

Runs the HPC Challenge RandomAccess benchmark in all six UPC++ variants
(§IV-B) on the Intel machine profile, across the three library builds,
and prints the figure as a table plus the prose quantities the paper
reports.

Usage::

    python examples/gups_demo.py [ranks] [updates_per_rank]
"""

import sys

from repro.bench.harness import gups_grid
from repro.bench.report import format_gups_figure
from repro.runtime.config import Version

VD, VE = Version.V2021_3_6_DEFER, Version.V2021_3_6_EAGER


def main(ranks: int = 16, updates: int = 96) -> None:
    print(
        f"Running GUPS: {ranks} simulated processes, "
        f"{updates} updates/rank, 6 variants x 3 builds ...\n"
    )
    grid = gups_grid(
        "intel",
        ranks=ranks,
        table_log2=12,
        updates_per_rank=updates,
        batch=32,
    )
    print(
        format_gups_figure(
            f"GUPS on Intel, {ranks} processes "
            "[giga-updates/sec of virtual time]",
            grid,
        )
    )

    def sp(var):
        return grid[(var, VD)].solve_ns / grid[(var, VE)].solve_ns

    print()
    print("Paper quantities (eager vs 2021.3.6-defer):")
    print(f"  pure RMA w/promises : +{(sp('rma_promise') - 1) * 100:.0f}%"
          "   (paper, Intel: +15%)")
    print(f"  atomics  w/promises : +{(sp('amo_promise') - 1) * 100:.0f}%"
          "    (paper, Intel: +1-4%)")
    print(f"  pure RMA w/futures  : {sp('rma_future'):.1f}x"
          "    (paper: 2.4x-13.5x across systems)")
    print(f"  atomics  w/futures  : {sp('amo_future'):.1f}x"
          "    (paper, Intel: 1.5x)")
    checks = all(
        grid[(v, ver)].matches_oracle
        for v in ("amo_promise", "amo_future", "raw", "manual")
        for ver in (VD, VE)
    )
    print(f"\nexact variants match the serial oracle: {checks}")


if __name__ == "__main__":
    ranks = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    updates = int(sys.argv[2]) if len(sys.argv) > 2 else 96
    main(ranks, updates)
