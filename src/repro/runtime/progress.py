"""The progress engine: deferred notifications, LPCs, and AM polling.

UPC++ requires "user-level progress" — the runtime only advances internal
state (delivers active messages, fires deferred completion notifications,
runs local procedure calls) inside calls to the progress engine: explicit
``progress()``, or implicitly ``future::wait()``, ``barrier()``, etc.

This module implements that engine for one rank.  Its single most important
queue, :attr:`ProgressEngine._deferred`, is the heart of the paper: under
*deferred* notification semantics, **every** asynchronous operation — even
one whose data movement finished synchronously via shared-memory bypass —
must push its completion notification here and pay the enqueue cost now and
the dispatch cost later, inside some progress call.  Eager notification
(Section III) is precisely the optimization of bypassing this queue when the
transfer completed synchronously.

With ``flags.progress_adaptive`` set, the drain loop is governed by an
:class:`~repro.runtime.adaptive_progress.AdaptiveProgressController`
(wired onto :attr:`RankContext.progress_ctl` by the world): each full poll
drains at most the controller's batch cap, provably-empty polls are elided
on the controller's cadence (charging ``PROGRESS_POLL_SKIP`` instead of a
full ``PROGRESS_POLL``), and the ``progress_max_age_ticks`` bound
guarantees no queued notification outlives its age budget — aged entries
are dispatched past the cap, and enqueue-time activity opportunistically
retires them.  With the flag off (the default) the engine is bit-identical
to the static drain-until-quiescent behaviour.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable

from repro.sim.costmodel import CostAction

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.adaptive_progress import AdaptiveProgressController
    from repro.runtime.context import RankContext

Thunk = Callable[[], None]


class ProgressEngine:
    """Per-rank progress queues and the drain loop."""

    __slots__ = ("_ctx", "_deferred", "_lpcs", "_in_progress", "_pollers")

    def __init__(self, ctx: "RankContext"):
        self._ctx = ctx
        #: (enqueue timestamp ns, thunk) — FIFO, so heads are oldest
        self._deferred: deque[tuple[float, Thunk]] = deque()
        self._lpcs: deque[tuple[float, Thunk]] = deque()
        self._in_progress = False
        #: callables polled on every progress call (the conduit registers
        #: its AM-delivery poll here); each returns True if it did work.
        self._pollers: list[Callable[[], bool]] = []

    # -- enqueue ----------------------------------------------------------

    def enqueue_deferred(self, thunk: Thunk) -> None:
        """Queue a deferred completion notification (charges enqueue cost)."""
        ctx = self._ctx
        ctl = ctx.progress_ctl
        if ctl is not None and not self._in_progress:
            # enqueueing is engine activity: retire notifications that the
            # batch cap left behind past their age bound (the progress-queue
            # analogue of the aggregator's flush-at-next-conduit-activity)
            self._drain_aged(ctx, ctl)
        ctx.charge(CostAction.PROGRESS_QUEUE_ENQUEUE)
        self._deferred.append((ctx.clock.now_ns, thunk))

    def enqueue_lpc(self, thunk: Thunk) -> None:
        """Queue a local procedure call for the next progress call."""
        ctx = self._ctx
        ctl = ctx.progress_ctl
        if ctl is not None and not self._in_progress:
            self._drain_aged(ctx, ctl)
        ctx.charge(CostAction.LPC_ENQUEUE)
        self._lpcs.append((ctx.clock.now_ns, thunk))

    def register_poller(self, poll: Callable[[], bool]) -> None:
        """Register a poll hook (e.g. conduit AM delivery)."""
        self._pollers.append(poll)

    # -- queries -----------------------------------------------------------

    def has_pending(self) -> bool:
        """Whether a progress call right now would do local work."""
        return bool(self._deferred) or bool(self._lpcs)

    def pending_deferred(self) -> int:
        return len(self._deferred)

    def oldest_pending_age_ns(self) -> float | None:
        """Age of the oldest queued thunk (None when both queues are empty).

        Both queues are FIFO with monotone enqueue stamps, so the heads are
        the oldest entries.  Exposed so the latency-guarantee invariant
        ("no entry outlives ``progress_max_age_ticks`` across engine
        activity") is externally checkable.
        """
        now = self._ctx.clock.now_ns
        ages = [now - q[0][0] for q in (self._deferred, self._lpcs) if q]
        return max(ages) if ages else None

    @property
    def in_progress(self) -> bool:
        """True while executing inside the progress engine (callbacks see
        this; re-entrant progress calls are no-ops, as in UPC++)."""
        return self._in_progress

    # -- the drain loop ---------------------------------------------------------

    def progress(self) -> bool:
        """One pass of user-level progress.

        Polls the conduit (delivering any arrived AMs), then drains the
        deferred-notification and LPC queues.  Notifications enqueued *by*
        callbacks during the drain are also executed (the loop runs until
        quiescent), matching UPC++'s drain-until-empty behavior.  Under
        ``progress_adaptive`` the drain is capped per poll (aged entries
        excepted) and provably-empty polls may be elided — see
        :mod:`repro.runtime.adaptive_progress`.

        Returns True if any work was performed.  Re-entrant calls (progress
        from inside a callback) return False immediately.
        """
        if self._in_progress:
            return False
        ctx = self._ctx
        ctl = ctx.progress_ctl
        if ctl is not None:
            return self._progress_adaptive(ctx, ctl)
        ctx.charge(CostAction.PROGRESS_POLL)
        self._in_progress = True
        did_work = False
        obs = ctx.obs
        if obs is not None:
            obs.on_progress_enter(len(self._deferred), ctx.clock.now_ns)
        dispatched = 0
        try:
            # publish destination-batched AMs before doing anything else:
            # progress entry is a flush point (covers barrier()/wait() too,
            # which drive their waits through this method)
            if ctx.flush_aggregation(reason="progress_entry"):
                did_work = True
            for poll in self._pollers:
                if poll():
                    did_work = True
            while self._deferred or self._lpcs:
                while self._deferred:
                    _, thunk = self._deferred.popleft()
                    ctx.charge(CostAction.PROGRESS_DISPATCH)
                    thunk()
                    did_work = True
                    dispatched += 1
                while self._lpcs:
                    _, lpc = self._lpcs.popleft()
                    ctx.charge(CostAction.PROGRESS_DISPATCH)
                    lpc()
                    did_work = True
                    dispatched += 1
                # callbacks may have triggered AM sends back to ourselves
                for poll in self._pollers:
                    if poll():
                        did_work = True
            # handlers run during the drain may have buffered new
            # aggregatable AMs; flush before returning so nothing is
            # stranded while this rank blocks (e.g. inside a barrier)
            if ctx.flush_aggregation(reason="progress_exit"):
                did_work = True
        finally:
            self._in_progress = False
        if obs is not None:
            obs.on_progress_drained(dispatched)
        return did_work

    # -- adaptive drain ----------------------------------------------------

    def _can_elide(self, ctx: "RankContext") -> bool:
        """Whether a poll right now provably has nothing to do: no queued
        thunks, no arrived AMs, no parked aggregation.  (Custom pollers
        beyond the conduit's must not rely on elided polls; the runtime
        registers only the conduit poll, whose work is exactly
        ``conduit.has_incoming``.)"""
        if self._deferred or self._lpcs:
            return False
        conduit = ctx.conduit
        if conduit is not None and conduit.has_incoming(ctx.rank):
            return False
        agg = ctx.am_agg
        return agg is None or not agg.has_pending()

    def _progress_adaptive(
        self, ctx: "RankContext", ctl: "AdaptiveProgressController"
    ) -> bool:
        if ctl.may_skip() and self._can_elide(ctx):
            ctx.charge(CostAction.PROGRESS_POLL_SKIP)
            ctl.on_skip()
            return False
        ctx.charge(CostAction.PROGRESS_POLL)
        ctx.charge(CostAction.PROGRESS_ADAPT)
        self._in_progress = True
        did_work = False
        obs = ctx.obs
        if obs is not None:
            obs.on_progress_enter(len(self._deferred), ctx.clock.now_ns)
        cap = ctl.on_poll(len(self._deferred))
        max_age = ctl.max_age_ns
        dispatched = 0
        try:
            if ctx.flush_aggregation(reason="progress_entry"):
                did_work = True
            for poll in self._pollers:
                if poll():
                    did_work = True
            while self._deferred or self._lpcs:
                if dispatched >= cap:
                    # cap reached: only heads past their age budget may
                    # still go; check BOTH queues (a fresh deferred head
                    # must not mask an aged LPC behind it)
                    now = ctx.clock.now_ns
                    if self._deferred and now - self._deferred[0][0] >= max_age:
                        queue = self._deferred
                    elif self._lpcs and now - self._lpcs[0][0] >= max_age:
                        queue = self._lpcs
                    else:
                        # leave the remainder for the next poll
                        break
                else:
                    queue = self._deferred if self._deferred else self._lpcs
                _, thunk = queue.popleft()
                ctx.charge(CostAction.PROGRESS_DISPATCH)
                thunk()
                did_work = True
                dispatched += 1
                if not self._deferred and not self._lpcs:
                    # callbacks may have triggered AM sends back to ourselves
                    for poll in self._pollers:
                        if poll():
                            did_work = True
            if ctx.flush_aggregation(reason="progress_exit"):
                did_work = True
        finally:
            self._in_progress = False
        ctl.on_drained(
            ctx.clock.now_ns,
            dispatched,
            len(self._deferred) + len(self._lpcs),
            did_work,
        )
        if obs is not None:
            obs.on_progress_drained(dispatched)
        return did_work

    def _drain_aged(
        self, ctx: "RankContext", ctl: "AdaptiveProgressController"
    ) -> None:
        """Dispatch queue heads that outlived ``progress_max_age_ticks``.

        Called from enqueue-time engine activity (never re-entrantly): a
        rank that keeps issuing without polling would otherwise strand its
        earlier deferred notifications past the latency guarantee.  New
        enqueues during the drain carry fresh stamps, so the loop
        terminates as soon as a head is inside its budget.
        """
        max_age = ctl.max_age_ns
        now = ctx.clock.now_ns
        if not (
            (self._deferred and now - self._deferred[0][0] >= max_age)
            or (self._lpcs and now - self._lpcs[0][0] >= max_age)
        ):
            return
        # the mini-drain is a (partial) pass of the engine: model it as one
        ctx.charge(CostAction.PROGRESS_POLL)
        self._in_progress = True
        dispatched = 0
        try:
            while True:
                now = ctx.clock.now_ns
                if self._deferred and now - self._deferred[0][0] >= max_age:
                    queue = self._deferred
                elif self._lpcs and now - self._lpcs[0][0] >= max_age:
                    queue = self._lpcs
                else:
                    break
                _, thunk = queue.popleft()
                ctx.charge(CostAction.PROGRESS_DISPATCH)
                thunk()
                dispatched += 1
        finally:
            self._in_progress = False
        ctl.on_aged_drain(dispatched)
