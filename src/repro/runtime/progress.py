"""The progress engine: deferred notifications, LPCs, and AM polling.

UPC++ requires "user-level progress" — the runtime only advances internal
state (delivers active messages, fires deferred completion notifications,
runs local procedure calls) inside calls to the progress engine: explicit
``progress()``, or implicitly ``future::wait()``, ``barrier()``, etc.

This module implements that engine for one rank.  Its single most important
queue, :attr:`ProgressEngine._deferred`, is the heart of the paper: under
*deferred* notification semantics, **every** asynchronous operation — even
one whose data movement finished synchronously via shared-memory bypass —
must push its completion notification here and pay the enqueue cost now and
the dispatch cost later, inside some progress call.  Eager notification
(Section III) is precisely the optimization of bypassing this queue when the
transfer completed synchronously.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable

from repro.sim.costmodel import CostAction

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.context import RankContext

Thunk = Callable[[], None]


class ProgressEngine:
    """Per-rank progress queues and the drain loop."""

    __slots__ = ("_ctx", "_deferred", "_lpcs", "_in_progress", "_pollers")

    def __init__(self, ctx: "RankContext"):
        self._ctx = ctx
        self._deferred: deque[Thunk] = deque()
        self._lpcs: deque[Thunk] = deque()
        self._in_progress = False
        #: callables polled on every progress call (the conduit registers
        #: its AM-delivery poll here); each returns True if it did work.
        self._pollers: list[Callable[[], bool]] = []

    # -- enqueue ----------------------------------------------------------

    def enqueue_deferred(self, thunk: Thunk) -> None:
        """Queue a deferred completion notification (charges enqueue cost)."""
        self._ctx.charge(CostAction.PROGRESS_QUEUE_ENQUEUE)
        self._deferred.append(thunk)

    def enqueue_lpc(self, thunk: Thunk) -> None:
        """Queue a local procedure call for the next progress call."""
        self._ctx.charge(CostAction.LPC_ENQUEUE)
        self._lpcs.append(thunk)

    def register_poller(self, poll: Callable[[], bool]) -> None:
        """Register a poll hook (e.g. conduit AM delivery)."""
        self._pollers.append(poll)

    # -- queries -----------------------------------------------------------

    def has_pending(self) -> bool:
        """Whether a progress call right now would do local work."""
        return bool(self._deferred) or bool(self._lpcs)

    def pending_deferred(self) -> int:
        return len(self._deferred)

    @property
    def in_progress(self) -> bool:
        """True while executing inside the progress engine (callbacks see
        this; re-entrant progress calls are no-ops, as in UPC++)."""
        return self._in_progress

    # -- the drain loop ---------------------------------------------------------

    def progress(self) -> bool:
        """One pass of user-level progress.

        Polls the conduit (delivering any arrived AMs), then drains the
        deferred-notification and LPC queues.  Notifications enqueued *by*
        callbacks during the drain are also executed (the loop runs until
        quiescent), matching UPC++'s drain-until-empty behavior.

        Returns True if any work was performed.  Re-entrant calls (progress
        from inside a callback) return False immediately.
        """
        if self._in_progress:
            return False
        ctx = self._ctx
        ctx.charge(CostAction.PROGRESS_POLL)
        self._in_progress = True
        did_work = False
        obs = ctx.obs
        if obs is not None:
            obs.on_progress_enter(len(self._deferred), ctx.clock.now_ns)
        dispatched = 0
        try:
            # publish destination-batched AMs before doing anything else:
            # progress entry is a flush point (covers barrier()/wait() too,
            # which drive their waits through this method)
            if ctx.flush_aggregation(reason="progress_entry"):
                did_work = True
            for poll in self._pollers:
                if poll():
                    did_work = True
            while self._deferred or self._lpcs:
                while self._deferred:
                    thunk = self._deferred.popleft()
                    ctx.charge(CostAction.PROGRESS_DISPATCH)
                    thunk()
                    did_work = True
                    dispatched += 1
                while self._lpcs:
                    lpc = self._lpcs.popleft()
                    ctx.charge(CostAction.PROGRESS_DISPATCH)
                    lpc()
                    did_work = True
                    dispatched += 1
                # callbacks may have triggered AM sends back to ourselves
                for poll in self._pollers:
                    if poll():
                        did_work = True
            # handlers run during the drain may have buffered new
            # aggregatable AMs; flush before returning so nothing is
            # stranded while this rank blocks (e.g. inside a barrier)
            if ctx.flush_aggregation(reason="progress_exit"):
                did_work = True
        finally:
            self._in_progress = False
        if obs is not None:
            obs.on_progress_drained(dispatched)
        return did_work
