"""The progress engine: deferred notifications, LPCs, and AM polling.

UPC++ requires "user-level progress" — the runtime only advances internal
state (delivers active messages, fires deferred completion notifications,
runs local procedure calls) inside calls to the progress engine: explicit
``progress()``, or implicitly ``future::wait()``, ``barrier()``, etc.

This module implements that engine for one rank.  Its single most important
queue, :attr:`ProgressEngine._deferred`, is the heart of the paper: under
*deferred* notification semantics, **every** asynchronous operation — even
one whose data movement finished synchronously via shared-memory bypass —
must push its completion notification here and pay the enqueue cost now and
the dispatch cost later, inside some progress call.  Eager notification
(Section III) is precisely the optimization of bypassing this queue when the
transfer completed synchronously.

With ``flags.progress_adaptive`` set, the drain loop is governed by an
:class:`~repro.runtime.adaptive_progress.AdaptiveProgressController`
(wired onto :attr:`RankContext.progress_ctl` by the world): each full poll
drains at most the controller's batch cap, provably-empty polls are elided
on the controller's cadence (charging ``PROGRESS_POLL_SKIP`` instead of a
full ``PROGRESS_POLL``), and the ``progress_max_age_ticks`` bound
guarantees no queued notification outlives its age budget — aged entries
are dispatched past the cap, and enqueue-time activity opportunistically
retires them.  With the flag off (the default) the engine is bit-identical
to the static drain-until-quiescent behaviour.

With ``flags.wait_hints`` set, a blocking wait additionally publishes a
:class:`~repro.runtime.wait_hints.WaitTarget` on the context, and each
poll starts with a *targeted drain*: one ``PROGRESS_HINT_SCAN``-charged
scan removes every queued thunk that resolves the awaited cell — wherever
it sits in the queue — and dispatches it ahead of the batch cap.  The
capped FIFO drain then proceeds unchanged over the remainder, so the
hint only reorders dispatch within the wait; nothing is dropped or run
twice, and queue-age accounting stays valid because removals never
reorder the survivors (FIFO stamps stay monotone).  While a targeted
wait is active the entry/exit aggregation flushes narrow to the awaited
destination (plus near-full ride-alongs and aged buffers) — see
:meth:`repro.gasnet.aggregator.AmAggregator.flush_for_wait`.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable

from repro.sim.costmodel import CostAction

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.adaptive_progress import AdaptiveProgressController
    from repro.runtime.context import RankContext

Thunk = Callable[[], None]


class ProgressEngine:
    """Per-rank progress queues and the drain loop."""

    __slots__ = ("_ctx", "_deferred", "_lpcs", "_in_progress", "_pollers")

    def __init__(self, ctx: "RankContext"):
        self._ctx = ctx
        #: (enqueue timestamp ns, thunk, cell-or-None) — FIFO, so heads
        #: are oldest; the cell is the promise cell the thunk resolves
        #: (when the enqueuer knows it), matched by targeted drains
        self._deferred: deque[tuple[float, Thunk, object]] = deque()
        self._lpcs: deque[tuple[float, Thunk, object]] = deque()
        self._in_progress = False
        #: callables polled on every progress call (the conduit registers
        #: its AM-delivery poll here); each returns True if it did work.
        self._pollers: list[Callable[[], bool]] = []

    # -- enqueue ----------------------------------------------------------

    def enqueue_deferred(self, thunk: Thunk, cell: object = None) -> None:
        """Queue a deferred completion notification (charges enqueue cost).

        ``cell`` optionally names the promise cell ``thunk`` resolves, so
        a targeted drain (``wait_hints``) can find the entries an active
        wait is blocked on; ``None`` (the default) makes the entry
        invisible to targeting — it simply waits its FIFO turn.
        """
        ctx = self._ctx
        ctl = ctx.progress_ctl
        if ctl is not None and not self._in_progress:
            # enqueueing is engine activity: retire notifications that the
            # batch cap left behind past their age bound (the progress-queue
            # analogue of the aggregator's flush-at-next-conduit-activity)
            self._drain_aged(ctx, ctl)
        ctx.charge(CostAction.PROGRESS_QUEUE_ENQUEUE)
        self._deferred.append((ctx.clock.now_ns, thunk, cell))

    def enqueue_lpc(self, thunk: Thunk, cell: object = None) -> None:
        """Queue a local procedure call for the next progress call."""
        ctx = self._ctx
        ctl = ctx.progress_ctl
        if ctl is not None and not self._in_progress:
            self._drain_aged(ctx, ctl)
        ctx.charge(CostAction.LPC_ENQUEUE)
        self._lpcs.append((ctx.clock.now_ns, thunk, cell))

    def register_poller(self, poll: Callable[[], bool]) -> None:
        """Register a poll hook (e.g. conduit AM delivery)."""
        self._pollers.append(poll)

    # -- queries -----------------------------------------------------------

    def has_pending(self) -> bool:
        """Whether a progress call right now would do local work."""
        return bool(self._deferred) or bool(self._lpcs)

    def pending_deferred(self) -> int:
        return len(self._deferred)

    def oldest_pending_age_ns(self) -> float | None:
        """Age of the oldest queued thunk (None when both queues are empty).

        Both queues are FIFO with monotone enqueue stamps, so the heads are
        the oldest entries.  Exposed so the latency-guarantee invariant
        ("no entry outlives ``progress_max_age_ticks`` across engine
        activity") is externally checkable.
        """
        now = self._ctx.clock.now_ns
        ages = [now - q[0][0] for q in (self._deferred, self._lpcs) if q]
        return max(ages) if ages else None

    @property
    def in_progress(self) -> bool:
        """True while executing inside the progress engine (callbacks see
        this; re-entrant progress calls are no-ops, as in UPC++)."""
        return self._in_progress

    # -- the drain loop ---------------------------------------------------------

    def progress(self) -> bool:
        """One pass of user-level progress.

        Polls the conduit (delivering any arrived AMs), then drains the
        deferred-notification and LPC queues.  Notifications enqueued *by*
        callbacks during the drain are also executed (the loop runs until
        quiescent), matching UPC++'s drain-until-empty behavior.  Under
        ``progress_adaptive`` the drain is capped per poll (aged entries
        excepted) and provably-empty polls may be elided — see
        :mod:`repro.runtime.adaptive_progress`.

        Returns True if any work was performed.  Re-entrant calls (progress
        from inside a callback) return False immediately.
        """
        if self._in_progress:
            return False
        ctx = self._ctx
        ctl = ctx.progress_ctl
        if ctl is not None:
            return self._progress_adaptive(ctx, ctl)
        ctx.charge(CostAction.PROGRESS_POLL)
        self._in_progress = True
        did_work = False
        obs = ctx.obs
        if obs is not None:
            obs.on_progress_enter(len(self._deferred), ctx.clock.now_ns)
        target = ctx.active_wait_target
        dispatched = 0
        try:
            # publish destination-batched AMs before doing anything else:
            # progress entry is a flush point (covers barrier()/wait() too,
            # which drive their waits through this method); a targeted wait
            # narrows the flush to the awaited destination + ride-alongs
            if self._flush_for_progress(ctx, target, "progress_entry"):
                did_work = True
            for poll in self._pollers:
                if poll():
                    did_work = True
            if target is not None and target.cell is not None:
                # the awaited entries jump the FIFO; the static drain below
                # retires everything else in this same poll regardless
                n = self._drain_targeted(ctx, target.cell)
                if n:
                    did_work = True
                    dispatched += n
            while self._deferred or self._lpcs:
                while self._deferred:
                    thunk = self._deferred.popleft()[1]
                    ctx.charge(CostAction.PROGRESS_DISPATCH)
                    thunk()
                    did_work = True
                    dispatched += 1
                while self._lpcs:
                    lpc = self._lpcs.popleft()[1]
                    ctx.charge(CostAction.PROGRESS_DISPATCH)
                    lpc()
                    did_work = True
                    dispatched += 1
                # callbacks may have triggered AM sends back to ourselves
                for poll in self._pollers:
                    if poll():
                        did_work = True
            # handlers run during the drain may have buffered new
            # aggregatable AMs; flush before returning so nothing is
            # stranded while this rank blocks (e.g. inside a barrier)
            if self._flush_for_progress(ctx, target, "progress_exit"):
                did_work = True
        finally:
            self._in_progress = False
        if obs is not None:
            obs.on_progress_drained(dispatched)
        return did_work

    # -- adaptive drain ----------------------------------------------------

    def _can_elide(self, ctx: "RankContext") -> bool:
        """Whether a poll right now provably has nothing to do: no queued
        thunks, no arrived AMs, no parked aggregation.  (Custom pollers
        beyond the conduit's must not rely on elided polls; the runtime
        registers only the conduit poll, whose work is exactly
        ``conduit.has_incoming``.)"""
        if self._deferred or self._lpcs:
            return False
        conduit = ctx.conduit
        if conduit is not None and conduit.has_incoming(ctx.rank):
            return False
        agg = ctx.am_agg
        return agg is None or not agg.has_pending()

    def _progress_adaptive(
        self, ctx: "RankContext", ctl: "AdaptiveProgressController"
    ) -> bool:
        if ctl.may_skip() and self._can_elide(ctx):
            ctx.charge(CostAction.PROGRESS_POLL_SKIP)
            ctl.on_skip()
            return False
        ctx.charge(CostAction.PROGRESS_POLL)
        ctx.charge(CostAction.PROGRESS_ADAPT)
        self._in_progress = True
        did_work = False
        obs = ctx.obs
        if obs is not None:
            obs.on_progress_enter(len(self._deferred), ctx.clock.now_ns)
        target = ctx.active_wait_target
        cap = ctl.on_poll(len(self._deferred))
        max_age = ctl.max_age_ns
        dispatched = 0
        hinted = 0
        try:
            if self._flush_for_progress(ctx, target, "progress_entry"):
                did_work = True
            for poll in self._pollers:
                if poll():
                    did_work = True
            if target is not None and target.cell is not None:
                # dispatch what the caller is blocked on ahead of (and not
                # counted against) the batch cap — the whole point of the
                # hint: the awaited completion must not wait ceil(depth/cap)
                # polls for its FIFO turn
                hinted = self._drain_targeted(ctx, target.cell)
                if hinted:
                    did_work = True
                    ctl.on_hinted(hinted)
            while self._deferred or self._lpcs:
                if dispatched >= cap:
                    # cap reached: only heads past their age budget may
                    # still go; check BOTH queues (a fresh deferred head
                    # must not mask an aged LPC behind it)
                    now = ctx.clock.now_ns
                    if self._deferred and now - self._deferred[0][0] >= max_age:
                        queue = self._deferred
                    elif self._lpcs and now - self._lpcs[0][0] >= max_age:
                        queue = self._lpcs
                    else:
                        # leave the remainder for the next poll
                        break
                else:
                    queue = self._deferred if self._deferred else self._lpcs
                thunk = queue.popleft()[1]
                ctx.charge(CostAction.PROGRESS_DISPATCH)
                thunk()
                did_work = True
                dispatched += 1
                if not self._deferred and not self._lpcs:
                    # callbacks may have triggered AM sends back to ourselves
                    for poll in self._pollers:
                        if poll():
                            did_work = True
            if self._flush_for_progress(ctx, target, "progress_exit"):
                did_work = True
        finally:
            self._in_progress = False
        ctl.on_drained(
            ctx.clock.now_ns,
            dispatched,
            len(self._deferred) + len(self._lpcs),
            did_work,
        )
        if obs is not None:
            obs.on_progress_drained(dispatched + hinted)
        return did_work

    def _drain_aged(
        self, ctx: "RankContext", ctl: "AdaptiveProgressController"
    ) -> None:
        """Dispatch queue heads that outlived ``progress_max_age_ticks``.

        Called from enqueue-time engine activity (never re-entrantly): a
        rank that keeps issuing without polling would otherwise strand its
        earlier deferred notifications past the latency guarantee.  New
        enqueues during the drain carry fresh stamps, so the loop
        terminates as soon as a head is inside its budget.
        """
        max_age = ctl.max_age_ns
        now = ctx.clock.now_ns
        if not (
            (self._deferred and now - self._deferred[0][0] >= max_age)
            or (self._lpcs and now - self._lpcs[0][0] >= max_age)
        ):
            return
        # the mini-drain is a (partial) pass of the engine: model it as one
        ctx.charge(CostAction.PROGRESS_POLL)
        self._in_progress = True
        dispatched = 0
        try:
            while True:
                now = ctx.clock.now_ns
                if self._deferred and now - self._deferred[0][0] >= max_age:
                    queue = self._deferred
                elif self._lpcs and now - self._lpcs[0][0] >= max_age:
                    queue = self._lpcs
                else:
                    break
                thunk = queue.popleft()[1]
                ctx.charge(CostAction.PROGRESS_DISPATCH)
                thunk()
                dispatched += 1
        finally:
            self._in_progress = False
        ctl.on_aged_drain(dispatched)

    # -- targeted drain (wait hints) ---------------------------------------

    def _drain_targeted(self, ctx: "RankContext", cell: object) -> int:
        """Dispatch every queued thunk that resolves ``cell``, wherever it
        sits in either queue.

        One ``PROGRESS_HINT_SCAN`` models the scan; each match is charged
        the normal ``PROGRESS_DISPATCH``.  Matches are removed *before*
        any of them runs — their callbacks may enqueue new entries (e.g.
        ``then`` chains), which must land behind the surviving FIFO, not
        be swept up mid-rebuild.  Removal preserves the survivors' order,
        so both queues stay FIFO with monotone stamps and the age
        accounting (``oldest_pending_age_ns``) remains valid.  Only
        called between ``_in_progress = True``/``False`` of a poll.
        """
        ctx.charge(CostAction.PROGRESS_HINT_SCAN)
        matched: list[Thunk] = []
        for name in ("_deferred", "_lpcs"):
            queue = getattr(self, name)
            if not queue:
                continue
            if not any(entry[2] is cell for entry in queue):
                continue
            kept = deque(entry for entry in queue if entry[2] is not cell)
            matched.extend(
                entry[1] for entry in queue if entry[2] is cell
            )
            setattr(self, name, kept)
        for thunk in matched:
            ctx.charge(CostAction.PROGRESS_DISPATCH)
            thunk()
        return len(matched)

    def _flush_for_progress(self, ctx: "RankContext", target, reason: str):
        """The poll's aggregation flush, narrowed by an active wait target.

        Without a target (or with a non-targeted one — a barrier is
        blocked on everything) this is exactly the pre-existing
        ``flush_aggregation``: every buffer ships.  With a targeted wait
        active, only the awaited destination, near-full ride-alongs and
        aged buffers ship — sparse buffers keep batching while the
        caller spins, and the wait loop itself flushes everything before
        actually blocking (see ``Future._wait_hinted``), so nothing can
        be stranded.
        """
        if target is None or not target.targeted:
            return ctx.flush_aggregation(reason=reason)
        agg = ctx.am_agg
        if agg is not None and agg.has_pending():
            dsts = target.flush_dsts
            if len(dsts) > 1:
                # a counter wait: every member destination is awaited, so
                # each gets the targeted-flush treatment (ride-alongs and
                # age flushes are handled inside the first call; the rest
                # only ship their own buffer if still pending)
                return sum(agg.flush_for_wait(d) for d in dsts)
            return agg.flush_for_wait(dsts[0] if dsts else None)
        return 0
