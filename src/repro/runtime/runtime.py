"""World construction and the SPMD driver.

:func:`spmd_run` is the reproduction's analogue of launching a UPC++ job:
it builds a :class:`World` (segments, conduit, per-rank contexts, the
shared ready cell), runs the supplied function on every rank — one thread
per rank under the cooperative scheduler, or all ranks on the calling
thread when ``FeatureFlags.sched_event_loop`` selects the event-loop
substrate — and returns the per-rank results together with the world
(whose virtual clocks and cost counters the benchmarks read).

Example
-------
::

    from repro import rank_me, rank_n, barrier
    from repro.runtime import spmd_run

    def hello():
        barrier()
        return rank_me() * 10

    result = spmd_run(hello, ranks=4)
    assert result.values == [0, 10, 20, 30]
"""

from __future__ import annotations

import logging
import threading
from dataclasses import dataclass, field
from types import GeneratorType
from typing import Any, Callable, Optional, Sequence

from repro.core.cell import PromiseCell
from repro.errors import UpcxxError
from repro.gasnet.aggregator import AmAggregator
from repro.gasnet.conduit import Conduit, make_conduit
from repro.gasnet.team import Team
from repro.memory.allocator import SharedAllocator
from repro.memory.segment import Segment
from repro.obs import ObsState
from repro.runtime.adaptive_progress import AdaptiveProgressController
from repro.runtime.config import RuntimeConfig, Version
from repro.runtime.context import RankContext, set_current_ctx
from repro.runtime.event_loop import EventLoopScheduler
from repro.runtime.scheduler import CooperativeScheduler
from repro.runtime.switchpoints import BlockUntil, run_blocking
from repro.sim.costmodel import CostAction
from repro.sim.machines import MachineProfile, profile_by_name

_DEFAULT_SEGMENT_BYTES = 1 << 20


class World:
    """All shared state of one simulated job."""

    def __init__(
        self,
        config: RuntimeConfig,
        ranks: int = 1,
        n_nodes: int = 1,
        segment_bytes: int = _DEFAULT_SEGMENT_BYTES,
    ):
        if ranks < 1:
            raise UpcxxError("world needs at least one rank")
        if n_nodes < 1 or ranks % n_nodes != 0:
            raise UpcxxError(
                "ranks must divide evenly across nodes "
                f"(ranks={ranks}, nodes={n_nodes})"
            )
        self.config = config
        self.size = ranks
        self.n_nodes = n_nodes
        self.ranks_per_node = ranks // n_nodes
        self.profile: MachineProfile = profile_by_name(config.machine)
        self.conduit_name = config.conduit
        #: the pre-allocated shared ready cell for value-less future<>
        self.shared_ready_cell = PromiseCell(nvalues=0, deps=0, shared=True)

        self.segments = [Segment(r, segment_bytes) for r in range(ranks)]
        self.allocators = [SharedAllocator(s) for s in self.segments]
        self.contexts = [
            RankContext(r, self, config, self.profile) for r in range(ranks)
        ]
        self.conduit: Conduit = make_conduit(config.conduit, self)
        for ctx in self.contexts:
            ctx.segment = self.segments[ctx.rank]
            ctx.allocator = self.allocators[ctx.rank]
            ctx.conduit = self.conduit
            if ctx.flags.am_aggregation:
                ctx.am_agg = AmAggregator(ctx)
            if ctx.flags.obs_spans:
                ctx.obs = ObsState(ctx)
            if ctx.flags.progress_adaptive:
                ctx.progress_ctl = AdaptiveProgressController(ctx.flags)
            ctx.progress_engine.register_poller(
                lambda c=ctx: self.conduit.poll(c)
            )

        #: total rank-to-rank switches the driving scheduler performed
        #: (filled in by spmd_run after the job completes)
        self.sched_switches = 0

        #: the driving scheduler (either substrate), wired through
        #: :meth:`attach_scheduler` by whichever driver runs this world —
        #: ``spmd_run``, or :meth:`EventLoopScheduler.run
        #: <repro.runtime.event_loop.EventLoopScheduler.run>` for
        #: nested/ambient worlds driven directly — so completion sites
        #: (conduit inbox pushes, the barrier epoch advance) can notify
        #: parked wake-list waiters; None for a world nobody drives
        #: (a world without a scheduler never parks anyone)
        self.scheduler = None
        #: wake notifications that found no attached scheduler — the
        #: observable form of the old silent fallback: the event is
        #: dropped and any would-be waiter relies on the predicate scan
        #: (see :meth:`notify_incoming` / :meth:`notify_barrier_epoch`)
        self.wake_notify_misses = 0
        self._wake_miss_noted = False

        # barrier state
        self._barrier_epoch = 0
        self._barrier_arrived = 0
        self._barrier_maxclock = 0.0
        self._barrier_release_ns = 0.0

    # -- wake fabric ---------------------------------------------------------

    def attach_scheduler(self, sched) -> None:
        """Wire ``sched`` as this world's wake fabric.

        Completion sites (conduit inbox pushes, barrier epoch advances)
        notify the attached scheduler, every rank context routes its
        blocking primitives through it, and the scheduler learns it has a
        wake source (keyed blocks may park on wake bits).  Every driver
        calls this — :func:`spmd_run` for both substrates *and*
        :meth:`EventLoopScheduler.run
        <repro.runtime.event_loop.EventLoopScheduler.run>` itself — so a
        nested or ambient world driven directly gets wake-list scheduling,
        not just the world ``spmd_run`` launched.  Idempotent for the same
        scheduler; a world is driven by at most one scheduler at a time.
        """
        if self.scheduler is sched:
            return
        if self.scheduler is not None:
            raise UpcxxError(
                "world already has a driving scheduler attached"
            )
        self.scheduler = sched
        for ctx in self.contexts:
            ctx.scheduler = sched
        sched.bind_wake_source(self)

    def notify_incoming(self, rank: int) -> None:
        """An AM landed in ``rank``'s inbox: wake it if it is parked on a
        wake list.  With no scheduler attached the event is counted as a
        miss (plus a one-time debug note) instead of vanishing silently —
        any waiter then relies on the predicate scan."""
        sched = self.scheduler
        if sched is not None:
            sched.notify_incoming(rank)
        else:
            self._note_wake_miss()

    def notify_barrier_epoch(self) -> None:
        """The barrier epoch advanced: wake every parked barrier waiter
        (same no-scheduler miss accounting as :meth:`notify_incoming`)."""
        sched = self.scheduler
        if sched is not None:
            sched.notify_barrier_epoch()
        else:
            self._note_wake_miss()

    def _note_wake_miss(self) -> None:
        # a single-rank world cannot have a parked waiter when an event
        # fires (the only rank is the one running), so only multi-rank
        # worlds count misses — the case where a waiter could exist
        if self.size <= 1:
            return
        self.wake_notify_misses += 1
        if not self._wake_miss_noted:
            self._wake_miss_noted = True
            logging.getLogger(__name__).debug(
                "wake notification on a world with no attached scheduler; "
                "waiters (if any) fall back to the predicate scan "
                "(counted in World.wake_notify_misses)"
            )

    # -- topology ----------------------------------------------------------

    def node_of(self, rank: int) -> int:
        if not (0 <= rank < self.size):
            raise UpcxxError(f"rank {rank} out of range (size {self.size})")
        return rank // self.ranks_per_node

    def same_node(self, a: int, b: int) -> bool:
        return self.node_of(a) == self.node_of(b)

    def segment_of(self, rank: int) -> Segment:
        return self.segments[rank]

    # -- teams --------------------------------------------------------------

    def world_team(self) -> Team:
        return Team(range(self.size))

    def local_team(self, ctx: RankContext) -> Team:
        node = self.node_of(ctx.rank)
        return Team(
            [r for r in range(self.size) if self.node_of(r) == node]
        )

    # -- barrier -------------------------------------------------------------

    def barrier(self, ctx: RankContext) -> None:
        """Rendezvous of all ranks; clocks synchronize to the latest
        arrival plus the barrier cost.  Provides user-level progress while
        waiting (as ``upcxx::barrier`` does)."""
        run_blocking(ctx, self.barrier_gen(ctx))

    def barrier_gen(self, ctx: RankContext):
        """Generator form of :meth:`barrier` for continuation rank bodies
        (``yield from world.barrier_gen(ctx)``): yields switch commands
        instead of calling the blocking primitives, so the event-loop
        scheduler interprets the waits in place.  :meth:`barrier` drives
        this same generator through ``run_blocking`` — one implementation,
        identical charge sequence on both substrates."""
        obs = ctx.obs
        span = (
            obs.begin_span("barrier", "none", locality="coll")
            if obs is not None
            else None
        )
        ctx.charge(CostAction.BARRIER)
        epoch = self._barrier_epoch
        self._barrier_arrived += 1
        self._barrier_maxclock = max(
            self._barrier_maxclock, ctx.clock.now_ns
        )
        if self._barrier_arrived == self.size:
            self._barrier_release_ns = self._barrier_maxclock
            self._barrier_arrived = 0
            self._barrier_maxclock = 0.0
            self._barrier_epoch += 1
            self.notify_barrier_epoch()
            ctx.clock.advance_to(self._barrier_release_ns)
            ctx.progress()
            if span is not None:
                obs.close_notification(span, ctx.clock.now_ns)
                span.t_waited = ctx.clock.now_ns
            return
        if ctx.wait_hints:
            # a barrier is blocked on *everything*, so its target carries
            # neither cell nor destination: the engine's drain-everything /
            # flush-all behaviour already is the targeted behaviour, and
            # publishing the (non-targeting) target keeps the hint
            # lifecycle uniform across every blocking construct
            from repro.runtime.wait_hints import WaitTarget

            if span is not None and span.t_hinted is None:
                span.t_hinted = ctx.clock.now_ns
            ctx.push_wait_target(WaitTarget(op="barrier"))
            try:
                yield from self._barrier_spin_gen(ctx, epoch)
            finally:
                ctx.pop_wait_target()
        else:
            yield from self._barrier_spin_gen(ctx, epoch)
        ctx.clock.advance_to(self._barrier_release_ns)
        if span is not None:
            obs.close_notification(span, ctx.clock.now_ns)
            span.t_waited = ctx.clock.now_ns

    def _barrier_spin_gen(self, ctx: RankContext, epoch: int):
        while self._barrier_epoch == epoch:
            ctx.progress()
            if self._barrier_epoch != epoch:
                break
            yield BlockUntil(
                lambda: self._barrier_epoch != epoch or ctx.has_incoming(),
                wake=("epoch",),
            )

    # -- measurement helpers ------------------------------------------------------

    def max_clock_ns(self) -> float:
        return max(c.clock.now_ns for c in self.contexts)

    def total_count(self, action: CostAction) -> int:
        return sum(c.costs.count(action) for c in self.contexts)


def build_world(
    config: RuntimeConfig,
    ranks: int = 1,
    n_nodes: int = 1,
    segment_bytes: int = _DEFAULT_SEGMENT_BYTES,
) -> World:
    """Construct a world without spawning threads (rank 0's context can be
    used directly on the calling thread — this is how the ambient
    single-rank world works)."""
    return World(config, ranks=ranks, n_nodes=n_nodes, segment_bytes=segment_bytes)


@dataclass
class SpmdResult:
    """Outcome of one :func:`spmd_run`: per-rank return values plus the
    world for post-mortem inspection of clocks and cost counters."""

    values: list
    world: World

    def clock_ns(self, rank: int = 0) -> float:
        return self.world.contexts[rank].clock.now_ns

    def max_clock_ns(self) -> float:
        return self.world.max_clock_ns()


def spmd_run(
    fn: Callable[..., Any],
    *,
    ranks: int = 4,
    version: Version = Version.V2021_3_6_EAGER,
    machine: str = "generic",
    conduit: Optional[str] = None,
    n_nodes: int = 1,
    segment_bytes: int = _DEFAULT_SEGMENT_BYTES,
    seed: int = 0,
    flags=None,
    noise: float = 0.0,
    args: Sequence[Any] = (),
    switch_trace: Optional[list] = None,
) -> SpmdResult:
    """Run ``fn(*args)`` as an SPMD program on ``ranks`` simulated ranks.

    ``conduit`` defaults to the machine profile's conduit (the paper's
    pairing: smp on Intel, udp on IBM/Marvell).  ``flags`` may override the
    version's feature set for ablations.

    With ``FeatureFlags.sched_event_loop`` set, all ranks run on the
    calling thread's event loop (:mod:`repro.runtime.event_loop`): a ``fn``
    that is a generator function runs as an in-place continuation; any
    other callable rides the per-rank thread shim.  Under the default
    thread scheduler a generator-function ``fn`` is driven to completion
    by the rank thread's trampoline, so one body definition serves both
    substrates.

    ``switch_trace``, when given a list, receives every scheduling decision
    as a small tuple (see :class:`~repro.runtime.scheduler.SchedulerCore`)
    — the parity tests' probe.

    Raises the first rank's exception if any rank fails (other ranks are
    torn down), and :class:`~repro.errors.DeadlockError` if the program
    hangs.
    """
    profile = profile_by_name(machine)
    config = RuntimeConfig(
        version=version,
        machine=machine,
        conduit=conduit or profile.default_conduit,
        flags=flags,
        seed=seed,
        noise=noise,
    )
    world = World(
        config, ranks=ranks, n_nodes=n_nodes, segment_bytes=segment_bytes
    )
    resolved = config.resolved_flags()
    if resolved.sched_event_loop:
        loop = EventLoopScheduler(
            ranks,
            switch_trace=switch_trace,
            wake_list=resolved.sched_wake_list,
        )
        world.attach_scheduler(loop)
        values = loop.run(world, fn, args)
        world.sched_switches = loop.switches
        err = loop.first_error()
        if err is not None:
            raise err
        return SpmdResult(values=values, world=world)
    sched = CooperativeScheduler(
        ranks,
        switch_trace=switch_trace,
        wake_list=resolved.sched_wake_list,
    )
    world.attach_scheduler(sched)
    results: list[Any] = [None] * ranks
    threads: list[threading.Thread] = []

    def runner(rank: int) -> None:
        ctx = world.contexts[rank]
        sched.register_thread(rank)
        try:
            sched.wait_for_token(rank)
        except BaseException:  # noqa: BLE001 - job tearing down before start
            return
        set_current_ctx(ctx)
        try:
            rv = fn(*args)
            if isinstance(rv, GeneratorType):
                # continuation body under the thread substrate: drive it
                # to completion right here, on its blocking primitives
                rv = run_blocking(ctx, rv)
            results[rank] = rv
        except BaseException as exc:  # noqa: BLE001 - propagated to driver
            sched.fail(rank, exc)
            return
        finally:
            set_current_ctx(None)
        sched.finish(rank)

    for r in range(ranks):
        t = threading.Thread(
            target=runner, args=(r,), name=f"repro-rank-{r}", daemon=True
        )
        threads.append(t)
        t.start()
    sched.start()
    for t in threads:
        t.join()
    world.sched_switches = sched.switches
    err = sched.first_error()
    if err is not None:
        raise err
    return SpmdResult(values=results, world=world)
