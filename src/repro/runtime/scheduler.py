"""Deterministic cooperative scheduler for simulated SPMD ranks.

Each simulated rank ("process" in the paper's single-node runs) executes on
its own OS thread, but exactly **one** rank thread runs at any moment: a
token is passed at well-defined switch points (progress calls, blocking
waits, barriers, rank completion).  Switch points scan ranks in round-robin
order, so interleavings — and therefore all functional results and virtual
clocks — are deterministic for a given program.

Blocking is predicate-based: a rank blocks with a ``wake_when`` callable;
whenever the scheduler picks the next rank to run it first re-evaluates
blocked ranks' predicates (safe, because only the scheduler's current owner
thread touches shared state).  If no rank is runnable and no predicate is
true, the job is hung: a :class:`~repro.errors.DeadlockError` is raised in
every blocked rank, mirroring a wedged SPMD job.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from repro.errors import DeadlockError, SchedulerError

_READY = "ready"
_BLOCKED = "blocked"
_DONE = "done"


class CooperativeScheduler:
    """Token-passing scheduler over ``nranks`` rank threads.

    The driver thread calls :meth:`start` after launching all rank threads
    (each of which must call :meth:`register_thread` and then
    :meth:`wait_for_token` before touching shared state), and
    :meth:`join_error` to re-raise any rank failure.
    """

    def __init__(self, nranks: int):
        if nranks < 1:
            raise ValueError("need at least one rank")
        self.nranks = nranks
        self._tokens = [threading.Event() for _ in range(nranks)]
        self._states = [_READY] * nranks
        self._preds: list[Optional[Callable[[], bool]]] = [None] * nranks
        self._threads: list[Optional[threading.Thread]] = [None] * nranks
        self._error: Optional[BaseException] = None
        self._error_lock = threading.Lock()
        self._started = False

    # -- rank-thread API ---------------------------------------------------

    def register_thread(self, rank: int) -> None:
        """Record the calling thread as the owner of ``rank``."""
        self._threads[rank] = threading.current_thread()

    def wait_for_token(self, rank: int) -> None:
        """Block the calling rank thread until it holds the run token."""
        self._tokens[rank].wait()
        self._tokens[rank].clear()
        self._raise_if_failed()

    def yield_now(self, rank: int) -> None:
        """Give every other runnable rank a chance to run, then continue.

        The calling rank stays runnable; if no other rank can run, this
        returns immediately (no self-handoff churn).
        """
        self._check_owner(rank)
        nxt = self._pick_next(rank, include_self=False)
        if nxt is None or nxt == rank:
            return
        self._tokens[nxt].set()
        self.wait_for_token(rank)

    def block_until(self, rank: int, wake_when: Callable[[], bool]) -> None:
        """Block ``rank`` until ``wake_when()`` is true.

        The predicate is evaluated once immediately; if already true the
        call returns without switching.  Otherwise the token passes to the
        next runnable rank and this thread sleeps until the scheduler finds
        the predicate true at a later switch point.
        """
        self._check_owner(rank)
        if wake_when():
            return
        self._states[rank] = _BLOCKED
        self._preds[rank] = wake_when
        nxt = self._pick_next(rank, include_self=True)
        if nxt == rank:
            # our own predicate turned true during the scan (it may depend
            # on state mutated by the scan itself — conservatively re-run)
            self._states[rank] = _READY
            self._preds[rank] = None
            return
        if nxt is None:
            self._declare_deadlock()
        else:
            self._tokens[nxt].set()
        self.wait_for_token(rank)
        # woken: predicate was observed true (or an error is propagating)
        self._states[rank] = _READY
        self._preds[rank] = None

    def finish(self, rank: int) -> None:
        """Mark ``rank`` complete and hand the token onward."""
        self._check_owner(rank)
        self._states[rank] = _DONE
        self._preds[rank] = None
        nxt = self._pick_next(rank, include_self=False)
        if nxt is not None:
            self._tokens[nxt].set()
        elif any(s == _BLOCKED for s in self._states):
            self._declare_deadlock()

    def fail(self, rank: int, exc: BaseException) -> None:
        """Record a rank failure and wake everyone so the job tears down."""
        with self._error_lock:
            if self._error is None:
                self._error = exc
        self._states[rank] = _DONE
        self._preds[rank] = None
        for r, tok in enumerate(self._tokens):
            if r != rank:
                tok.set()

    # -- driver API ----------------------------------------------------------

    def start(self) -> None:
        """Hand the token to rank 0 (call once, after threads launch)."""
        if self._started:
            raise SchedulerError("scheduler already started")
        self._started = True
        self._tokens[0].set()

    def first_error(self) -> Optional[BaseException]:
        return self._error

    def all_done(self) -> bool:
        return all(s == _DONE for s in self._states)

    # -- internals -------------------------------------------------------------

    def _check_owner(self, rank: int) -> None:
        owner = self._threads[rank]
        if owner is not None and owner is not threading.current_thread():
            raise SchedulerError(
                f"rank {rank} scheduler call from foreign thread "
                f"{threading.current_thread().name!r}"
            )

    def _raise_if_failed(self) -> None:
        if self._error is not None:
            # Secondary ranks surface the primary failure as a deadlock-style
            # teardown unless they themselves raised it.
            raise DeadlockError(
                f"SPMD job tearing down after failure: {self._error!r}"
            ) from self._error

    def _pick_next(self, me: int, *, include_self: bool) -> Optional[int]:
        """Choose the next rank to run, scanning round-robin from ``me+1``.

        Blocked ranks whose predicates now hold are promoted to ready.
        Returns ``None`` when no rank can make progress.
        """
        n = self.nranks
        order = [(me + 1 + i) % n for i in range(n)]
        if not include_self:
            order = [r for r in order if r != me]
        # First pass: promote blocked ranks with true predicates.
        for r in order:
            if self._states[r] == _BLOCKED:
                pred = self._preds[r]
                if pred is not None and pred():
                    self._states[r] = _READY
                    self._preds[r] = None
        for r in order:
            if self._states[r] == _READY:
                return r
        return None

    def _declare_deadlock(self) -> None:
        exc = DeadlockError(
            "all simulated ranks are blocked and no pending event can wake "
            "any of them (states: "
            + ", ".join(f"{i}:{s}" for i, s in enumerate(self._states))
            + ")"
        )
        with self._error_lock:
            if self._error is None:
                self._error = exc
        for tok in self._tokens:
            tok.set()
        raise exc
