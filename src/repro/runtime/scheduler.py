"""Deterministic cooperative scheduling for simulated SPMD ranks.

Two substrates share one round-robin policy core:

* :class:`CooperativeScheduler` (this module) — the original substrate:
  each simulated rank ("process" in the paper's single-node runs) executes
  on its own OS thread, but exactly **one** rank thread runs at any moment;
  a token is passed at well-defined switch points (progress calls, blocking
  waits, barriers, rank completion).
* :class:`~repro.runtime.event_loop.EventLoopScheduler` — every rank on a
  single OS thread: rank bodies run as generator continuations and a
  switch is one generator resume instead of two thread context switches.

:class:`SchedulerCore` holds everything that decides *which* rank runs
next: the rank state table, blocked-rank predicates, the round-robin
promote-and-pick scan, the deadlock declaration, and the first-error
record.  Both substrates drive every switch decision through the same core
methods, so interleavings — and therefore all functional results and
virtual clocks — are identical between them (the property the parity tests
in ``tests/test_event_loop.py`` pin down).

Blocking is predicate-based: a rank blocks with a ``wake_when`` callable;
whenever the scheduler picks the next rank to run it first re-evaluates
blocked ranks' predicates (safe, because only the current owner of control
touches shared state).  If no rank is runnable and no predicate is true,
the job is hung: a :class:`~repro.errors.DeadlockError` is raised in every
blocked rank, mirroring a wedged SPMD job.

Wake lists (``FeatureFlags.sched_wake_list``, default on) replace that
per-switch predicate scan with event-driven notification: a blocking
construct that can name its wake event passes a *wake key* alongside the
predicate (see :class:`~repro.runtime.switchpoints.BlockUntil`), the
completion sites (cell fulfillment, conduit inbox pushes, barrier epoch
advance) set a per-rank wake bit, and :meth:`SchedulerCore._pick_next`
promotes exactly the ranks whose bits are set — no predicate is evaluated.
The promotion set and the ring-order pick are provably identical to the
scan's (DESIGN.md §11 has the argument); any rank that blocks *without* a
key drops the whole scheduler back to the predicate scan until it wakes,
so exotic ``BlockUntil`` uses keep their exact legacy semantics and the
scan stays available as the differential oracle
(``sched_wake_list=False``).
"""

from __future__ import annotations

import logging
import threading
from typing import Callable, Optional

from repro.errors import DeadlockError, SchedulerError

_READY = "ready"
_BLOCKED = "blocked"
_DONE = "done"


class SchedulerCore:
    """Scheduling policy shared by the thread and event-loop substrates.

    Parameters
    ----------
    nranks:
        Number of simulated ranks.
    switch_trace:
        Optional list; when given, every scheduling decision appends a
        small tuple (``("yield", rank)``, ``("block", rank)``,
        ``("pick", me, chosen)``, …).  Both substrates emit the events at
        the same semantic points, so two runs of the same program produce
        equal traces iff they scheduled identically — the parity tests'
        measurement device.  ``None`` (the default) records nothing.
    wake_list:
        Use event-driven wake lists for keyed blocks (the default); False
        forces the legacy per-switch predicate scan for everything — the
        differential oracle the parity/fuzz tests diff against.
    """

    def __init__(
        self,
        nranks: int,
        switch_trace: Optional[list] = None,
        *,
        wake_list: bool = True,
    ):
        if nranks < 1:
            raise ValueError("need at least one rank")
        self.nranks = nranks
        self._states = [_READY] * nranks
        self._preds: list[Optional[Callable[[], bool]]] = [None] * nranks
        #: exact count of ranks in ``_BLOCKED`` — maintained at every state
        #: transition so :meth:`_pick_next` can skip the promotion scan
        #: (and early-break) when nothing is blocked.  Undercounting would
        #: change scheduling; every mutation site guards on the prior state.
        self._blocked = 0
        self._error: Optional[BaseException] = None
        self._error_lock = threading.Lock()
        self._started = False
        self._switch_trace = switch_trace
        #: control transfers between *distinct* ranks (bench: switches/sec)
        self.switches = 0
        # -- wake-list state (all bitmasks are over rank numbers) ----------
        self._wake_list = wake_list
        #: bit r set ⇔ ``_states[r] is _READY`` (maintained at every state
        #: transition; the masked pick reads it with two shifts)
        self._ready_mask = (1 << nranks) - 1
        #: blocked ranks whose registered wake event has fired (subset of
        #: ``_keyed_mask``) — the promotion set of the next masked pick
        self._wake_mask = 0
        #: blocked ranks that registered a recognized wake key
        self._keyed_mask = 0
        #: keyed blocked ranks woken by an incoming AM / pending progress
        #: work (every recognized key includes ``ctx.has_incoming()``)
        self._incoming_waiters = 0
        #: keyed blocked ranks woken by the barrier epoch advancing
        self._epoch_waiters = 0
        #: count of blocked ranks *without* a key: while nonzero the pick
        #: falls back to the legacy predicate scan (exotic BlockUntil uses
        #: keep their exact semantics; with ``wake_list=False`` every
        #: block counts here, making the scan unconditional)
        self._unkeyed = 0
        #: per-rank blocking-episode counter: a cell callback registered in
        #: an earlier episode compares its captured generation against this
        #: and does nothing when stale (the rank was woken by another event
        #: and has moved on — possibly blocking again on a different cell)
        self._wake_gen = [0] * nranks
        #: the World whose completion sites notify this scheduler, bound by
        #: :meth:`World.attach_scheduler <repro.runtime.runtime.World.\
        #: attach_scheduler>`.  Until bound, keyed blocks are demoted to
        #: the predicate scan (see :meth:`_enter_blocked`).
        self._wake_source = None
        #: keyed blocks demoted to the scan because no wake source was
        #: bound when they parked — the observable form of the old silent
        #: nested-world fallback (zero on every properly attached run)
        self.keyed_scan_fallbacks = 0
        self._fallback_noted = False

    # -- driver API ---------------------------------------------------------

    def first_error(self) -> Optional[BaseException]:
        return self._error

    def all_done(self) -> bool:
        return all(s is _DONE for s in self._states)

    # -- shared internals ---------------------------------------------------

    def _record_error(self, exc: BaseException) -> None:
        """First error wins; later failures are teardown echoes."""
        with self._error_lock:
            if self._error is None:
                self._error = exc

    def _teardown_error(self) -> DeadlockError:
        """The exception secondary ranks see while the job unwinds."""
        return DeadlockError(
            f"SPMD job tearing down after failure: {self._error!r}"
        )

    def _deadlock_error(self) -> DeadlockError:
        return DeadlockError(
            "all simulated ranks are blocked and no pending event can wake "
            "any of them (states: "
            + ", ".join(f"{i}:{s}" for i, s in enumerate(self._states))
            + ")"
        )

    # -- wake-list internals -------------------------------------------------

    def bind_wake_source(self, world) -> None:
        """Record ``world`` as the source of wake events for this
        scheduler (called by ``World.attach_scheduler``).  Every
        recognized wake key's predicate folds in events — an incoming AM,
        the barrier epoch advancing — that only the world-level notify
        sites push, so until a source is bound a keyed block may not park
        on its wake bit: it would sleep through its own wake."""
        self._wake_source = world

    def _enter_blocked(self, rank: int, pred, wake) -> None:
        """Record ``rank`` as blocked; register its wake key (or count it
        unkeyed, which pins the pick to the legacy scan until it wakes)."""
        self._states[rank] = _BLOCKED
        self._preds[rank] = pred
        self._blocked += 1
        bit = 1 << rank
        self._ready_mask &= ~bit
        if not self._wake_list or wake is None:
            self._unkeyed += 1
            return
        if self._wake_source is None:
            # keyed, but no world routes wake events here: this scheduler
            # is driving ranks of a world that was never attached via
            # World.attach_scheduler.  Demote to the predicate scan —
            # correct (the scan re-evaluates the predicate every switch),
            # observable (counter + one-time note), never a lost wake.
            self.keyed_scan_fallbacks += 1
            if not self._fallback_noted:
                self._fallback_noted = True
                logging.getLogger(__name__).debug(
                    "keyed block on a scheduler with no bound wake "
                    "source; falling back to the predicate scan (counted "
                    "in SchedulerCore.keyed_scan_fallbacks — attach the "
                    "scheduler via World.attach_scheduler to restore "
                    "wake-list scheduling)"
                )
            self._unkeyed += 1
            return
        kind = wake[0]
        if kind == "cell":
            self._keyed_mask |= bit
            self._incoming_waiters |= bit
            self._wake_gen[rank] += 1
            gen = self._wake_gen[rank]
            # the cell was observed non-ready just before this block, so
            # the callback always parks (never fires inline here)
            wake[1].add_callback(
                lambda _vals, r=rank, g=gen: self._cell_wake(r, g)
            )
        elif kind == "epoch":
            self._keyed_mask |= bit
            self._incoming_waiters |= bit
            self._epoch_waiters |= bit
        else:
            self._unkeyed += 1

    def _unregister_wake(self, rank: int) -> None:
        """Drop ``rank``'s wake registration — called on every transition
        out of ``_BLOCKED`` (promotion, teardown wake, failure)."""
        bit = 1 << rank
        if self._keyed_mask & bit:
            self._keyed_mask &= ~bit
            self._incoming_waiters &= ~bit
            self._epoch_waiters &= ~bit
            self._wake_mask &= ~bit
            self._wake_gen[rank] += 1
        else:
            self._unkeyed -= 1

    def _cell_wake(self, rank: int, gen: int) -> None:
        """A cell this rank blocked on became ready (stale-guarded)."""
        if self._wake_gen[rank] == gen:
            bit = 1 << rank
            if self._keyed_mask & bit:
                self._wake_mask |= bit

    def notify_incoming(self, rank: int) -> None:
        """An AM was pushed to ``rank``'s inbox: wake it if it is parked
        on any recognized key (every key includes ``has_incoming()``)."""
        bit = 1 << rank
        if self._incoming_waiters & bit:
            self._wake_mask |= bit

    def notify_barrier_epoch(self) -> None:
        """The barrier epoch advanced: wake every parked barrier waiter."""
        self._wake_mask |= self._epoch_waiters

    def _pick_next(self, me: int, *, include_self: bool) -> Optional[int]:
        """Choose the next rank to run, scanning round-robin from ``me+1``.

        Blocked ranks whose predicates now hold are promoted to ready (all
        of them — promotion must not stop at the first hit, later switch
        points depend on it); the pick is the first rank, in ring order,
        that is ready once its visit's promotion has been applied.
        Returns ``None`` when no rank can make progress.

        With wake lists on and every blocked rank keyed, the promotion set
        is exactly the fired wake bits and the pick is two mask shifts —
        no predicate runs, O(set bits) instead of O(n).  The result is
        identical to the scan's: a keyed rank's wake bit is set iff its
        predicate is true (the events are monotone while the rank is
        parked and every mutation site notifies — DESIGN.md §11), and both
        paths pick the minimum ring distance over ready ∪ promoted.
        Any unkeyed blocked rank forces the legacy scan, which evaluates
        predicates in exactly the ascending ring-distance order of the
        original two-pass implementation, so promotions and the final pick
        are unchanged.
        """
        n = self.nranks
        states = self._states
        preds = self._preds
        first: Optional[int] = None
        if self._wake_list and self._unkeyed == 0:
            wake = self._wake_mask
            if wake:
                # promote every woken rank (not just the eventual pick —
                # later switch points depend on full promotion)
                while wake:
                    low = wake & -wake
                    r = low.bit_length() - 1
                    wake &= wake - 1
                    states[r] = _READY
                    preds[r] = None
                    self._blocked -= 1
                    self._unregister_wake(r)
                    self._ready_mask |= low
            ready = self._ready_mask
            # ring order from me+1: ranks above me, then below, then (only
            # when the caller may self-resume) me itself
            hi = ready >> (me + 1)
            if hi:
                first = me + 1 + ((hi & -hi).bit_length() - 1)
            else:
                lo = ready & ((1 << me) - 1)
                if lo:
                    first = (lo & -lo).bit_length() - 1
                elif include_self and (ready >> me) & 1:
                    first = me
        else:
            # ring distances 1..n-1 visit every other rank; distance n is
            # `me` itself, visited (last) only when the caller may
            # self-resume
            stop = n + 1 if include_self else n
            if self._blocked == 0:
                # nothing to promote: the pick is simply the first ready
                # rank in ring order, and the scan can stop there.  Same
                # result as the full scan (whose promotion pass would be a
                # no-op), but O(1) instead of O(n) in the switch-dense
                # common case.
                for i in range(1, stop):
                    r = me + i
                    if r >= n:
                        r -= n
                    if states[r] is _READY:
                        first = r
                        break
            else:
                for i in range(1, stop):
                    r = me + i
                    if r >= n:
                        r -= n
                    st = states[r]
                    if st is _BLOCKED:
                        pred = preds[r]
                        if pred is not None and pred():
                            states[r] = _READY
                            preds[r] = None
                            self._blocked -= 1
                            self._unregister_wake(r)
                            self._ready_mask |= 1 << r
                            if first is None:
                                first = r
                    elif st is _READY and first is None:
                        first = r
        if self._switch_trace is not None:
            self._switch_trace.append(("pick", me, first))
        return first


class CooperativeScheduler(SchedulerCore):
    """Token-passing scheduler over ``nranks`` rank threads.

    The driver thread calls :meth:`start` after launching all rank threads
    (each of which must call :meth:`register_thread` and then
    :meth:`wait_for_token` before touching shared state), and
    :meth:`first_error` to re-raise any rank failure.
    """

    def __init__(
        self,
        nranks: int,
        switch_trace: Optional[list] = None,
        *,
        wake_list: bool = True,
    ):
        super().__init__(nranks, switch_trace, wake_list=wake_list)
        self._tokens = [threading.Event() for _ in range(nranks)]
        self._threads: list[Optional[threading.Thread]] = [None] * nranks

    # -- rank-thread API ---------------------------------------------------

    def register_thread(self, rank: int) -> None:
        """Record the calling thread as the owner of ``rank``."""
        self._threads[rank] = threading.current_thread()

    def wait_for_token(self, rank: int) -> None:
        """Block the calling rank thread until it holds the run token."""
        self._tokens[rank].wait()
        self._tokens[rank].clear()
        self._raise_if_failed()

    def yield_now(self, rank: int) -> None:
        """Give every other runnable rank a chance to run, then continue.

        The calling rank stays runnable; if no other rank can run, this
        returns immediately (no self-handoff churn).
        """
        self._check_owner(rank)
        if self._switch_trace is not None:
            self._switch_trace.append(("yield", rank))
        nxt = self._pick_next(rank, include_self=False)
        if nxt is None or nxt == rank:
            return
        self.switches += 1
        self._tokens[nxt].set()
        self.wait_for_token(rank)

    def block_until(
        self,
        rank: int,
        wake_when: Callable[[], bool],
        wake: Optional[tuple] = None,
    ) -> None:
        """Block ``rank`` until ``wake_when()`` is true.

        The predicate is evaluated once immediately; if already true the
        call returns without switching.  Otherwise the token passes to the
        next runnable rank and this thread sleeps until the scheduler finds
        the predicate true at a later switch point.  ``wake`` optionally
        names the event that turns the predicate true (see
        :class:`~repro.runtime.switchpoints.BlockUntil`), letting the
        wake-list pick skip predicate evaluation entirely.
        """
        self._check_owner(rank)
        if wake_when():
            return
        if self._switch_trace is not None:
            self._switch_trace.append(("block", rank))
        self._enter_blocked(rank, wake_when, wake)
        nxt = self._pick_next(rank, include_self=True)
        if nxt == rank:
            # our own predicate turned true during the scan (it may depend
            # on state mutated by the scan itself — conservatively re-run);
            # the scan's promotion already restored _READY and the count
            self._states[rank] = _READY
            self._preds[rank] = None
            return
        if nxt is None:
            self._declare_deadlock()
        else:
            self.switches += 1
            self._tokens[nxt].set()
        self.wait_for_token(rank)
        # woken: predicate was observed true (or an error is propagating);
        # the promoting scan already decremented _blocked — the guard only
        # matters on paths that wake without promotion
        if self._states[rank] is _BLOCKED:
            self._blocked -= 1
            self._unregister_wake(rank)
        self._states[rank] = _READY
        self._ready_mask |= 1 << rank
        self._preds[rank] = None

    def finish(self, rank: int) -> None:
        """Mark ``rank`` complete and hand the token onward."""
        self._check_owner(rank)
        if self._switch_trace is not None:
            self._switch_trace.append(("finish", rank))
        self._states[rank] = _DONE
        self._ready_mask &= ~(1 << rank)
        self._preds[rank] = None
        nxt = self._pick_next(rank, include_self=False)
        if nxt is not None:
            self.switches += 1
            self._tokens[nxt].set()
        elif any(s is _BLOCKED for s in self._states):
            self._declare_deadlock()

    def fail(self, rank: int, exc: BaseException) -> None:
        """Record a rank failure and wake everyone so the job tears down."""
        if self._switch_trace is not None:
            self._switch_trace.append(("fail", rank))
        self._record_error(exc)
        if self._states[rank] is _BLOCKED:
            # a teardown error thrown out of wait_for_token propagates out
            # of block_until without running its post-wake bookkeeping
            self._blocked -= 1
            self._unregister_wake(rank)
        self._states[rank] = _DONE
        self._ready_mask &= ~(1 << rank)
        self._preds[rank] = None
        for r, tok in enumerate(self._tokens):
            if r != rank:
                tok.set()

    # -- driver API ----------------------------------------------------------

    def start(self) -> None:
        """Hand the token to rank 0 (call once, after threads launch)."""
        if self._started:
            raise SchedulerError("scheduler already started")
        self._started = True
        self._tokens[0].set()

    # -- internals -------------------------------------------------------------

    def _check_owner(self, rank: int) -> None:
        owner = self._threads[rank]
        if owner is not None and owner is not threading.current_thread():
            raise SchedulerError(
                f"rank {rank} scheduler call from foreign thread "
                f"{threading.current_thread().name!r}"
            )

    def _raise_if_failed(self) -> None:
        if self._error is not None:
            # Secondary ranks surface the primary failure as a deadlock-style
            # teardown unless they themselves raised it.
            raise self._teardown_error() from self._error

    def _declare_deadlock(self) -> None:
        if self._switch_trace is not None:
            self._switch_trace.append(("deadlock", tuple(self._states)))
        exc = self._deadlock_error()
        self._record_error(exc)
        for tok in self._tokens:
            tok.set()
        raise exc
