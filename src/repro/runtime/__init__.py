"""Runtime substrate: SPMD driver, rank contexts, scheduler, progress engine.

This package provides the machinery that stands in for the UPC++ runtime
proper: per-rank state (:mod:`repro.runtime.context`), the cooperative
scheduler that simulates one OS process per rank
(:mod:`repro.runtime.scheduler`), the progress engine implementing the
deferred-notification queue (:mod:`repro.runtime.progress`), and the
version/feature configuration distinguishing the paper's three library
builds (:mod:`repro.runtime.config`).
"""

from repro.runtime.config import FeatureFlags, RuntimeConfig, Version
from repro.runtime.context import RankContext, current_ctx, current_ctx_or_none
from repro.runtime.runtime import SpmdResult, spmd_run

__all__ = [
    "Version",
    "FeatureFlags",
    "RuntimeConfig",
    "RankContext",
    "current_ctx",
    "current_ctx_or_none",
    "spmd_run",
    "SpmdResult",
]
