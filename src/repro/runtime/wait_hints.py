"""Wait targets: what a blocked caller is actually waiting for.

With ``FeatureFlags.wait_hints`` on, a blocking wait (``Future.wait()``,
a finalized promise's future, a barrier) publishes a :class:`WaitTarget`
on its rank's context for the duration of the wait.  The two hot
subsystems consult it:

* the progress engine (:mod:`repro.runtime.progress`) runs a *targeted
  drain* — queued deferred/LPC thunks that resolve the awaited cell are
  dispatched ahead of the adaptive batch cap instead of waiting their
  FIFO turn;
* the AM aggregator (:mod:`repro.gasnet.aggregator`) flushes the awaited
  destination's buffer immediately (plus near-full ride-alongs) instead
  of flushing everything or waiting for the age bound.

A target with neither a cell nor a destination (a barrier — blocked on
*everything*) deliberately changes nothing: the pre-existing
drain-until-quiescent / flush-all behaviour *is* the targeted behaviour
for "waiting on everyone", so such targets exist only for observability.

This module is dependency-free by design: ``runtime.context`` imports
``runtime.progress`` at module level, so the type both (and
``core.future``) share must not import either.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional


@dataclass(frozen=True)
class WaitTarget:
    """One blocked wait's declared interest, pushed on the context stack.

    Attributes
    ----------
    cell:
        The :class:`~repro.core.cell.PromiseCell` the caller is blocked
        on (``None`` for waits with no single cell, e.g. barriers).
        Queue entries are matched by identity.
    dst_rank:
        Destination rank of the awaited operation when it was injected
        off-node (``None`` for local operations) — the aggregator's
        flush hint.
    dst_ranks:
        Destination ranks of a *multi-operation* wait (a
        :class:`~repro.core.completions.CxCounter` aggregates N member
        operations; waiting on the counter flushes every member's
        off-node destination).  Empty for single-operation waits.
    op:
        Short label of the waiting construct (``"future"``,
        ``"counter"``, ``"barrier"``) for diagnostics.
    """

    cell: Optional[Any] = None
    dst_rank: Optional[int] = None
    dst_ranks: tuple = ()
    op: str = "future"

    @property
    def targeted(self) -> bool:
        """Whether this target narrows the wait at all (a cell to drain
        toward or destinations to flush); non-targeted waits keep the
        engine's drain-everything/flush-all behaviour."""
        return (
            self.cell is not None
            or self.dst_rank is not None
            or bool(self.dst_ranks)
        )

    @property
    def flush_dsts(self) -> tuple:
        """Every destination this wait should flush toward (the single
        ``dst_rank`` and the counter's ``dst_ranks``, deduplicated in
        rank order)."""
        if not self.dst_ranks:
            return (self.dst_rank,) if self.dst_rank is not None else ()
        dsts = set(self.dst_ranks)
        if self.dst_rank is not None:
            dsts.add(self.dst_rank)
        return tuple(sorted(dsts))
