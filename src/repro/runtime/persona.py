"""Personas: completion-routing identities (a simplified ``upcxx::persona``).

UPC++ delivers completion notifications and LPCs to the *persona* that
initiated the operation; each OS thread has a stack of active personas
with the bottom being its default persona, and rank 0's primordial thread
holds the master persona.  The paper's experiments are single-threaded per
process, so this reproduction implements the subset that matters for
completion semantics:

* every rank has a **master persona** (created with the context);
* additional personas can be created and pushed/popped with
  :class:`persona_scope` (a context manager, mirroring
  ``upcxx::persona_scope``);
* :func:`lpc` enqueues a function onto a persona's queue; it runs when
  that persona's owner calls progress **while the persona is active** —
  the routing guarantee UPC++ gives;
* the current persona is consulted by completion dispatch (LPC
  completions land on the initiating persona).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable

from repro.core.cell import PromiseCell
from repro.core.future import Future
from repro.errors import UpcxxError
from repro.runtime.context import current_ctx
from repro.sim.costmodel import CostAction

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.context import RankContext


class Persona:
    """A completion-routing identity with its own LPC queue."""

    __slots__ = ("name", "owner_rank", "_queue")

    def __init__(self, name: str = "persona", owner_rank: int | None = None):
        ctx = current_ctx()
        self.name = name
        self.owner_rank = ctx.rank if owner_rank is None else owner_rank
        self._queue: deque[tuple[Callable, tuple, PromiseCell]] = deque()

    def pending(self) -> int:
        return len(self._queue)

    def _push(self, fn: Callable, args: tuple, cell: PromiseCell) -> None:
        self._queue.append((fn, args, cell))

    def drain(self, ctx: "RankContext") -> int:
        """Run every queued LPC (caller must be the active persona's
        owner); returns how many ran."""
        n = 0
        while self._queue:
            fn, args, cell = self._queue.popleft()
            ctx.charge(CostAction.PROGRESS_DISPATCH)
            out = fn(*args)
            if cell.nvalues:
                cell.values = (out,)
            cell.fulfill()
            n += 1
        return n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Persona {self.name!r} rank={self.owner_rank}>"


def _persona_stack(ctx: "RankContext") -> list[Persona]:
    stack = getattr(ctx, "_persona_stack", None)
    if stack is None:
        master = Persona.__new__(Persona)
        master.name = "master"
        master.owner_rank = ctx.rank
        master._queue = deque()
        stack = [master]
        ctx._persona_stack = stack  # type: ignore[attr-defined]
        # master persona LPCs drain during normal progress
        ctx.progress_engine.register_poller(
            lambda c=ctx: _drain_active(c) > 0
        )
    return stack


def _drain_active(ctx: "RankContext") -> int:
    n = 0
    for persona in list(getattr(ctx, "_persona_stack", ())):
        n += persona.drain(ctx)
    return n


def master_persona() -> Persona:
    """The calling rank's master persona."""
    return _persona_stack(current_ctx())[0]


def current_persona() -> Persona:
    """The top of the calling rank's active-persona stack."""
    return _persona_stack(current_ctx())[-1]


class persona_scope:
    """Context manager activating a persona (``upcxx::persona_scope``)."""

    def __init__(self, persona: Persona):
        self.persona = persona
        self._ctx = None

    def __enter__(self) -> Persona:
        ctx = current_ctx()
        if self.persona.owner_rank != ctx.rank:
            raise UpcxxError(
                "a persona can only be activated on its owning rank"
            )
        self._ctx = ctx
        _persona_stack(ctx).append(self.persona)
        return self.persona

    def __exit__(self, *exc) -> None:
        stack = _persona_stack(self._ctx)
        if stack[-1] is not self.persona:
            raise UpcxxError("persona_scope exited out of order")
        stack.pop()
        return None


def lpc(persona: Persona, fn: Callable, *args) -> Future:
    """Enqueue ``fn(*args)`` onto ``persona``; ``future<T>`` of its result.

    The LPC runs inside a progress call on the persona's owning rank while
    the persona is active (the master persona is always active).
    """
    ctx = current_ctx()
    ctx.charge(CostAction.LPC_ENQUEUE)
    cell = PromiseCell(nvalues=1, deps=1)
    if persona.owner_rank == ctx.rank:
        persona._push(fn, args, cell)
    else:
        # cross-rank LPC: ship to the owner's persona via AM
        def on_owner(tctx, persona=persona):
            persona._push(fn, args, cell)

        ctx.conduit.send_am(ctx, persona.owner_rank, on_owner, label="lpc")
    return Future(cell)
