"""Library versions and feature flags.

The paper compares three builds of UPC++ (Section IV):

* ``2021.3.0`` — the official release: deferred notification everywhere,
  an extra heap allocation on the local-RMA path, legacy ``when_all``,
  ready ``future<>`` construction allocates a promise cell, no non-value
  fetching atomics, dynamic ``is_local`` even under the SMP conduit.
* ``2021.3.6 defer`` — a development snapshot with several orthogonal
  optimizations (allocation elision for directly-addressable RMA,
  ``constexpr is_local`` under SMP, shared ready-``future<>`` cell,
  ``when_all`` short-cuts, non-value fetching atomics available) but still
  using deferred notification — the legacy semantics.
* ``2021.3.6 eager`` — the same snapshot with eager notification enabled
  (the paper's contribution; ``as_future``/``as_promise`` default to eager).

Rather than forking the code, each build is a :class:`FeatureFlags` value;
the runtime consults the flags at each decision point, exactly mirroring
where the real implementation's ``#ifdef``/template specializations sit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, fields, replace

from repro.errors import UpcxxError


class Version(enum.Enum):
    """The three UPC++ builds compared in the paper."""

    V2021_3_0 = "2021.3.0"
    V2021_3_6_DEFER = "2021.3.6-defer"
    V2021_3_6_EAGER = "2021.3.6-eager"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class FeatureFlags:
    """Individual implementation toggles making up a build.

    Attributes
    ----------
    eager_notification:
        ``as_future``/``as_promise`` request eager completion by default
        (Section III-A).  Explicit ``as_defer_*``/``as_eager_*`` factories
        override the default either way (on builds where they exist).
    eager_factories_available:
        Whether the ``as_defer_*``/``as_eager_*`` factories and non-value
        fetching atomics exist at all (2021.3.6 only).
    elide_local_rma_alloc:
        Skip the extra op-descriptor heap allocation for RMA on directly
        addressable pointers (orthogonal 2021.3.6 optimization, §IV-A).
    constexpr_is_local_smp:
        Under the SMP conduit every pointer is directly addressable, so the
        locality branch is compiled away (orthogonal 2021.3.6 optimization,
        §IV-B).
    ready_future_shared_cell:
        Ready value-less ``future<>`` construction reuses a pre-allocated
        shared promise cell instead of heap-allocating (§III-B).
    when_all_shortcuts:
        ``when_all`` returns an input future directly when the others are
        ready and value-less (§III-C).
    nonvalue_fetching_atomics:
        The new ``fetch_*_into`` atomic overloads that write the fetched
        value to memory instead of the notification (§III-B).
    am_aggregation:
        Destination-batched coalescing of small off-node AMs into bundled
        messages (see :mod:`repro.gasnet.aggregator`).  Off by default on
        every build: it is an extension beyond the paper, orthogonal to
        eager/deferred notification, and with it off the runtime behaves
        bit-identically to the seed.
    agg_max_entries / agg_max_bytes:
        Aggregator auto-flush thresholds: a destination buffer flushes
        when it holds this many entries or payload bytes (only consulted
        when ``am_aggregation`` is on).  With ``agg_adaptive`` set these
        become the *ceilings* of the controller's operating range.
    agg_adaptive:
        Online flush-threshold control plus the age-bound flush (see
        :mod:`repro.gasnet.adaptive`): per-destination EWMA estimators of
        inter-arrival gap and payload size size the effective thresholds
        between the floor (``agg_min_*``) and ceiling (``agg_max_*``)
        bounds, and a buffer whose oldest entry is older than
        ``agg_max_age_ticks`` is flushed at the next conduit activity or
        progress poll.  Off by default: the static PR-1 behaviour is
        bit-identical with this flag off.
    agg_min_entries / agg_min_bytes:
        Floors of the adaptive controller's threshold range (only
        consulted when ``agg_adaptive`` is on).
    agg_max_age_ticks:
        Age bound in simulated-clock ticks (ns): the maximum time the
        oldest parked entry may sit in a buffer before the next conduit
        activity or progress poll force-flushes it.  Also the controller's
        latency target (batch depth is chosen so the expected fill time
        stays inside this bound).
    agg_ewma_alpha:
        Blending factor of the controller's EWMA estimators (0 < a <= 1;
        larger adapts faster, smaller smooths more).
    agg_compression:
        Delta-compression of bundle framing: runs of consecutive entries
        sharing one conduit-level handler (the entry *label*) are encoded
        as one full entry header plus small continuation headers, so
        homogeneous streams (GUPS updates) pay the handler id once per
        run.  Pure wire-footprint model change — handlers still run
        identically.  Off by default.
    progress_adaptive:
        EWMA-based control of the progress engine's drain loop (see
        :mod:`repro.runtime.adaptive_progress`): each full poll observes
        the deferred-queue depth and drain yield, sizes a per-poll drain
        batch cap, and thins the cadence of provably-empty polls (charging
        the cheap ``PROGRESS_POLL_SKIP`` instead of a full
        ``PROGRESS_POLL``).  Off by default on every build: with the flag
        off the engine is bit-identical to the static drain-until-quiescent
        behaviour.
    progress_min_batch / progress_max_batch:
        Floor and ceiling of the controller's per-poll drain batch cap
        (only consulted when ``progress_adaptive`` is on).
    progress_min_poll_interval / progress_max_poll_interval:
        Floor and ceiling of the poll-thinning interval: at most
        ``interval - 1`` consecutive provably-empty progress calls are
        elided before a full poll is forced.  An interval of 1 never
        elides.
    progress_max_age_ticks:
        Notification-latency guarantee in simulated-clock ticks (ns),
        analogous to ``agg_max_age_ticks``: no deferred completion waits
        longer than this once enqueued — aged entries are dispatched past
        the batch cap and opportunistically retired at the next engine
        activity.
    progress_ewma_alpha:
        Blending factor of the progress controller's EWMA estimators
        (0 < a <= 1).
    wait_hints:
        Wait-aware completion targeting (see
        :mod:`repro.runtime.wait_hints`): a blocking wait publishes the
        awaited cell/destination on the context, the progress engine
        dispatches matching queued notifications ahead of the adaptive
        batch cap (charging ``PROGRESS_HINT_SCAN`` per targeted scan),
        and the AM aggregator immediately flushes the awaited
        destination's buffer plus near-full ride-alongs instead of
        waiting for the age bound.  Off by default on every build: with
        the flag off no target is ever published and the runtime is
        bit-identical to the unhinted behaviour.
    wait_flush_fill_frac:
        Near-full ride-along threshold of the targeted flush (0 < f <=
        1): while a hinted wait is active, a destination buffer whose
        entry or byte fill reaches this fraction of its effective flush
        threshold is flushed in the same conduit activity as the awaited
        destination, sharing the injection wake-up (only consulted when
        ``wait_hints`` is on).
    obs_spans:
        Operation-lifecycle observability (see :mod:`repro.obs`): every
        asynchronous operation records a span with phase timestamps
        (injected / transfer-complete / notification-dispatched /
        waited), and the progress engine, conduit, and aggregator feed a
        per-rank metrics registry.  Off by default on every build;
        recording charges no cost-model actions, so virtual timings are
        identical either way, and with the flag off ``RankContext.obs``
        stays ``None`` (one attribute check per site — zero cost).
    obs_span_capacity:
        Maximum spans retained per rank; later spans are counted as
        dropped but still stamped (only consulted when ``obs_spans`` is
        on).
    sched_event_loop:
        Run simulated ranks on the single-threaded event-loop scheduler
        (:mod:`repro.runtime.event_loop`) instead of thread-per-rank
        token passing.  Both substrates drive the same round-robin
        promote-and-pick policy core, so functional results, virtual
        clocks, deadlock declarations, and teardown behavior are
        bit-identical; rank bodies written as generator functions run as
        in-place continuations (one generator resume per switch — the
        speedup), while plain-function bodies transparently ride a
        per-rank thread shim with the original substrate's cost.  Off by
        default on every build.
    sched_wake_list:
        Event-driven wake lists in the scheduler core (both substrates):
        a blocking construct that names its wake event (cell readiness,
        barrier epoch advance — see
        :class:`~repro.runtime.switchpoints.BlockUntil`) parks on a wake
        bit that the completion site sets, instead of having its predicate
        re-evaluated by every switch's round-robin scan.  Promotion sets,
        picks, virtual clocks, and switch traces are bit-identical to the
        scan (the order-preservation argument is in DESIGN.md §11); any
        keyless block falls back to the scan until it wakes.  On by
        default on every build; turning it off restores the pure
        predicate-scan scheduler — the differential oracle the parity and
        fuzz suites diff against.
    cost_batching:
        Defer per-charge virtual-clock advances into a per-rank pending
        scalar that is flushed lazily at the next clock read (every switch
        point, timestamp, and barrier reads the clock, so no stale time is
        ever observed).  Charges accumulate in exact integer clock units
        (the clock's fixed-point grid — see
        :mod:`repro.sim.clock`), so integer-add associativity makes the
        batched clocks **bit-identical** to per-charge advancing, not
        merely close.  Functional results and action counts are identical
        too.  On by default on every build; ``cost_batching=False`` is the
        per-charge opt-out (covered by the flag matrix).  Incompatible
        with timing noise (``RuntimeConfig.noise``): jitter requires a
        per-charge draw, so a noisy run with default flags silently
        resolves to the unbatched model (explicitly requesting both still
        raises).
    cx_continuations:
        Notifiable completion objects beyond futures/promises (see
        :mod:`repro.core.completions` and DESIGN.md §13): continuation
        completions (``operation_cx.as_continuation(fn)`` — the callback
        runs inline at whichever agent observes completion, with zero
        future/cell allocation) and counter completions
        (:class:`~repro.core.completions.CxCounter` — N operation events
        aggregate into one notification, targetable by ``wait_hints`` as
        a unit).  Off by default on every build: with the flag off the
        factories raise ``CompletionError`` and no code path changes, so
        the runtime is bit-identical to the future/promise-only
        behaviour.
    """

    eager_notification: bool
    eager_factories_available: bool
    elide_local_rma_alloc: bool
    constexpr_is_local_smp: bool
    ready_future_shared_cell: bool
    when_all_shortcuts: bool
    nonvalue_fetching_atomics: bool
    am_aggregation: bool = False
    agg_max_entries: int = 32
    agg_max_bytes: int = 4096
    agg_adaptive: bool = False
    agg_min_entries: int = 2
    agg_min_bytes: int = 256
    agg_max_age_ticks: float = 131072.0
    agg_ewma_alpha: float = 0.25
    agg_compression: bool = False
    obs_spans: bool = False
    obs_span_capacity: int = 65536
    progress_adaptive: bool = False
    progress_min_batch: int = 4
    progress_max_batch: int = 256
    progress_min_poll_interval: int = 1
    progress_max_poll_interval: int = 64
    progress_max_age_ticks: float = 32768.0
    progress_ewma_alpha: float = 0.25
    wait_hints: bool = False
    wait_flush_fill_frac: float = 0.5
    sched_event_loop: bool = False
    sched_wake_list: bool = True
    cost_batching: bool = True
    cx_continuations: bool = False

    def __post_init__(self):
        """Reject unusable aggregation knobs at construction.

        A zero/negative threshold would make a destination buffer never
        flush on its own — with the old aggregator-side check this was
        only caught when a world with ``am_aggregation`` was built, and
        not at all for flag values constructed but consumed later.  The
        knobs are validated here, at the single choke point every
        configuration passes through.
        """
        if self.agg_max_entries < 1:
            raise UpcxxError(
                f"agg_max_entries must be >= 1, got {self.agg_max_entries}"
            )
        if self.agg_max_bytes < 1:
            raise UpcxxError(
                f"agg_max_bytes must be >= 1, got {self.agg_max_bytes}"
            )
        if self.agg_min_entries < 1:
            raise UpcxxError(
                f"agg_min_entries must be >= 1, got {self.agg_min_entries}"
            )
        if self.agg_min_bytes < 1:
            raise UpcxxError(
                f"agg_min_bytes must be >= 1, got {self.agg_min_bytes}"
            )
        if self.agg_adaptive:
            # floor/ceiling consistency only binds once the controller
            # actually operates on the range (a static configuration may
            # legitimately set a ceiling below the adaptive floor defaults);
            # re-validated automatically if replace() later flips the flag
            if self.agg_min_entries > self.agg_max_entries:
                raise UpcxxError(
                    "agg_min_entries must not exceed agg_max_entries "
                    f"({self.agg_min_entries} > {self.agg_max_entries})"
                )
            if self.agg_min_bytes > self.agg_max_bytes:
                raise UpcxxError(
                    "agg_min_bytes must not exceed agg_max_bytes "
                    f"({self.agg_min_bytes} > {self.agg_max_bytes})"
                )
        if self.agg_max_age_ticks <= 0:
            raise UpcxxError(
                f"agg_max_age_ticks must be > 0, got {self.agg_max_age_ticks}"
            )
        if not (0.0 < self.agg_ewma_alpha <= 1.0):
            raise UpcxxError(
                f"agg_ewma_alpha must be in (0, 1], got {self.agg_ewma_alpha}"
            )
        if self.obs_span_capacity < 1:
            raise UpcxxError(
                f"obs_span_capacity must be >= 1, got {self.obs_span_capacity}"
            )
        if self.progress_min_batch < 1:
            raise UpcxxError(
                f"progress_min_batch must be >= 1, got {self.progress_min_batch}"
            )
        if self.progress_max_batch < 1:
            raise UpcxxError(
                f"progress_max_batch must be >= 1, got {self.progress_max_batch}"
            )
        if self.progress_min_poll_interval < 1:
            raise UpcxxError(
                "progress_min_poll_interval must be >= 1, got "
                f"{self.progress_min_poll_interval}"
            )
        if self.progress_max_poll_interval < 1:
            raise UpcxxError(
                "progress_max_poll_interval must be >= 1, got "
                f"{self.progress_max_poll_interval}"
            )
        if self.progress_adaptive:
            # same floor/ceiling convention as the aggregation knobs: the
            # range only binds when a controller actually operates on it
            if self.progress_min_batch > self.progress_max_batch:
                raise UpcxxError(
                    "progress_min_batch must not exceed progress_max_batch "
                    f"({self.progress_min_batch} > {self.progress_max_batch})"
                )
            if self.progress_min_poll_interval > self.progress_max_poll_interval:
                raise UpcxxError(
                    "progress_min_poll_interval must not exceed "
                    "progress_max_poll_interval "
                    f"({self.progress_min_poll_interval} > "
                    f"{self.progress_max_poll_interval})"
                )
        if self.progress_max_age_ticks <= 0:
            raise UpcxxError(
                "progress_max_age_ticks must be > 0, got "
                f"{self.progress_max_age_ticks}"
            )
        if not (0.0 < self.progress_ewma_alpha <= 1.0):
            raise UpcxxError(
                "progress_ewma_alpha must be in (0, 1], got "
                f"{self.progress_ewma_alpha}"
            )
        if not (0.0 < self.wait_flush_fill_frac <= 1.0):
            raise UpcxxError(
                "wait_flush_fill_frac must be in (0, 1], got "
                f"{self.wait_flush_fill_frac}"
            )

    def replace(self, **kw) -> "FeatureFlags":
        """A copy with the given flags overridden (ablation support)."""
        return replace(self, **kw)


_FLAGS_BY_VERSION: dict[Version, FeatureFlags] = {
    Version.V2021_3_0: FeatureFlags(
        eager_notification=False,
        eager_factories_available=False,
        elide_local_rma_alloc=False,
        constexpr_is_local_smp=False,
        ready_future_shared_cell=False,
        when_all_shortcuts=False,
        nonvalue_fetching_atomics=False,
    ),
    Version.V2021_3_6_DEFER: FeatureFlags(
        eager_notification=False,
        eager_factories_available=True,
        elide_local_rma_alloc=True,
        constexpr_is_local_smp=True,
        ready_future_shared_cell=True,
        when_all_shortcuts=True,
        nonvalue_fetching_atomics=True,
    ),
    Version.V2021_3_6_EAGER: FeatureFlags(
        eager_notification=True,
        eager_factories_available=True,
        elide_local_rma_alloc=True,
        constexpr_is_local_smp=True,
        ready_future_shared_cell=True,
        when_all_shortcuts=True,
        nonvalue_fetching_atomics=True,
    ),
}


def flags_for(version: Version) -> FeatureFlags:
    """The feature set of a given build."""
    return _FLAGS_BY_VERSION[version]


def flag_names() -> tuple[str, ...]:
    """Every :class:`FeatureFlags` field name (spec validation helper)."""
    return tuple(f.name for f in fields(FeatureFlags))


def flag_delta(a: FeatureFlags, b: FeatureFlags) -> dict:
    """Field name -> ``(a_value, b_value)`` for every flag on which the
    two feature sets disagree.

    This is the A/B discipline's measurement device (see
    :mod:`repro.bench.ab`): an experiment's two arms must differ in
    *exactly* the declared toggle — the engine asserts
    ``flag_delta(arm_a, arm_b)`` covers the toggle keys and nothing else,
    so a spec can never silently compare configurations that drifted
    apart in some unrelated knob.
    """
    out = {}
    for f in fields(FeatureFlags):
        va, vb = getattr(a, f.name), getattr(b, f.name)
        if va != vb:
            out[f.name] = (va, vb)
    return out


@dataclass(frozen=True)
class RuntimeConfig:
    """Complete configuration of one simulated run.

    Combines the library build (version or explicit flag overrides), the
    machine profile name, and the conduit.  ``flags`` defaults to the
    version's standard feature set; benchmarks doing ablations pass custom
    flags.
    """

    version: Version = Version.V2021_3_6_EAGER
    machine: str = "generic"
    conduit: str = "smp"
    flags: FeatureFlags | None = None
    seed: int = 0
    #: relative timing jitter (0 = deterministic virtual time; >0 makes
    #: the paper's 20-sample/top-10 estimator meaningful — see
    #: repro.sim.stats)
    noise: float = 0.0

    def resolved_flags(self) -> FeatureFlags:
        if self.flags is not None:
            return self.flags
        flags = flags_for(self.version)
        if self.noise and flags.cost_batching:
            # jitter must be drawn per charge — exactly the per-charge work
            # batching removes.  A noisy run on a *default* build silently
            # gets the unbatched cost model; explicitly requesting both
            # (flags= with cost_batching on plus noise>0) still raises at
            # context construction.
            flags = flags.replace(cost_batching=False)
        return flags

    def describe(self) -> str:
        return (
            f"version={self.version.value} machine={self.machine} "
            f"conduit={self.conduit} seed={self.seed}"
        )
