"""``dist_object``: a collectively constructed, per-rank value with remote
fetch.

Mirrors ``upcxx::dist_object<T>``: every rank constructs the object (in
the same collective order — construction order assigns the identity), each
rank holds its own value, and :meth:`DistObject.fetch` retrieves another
rank's value asynchronously via RPC.

Fetches are allowed to race construction: UPC++ guarantees a fetch issued
before the target rank has constructed its ``dist_object`` completes once
it does.  The registry implements that by parking the reply until the
matching construction happens (exercised in tests by fetching from a rank
that constructs late).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.core.cell import PromiseCell
from repro.core.future import Future
from repro.errors import UpcxxError
from repro.rpc.rpc import rpc
from repro.runtime.context import current_ctx

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.context import RankContext


class DistRegistry:
    """World-level directory of (dist-id, rank) → value, with parked
    waiters for not-yet-constructed entries."""

    def __init__(self) -> None:
        self._values: dict[tuple[int, int], Any] = {}
        self._waiters: dict[tuple[int, int], list[PromiseCell]] = {}

    def register(self, dist_id: int, rank: int, value: Any) -> None:
        key = (dist_id, rank)
        if key in self._values:
            raise UpcxxError(
                f"dist_object id {dist_id} constructed twice on rank {rank}"
            )
        self._values[key] = value
        for cell in self._waiters.pop(key, ()):
            cell.values = (value,)
            cell.fulfill()

    def unregister(self, dist_id: int, rank: int) -> None:
        self._values.pop((dist_id, rank), None)

    def get_local(self, dist_id: int, rank: int) -> Any:
        try:
            return self._values[(dist_id, rank)]
        except KeyError:
            raise UpcxxError(
                f"dist_object id {dist_id} not (or no longer) constructed "
                f"on rank {rank}"
            ) from None

    def get_or_wait(self, ctx: "RankContext", dist_id: int, rank: int):
        """Value if present, else a future parked until construction."""
        key = (dist_id, rank)
        if key in self._values:
            return self._values[key]
        cell = PromiseCell(nvalues=1, deps=1)
        self._waiters.setdefault(key, []).append(cell)
        return Future(cell)


def _registry(ctx: "RankContext") -> DistRegistry:
    world = ctx.world
    reg = getattr(world, "_dist_registry", None)
    if reg is None:
        reg = DistRegistry()
        world._dist_registry = reg  # type: ignore[attr-defined]
    return reg


class DistObject:
    """One rank's slice of a distributed object.

    Construction is collective in spirit: every rank must construct its
    ``DistObject`` instances in the same order (the usual SPMD pattern),
    which is what makes the implicit identity agree — exactly the contract
    of ``upcxx::dist_object``.
    """

    __slots__ = ("_id", "_rank", "_ctx", "_live")

    def __init__(self, value: Any):
        ctx = current_ctx()
        self._ctx = ctx
        self._rank = ctx.rank
        self._id = self._next_id(ctx)
        self._live = True
        _registry(ctx).register(self._id, ctx.rank, value)

    @staticmethod
    def _next_id(ctx: "RankContext") -> int:
        n = getattr(ctx, "_dist_counter", 0)
        ctx._dist_counter = n + 1  # type: ignore[attr-defined]
        return n

    # -- local access ----------------------------------------------------

    @property
    def id(self) -> int:
        return self._id

    def local(self) -> Any:
        """This rank's value (``*obj`` in UPC++)."""
        self._check_live()
        return _registry(self._ctx).get_local(self._id, self._rank)

    def update_local(self, value: Any) -> None:
        """Replace this rank's value (plain mutation of the local slice)."""
        self._check_live()
        reg = _registry(self._ctx)
        reg.unregister(self._id, self._rank)
        reg.register(self._id, self._rank, value)

    # -- remote access -----------------------------------------------------

    def fetch(self, rank: int) -> Future:
        """``future<T>`` of ``rank``'s value (an RPC round trip, §II-A
        idiom for exchanging global pointers)."""
        self._check_live()
        ctx = self._ctx
        if not (0 <= rank < ctx.world_size):
            raise UpcxxError(f"fetch from invalid rank {rank}")
        dist_id = self._id

        def on_target():
            from repro.runtime.context import current_ctx as cc

            return _registry(cc()).get_or_wait(cc(), dist_id, rank)

        return rpc(rank, on_target)

    # -- teardown --------------------------------------------------------------

    def delete(self) -> None:
        """Drop this rank's slice (further access is an error)."""
        if self._live:
            _registry(self._ctx).unregister(self._id, self._rank)
            self._live = False

    def _check_live(self) -> None:
        if not self._live:
            raise UpcxxError("dist_object used after delete()")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DistObject id={self._id} rank={self._rank}>"
