"""Per-rank runtime state and the current-context mechanism.

Every simulated rank owns a :class:`RankContext`: its virtual clock, cost
model, progress engine, RNG, shared-segment allocator and conduit endpoint.
API functions (``rput``, ``rget``, atomic ops, …) resolve the calling
rank's context through a thread-local, exactly as the real UPC++ runtime
resolves "the current persona's state" through thread-local storage.

Code running outside :func:`repro.runtime.runtime.spmd_run` (unit tests,
REPL exploration) still gets a fully functional single-rank world: the
first call to :func:`current_ctx` on such a thread lazily creates an
*ambient* standalone world of one rank with the generic machine profile.
"""

from __future__ import annotations

import random
import threading
from typing import TYPE_CHECKING, Callable, Optional

from repro.errors import NotInitializedError, UpcxxError
from repro.runtime.config import FeatureFlags, RuntimeConfig
from repro.runtime.progress import ProgressEngine
from repro.sim.clock import VirtualClock
from repro.sim.costmodel import CostAction, CostModel
from repro.sim.machines import MachineProfile

if TYPE_CHECKING:  # pragma: no cover
    from repro.gasnet.aggregator import AmAggregator
    from repro.gasnet.conduit import Conduit
    from repro.memory.allocator import SharedAllocator
    from repro.memory.segment import Segment
    from repro.obs import ObsState
    from repro.runtime.adaptive_progress import AdaptiveProgressController
    from repro.runtime.runtime import World
    from repro.runtime.scheduler import SchedulerCore
    from repro.runtime.wait_hints import WaitTarget


class RankContext:
    """All runtime state owned by one simulated rank."""

    def __init__(
        self,
        rank: int,
        world: "World",
        config: RuntimeConfig,
        profile: MachineProfile,
    ):
        self.rank = rank
        self.world = world
        self.config = config
        self.flags: FeatureFlags = config.resolved_flags()
        self.profile = profile
        self.clock = VirtualClock()
        self.costs = CostModel(profile, self.clock)
        self.costs._ctx = self  # back-reference for tracing
        if config.noise:
            self.costs.noise = config.noise
            # independent of self.rng so timing jitter never perturbs
            # application-level randomness
            self.costs.noise_rng = random.Random(
                (config.seed * 7_368_787) ^ (rank * 104_729) ^ 0x5EED
            )
            # job-wide interference: one draw per (seed, world) shared by
            # all ranks — the correlated component a whole sample absorbs
            run_rng = random.Random(config.seed * 48_611 + 0xCAFE)
            self.costs.noise_run_factor = 1.0 + 2.0 * config.noise * abs(
                run_rng.gauss(0, 1)
            )
        if self.flags.cost_batching:
            if config.noise:
                raise UpcxxError(
                    "cost_batching is incompatible with timing noise: "
                    "jitter must be drawn per charge, which is exactly the "
                    "per-charge work batching removes"
                )
            self.costs.enable_batching()
        self.progress_engine = ProgressEngine(self)
        self.rng = random.Random((config.seed * 1_000_003) ^ (rank + 1))
        # wired by the runtime after construction:
        self.segment: "Segment" = None  # type: ignore[assignment]
        self.allocator: "SharedAllocator" = None  # type: ignore[assignment]
        self.conduit: "Conduit" = None  # type: ignore[assignment]
        #: per-rank AM aggregator; wired by the runtime only when
        #: ``flags.am_aggregation`` is set (None → zero overhead)
        self.am_agg: Optional["AmAggregator"] = None
        #: per-rank observability state; wired by the runtime only when
        #: ``flags.obs_spans`` is set (None → zero overhead)
        self.obs: Optional["ObsState"] = None
        #: adaptive progress controller; wired by the runtime only when
        #: ``flags.progress_adaptive`` is set (None → the static drain loop)
        self.progress_ctl: Optional["AdaptiveProgressController"] = None
        #: either substrate — CooperativeScheduler (thread-per-rank) or
        #: EventLoopScheduler; both expose yield_now/block_until
        self.scheduler: Optional["SchedulerCore"] = None
        #: precomputed gate for the wait-target machinery: with the flag
        #: off no target is ever pushed, so ``active_wait_target`` stays
        #: None and every consumer's behaviour is bit-identical
        self.wait_hints: bool = self.flags.wait_hints
        #: LIFO of published wait targets (waits nest: a callback run
        #: inside one wait's progress may itself wait)
        self._wait_targets: list["WaitTarget"] = []
        self._barrier_epoch = 0

    # -- identity -----------------------------------------------------------

    @property
    def world_size(self) -> int:
        return self.world.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RankContext rank={self.rank}/{self.world_size}>"

    # -- cost & progress shorthands ----------------------------------------

    def charge(self, action: CostAction, times: int = 1) -> None:
        self.costs.charge(action, times)

    def charge_bytes(self, action: CostAction, nbytes: int) -> None:
        self.costs.charge_bytes(action, nbytes)

    def progress(self) -> bool:
        """Run one pass of this rank's progress engine."""
        return self.progress_engine.progress()

    def has_incoming(self) -> bool:
        """True if a progress call now could do work (deferred
        notifications, LPCs, or arrived AMs)."""
        if self.progress_engine.has_pending():
            return True
        conduit = self.conduit
        return conduit is not None and conduit.has_incoming(self.rank)

    # -- scheduling ---------------------------------------------------------

    def yield_to_others(self) -> None:
        """Let other ranks run (no-op in a standalone 1-rank world)."""
        if self.scheduler is not None:
            self.scheduler.yield_now(self.rank)

    def block_until(
        self,
        wake_when: Callable[[], bool],
        wake: Optional[tuple] = None,
    ) -> None:
        """Block this rank until the predicate holds.

        ``wake`` optionally names the event that turns the predicate true
        (see :class:`~repro.runtime.switchpoints.BlockUntil`), letting the
        scheduler park the rank on a wake list instead of re-evaluating
        the predicate on every switch.

        In a standalone world there is nobody else to produce events, so a
        false predicate with no pending local work is an immediate deadlock.
        """
        if self.scheduler is not None:
            self.scheduler.block_until(self.rank, wake_when, wake)
        elif not wake_when():
            from repro.errors import DeadlockError

            raise DeadlockError(
                "single-rank world blocked on a condition that no pending "
                "event can satisfy"
            )

    def barrier(self) -> None:
        """Block until all ranks reach the barrier; synchronize clocks."""
        self.world.barrier(self)

    def barrier_gen(self):
        """Generator form of :meth:`barrier` for continuation rank bodies
        (``yield from ctx.barrier_gen()``)."""
        return self.world.barrier_gen(self)

    # -- wait targets -------------------------------------------------------

    def push_wait_target(self, target: "WaitTarget") -> None:
        """Publish what the current (innermost) blocking wait needs.

        Only called on the ``wait_hints`` paths — with the flag off the
        stack stays empty and :attr:`active_wait_target` is ``None``.
        """
        self._wait_targets.append(target)

    def pop_wait_target(self) -> None:
        self._wait_targets.pop()

    @property
    def active_wait_target(self) -> Optional["WaitTarget"]:
        """The innermost published wait target (None when nobody is in a
        hinted wait — the common case, one list check)."""
        targets = self._wait_targets
        return targets[-1] if targets else None

    # -- locality ----------------------------------------------------------------

    def is_local_rank(self, rank: int) -> bool:
        """Whether ``rank``'s segment is directly addressable from here.

        All of the paper's experiments run on one node with PSHM, so in a
        simulated world this is true for every rank sharing our "node"
        (the whole world unless the world was built multi-node).
        """
        conduit = self.conduit
        if conduit is not None:
            # served from the conduit's static-topology memo (counted)
            return conduit.pshm_reachable(self.rank, rank)
        return self.world.same_node(self.rank, rank)

    # -- AM aggregation -----------------------------------------------------

    def flush_aggregation(self, reason: str = "explicit") -> int:
        """Flush all buffered (destination-batched) AMs; returns entries
        shipped (0 when aggregation is off or nothing is buffered).
        ``reason`` tags the flush in the aggregator's stats (the progress
        engine passes ``progress_entry``/``progress_exit``)."""
        agg = self.am_agg
        if agg is not None and agg.has_pending():
            return agg.flush_all(reason=reason)
        return 0


# ---------------------------------------------------------------------------
# current-context resolution
# ---------------------------------------------------------------------------

_tls = threading.local()


def set_current_ctx(ctx: Optional[RankContext]) -> None:
    """Bind ``ctx`` as the calling thread's rank context (None to clear)."""
    _tls.ctx = ctx


def current_ctx_or_none() -> Optional[RankContext]:
    """The calling thread's context, or None (never creates one)."""
    return getattr(_tls, "ctx", None)


def current_ctx() -> RankContext:
    """The calling thread's context, creating the ambient standalone
    single-rank world on first use outside ``spmd_run``."""
    ctx = getattr(_tls, "ctx", None)
    if ctx is None:
        ctx = _make_ambient()
        _tls.ctx = ctx
    return ctx


def reset_ambient_ctx() -> None:
    """Discard the calling thread's ambient world (tests use this to get a
    fresh segment/clock)."""
    ctx = getattr(_tls, "ctx", None)
    if ctx is not None and getattr(ctx, "_is_ambient", False):
        _tls.ctx = None


def require_spmd_ctx() -> RankContext:
    """Like :func:`current_ctx` but refuses to auto-create a world."""
    ctx = current_ctx_or_none()
    if ctx is None:
        raise NotInitializedError()
    return ctx


def _make_ambient() -> RankContext:
    from repro.runtime.runtime import build_world  # local: avoids cycle

    world = build_world(RuntimeConfig())
    ctx = world.contexts[0]
    ctx._is_ambient = True  # type: ignore[attr-defined]
    return ctx
