"""Switch-point commands: the continuation protocol for rank bodies.

A rank body written as a generator *yields* switch commands instead of
calling the blocking scheduler primitives::

    def body():
        ...
        yield BlockUntil(lambda: cell.ready or ctx.has_incoming())
        ...
        yield YIELD_NOW

Under the event-loop scheduler the loop interprets each command in place —
a switch costs one generator resume.  Under the thread scheduler (and for
plain blocking call sites) :func:`run_blocking` drives the generator to
completion by translating every command into the context's blocking
primitives.  The library's blocking constructs (``Future.wait``,
``World.barrier``) are written once as generators and shared by both
substrates through this module, which is what keeps their charge sequences
— and therefore all virtual clocks — identical across substrates.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import SchedulerError


class SwitchCommand:
    """Base class of everything a continuation rank body may yield."""

    __slots__ = ()


class BlockUntil(SwitchCommand):
    """Suspend the yielding rank until ``wake_when()`` is true.

    Mirrors :meth:`RankContext.block_until`: the predicate is evaluated
    once immediately (no switch if already true), then re-evaluated by the
    scheduler's round-robin scan until it holds.

    ``wake`` optionally names the event(s) that can turn the predicate
    true, so the scheduler can park the rank on a wake list instead of
    re-evaluating the predicate on every switch (see
    :class:`~repro.runtime.scheduler.SchedulerCore`).  Recognized keys:

    * ``("cell", cell)`` — the predicate is
      ``cell.ready or ctx.has_incoming()``;
    * ``("epoch",)`` — the predicate is
      ``barrier epoch advanced or ctx.has_incoming()``.

    ``None`` (the default) keeps the legacy predicate-scan behaviour; any
    blocking site whose wake condition is not exactly one of the shapes
    above must leave it ``None``.
    """

    __slots__ = ("wake_when", "wake")

    def __init__(self, wake_when: Callable[[], bool], wake: tuple = None):
        self.wake_when = wake_when
        self.wake = wake


class YieldNow(SwitchCommand):
    """Give every other runnable rank a chance to run, then continue."""

    __slots__ = ()


#: shared singleton — the command carries no state, so bodies yield this
#: instead of allocating per switch
YIELD_NOW = YieldNow()


def run_blocking(ctx, gen):
    """Drive a switch-command generator to completion on a blocking
    substrate (a rank thread, a shim thread, or the ambient world); return
    the generator's return value.

    Exceptions raised while executing a command (teardown, deadlock) are
    thrown *into* the generator so its ``try/finally`` cleanup runs —
    exactly the unwind a plain call stack would see from a raising
    ``block_until``.
    """
    try:
        cmd = next(gen)
        while True:
            try:
                if type(cmd) is BlockUntil:
                    ctx.block_until(cmd.wake_when, cmd.wake)
                elif type(cmd) is YieldNow:
                    ctx.yield_to_others()
                else:
                    raise SchedulerError(
                        f"rank body yielded {cmd!r}; expected a SwitchCommand"
                    )
            except BaseException as exc:  # noqa: BLE001 - forwarded to body
                cmd = gen.throw(exc)
                continue
            cmd = gen.send(None)
    except StopIteration as stop:
        return stop.value
    finally:
        gen.close()
