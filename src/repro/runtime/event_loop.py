"""Single-threaded event-loop scheduler: every simulated rank on one loop.

The original substrate (:class:`~repro.runtime.scheduler.CooperativeScheduler`)
gives each rank an OS thread and passes a run token between them — two
thread context switches plus an Event round-trip per switch point, and one
live thread per rank.  This module replaces the substrate, not the policy:
rank bodies written as generators (yielding
:class:`~repro.runtime.switchpoints.SwitchCommand` objects) are resumed in
place by a single-threaded trampoline, so a switch costs one generator
``send`` and a 1024-rank world needs zero extra threads.

Plain-function bodies still run through a per-rank *thread shim* — one
helper thread driven by the same Event ping-pong the original scheduler
used.  Functionally identical, none of the speedup: it exists so un-ported
apps keep working under ``FeatureFlags.sched_event_loop``.

Every switch decision goes through :class:`SchedulerCore`'s
promote-and-pick scan — the same code object the thread substrate calls —
and the loop mirrors the token-passing control flow branch for branch
(immediate-true predicates, conservative self-resume, the deadlock
declaration in both the blocking and the finishing path, first-error-wins
teardown).  Interleavings, virtual clocks, deadlock state dumps, and
teardown behavior are therefore identical between substrates; the parity
tests in ``tests/test_event_loop.py`` compare switch traces event by event.
"""

from __future__ import annotations

import inspect
import threading
from types import GeneratorType
from typing import Any, Optional, Sequence

from repro.errors import SchedulerError
from repro.runtime.context import current_ctx_or_none, set_current_ctx
from repro.runtime.scheduler import (
    SchedulerCore,
    _BLOCKED,
    _DONE,
    _READY,
)
from repro.runtime.switchpoints import (
    BlockUntil,
    SwitchCommand,
    YieldNow,
    YIELD_NOW,
    run_blocking,
)

# task-outcome kinds (identity-compared on the hot path)
_CMD = "cmd"
_FINISHED = "finished"
_ERROR = "error"


class _GenTask:
    """A rank body running as a generator continuation on the loop thread."""

    __slots__ = ("gen", "started")

    kind = "gen"

    def __init__(self, gen):
        self.gen = gen
        self.started = False

    def resume(self, throw: Optional[BaseException] = None):
        self.started = True
        try:
            if throw is not None:
                cmd = self.gen.throw(throw)
            else:
                cmd = self.gen.send(None)
        except StopIteration as stop:
            return _FINISHED, stop.value
        except BaseException as exc:  # noqa: BLE001 - routed to teardown
            return _ERROR, exc
        if isinstance(cmd, SwitchCommand):
            return _CMD, cmd
        return _ERROR, SchedulerError(
            f"rank body yielded {cmd!r}; expected a SwitchCommand"
        )


class _ThreadShimTask:
    """Compatibility shim: a plain-function rank body on a helper thread.

    The loop and the shim thread hand control back and forth through a
    pair of Events, exactly one of the two running at any moment — the
    original token-passing cost, preserved so un-ported bodies behave
    identically (just without the event loop's speedup).
    """

    kind = "shim"

    def __init__(self, rank: int, ctx, fn, args: Sequence[Any]):
        self._rank = rank
        self._ctx = ctx
        self._fn = fn
        self._args = args
        self._resume_evt = threading.Event()
        self._post_evt = threading.Event()
        self._outcome = None
        self._throw: Optional[BaseException] = None
        self._thread: Optional[threading.Thread] = None
        self.started = False

    def owns_current_thread(self) -> bool:
        return self._thread is threading.current_thread()

    # -- loop side ---------------------------------------------------------

    def resume(self, throw: Optional[BaseException] = None):
        self._throw = throw
        if not self.started:
            self.started = True
            self._thread = threading.Thread(
                target=self._main,
                name=f"repro-shim-{self._rank}",
                daemon=True,
            )
            self._thread.start()
        else:
            self._resume_evt.set()
        self._post_evt.wait()
        self._post_evt.clear()
        out = self._outcome
        self._outcome = None
        return out

    # -- shim-thread side --------------------------------------------------

    def post_cmd(self, cmd: SwitchCommand) -> None:
        """Park the shim thread on a switch command until the loop resumes
        it (raising here if the loop is propagating a teardown)."""
        self._outcome = (_CMD, cmd)
        self._post_evt.set()
        self._resume_evt.wait()
        self._resume_evt.clear()
        if self._throw is not None:
            exc = self._throw
            self._throw = None
            raise exc

    def _main(self) -> None:
        set_current_ctx(self._ctx)
        try:
            rv = self._fn(*self._args)
            if isinstance(rv, GeneratorType):
                # the body returned a continuation (e.g. a lambda wrapping
                # a generator function): drive it here, on the blocking
                # substrate this shim provides
                rv = run_blocking(self._ctx, rv)
        except BaseException as exc:  # noqa: BLE001 - routed to teardown
            set_current_ctx(None)
            self._outcome = (_ERROR, exc)
            self._post_evt.set()
            return
        set_current_ctx(None)
        self._outcome = (_FINISHED, rv)
        self._post_evt.set()


class EventLoopScheduler(SchedulerCore):
    """All ranks of one simulated job multiplexed onto the calling thread.

    Usage (done by :func:`repro.runtime.runtime.spmd_run` when
    ``FeatureFlags.sched_event_loop`` is set)::

        sched = EventLoopScheduler(ranks)
        results = sched.run(world, fn, args)
        if sched.first_error() is not None: raise sched.first_error()

    ``fn`` being a generator function selects the fast continuation path;
    any other callable runs under the thread shim.
    """

    def __init__(
        self,
        nranks: int,
        switch_trace: Optional[list] = None,
        *,
        wake_list: bool = True,
    ):
        super().__init__(nranks, switch_trace, wake_list=wake_list)
        self._tasks: list = [None] * nranks
        self._results: list = [None] * nranks
        self._contexts: Optional[list] = None
        self._loop_thread: Optional[threading.Thread] = None

    # -- context-facing API (reached through RankContext) -------------------

    def yield_now(self, rank: int) -> None:
        task = self._tasks[rank]
        if type(task) is _ThreadShimTask and task.owns_current_thread():
            task.post_cmd(YIELD_NOW)
            return
        # inline call from a continuation task: legal only when no actual
        # switch would happen (mirrors the thread substrate's fast return)
        if self._switch_trace is not None:
            self._switch_trace.append(("yield", rank))
        if self._pick_next(rank, include_self=False) is None:
            return
        raise SchedulerError(
            f"rank {rank} called yield_to_others from inside a continuation "
            "task while another rank is runnable; continuation bodies must "
            "yield switch commands (yield YIELD_NOW) instead"
        )

    def block_until(self, rank: int, wake_when, wake=None) -> None:
        task = self._tasks[rank]
        if type(task) is _ThreadShimTask and task.owns_current_thread():
            task.post_cmd(BlockUntil(wake_when, wake))
            return
        if wake_when():
            return
        raise SchedulerError(
            f"rank {rank} called block_until from inside a continuation "
            "task with a pending predicate; continuation bodies must yield "
            "switch commands (yield from fut.wait_gen() / barrier_gen()) "
            "instead of calling blocking primitives inline"
        )

    # -- driver --------------------------------------------------------------

    def run(self, world, fn, args: Sequence[Any] = ()) -> list:
        """Run ``fn(*args)`` on every rank to completion; return per-rank
        results (the first failure is recorded, not raised — the caller
        checks :meth:`first_error`, mirroring the thread driver)."""
        if self._started:
            raise SchedulerError("scheduler already started")
        self._started = True
        # wire the wake fabric: completion sites notify this loop and every
        # ctx routes blocking through it.  spmd_run already attached when it
        # built the loop (idempotent); for a nested/ambient world driven
        # directly this is what keeps wake-list scheduling on instead of
        # the old silent predicate-scan fallback.
        world.attach_scheduler(self)
        contexts = world.contexts
        self._contexts = contexts
        genfunc = inspect.isgeneratorfunction(fn)
        for r in range(self.nranks):
            if genfunc:
                self._tasks[r] = _GenTask(fn(*args))
            else:
                self._tasks[r] = _ThreadShimTask(r, contexts[r], fn, args)
        self._loop_thread = threading.current_thread()
        prev_ctx = current_ctx_or_none()
        try:
            self._drive(contexts)
        finally:
            set_current_ctx(prev_ctx)
        return list(self._results)

    # -- loop internals ------------------------------------------------------

    def _drive(self, contexts) -> None:
        states = self._states
        preds = self._preds
        tasks = self._tasks
        trace = self._switch_trace
        cur = 0
        throw: Optional[BaseException] = None
        bound = -1  # rank whose ctx is bound to the loop thread's TLS
        while True:
            task = tasks[cur]
            if task.kind == "gen" and bound != cur:
                set_current_ctx(contexts[cur])
                bound = cur
            kind, payload = task.resume(throw)
            throw = None
            if kind is _CMD:
                cmd = payload
                if type(cmd) is BlockUntil:
                    pred = cmd.wake_when
                    if pred():
                        continue  # immediate-true: no switch (thread parity)
                    if trace is not None:
                        trace.append(("block", cur))
                    self._enter_blocked(cur, pred, cmd.wake)
                    nxt = self._pick_next(cur, include_self=True)
                    if nxt == cur:
                        # own predicate turned true during the scan —
                        # conservatively re-run (thread parity)
                        states[cur] = _READY
                        preds[cur] = None
                        continue
                    if nxt is None:
                        self._deadlock_unwind(cur)
                        return
                    self.switches += 1
                    cur = nxt
                else:  # YieldNow
                    if trace is not None:
                        trace.append(("yield", cur))
                    nxt = self._pick_next(cur, include_self=False)
                    if nxt is None or nxt == cur:
                        continue
                    self.switches += 1
                    cur = nxt
            elif kind is _FINISHED:
                if trace is not None:
                    trace.append(("finish", cur))
                self._results[cur] = payload
                states[cur] = _DONE
                self._ready_mask &= ~(1 << cur)
                preds[cur] = None
                nxt = self._pick_next(cur, include_self=False)
                if nxt is not None:
                    self.switches += 1
                    cur = nxt
                    continue
                if any(s is _BLOCKED for s in states):
                    # survivors are all blocked with false predicates: hung
                    if trace is not None:
                        trace.append(("deadlock", tuple(states)))
                    self._record_error(self._deadlock_error())
                    self._teardown(skip=None)
                return
            else:  # _ERROR
                if trace is not None:
                    trace.append(("fail", cur))
                self._record_error(payload)
                states[cur] = _DONE
                self._ready_mask &= ~(1 << cur)
                preds[cur] = None
                self._teardown(skip=cur)
                return

    def _deadlock_unwind(self, cur: int) -> None:
        """Deadlock declared at ``cur``'s blocking switch point: the
        declaring rank sees the original state-dump error at its blocking
        call (thread substrate: ``_declare_deadlock`` raises in place);
        every other live rank sees the teardown wrap."""
        if self._switch_trace is not None:
            self._switch_trace.append(("deadlock", tuple(self._states)))
        exc = self._deadlock_error()
        self._record_error(exc)
        task = self._tasks[cur]
        if task.kind == "gen":
            # the declarer's cleanup (finally blocks) runs on the loop
            # thread — keep its own ctx bound while it unwinds
            set_current_ctx(self._contexts[cur])
        kind, payload = task.resume(exc)
        while kind is _CMD:
            kind, payload = task.resume(self._teardown_error())
        if kind is _FINISHED:
            self._results[cur] = payload
        if self._states[cur] is _BLOCKED:
            self._blocked -= 1
            self._unregister_wake(cur)
        self._states[cur] = _DONE
        self._ready_mask &= ~(1 << cur)
        self._preds[cur] = None
        self._teardown(skip=cur)

    def _teardown(self, skip: Optional[int]) -> None:
        """Unwind every live rank with the teardown error (rank order —
        the thread substrate wakes them in OS order, but unwinds touch
        only per-rank state, so the order is unobservable)."""
        states = self._states
        for r in range(self.nranks):
            if r == skip or states[r] is _DONE:
                continue
            task = self._tasks[r]
            if task is None or not task.started:
                # never ran: no user code has executed — mirror the thread
                # runner's silent pre-start teardown return
                if task is not None and task.kind == "gen":
                    task.gen.close()
                if states[r] is _BLOCKED:
                    self._blocked -= 1
                    self._unregister_wake(r)
                states[r] = _DONE
                self._ready_mask &= ~(1 << r)
                continue
            if task.kind == "gen":
                # unwind cleanup runs on the loop thread: bind the rank's
                # own ctx so rank_me()/charges land on the right rank
                set_current_ctx(self._contexts[r])
            kind, payload = task.resume(self._teardown_error())
            while kind is _CMD:
                kind, payload = task.resume(self._teardown_error())
            if kind is _FINISHED:
                self._results[r] = payload
            if states[r] is _BLOCKED:
                self._blocked -= 1
                self._unregister_wake(r)
            states[r] = _DONE
            self._ready_mask &= ~(1 << r)
            self._preds[r] = None
