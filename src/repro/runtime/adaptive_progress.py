"""Online control of the progress engine's drain loop.

The progress engine of :mod:`repro.runtime.progress` is static in two ways:

* **drain depth** — every poll drains until quiescent, so a rank that
  enters progress behind a deep backlog pays the whole backlog at once
  even when the caller only needed one completion;
* **poll cadence** — every call charges a full ``PROGRESS_POLL`` even when
  the engine can prove there is nothing to do (no deferred notifications,
  no LPCs, no arrived AMs, no parked aggregation), which is the common
  case for wait loops spinning on a remote event.

This module applies the same EWMA machinery as the aggregation controller
(:mod:`repro.gasnet.adaptive`) to both dimensions.  Estimators, updated
once per *full* poll (``a = flags.progress_ewma_alpha``)::

    d_hat <- a*depth + (1-a)*d_hat      deferred-queue depth at poll entry
    y_hat <- a*y     + (1-a)*y_hat      y = 1 if the poll did work else 0

Control law::

    cap      = clamp(progress_min_batch, floor(1 + 2*d_hat), progress_max_batch)
    interval = clamp(progress_min_poll_interval, floor(1 / max(y_hat, eps)),
                     progress_max_poll_interval)

``cap`` bounds dispatches per poll — a 2x slack over the typical depth so
steady traffic still drains to quiescence while a pathological backlog is
amortized across polls.  ``interval`` thins provably-empty polls: up to
``interval - 1`` consecutive empty progress calls charge the cheap
``PROGRESS_POLL_SKIP`` instead of a full ``PROGRESS_POLL``; a busy stream
(``y_hat`` near 1) drives the interval back to 1.

Latency guarantee — the batch cap must not strand notifications, so the
engine enforces ``progress_max_age_ticks`` exactly like the aggregator's
``agg_max_age_ticks``: an entry older than the bound is dispatched *past*
the cap, and enqueue-time activity opportunistically retires aged entries
(see :meth:`repro.runtime.progress.ProgressEngine.progress`).

The controller is pure bookkeeping plus one cheap modeled charge
(``PROGRESS_ADAPT`` per full poll, costed in every machine profile); its
decisions are exported via :meth:`AdaptiveProgressController.snapshot` and
rolled up world-wide by :func:`repro.sim.stats.progress_stats`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.config import FeatureFlags

#: retained control decisions per rank (same convention as the aggregation
#: controller: a converged controller stops producing entries)
TRAJECTORY_CAP = 1024


@dataclass(frozen=True)
class ProgressDecision:
    """One recorded controller output (emitted only when it changes)."""

    t_ns: float
    drain_cap: int
    poll_interval: int


@dataclass(frozen=True)
class ProgressControllerSnapshot:
    """Point-in-time view of one rank's progress controller (see
    :meth:`AdaptiveProgressController.snapshot`)."""

    rank: int
    #: full polls observed (each charges PROGRESS_POLL + PROGRESS_ADAPT)
    full_polls: int
    #: provably-empty polls elided (each charges PROGRESS_POLL_SKIP)
    skipped_polls: int
    #: thunks dispatched under the controller (drain loop + aged retires)
    dispatched: int
    #: polls that hit the drain cap with non-aged work left over
    capped_polls: int
    #: enqueue-time mini-drains triggered by the age bound
    aged_drains: int
    #: thunks retired because they outlived ``progress_max_age_ticks``
    aged_dispatched: int
    #: targeted-drain scans that found awaited work (``wait_hints``)
    hinted_scans: int
    #: thunks dispatched ahead of the cap for an active wait target
    hinted_dispatched: int
    #: EWMA of deferred-queue depth at full-poll entry (None before data)
    depth_ewma: float | None
    #: EWMA of the did-work fraction of full polls (None before data)
    yield_ewma: float | None
    #: current drain batch cap
    drain_cap: int
    #: current poll-thinning interval
    poll_interval: int
    #: recorded control decisions, oldest first
    trajectory: tuple[ProgressDecision, ...]

    @property
    def elision_ratio(self) -> float:
        """Fraction of progress calls elided as skips."""
        calls = self.full_polls + self.skipped_polls
        if not calls:
            return 0.0
        return self.skipped_polls / calls


class AdaptiveProgressController:
    """Per-rank online sizing of the drain batch cap and poll cadence."""

    __slots__ = (
        "alpha", "max_age_ns",
        "floor_batch", "ceil_batch", "floor_interval", "ceil_interval",
        "depth_ewma", "yield_ewma", "_drain_cap", "_poll_interval",
        "_skips_since_full",
        "full_polls", "skipped_polls", "dispatched", "capped_polls",
        "aged_drains", "aged_dispatched", "hinted_scans",
        "hinted_dispatched", "trajectory",
    )

    def __init__(self, flags: "FeatureFlags"):
        self.alpha = flags.progress_ewma_alpha
        self.max_age_ns = flags.progress_max_age_ticks
        self.floor_batch = flags.progress_min_batch
        self.ceil_batch = flags.progress_max_batch
        self.floor_interval = flags.progress_min_poll_interval
        self.ceil_interval = flags.progress_max_poll_interval
        self.depth_ewma: float | None = None
        self.yield_ewma: float | None = None
        # before any data: drain like the static engine (ceiling) and poll
        # on every call (floor) — the controller only deviates on evidence
        self._drain_cap = self.ceil_batch
        self._poll_interval = self.floor_interval
        self._skips_since_full = 0
        self.full_polls = 0
        self.skipped_polls = 0
        self.dispatched = 0
        self.capped_polls = 0
        self.aged_drains = 0
        self.aged_dispatched = 0
        self.hinted_scans = 0
        self.hinted_dispatched = 0
        self.trajectory: deque[ProgressDecision] = deque(maxlen=TRAJECTORY_CAP)

    # -- current outputs ---------------------------------------------------

    @property
    def drain_cap(self) -> int:
        return self._drain_cap

    @property
    def poll_interval(self) -> int:
        return self._poll_interval

    def may_skip(self) -> bool:
        """Whether the cadence allows eliding one more provably-empty poll
        (the engine has already established there is no possible work)."""
        return self._skips_since_full < self._poll_interval - 1

    # -- observations ------------------------------------------------------

    def on_skip(self) -> None:
        """Record one elided empty poll."""
        self.skipped_polls += 1
        self._skips_since_full += 1

    def on_poll(self, depth: int) -> int:
        """Record full-poll entry at deferred-queue ``depth``; return the
        drain cap to apply to this poll."""
        self._skips_since_full = 0
        self.full_polls += 1
        if self.depth_ewma is None:
            self.depth_ewma = float(depth)
        else:
            self.depth_ewma = (
                self.alpha * depth + (1 - self.alpha) * self.depth_ewma
            )
        cap = int(1 + 2 * self.depth_ewma)
        self._drain_cap = max(self.floor_batch, min(cap, self.ceil_batch))
        return self._drain_cap

    def on_drained(
        self, now_ns: float, dispatched: int, leftover: int, did_work: bool
    ) -> None:
        """Record full-poll exit: ``dispatched`` thunks run, ``leftover``
        still queued (cap hit), ``did_work`` the poll's overall yield."""
        self.dispatched += dispatched
        if leftover:
            self.capped_polls += 1
        y = 1.0 if did_work else 0.0
        if self.yield_ewma is None:
            self.yield_ewma = y
        else:
            self.yield_ewma = self.alpha * y + (1 - self.alpha) * self.yield_ewma
        eps = 1.0 / self.ceil_interval
        interval = int(1.0 / max(self.yield_ewma, eps))
        self._poll_interval = max(
            self.floor_interval, min(interval, self.ceil_interval)
        )
        decision = ProgressDecision(now_ns, self._drain_cap, self._poll_interval)
        if (
            not self.trajectory
            or (self.trajectory[-1].drain_cap,
                self.trajectory[-1].poll_interval)
            != (decision.drain_cap, decision.poll_interval)
        ):
            self.trajectory.append(decision)

    def on_aged_drain(self, dispatched: int) -> None:
        """Record one enqueue-time mini-drain retiring aged entries."""
        self.aged_drains += 1
        self.aged_dispatched += dispatched
        self.dispatched += dispatched

    def on_hinted(self, dispatched: int) -> None:
        """Record one targeted drain that dispatched awaited thunks ahead
        of the batch cap (``wait_hints``)."""
        self.hinted_scans += 1
        self.hinted_dispatched += dispatched
        self.dispatched += dispatched

    # -- export ------------------------------------------------------------

    def snapshot(self, rank: int) -> ProgressControllerSnapshot:
        return ProgressControllerSnapshot(
            rank=rank,
            full_polls=self.full_polls,
            skipped_polls=self.skipped_polls,
            dispatched=self.dispatched,
            capped_polls=self.capped_polls,
            aged_drains=self.aged_drains,
            aged_dispatched=self.aged_dispatched,
            hinted_scans=self.hinted_scans,
            hinted_dispatched=self.hinted_dispatched,
            depth_ewma=self.depth_ewma,
            yield_ewma=self.yield_ewma,
            drain_cap=self._drain_cap,
            poll_interval=self._poll_interval,
            trajectory=tuple(self.trajectory),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<AdaptiveProgressController polls={self.full_polls} "
            f"skips={self.skipped_polls} cap={self._drain_cap} "
            f"interval={self._poll_interval}>"
        )
