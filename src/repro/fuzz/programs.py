"""Seeded random op programs with mode-independent outcomes.

A :class:`FuzzProgram` is a phase-structured SPMD workload.  Phases are
separated by a barrier / drain / barrier fence, and within each phase every
cell of the shared table plays exactly one *role*, chosen so the final
state is independent of completion-notification timing — the property the
differential harness (:mod:`repro.fuzz.runner`) checks across eager,
deferred, and adaptive-progress runs:

``frozen``
    read-only this phase: ``get`` values are fixed by earlier phases, so
    every mode reads the same value no matter when the read executes.
``put:K``
    written only by rank ``K`` (any rank may not read it this phase).
    AM delivery is FIFO per (source, destination) pair — including through
    the aggregation layer, whose per-destination buffers flush in append
    order — so the cell deterministically ends at K's last program-order
    put.
``amo_xor`` / ``amo_add``
    mutated only through the one commutative atomic op (xor updates may
    also arrive as reply-less ``rpc_ff`` applications); any interleaving
    yields the same final value.  The two op kinds are never mixed on one
    cell: xor and add do not commute with each other.

RPCs call a pure function of their argument, so per-op return values are
deterministic regardless of when the target executes them.

Random *wait points* (``wait_all``) and bare ``progress`` calls are
sprinkled through each rank's op list; value-producing ops (``get``,
``rpc``) record their results in wait order, value-less ops are tracked by
a future or by the phase's shared promise.  The phase fence then makes the
next phase's roles sound: all futures waited, the promise finalized, a
barrier, a drain to quiescence (delivering stray ``rpc_ff`` updates — the
handlers send no further AMs), and a closing barrier.

Programs are additionally *blocked-heavy*: ``spin`` ops charge pure local
work (staggering the ranks' virtual clocks), and each phase interleaves
0–2 extra mid-phase barriers at a random per-rank position (every rank
gets the same count — barriers are collective).  Together they produce
staggered barrier arrivals and long-parked waits, exercising the
scheduler's blocked-rank machinery (wake lists vs. the predicate scan)
rather than only the all-ready fast path.

Programs are plain data — JSON round-trippable via
:func:`program_to_json` / :func:`program_from_json` — so a failing program
can be shipped as a CI artifact and replayed exactly.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass

#: (ranks, n_nodes, conduit) topologies sampled by the generator; the
#: multi-node rows route a healthy fraction of ops off-node
_TOPOLOGIES = (
    (2, 1, "smp"),
    (4, 1, "smp"),
    (4, 1, "udp"),
    (4, 2, "udp"),
    (4, 2, "ibv"),
    (6, 2, "mpi"),
)

_ROLE_FROZEN = "frozen"
_ROLE_AMO_XOR = "amo_xor"
_ROLE_AMO_ADD = "amo_add"


@dataclass(frozen=True)
class FuzzPhase:
    """One barrier-fenced phase: cell roles plus per-rank op lists.

    ``roles[owner][idx]`` is ``"frozen"``, ``"amo_xor"``, ``"amo_add"``,
    or ``"put:K"``; ``ops[rank]`` is this rank's op dicts in issue order.
    """

    roles: tuple[tuple[str, ...], ...]
    ops: tuple[tuple[dict, ...], ...]


@dataclass(frozen=True)
class FuzzProgram:
    """A complete differential-fuzz workload (see module docstring)."""

    seed: int
    ranks: int
    n_nodes: int
    conduit: str
    #: table words per rank
    words: int
    phases: tuple[FuzzPhase, ...]

    @property
    def op_count(self) -> int:
        return sum(
            len(rank_ops) for ph in self.phases for rank_ops in ph.ops
        )


def _gen_roles(rng: random.Random, ranks: int, words: int):
    roles = []
    for _owner in range(ranks):
        row = []
        for _idx in range(words):
            r = rng.random()
            if r < 0.35:
                row.append(_ROLE_FROZEN)
            elif r < 0.60:
                row.append(_ROLE_AMO_XOR)
            elif r < 0.75:
                row.append(_ROLE_AMO_ADD)
            else:
                row.append(f"put:{rng.randrange(ranks)}")
        roles.append(tuple(row))
    return tuple(roles)


def _cells_with(roles, want: str):
    return [
        (owner, idx)
        for owner, row in enumerate(roles)
        for idx, role in enumerate(row)
        if role == want
    ]


def _gen_rank_ops(
    rng: random.Random, me: int, ranks: int, roles, n_ops: int
) -> tuple[dict, ...]:
    my_puts = [
        (owner, idx)
        for owner, row in enumerate(roles)
        for idx, role in enumerate(row)
        if role == f"put:{me}"
    ]
    xors = _cells_with(roles, _ROLE_AMO_XOR)
    adds = _cells_with(roles, _ROLE_AMO_ADD)
    frozen = _cells_with(roles, _ROLE_FROZEN)

    kinds = ["rpc", "wait_all", "progress", "spin"]
    if my_puts:
        kinds += ["put"] * 3
    if xors:
        kinds += ["amo_xor"] * 3 + ["rpc_ff"] * 2
    if adds:
        kinds += ["amo_add"] * 2
    if frozen:
        kinds += ["get"] * 3

    ops: list[dict] = []
    for _ in range(n_ops):
        kind = rng.choice(kinds)
        if kind == "put":
            owner, idx = rng.choice(my_puts)
            ops.append(
                {
                    "kind": "put",
                    "owner": owner,
                    "idx": idx,
                    "value": rng.getrandbits(32),
                    "track": rng.choice(("future", "promise")),
                }
            )
        elif kind in ("amo_xor", "amo_add"):
            owner, idx = rng.choice(xors if kind == "amo_xor" else adds)
            ops.append(
                {
                    "kind": kind,
                    "owner": owner,
                    "idx": idx,
                    "value": rng.getrandbits(32),
                    "track": rng.choice(("future", "promise")),
                }
            )
        elif kind == "rpc_ff":
            owner, idx = rng.choice(xors)
            ops.append(
                {
                    "kind": "rpc_ff",
                    "owner": owner,
                    "idx": idx,
                    "value": rng.getrandbits(32),
                }
            )
        elif kind == "get":
            owner, idx = rng.choice(frozen)
            ops.append({"kind": "get", "owner": owner, "idx": idx})
        elif kind == "rpc":
            ops.append(
                {
                    "kind": "rpc",
                    "dst": rng.randrange(ranks),
                    "value": rng.getrandbits(32),
                }
            )
        elif kind == "wait_all":
            ops.append({"kind": "wait_all"})
        elif kind == "spin":
            # pure local work: staggers this rank's virtual clock so the
            # collective points below see genuinely uneven arrivals
            ops.append({"kind": "spin", "n": rng.randint(5, 60)})
        else:
            ops.append({"kind": "progress", "n": rng.randint(1, 3)})
    return tuple(ops)


def _insert_barriers(rng: random.Random, ops, n_barriers: int):
    """Interleave ``n_barriers`` mid-phase barriers into every rank's op
    list at independent random positions (same count per rank — barriers
    are collective).  Uneven positions + ``spin`` clock skew make early
    arrivals park long while stragglers work: the blocked-heavy shape."""
    if not n_barriers:
        return ops
    out = []
    for rank_ops in ops:
        row = list(rank_ops)
        for _ in range(n_barriers):
            row.insert(rng.randint(0, len(row)), {"kind": "barrier"})
        out.append(tuple(row))
    return tuple(out)


def generate_program(seed: int) -> FuzzProgram:
    """The deterministic program for ``seed`` (same seed, same program)."""
    rng = random.Random(seed)
    ranks, n_nodes, conduit = rng.choice(_TOPOLOGIES)
    words = rng.choice((4, 8, 12))
    n_phases = rng.randint(1, 2)
    phases = []
    for _ in range(n_phases):
        roles = _gen_roles(rng, ranks, words)
        ops = tuple(
            _gen_rank_ops(rng, me, ranks, roles, rng.randint(4, 12))
            for me in range(ranks)
        )
        ops = _insert_barriers(rng, ops, rng.randint(0, 2))
        phases.append(FuzzPhase(roles=roles, ops=ops))
    return FuzzProgram(
        seed=seed,
        ranks=ranks,
        n_nodes=n_nodes,
        conduit=conduit,
        words=words,
        phases=tuple(phases),
    )


# ---------------------------------------------------------------------------
# JSON round-trip (CI artifact format)
# ---------------------------------------------------------------------------


def program_to_json(program: FuzzProgram, indent: int | None = 2) -> str:
    """Serialize a program to the artifact JSON format."""
    doc = {
        "seed": program.seed,
        "ranks": program.ranks,
        "n_nodes": program.n_nodes,
        "conduit": program.conduit,
        "words": program.words,
        "phases": [
            {
                "roles": [list(row) for row in ph.roles],
                "ops": [list(rank_ops) for rank_ops in ph.ops],
            }
            for ph in program.phases
        ],
    }
    return json.dumps(doc, indent=indent)


def program_from_json(text: str) -> FuzzProgram:
    """Rebuild a program from :func:`program_to_json` output."""
    doc = json.loads(text)
    phases = tuple(
        FuzzPhase(
            roles=tuple(tuple(row) for row in ph["roles"]),
            ops=tuple(
                tuple(dict(op) for op in rank_ops)
                for rank_ops in ph["ops"]
            ),
        )
        for ph in doc["phases"]
    )
    return FuzzProgram(
        seed=doc["seed"],
        ranks=doc["ranks"],
        n_nodes=doc["n_nodes"],
        conduit=doc["conduit"],
        words=doc["words"],
        phases=phases,
    )
