"""CI entry point for the differential fuzzer.

Runs ``--programs`` generated programs per seed through every mode
(eager / defer / adaptive-progress), checking cross-mode agreement, and
replays every ``--replay-every``-th program under the adaptive mode to
assert bit-identical re-execution.  On the first failure the offending
program (with the mismatch descriptions) is written to ``--artifact`` as
JSON and the process exits non-zero — CI uploads that file so the run can
be reproduced locally::

    PYTHONPATH=src python -m repro.fuzz --seeds 1 2 3 --programs 200

    # replay a failing program artifact
    PYTHONPATH=src python -m repro.fuzz --replay fuzz-failure.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.fuzz.programs import (
    generate_program,
    program_from_json,
    program_to_json,
)
from repro.fuzz.runner import (
    CX_MODES,
    MODES,
    SCHEDULERS,
    check_program,
    run_program,
)


def _program_seed(seed: int, index: int) -> int:
    """The per-program generator seed (stable, well separated)."""
    return seed * 1_000_003 + index


def _fail(args, seed: int, index: int, program, mismatches) -> int:
    doc = json.loads(program_to_json(program, indent=None))
    artifact = {
        "generator_seed": seed,
        "program_index": index,
        "program_seed": _program_seed(seed, index),
        "mismatches": mismatches,
        "program": doc,
    }
    with open(args.artifact, "w") as fh:
        json.dump(artifact, fh, indent=2)
    print(
        f"MISMATCH at seed={seed} index={index}: {mismatches}\n"
        f"program written to {args.artifact}; replay with\n"
        f"  PYTHONPATH=src python -m repro.fuzz --replay {args.artifact}",
        file=sys.stderr,
    )
    return 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz", description=__doc__
    )
    parser.add_argument(
        "--seeds", type=int, nargs="+", default=[1, 2, 3],
        help="generator seeds (each yields --programs programs)",
    )
    parser.add_argument(
        "--programs", type=int, default=200,
        help="programs per seed (default 200)",
    )
    parser.add_argument(
        "--replay-every", type=int, default=10,
        help="replay every Nth program to assert bit-identical re-runs",
    )
    parser.add_argument(
        "--artifact", default="fuzz-failure.json",
        help="where to write the failing program on mismatch",
    )
    parser.add_argument(
        "--replay", metavar="ARTIFACT",
        help="re-run the program in a failure artifact (or a bare "
        "program JSON) instead of generating new ones",
    )
    parser.add_argument(
        "--sched", choices=SCHEDULERS + ("both",), default="thread",
        help="scheduler substrate to run on; 'both' additionally asserts "
        "the event loop reproduces the thread scheduler exactly, clocks "
        "included (default: thread)",
    )
    parser.add_argument(
        "--cx", nargs="+", choices=CX_MODES[1:], default=[],
        metavar="VARIANT",
        help="completion-kind swap variants (continuation, counter): each "
        "program additionally runs with its future-tracked ops swapped "
        "for the named kinds, and every (mode, variant) outcome must "
        "reproduce that mode's future baseline (default: none)",
    )
    args = parser.parse_args(argv)
    schedulers = SCHEDULERS if args.sched == "both" else (args.sched,)
    cx_modes = tuple(args.cx)

    if args.replay:
        with open(args.replay) as fh:
            doc = json.load(fh)
        program = program_from_json(
            json.dumps(doc["program"] if "program" in doc else doc)
        )
        mismatches = check_program(
            program, schedulers=schedulers, cx_modes=cx_modes
        )
        if mismatches:
            print(f"still mismatching: {mismatches}", file=sys.stderr)
            return 1
        print("replay clean: all modes agree")
        return 0

    total = 0
    t0 = time.time()
    for seed in args.seeds:
        print(f"seed {seed}: {args.programs} programs ...", flush=True)
        for index in range(args.programs):
            program = generate_program(_program_seed(seed, index))
            mismatches = check_program(
                program, schedulers=schedulers, cx_modes=cx_modes
            )
            if mismatches:
                return _fail(args, seed, index, program, mismatches)
            if args.replay_every and index % args.replay_every == 0:
                a = run_program(program, "adaptive", schedulers[0])
                b = run_program(program, "adaptive", schedulers[0])
                if a != b:
                    return _fail(
                        args, seed, index, program,
                        ["adaptive replay not bit-identical"],
                    )
                if cx_modes:
                    cx = cx_modes[index % len(cx_modes)]
                    a = run_program(
                        program, "adaptive", schedulers[0], cx=cx
                    )
                    b = run_program(
                        program, "adaptive", schedulers[0], cx=cx
                    )
                    if a != b:
                        return _fail(
                            args, seed, index, program,
                            [f"adaptive/{cx} replay not bit-identical"],
                        )
            total += 1
    dt = time.time() - t0
    variants = 1 + len(cx_modes)
    print(
        f"OK: {total} programs x {len(MODES)} modes "
        f"x {variants} cx variant(s) "
        f"x {len(schedulers)} scheduler(s) agree ({dt:.1f}s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
