"""Execution and differential comparison of fuzz programs.

:func:`run_program` interprets a :class:`~repro.fuzz.programs.FuzzProgram`
under one named mode and returns a :class:`FuzzOutcome`;
:func:`check_program` runs all modes and returns human-readable mismatch
descriptions (empty list = the program is confluent, as constructed).

Modes::

    eager     2021.3.6 eager   — notifications bypass the progress queue
    defer     2021.3.6 defer   — every completion takes the queue
    adaptive  defer + progress_adaptive with tight knobs (small batch cap,
              short age bound, poll thinning) so capped drains, aged
              mini-drains, and elided polls all actually fire
    hinted    adaptive + wait_hints — every future/promise wait publishes
              its target, so targeted drains (mid-queue removal ahead of
              the cap) and wait-triggered aggregation flushes fire on the
              same programs

The runs must agree on final memory, per-op recorded values, and
completion counts.  Virtual clocks legitimately differ across modes (that
difference *is* the paper's subject) but must be bit-identical when the
same (program, mode) pair is replayed — :func:`run_program` is a pure
function of its arguments, which the replay test asserts.

**Completion-kind swaps (``cx``).**  Beyond the mode axis, a program can
be re-run with its future-tracked value-less operations randomly swapped
for the ``cx_continuations`` completion kinds (the swap coin is a pure
function of the program seed and rank, so every run of a given ``cx``
makes identical choices):

    future        the baseline — ops tracked exactly as generated
    continuation  swapped ops carry ``operation_cx.as_continuation`` and
                  a fence spins until every issued callback fired
    counter       each phase's swapped ops share one ``CxCounter``,
                  waited at the phase fence

A swapped run must reproduce the future baseline's tables, values, and
completion counts under every mode (clocks legitimately differ — the
swap changes what is charged), and must itself be bit-identical across
scheduler substrates, clocks included.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro import (
    AtomicDomain,
    CxCounter,
    barrier_gen,
    current_ctx,
    new_array,
    operation_cx,
    rget,
    rput,
    rpc,
    rpc_ff,
    spmd_run,
)
from repro.core.promise import Promise
from repro.memory.global_ptr import GlobalPtr
from repro.runtime.config import FeatureFlags, Version, flags_for
from repro.runtime.switchpoints import BlockUntil
from repro.fuzz.programs import FuzzProgram
from repro.sim.costmodel import CostAction

_MASK64 = (1 << 64) - 1

#: the differential mode set (name -> (version, flags))
MODES = ("eager", "defer", "adaptive", "hinted")

#: completion-kind swap variants ("future" = the unmodified baseline)
CX_MODES = ("future", "continuation", "counter")

#: op kinds eligible for a completion-kind swap: value-less and
#: future-tracked (gets/rpcs produce values the swap has no slot for;
#: promise-tracked ops already share one notification object)
_SWAPPABLE = ("put", "amo_xor", "amo_add")

#: scheduler substrates a program can run on (must be indistinguishable —
#: clocks included — for any program; the differential check enforces it)
SCHEDULERS = ("thread", "event")


def mode_flags(mode: str) -> tuple[Version, FeatureFlags]:
    """The (version, flags) pair a named mode runs under."""
    if mode == "eager":
        v = Version.V2021_3_6_EAGER
        return v, flags_for(v)
    if mode == "defer":
        v = Version.V2021_3_6_DEFER
        return v, flags_for(v)
    if mode == "adaptive":
        v = Version.V2021_3_6_DEFER
        return v, flags_for(v).replace(
            progress_adaptive=True,
            progress_min_batch=2,
            progress_max_batch=8,
            progress_max_poll_interval=16,
            progress_max_age_ticks=2000.0,
        )
    if mode == "hinted":
        # the adaptive knobs plus wait targeting: the tight batch cap
        # means the fuzz programs' wait_all fences genuinely race the cap,
        # so targeted mid-queue removal and wait flushes both exercise
        v, flags = mode_flags("adaptive")
        return v, flags.replace(wait_hints=True, wait_flush_fill_frac=0.5)
    raise ValueError(f"unknown fuzz mode {mode!r}; known: {MODES}")


@dataclass(frozen=True)
class FuzzOutcome:
    """Everything a mode run must reproduce."""

    #: final table words, per owner rank
    tables: tuple[tuple[int, ...], ...]
    #: per rank: (phase, op index, value) for every get/rpc, in wait order
    values: tuple[tuple[tuple[int, int, int], ...], ...]
    #: per rank: (futures waited, promises finalized)
    completions: tuple[tuple[int, int], ...]
    #: per rank final virtual clock (replay determinism only — modes may
    #: legitimately differ here)
    clock_ns: tuple[float, ...]


def _pure_fn(x: int) -> int:
    """The rpc payload: a pure splitmix64-style mix of the argument."""
    z = (x + 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


def _apply_xor(offset: int, ts, value: int) -> None:
    """rpc_ff handler: commutative xor into the owner's table word."""
    tctx = current_ctx()
    seg = tctx.segment
    old = seg.read_scalar(offset, ts)
    seg.write_scalar(offset, ts, (int(old) ^ value) & _MASK64)


def _swap_plan(program: FuzzProgram, me: int, cx: str) -> dict:
    """Which (phase, serial) ops this rank swaps under ``cx``.

    A pure function of (program, rank, cx): the coin stream is seeded from
    the program seed and rank only, so every mode/scheduler run of a given
    swap variant makes identical choices — the differential comparison
    depends on it.  Roughly 3 in 4 eligible ops swap, leaving genuinely
    mixed future/continuation programs in the corpus.
    """
    if cx == "future":
        return {}
    tag = 1 if cx == "continuation" else 2
    rng = random.Random((program.seed * 2654435761 + me) ^ (tag << 48))
    plan: dict[tuple[int, int], bool] = {}
    for phase_i, phase in enumerate(program.phases):
        for serial, op in enumerate(phase.ops[me]):
            if op["kind"] in _SWAPPABLE and op.get("track") == "future":
                plan[(phase_i, serial)] = rng.random() < 0.75
    return plan


def _fuzz_body(program: FuzzProgram, cx: str = "future"):
    # a generator continuation: runs in place on the event-loop scheduler
    # and through the rank thread's trampoline on the thread scheduler
    ctx = current_ctx()
    me = ctx.rank
    ranks = program.ranks
    arr = new_array("u64", program.words)
    view = ctx.segment.view_array(arr.offset, arr.ts, program.words)
    view[:] = 0
    # lock-step allocation: offsets agree across ranks (cf. the GUPS body)
    bases = [GlobalPtr(r, arr.offset, arr.ts) for r in range(ranks)]
    ad = AtomicDomain({"bit_xor", "add"}, "u64")
    swaps = _swap_plan(program, me, cx)
    yield from barrier_gen()

    values: list[tuple[int, int, int]] = []
    futures_waited = 0
    promises_done = 0
    # continuation-swap bookkeeping: each fired callback stands in for one
    # waited future, so the completion counts match the baseline exactly
    cont_issued = 0
    cont_fired = [0]
    cont_counted = 0
    for phase_i, phase in enumerate(program.phases):
        pending: list[tuple[int, object, bool]] = []
        prom = Promise()
        phase_ctr = None
        ctr_members = 0
        if cx == "counter":
            ctr_members = sum(
                1 for (p, _s), on in swaps.items() if p == phase_i and on
            )
            if ctr_members:
                phase_ctr = CxCounter(ctr_members)

        def wait_pending():
            nonlocal futures_waited, cont_counted
            for serial, fut, record in pending:
                v = yield from fut.wait_gen()
                futures_waited += 1
                if record:
                    values.append((phase_i, serial, int(v) & _MASK64))
            pending.clear()
            # the wait_all fence covers swapped continuations too: spin
            # until every issued callback has fired (off-node acks arrive
            # through progress; local ones fired inline at issue)
            while cont_fired[0] < cont_issued:
                ctx.progress()
                if cont_fired[0] >= cont_issued:
                    break
                yield BlockUntil(
                    lambda: cont_fired[0] >= cont_issued
                    or ctx.has_incoming()
                )
            futures_waited += cont_issued - cont_counted
            cont_counted = cont_issued

        def _on_cont():
            cont_fired[0] += 1

        def swap_cx(serial):
            """The completion to attach to a swapped op (None = keep the
            generated future tracking)."""
            nonlocal cont_issued
            if not swaps.get((phase_i, serial)):
                return None
            if cx == "continuation":
                cont_issued += 1
                return operation_cx.as_continuation(_on_cont)
            return operation_cx.as_counter(phase_ctr)

        for serial, op in enumerate(phase.ops[me]):
            kind = op["kind"]
            if kind == "put":
                dest = bases[op["owner"]] + op["idx"]
                if op["track"] == "promise":
                    rput(op["value"], dest, operation_cx.as_promise(prom))
                else:
                    swapped = swap_cx(serial)
                    if swapped is not None:
                        rput(op["value"], dest, swapped)
                    else:
                        pending.append(
                            (serial, rput(op["value"], dest), False)
                        )
            elif kind in ("amo_xor", "amo_add"):
                dest = bases[op["owner"]] + op["idx"]
                meth = ad.bit_xor if kind == "amo_xor" else ad.add
                if op["track"] == "promise":
                    meth(dest, op["value"], operation_cx.as_promise(prom))
                else:
                    swapped = swap_cx(serial)
                    if swapped is not None:
                        meth(dest, op["value"], swapped)
                    else:
                        pending.append(
                            (serial, meth(dest, op["value"]), False)
                        )
            elif kind == "rpc_ff":
                dest = bases[op["owner"]] + op["idx"]
                rpc_ff(op["owner"], _apply_xor, dest.offset, dest.ts,
                       op["value"])
            elif kind == "get":
                dest = bases[op["owner"]] + op["idx"]
                pending.append((serial, rget(dest), True))
            elif kind == "rpc":
                fut = rpc(op["dst"], _pure_fn, op["value"])
                pending.append((serial, fut, True))
            elif kind == "wait_all":
                yield from wait_pending()
            elif kind == "progress":
                for _ in range(op["n"]):
                    ctx.progress()
            elif kind == "spin":
                # pure local work — skews this rank's clock so collective
                # points below see staggered arrivals
                ctx.charge(CostAction.FUNCTION_CALL, op["n"])
            elif kind == "barrier":
                # mid-phase collective: early arrivals park long while
                # clock-skewed stragglers finish their remaining ops
                yield from barrier_gen()
            else:  # pragma: no cover - generator never emits other kinds
                raise ValueError(f"unknown fuzz op kind {kind!r}")

        # phase fence: settle local completions, deliver stray rpc_ff
        # updates, and only then let anyone read the next phase's roles
        yield from wait_pending()
        if phase_ctr is not None:
            # one blocking wait covers every swapped op of the phase; each
            # member event stands in for one baseline future wait
            yield from phase_ctr.wait_gen()
            futures_waited += ctr_members
        yield from prom.finalize().wait_gen()
        promises_done += 1
        yield from barrier_gen()
        while ctx.progress():
            pass
        yield from barrier_gen()

    return (
        tuple(int(x) for x in view),
        tuple(values),
        (futures_waited, promises_done),
        ctx.clock.now_ns,
    )


def run_program(
    program: FuzzProgram,
    mode: str,
    scheduler: str = "thread",
    cx: str = "future",
) -> FuzzOutcome:
    """Execute ``program`` under ``mode``; a pure function of both.

    ``scheduler`` picks the substrate: ``"thread"`` (one thread per rank)
    or ``"event"`` (every rank a continuation on one event loop).  The
    substrates are required to be observably identical — same tables,
    values, completions, *and clocks* — so the outcome is a pure function
    of (program, mode) alone.

    ``cx`` picks the completion-kind swap variant (see module docstring);
    non-baseline variants run with ``cx_continuations`` enabled and must
    reproduce the baseline's tables/values/completions under every mode.
    """
    version, flags = mode_flags(mode)
    if scheduler == "event":
        flags = flags.replace(sched_event_loop=True)
    elif scheduler != "thread":
        raise ValueError(
            f"unknown scheduler {scheduler!r}; known: {SCHEDULERS}"
        )
    if cx not in CX_MODES:
        raise ValueError(f"unknown cx variant {cx!r}; known: {CX_MODES}")
    if cx != "future":
        flags = flags.replace(cx_continuations=True)
    res = spmd_run(
        _fuzz_body,
        args=(program, cx),
        ranks=program.ranks,
        version=version,
        machine="generic",
        conduit=program.conduit,
        n_nodes=program.n_nodes,
        seed=program.seed,
        flags=flags,
    )
    return FuzzOutcome(
        tables=tuple(v[0] for v in res.values),
        values=tuple(v[1] for v in res.values),
        completions=tuple(v[2] for v in res.values),
        clock_ns=tuple(v[3] for v in res.values),
    )


def check_program(
    program: FuzzProgram,
    modes: tuple[str, ...] = MODES,
    schedulers: tuple[str, ...] = ("thread",),
    cx_modes: tuple[str, ...] = (),
) -> list[str]:
    """Run ``program`` under every mode; describe any disagreement.

    Returns an empty list when all modes agree on tables, values, and
    completion counts (clocks are exempt — they are the measurement).

    With more than one entry in ``schedulers``, every mode additionally
    runs on each extra substrate, and those runs must match the first
    substrate's outcome *exactly* — clocks included — since the scheduler
    swap is an implementation detail, not a semantic mode.

    ``cx_modes`` adds completion-kind swap variants ("continuation" /
    "counter"): each (mode, cx) run must reproduce that mode's future
    baseline on tables, values, and completion counts (clocks exempt —
    the swap changes which actions are charged), and must itself be
    bit-identical, clocks included, across the scheduler substrates.
    """
    outcomes = {
        mode: run_program(program, mode, schedulers[0]) for mode in modes
    }
    base_mode = modes[0]
    base = outcomes[base_mode]
    mismatches = []

    def compare(other, ref, what: str, clocks: bool) -> None:
        if other.tables != ref.tables:
            mismatches.append(f"final memory differs: {what}")
        if other.values != ref.values:
            mismatches.append(f"per-op values differ: {what}")
        if other.completions != ref.completions:
            mismatches.append(
                f"completion counts differ: {what} "
                f"({ref.completions} vs {other.completions})"
            )
        if clocks and other.clock_ns != ref.clock_ns:
            mismatches.append(f"virtual clocks differ: {what}")

    for mode in modes[1:]:
        compare(outcomes[mode], base, f"{base_mode} vs {mode}", False)
    for scheduler in schedulers[1:]:
        for mode in modes:
            other = run_program(program, mode, scheduler)
            if other != outcomes[mode]:
                mismatches.append(
                    f"scheduler substrates disagree under {mode}: "
                    f"{schedulers[0]} vs {scheduler}"
                )
    for cx in cx_modes:
        if cx == "future":
            continue
        for mode in modes:
            swapped = run_program(program, mode, schedulers[0], cx=cx)
            compare(
                swapped, outcomes[mode],
                f"{mode}/future vs {mode}/{cx}", False,
            )
            for scheduler in schedulers[1:]:
                other = run_program(program, mode, scheduler, cx=cx)
                if other != swapped:
                    mismatches.append(
                        "scheduler substrates disagree under "
                        f"{mode}/{cx}: {schedulers[0]} vs {scheduler}"
                    )
    return mismatches
