"""Differential fuzzing of notification semantics.

Seeded random SPMD op programs (put/get/amo/rpc mixes over local and
off-node targets, with random wait points) are executed under eager,
deferred, and adaptive-progress configurations; all three must agree on
final memory state, per-op values, and completion counts, and each
(program, flags) pair must replay bit-identically (including virtual
clocks).  See :mod:`repro.fuzz.programs` for the program format and
confluence argument, :mod:`repro.fuzz.runner` for execution, and
``python -m repro.fuzz`` for the CI entry point.
"""

from repro.fuzz.programs import (
    FuzzPhase,
    FuzzProgram,
    generate_program,
    program_from_json,
    program_to_json,
)
from repro.fuzz.runner import (
    CX_MODES,
    MODES,
    SCHEDULERS,
    FuzzOutcome,
    check_program,
    mode_flags,
    run_program,
)

__all__ = [
    "FuzzPhase",
    "FuzzProgram",
    "generate_program",
    "program_from_json",
    "program_to_json",
    "CX_MODES",
    "MODES",
    "SCHEDULERS",
    "FuzzOutcome",
    "mode_flags",
    "run_program",
    "check_program",
]
