"""One-sided gets (``upcxx::rget``).

Two forms, exactly as in UPC++ and as benchmarked in Figures 2–4:

* :func:`rget` — *value-producing*: returns ``future<T>``.  Even when the
  transfer completes synchronously, the ready future must hold the value,
  so a promise-cell allocation is unavoidable (§III-B);
* :func:`rget_into` — *non-value*: the data lands in caller-provided local
  memory and the notification is a value-less ``future<>`` — which, under
  eager notification with the shared ready cell, costs no allocation at
  all.  This is why the microbenchmarks show non-value gets beating value
  gets by up to ~90%.

Gets support source and operation completion (no remote event).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.core.completions import Completions, CxDispatcher, operation_cx
from repro.core.events import Event
from repro.errors import InvalidGlobalPointer, LocalityError
from repro.memory.global_ptr import GlobalPtr, LocalRef
from repro.runtime.context import current_ctx
from repro.sim.costmodel import CostAction

_GET_EVENTS = frozenset({Event.SOURCE, Event.OPERATION})


def rget(src: GlobalPtr, comps: Optional[Completions] = None):
    """Read one element from ``src``; the operation event carries the
    value (``future<T>``)."""
    ctx = current_ctx()
    ctx.charge(CostAction.RMA_CALL_OVERHEAD)
    if src.is_null:
        raise InvalidGlobalPointer("rget from a null global pointer")
    if comps is None:
        comps = operation_cx.as_future()
    disp = CxDispatcher(
        ctx,
        comps,
        supported=_GET_EVENTS,
        value_event=Event.OPERATION,
        nvalues=1,
        op_name="rget",
    )
    if src.is_local(ctx):
        if not ctx.flags.elide_local_rma_alloc:
            ctx.charge(CostAction.HEAP_ALLOC_OP_DESCRIPTOR)
            ctx.charge(CostAction.HEAP_FREE)
        ctx.charge(CostAction.GPTR_DOWNCAST)
        ctx.charge(CostAction.CPU_LOAD)
        disp.mark_injected(src.rank, src.ts.size, local=True)
        value = ctx.world.segment_of(src.rank).read_scalar(src.offset, src.ts)
        disp.notify_sync(Event.OPERATION, (value,))
        return disp.result()
    return _remote_get(ctx, disp, src, count=None, dest=None)


def rget_into(
    src: GlobalPtr,
    dest: Union[GlobalPtr, LocalRef],
    count: int = 1,
    comps: Optional[Completions] = None,
):
    """Read ``count`` elements from ``src`` into caller-owned local memory
    (``dest``); notification is value-less (``future<>``)."""
    ctx = current_ctx()
    ctx.charge(CostAction.RMA_CALL_OVERHEAD)
    if src.is_null:
        raise InvalidGlobalPointer("rget_into from a null global pointer")
    if count < 1:
        raise ValueError("rget_into needs count >= 1")
    dest_ref = _resolve_dest(ctx, dest)
    if comps is None:
        comps = operation_cx.as_future()
    disp = CxDispatcher(
        ctx, comps, supported=_GET_EVENTS, op_name="rget_into"
    )
    nbytes = count * src.ts.size
    if src.is_local(ctx):
        if not ctx.flags.elide_local_rma_alloc:
            ctx.charge(CostAction.HEAP_ALLOC_OP_DESCRIPTOR)
            ctx.charge(CostAction.HEAP_FREE)
        ctx.charge(CostAction.GPTR_DOWNCAST)
        disp.mark_injected(src.rank, nbytes, local=True)
        data = ctx.world.segment_of(src.rank).read_array(
            src.offset, src.ts, count
        )
        if nbytes <= 8:
            ctx.charge(CostAction.MEMCPY_8B)
        else:
            ctx.charge_bytes(CostAction.MEMCPY_PER_BYTE, nbytes)
        dest_ref.segment.write_array(dest_ref.offset, dest_ref.ts, data)
        disp.notify_sync(Event.OPERATION)
        return disp.result()
    return _remote_get(ctx, disp, src, count=count, dest=dest_ref)


def rget_bulk(src: GlobalPtr, count: int, comps: Optional[Completions] = None):
    """Read ``count`` elements; the operation event carries a numpy array
    (value-producing bulk get)."""
    ctx = current_ctx()
    ctx.charge(CostAction.RMA_CALL_OVERHEAD)
    if src.is_null:
        raise InvalidGlobalPointer("rget_bulk from a null global pointer")
    if count < 1:
        raise ValueError("rget_bulk needs count >= 1")
    if comps is None:
        comps = operation_cx.as_future()
    disp = CxDispatcher(
        ctx,
        comps,
        supported=_GET_EVENTS,
        value_event=Event.OPERATION,
        nvalues=1,
        op_name="rget_bulk",
    )
    nbytes = count * src.ts.size
    if src.is_local(ctx):
        if not ctx.flags.elide_local_rma_alloc:
            ctx.charge(CostAction.HEAP_ALLOC_OP_DESCRIPTOR)
            ctx.charge(CostAction.HEAP_FREE)
        ctx.charge(CostAction.GPTR_DOWNCAST)
        disp.mark_injected(src.rank, nbytes, local=True)
        ctx.charge_bytes(CostAction.MEMCPY_PER_BYTE, nbytes)
        data = ctx.world.segment_of(src.rank).read_array(
            src.offset, src.ts, count
        )
        disp.notify_sync(Event.OPERATION, (data,))
        return disp.result()
    return _remote_get(ctx, disp, src, count=count, dest=None, bulk=True)


def _resolve_dest(ctx, dest: Union[GlobalPtr, LocalRef]) -> LocalRef:
    if isinstance(dest, LocalRef):
        return dest
    if isinstance(dest, GlobalPtr):
        if not ctx.is_local_rank(dest.rank):
            raise LocalityError(
                "rget_into destination must be locally addressable"
            )
        return LocalRef(
            ctx.world.segment_of(dest.rank), dest.offset, dest.ts
        )
    raise TypeError("rget_into dest must be a GlobalPtr or LocalRef")


def _remote_get(ctx, disp, src: GlobalPtr, *, count, dest, bulk=False):
    """Off-node request/reply; the reply carries the data."""
    if ctx.flags.eager_notification:
        ctx.charge(CostAction.LOCALITY_BRANCH)  # the one extra branch
    ctx.charge(CostAction.HEAP_ALLOC_OP_DESCRIPTOR)
    ctx.charge(CostAction.HEAP_FREE)
    disp.notify_sync(Event.SOURCE)
    pending = disp.pend(Event.OPERATION)
    initiator = ctx.rank
    n = count or 1
    nbytes = n * src.ts.size

    def on_target(tctx):
        seg = tctx.world.segment_of(src.rank)
        if count is None:
            tctx.charge(CostAction.CPU_LOAD)
            data = seg.read_scalar(src.offset, src.ts)
        else:
            tctx.charge_bytes(CostAction.MEMCPY_PER_BYTE, nbytes)
            data = seg.read_array(src.offset, src.ts, count)

        def on_reply(ictx, data=data):
            if dest is not None:
                dest.segment.write_array(dest.offset, dest.ts, data)
                ictx.charge_bytes(CostAction.MEMCPY_PER_BYTE, nbytes)
                pending.complete(())
            elif count is None:
                pending.complete((data,))
            else:
                pending.complete((data,))

        tctx.conduit.send_am(
            tctx, initiator, on_reply, nbytes=nbytes, label="get_reply"
        )

    ctx.conduit.send_am(
        ctx, src.rank, on_target, nbytes=0, label="get_req",
        aggregatable=True,
    )
    disp.mark_injected(src.rank, nbytes, local=False)
    return disp.result()
