"""``upcxx::copy``-style transfers between two global pointers.

Four locality cases, composed from the put/get primitives' cost structure:

* both local — one synchronous memcpy (shared-memory bypass);
* local → remote — a bulk put;
* remote → local — a bulk get into the destination;
* remote → remote — staged through the initiator (get then put), as a
  CPU-mediated implementation would do without peer-to-peer offload.
"""

from __future__ import annotations

from typing import Optional

from repro.core.completions import Completions, CxDispatcher, operation_cx
from repro.core.events import Event
from repro.errors import InvalidGlobalPointer
from repro.memory.global_ptr import GlobalPtr, LocalRef
from repro.rma.get import rget_bulk, rget_into
from repro.rma.put import rput_bulk
from repro.runtime.context import current_ctx
from repro.sim.costmodel import CostAction

_COPY_EVENTS = frozenset({Event.SOURCE, Event.OPERATION})


def copy(
    src: GlobalPtr,
    dest: GlobalPtr,
    count: int,
    comps: Optional[Completions] = None,
):
    """Copy ``count`` elements from ``src`` to ``dest`` asynchronously."""
    ctx = current_ctx()
    if src.is_null or dest.is_null:
        raise InvalidGlobalPointer("copy with a null global pointer")
    if src.ts is not dest.ts:
        raise InvalidGlobalPointer(
            "copy requires matching element types "
            f"({src.ts.name} vs {dest.ts.name})"
        )
    if count < 1:
        raise ValueError("copy needs count >= 1")

    src_local = src.is_local(ctx)
    dest_local = dest.is_local(ctx)

    if src_local and dest_local:
        ctx.charge(CostAction.RMA_CALL_OVERHEAD)
        if comps is None:
            comps = operation_cx.as_future()
        disp = CxDispatcher(
            ctx, comps, supported=_COPY_EVENTS, op_name="copy"
        )
        if not ctx.flags.elide_local_rma_alloc:
            ctx.charge(CostAction.HEAP_ALLOC_OP_DESCRIPTOR)
            ctx.charge(CostAction.HEAP_FREE)
        ctx.charge(CostAction.GPTR_DOWNCAST, 2)
        disp.mark_injected(dest.rank, count * src.ts.size, local=True)
        data = ctx.world.segment_of(src.rank).read_array(
            src.offset, src.ts, count
        )
        ctx.world.segment_of(dest.rank).write_array(dest.offset, dest.ts, data)
        nbytes = count * src.ts.size
        if nbytes <= 8:
            ctx.charge(CostAction.MEMCPY_8B)
        else:
            ctx.charge_bytes(CostAction.MEMCPY_PER_BYTE, nbytes)
        disp.notify_sync(Event.SOURCE)
        disp.notify_sync(Event.OPERATION)
        return disp.result()

    if src_local and not dest_local:
        data = ctx.world.segment_of(src.rank).read_array(
            src.offset, src.ts, count
        )
        return rput_bulk(data, dest, comps)

    if not src_local and dest_local:
        dest_ref = LocalRef(
            ctx.world.segment_of(dest.rank), dest.offset, dest.ts
        )
        return rget_into(src, dest_ref, count, comps)

    # remote → remote: stage through the initiator
    if comps is None:
        comps = operation_cx.as_future()
    if any(r.event is Event.SOURCE for r in comps.requests):
        from repro.errors import CompletionError

        raise CompletionError(
            "copy between two remote pointers supports only operation "
            "completion (the initiator does not own the source buffer)"
        )
    disp = CxDispatcher(ctx, comps, supported=_COPY_EVENTS, op_name="copy")
    pending = disp.pend(Event.OPERATION)
    disp.mark_injected(dest.rank, count * src.ts.size, local=False)
    rget_bulk(src, count).then(
        lambda data: rput_bulk(data, dest).then(
            lambda: pending.complete(())
        )
    )
    return disp.result()
