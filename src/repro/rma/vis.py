"""Vector-Index-Strided (VIS) RMA: strided and indexed puts/gets.

Models the ``upcxx::rput_strided`` / ``rput_irregular`` family used for
halo exchanges and gather/scatter access patterns.  A strided transfer
moves ``count`` elements whose consecutive targets are ``stride`` elements
apart; an indexed transfer scatters/gathers at explicit element indices.

Cost model: one RMA call + one completion set for the whole transfer,
with per-element copy costs — this is exactly why coarse-grained VIS
operations benefit little from eager notification (the per-operation
overhead the paper removes is amortized over the payload), which the
stencil application uses as a negative control.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.completions import Completions, CxDispatcher, operation_cx
from repro.core.events import Event
from repro.errors import InvalidGlobalPointer
from repro.memory.global_ptr import GlobalPtr
from repro.runtime.context import current_ctx
from repro.sim.costmodel import CostAction

_VIS_EVENTS = frozenset({Event.SOURCE, Event.OPERATION})


def _start_vis(ctx, comps: Optional[Completions], op_name: str):
    ctx.charge(CostAction.RMA_CALL_OVERHEAD)
    if comps is None:
        comps = operation_cx.as_future()
    return CxDispatcher(ctx, comps, supported=_VIS_EVENTS, op_name=op_name)


def _local_vis_epilogue(ctx, disp, rank: int, nbytes: int):
    disp.mark_injected(rank, nbytes, local=True)
    ctx.charge(CostAction.GPTR_DOWNCAST)
    ctx.charge_bytes(CostAction.MEMCPY_PER_BYTE, nbytes)
    disp.notify_sync(Event.SOURCE)
    disp.notify_sync(Event.OPERATION)
    return disp.result()


def rput_strided(
    values,
    dest: GlobalPtr,
    count: int,
    stride: int,
    comps: Optional[Completions] = None,
):
    """Write ``count`` elements at ``dest, dest+stride, dest+2*stride, …``.

    ``stride`` is in elements and must be nonzero (negative walks
    backward, as with C++ strided iterators).
    """
    ctx = current_ctx()
    disp = _start_vis(ctx, comps, "rput_strided")
    if dest.is_null:
        raise InvalidGlobalPointer("rput_strided to a null global pointer")
    if count < 1:
        raise ValueError("rput_strided needs count >= 1")
    if stride == 0:
        raise ValueError("rput_strided needs a nonzero stride")
    arr = np.asarray(values, dtype=dest.ts.dtype)
    if arr.shape != (count,):
        raise ValueError(
            f"rput_strided expects exactly {count} values, got {arr.shape}"
        )
    if not dest.is_local(ctx):
        return _remote_strided_put(ctx, disp, arr, dest, count, stride)
    seg = ctx.world.segment_of(dest.rank)
    for i in range(count):
        elem = dest + i * stride
        seg.write_scalar(elem.offset, dest.ts, arr[i])
    return _local_vis_epilogue(ctx, disp, dest.rank, count * dest.ts.size)


def rget_strided(
    src: GlobalPtr,
    count: int,
    stride: int,
    comps: Optional[Completions] = None,
):
    """``future<ndarray>`` of ``count`` elements read at stride from
    ``src``."""
    ctx = current_ctx()
    if comps is None:
        comps = operation_cx.as_future()
    ctx.charge(CostAction.RMA_CALL_OVERHEAD)
    disp = CxDispatcher(
        ctx,
        comps,
        supported=_VIS_EVENTS,
        value_event=Event.OPERATION,
        nvalues=1,
        op_name="rget_strided",
    )
    if src.is_null:
        raise InvalidGlobalPointer("rget_strided from a null global pointer")
    if count < 1:
        raise ValueError("rget_strided needs count >= 1")
    if stride == 0:
        raise ValueError("rget_strided needs a nonzero stride")
    if not src.is_local(ctx):
        return _remote_strided_get(ctx, disp, src, count, stride)
    seg = ctx.world.segment_of(src.rank)
    disp.mark_injected(src.rank, count * src.ts.size, local=True)
    ctx.charge(CostAction.GPTR_DOWNCAST)
    ctx.charge_bytes(CostAction.MEMCPY_PER_BYTE, count * src.ts.size)
    out = np.empty(count, dtype=src.ts.dtype)
    for i in range(count):
        elem = src + i * stride
        out[i] = seg.read_scalar(elem.offset, src.ts)
    disp.notify_sync(Event.OPERATION, (out,))
    return disp.result()


def rput_indexed(
    values,
    base: GlobalPtr,
    indices: Sequence[int],
    comps: Optional[Completions] = None,
):
    """Scatter ``values[k]`` to ``base + indices[k]`` (irregular put)."""
    ctx = current_ctx()
    disp = _start_vis(ctx, comps, "rput_indexed")
    if base.is_null:
        raise InvalidGlobalPointer("rput_indexed to a null global pointer")
    idx = list(indices)
    arr = np.asarray(values, dtype=base.ts.dtype)
    if arr.shape != (len(idx),):
        raise ValueError("rput_indexed needs one value per index")
    if not idx:
        raise ValueError("rput_indexed needs at least one index")
    if not base.is_local(ctx):
        return _remote_indexed_put(ctx, disp, arr, base, idx)
    seg = ctx.world.segment_of(base.rank)
    for k, i in enumerate(idx):
        elem = base + i
        seg.write_scalar(elem.offset, base.ts, arr[k])
    return _local_vis_epilogue(ctx, disp, base.rank, len(idx) * base.ts.size)


def rget_indexed(
    base: GlobalPtr,
    indices: Sequence[int],
    comps: Optional[Completions] = None,
):
    """Gather ``base + indices[k]`` into a ``future<ndarray>``."""
    ctx = current_ctx()
    if comps is None:
        comps = operation_cx.as_future()
    ctx.charge(CostAction.RMA_CALL_OVERHEAD)
    disp = CxDispatcher(
        ctx,
        comps,
        supported=_VIS_EVENTS,
        value_event=Event.OPERATION,
        nvalues=1,
        op_name="rget_indexed",
    )
    if base.is_null:
        raise InvalidGlobalPointer("rget_indexed from a null global pointer")
    idx = list(indices)
    if not idx:
        raise ValueError("rget_indexed needs at least one index")
    if not base.is_local(ctx):
        return _remote_indexed_get(ctx, disp, base, idx)
    seg = ctx.world.segment_of(base.rank)
    disp.mark_injected(base.rank, len(idx) * base.ts.size, local=True)
    ctx.charge(CostAction.GPTR_DOWNCAST)
    ctx.charge_bytes(CostAction.MEMCPY_PER_BYTE, len(idx) * base.ts.size)
    out = np.empty(len(idx), dtype=base.ts.dtype)
    for k, i in enumerate(idx):
        elem = base + i
        out[k] = seg.read_scalar(elem.offset, base.ts)
    disp.notify_sync(Event.OPERATION, (out,))
    return disp.result()


# ---------------------------------------------------------------------------
# off-node paths (AM round trips carrying the access pattern)
# ---------------------------------------------------------------------------


def _offnode_prologue(ctx, disp):
    if ctx.flags.eager_notification:
        ctx.charge(CostAction.LOCALITY_BRANCH)
    ctx.charge(CostAction.HEAP_ALLOC_OP_DESCRIPTOR)
    ctx.charge(CostAction.HEAP_FREE)


def _remote_strided_put(ctx, disp, arr, dest, count, stride):
    _offnode_prologue(ctx, disp)
    disp.notify_sync(Event.SOURCE)
    pending = disp.pend(Event.OPERATION)
    initiator = ctx.rank
    payload = arr.copy()
    nbytes = count * dest.ts.size

    def on_target(tctx):
        seg = tctx.world.segment_of(dest.rank)
        tctx.charge_bytes(CostAction.MEMCPY_PER_BYTE, nbytes)
        for i in range(count):
            elem = dest + i * stride
            seg.write_scalar(elem.offset, dest.ts, payload[i])
        tctx.conduit.send_am(
            tctx, initiator, lambda ictx: pending.complete(()),
            label="vis_put_ack",
        )

    ctx.conduit.send_am(
        ctx, dest.rank, on_target, nbytes=nbytes, label="vis_put"
    )
    disp.mark_injected(dest.rank, nbytes, local=False)
    return disp.result()


def _remote_strided_get(ctx, disp, src, count, stride):
    _offnode_prologue(ctx, disp)
    disp.notify_sync(Event.SOURCE)
    pending = disp.pend(Event.OPERATION)
    initiator = ctx.rank
    nbytes = count * src.ts.size

    def on_target(tctx):
        seg = tctx.world.segment_of(src.rank)
        tctx.charge_bytes(CostAction.MEMCPY_PER_BYTE, nbytes)
        out = np.empty(count, dtype=src.ts.dtype)
        for i in range(count):
            elem = src + i * stride
            out[i] = seg.read_scalar(elem.offset, src.ts)
        tctx.conduit.send_am(
            tctx,
            initiator,
            lambda ictx, out=out: pending.complete((out,)),
            nbytes=nbytes,
            label="vis_get_reply",
        )

    ctx.conduit.send_am(ctx, src.rank, on_target, label="vis_get")
    disp.mark_injected(src.rank, nbytes, local=False)
    return disp.result()


def _remote_indexed_put(ctx, disp, arr, base, idx):
    _offnode_prologue(ctx, disp)
    disp.notify_sync(Event.SOURCE)
    pending = disp.pend(Event.OPERATION)
    initiator = ctx.rank
    payload = arr.copy()
    nbytes = len(idx) * base.ts.size

    def on_target(tctx):
        seg = tctx.world.segment_of(base.rank)
        tctx.charge_bytes(CostAction.MEMCPY_PER_BYTE, nbytes)
        for k, i in enumerate(idx):
            elem = base + i
            seg.write_scalar(elem.offset, base.ts, payload[k])
        tctx.conduit.send_am(
            tctx, initiator, lambda ictx: pending.complete(()),
            label="vis_iput_ack",
        )

    ctx.conduit.send_am(
        ctx, base.rank, on_target, nbytes=nbytes, label="vis_iput"
    )
    disp.mark_injected(base.rank, nbytes, local=False)
    return disp.result()


def _remote_indexed_get(ctx, disp, base, idx):
    _offnode_prologue(ctx, disp)
    disp.notify_sync(Event.SOURCE)
    pending = disp.pend(Event.OPERATION)
    initiator = ctx.rank
    nbytes = len(idx) * base.ts.size

    def on_target(tctx):
        seg = tctx.world.segment_of(base.rank)
        tctx.charge_bytes(CostAction.MEMCPY_PER_BYTE, nbytes)
        out = np.empty(len(idx), dtype=base.ts.dtype)
        for k, i in enumerate(idx):
            elem = base + i
            out[k] = seg.read_scalar(elem.offset, base.ts)
        tctx.conduit.send_am(
            tctx,
            initiator,
            lambda ictx, out=out: pending.complete((out,)),
            nbytes=nbytes,
            label="vis_iget_reply",
        )

    ctx.conduit.send_am(ctx, base.rank, on_target, label="vis_iget")
    disp.mark_injected(base.rank, nbytes, local=False)
    return disp.result()
