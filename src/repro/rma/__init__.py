"""Remote memory access operations: ``rput``, ``rget`` (value and
into-buffer forms), bulk transfers, and ``copy``.

Every operation follows the same shape (the paper's §III-A):

1. pay the call/completions-processing overhead;
2. dynamic locality check (free under SMP + ``constexpr is_local``);
3. **local** (shared-memory bypass): the data moves synchronously; the
   dispatcher delivers eager or deferred notifications per the build;
4. **off-node**: an active-message round trip; completion is always
   asynchronous, delivered from the progress engine.  Builds deploying
   eager notification pay exactly one extra branch on this path.
"""

from repro.rma.put import rput, rput_bulk
from repro.rma.get import rget, rget_bulk, rget_into
from repro.rma.copy import copy
from repro.rma.vis import (
    rget_indexed,
    rget_strided,
    rput_indexed,
    rput_strided,
)

__all__ = [
    "rput",
    "rput_bulk",
    "rget",
    "rget_into",
    "rget_bulk",
    "copy",
    "rput_strided",
    "rget_strided",
    "rput_indexed",
    "rget_indexed",
]
