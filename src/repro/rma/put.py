"""One-sided puts (``upcxx::rput``).

Supports all three completion events: source (the source data has been
captured), remote (an RPC on the target after data arrival), operation
(done from the initiator's view).  Returned futures are ordered source
before operation when both are requested, matching the tuple order of the
paper's Section II-A example.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.completions import Completions, CxDispatcher, operation_cx
from repro.core.events import Event
from repro.errors import InvalidGlobalPointer
from repro.memory.global_ptr import GlobalPtr
from repro.runtime.context import current_ctx
from repro.sim.costmodel import CostAction

_PUT_EVENTS = frozenset({Event.SOURCE, Event.REMOTE, Event.OPERATION})


def _ship_remote_rpcs(ctx, disp: CxDispatcher, dest_rank: int) -> None:
    """Remote-completion RPCs always travel as AMs to the target (even a
    co-located one), executing there inside its progress engine."""
    for req in disp.rpc_requests():
        # fire-and-forget at the target: nobody spins on it, so it may
        # ride in a bundle (the ack below must not — see the aggregation
        # correctness gate)
        ctx.conduit.send_am(
            ctx,
            dest_rank,
            lambda tctx, r=req: r.fn(*r.args),
            nbytes=0,
            label="remote_cx_rpc",
            aggregatable=True,
        )


def _local_put(ctx, disp: CxDispatcher, dest: GlobalPtr, write, nbytes: int):
    """Shared-memory-bypass path: synchronous data movement."""
    if not ctx.flags.elide_local_rma_alloc:
        # 2021.3.0: extra op-descriptor allocation even for local targets
        ctx.charge(CostAction.HEAP_ALLOC_OP_DESCRIPTOR)
        ctx.charge(CostAction.HEAP_FREE)
    ctx.charge(CostAction.GPTR_DOWNCAST)
    disp.mark_injected(dest.rank, nbytes, local=True)
    write()
    if nbytes <= 8:
        ctx.charge(CostAction.MEMCPY_8B)
    else:
        ctx.charge_bytes(CostAction.MEMCPY_PER_BYTE, nbytes)
    _ship_remote_rpcs(ctx, disp, dest.rank)
    disp.notify_sync(Event.SOURCE)
    disp.notify_sync(Event.OPERATION)
    return disp.result()


def _remote_put(ctx, disp: CxDispatcher, dest: GlobalPtr, payload, nbytes: int):
    """Off-node path: request/reply AM pair, deferred completion."""
    if ctx.flags.eager_notification:
        # the one branch eager support adds to the off-node path (§IV-A)
        ctx.charge(CostAction.LOCALITY_BRANCH)
    ctx.charge(CostAction.HEAP_ALLOC_OP_DESCRIPTOR)
    ctx.charge(CostAction.HEAP_FREE)
    disp.notify_sync(Event.SOURCE)  # payload captured at injection
    pending = disp.pend(Event.OPERATION)
    rpc_reqs = disp.rpc_requests()
    initiator = ctx.rank

    def on_target(tctx, dest=dest, payload=payload):
        if np.ndim(payload) == 0:
            tctx.world.segment_of(dest.rank).write_scalar(
                dest.offset, dest.ts, payload
            )
            tctx.charge(CostAction.MEMCPY_8B)
        else:
            tctx.world.segment_of(dest.rank).write_array(
                dest.offset, dest.ts, payload
            )
            tctx.charge_bytes(CostAction.MEMCPY_PER_BYTE, nbytes)
        for req in rpc_reqs:
            req.fn(*req.args)
        tctx.conduit.send_am(
            tctx,
            initiator,
            lambda ictx: pending.complete(()),
            nbytes=0,
            label="put_ack",
        )

    ctx.conduit.send_am(
        ctx, dest.rank, on_target, nbytes=nbytes, label="put_req",
        aggregatable=True,
    )
    disp.mark_injected(dest.rank, nbytes, local=False)
    return disp.result()


def rput(value, dest: GlobalPtr, comps: Optional[Completions] = None):
    """Write one element to ``dest`` asynchronously.

    Returns None / a future / a tuple of futures according to the
    requested completions (default: ``operation_cx.as_future()``).
    """
    ctx = current_ctx()
    ctx.charge(CostAction.RMA_CALL_OVERHEAD)
    if dest.is_null:
        raise InvalidGlobalPointer("rput to a null global pointer")
    if comps is None:
        comps = operation_cx.as_future()
    disp = CxDispatcher(ctx, comps, supported=_PUT_EVENTS, op_name="rput")
    if dest.is_local(ctx):
        seg = ctx.world.segment_of(dest.rank)
        return _local_put(
            ctx,
            disp,
            dest,
            lambda: seg.write_scalar(dest.offset, dest.ts, value),
            dest.ts.size,
        )
    return _remote_put(ctx, disp, dest, value, dest.ts.size)


def rput_bulk(values, dest: GlobalPtr, comps: Optional[Completions] = None):
    """Write a contiguous block of elements starting at ``dest``.

    ``values`` is any 1-D sequence convertible to the destination dtype.
    """
    ctx = current_ctx()
    ctx.charge(CostAction.RMA_CALL_OVERHEAD)
    if dest.is_null:
        raise InvalidGlobalPointer("rput_bulk to a null global pointer")
    arr = np.asarray(values, dtype=dest.ts.dtype)
    if arr.ndim != 1:
        raise ValueError("rput_bulk expects a 1-D sequence")
    if comps is None:
        comps = operation_cx.as_future()
    disp = CxDispatcher(
        ctx, comps, supported=_PUT_EVENTS, op_name="rput_bulk"
    )
    nbytes = arr.size * dest.ts.size
    if dest.is_local(ctx):
        seg = ctx.world.segment_of(dest.rank)
        return _local_put(
            ctx,
            disp,
            dest,
            lambda: seg.write_array(dest.offset, dest.ts, arr),
            nbytes,
        )
    # the payload is captured by value at injection (source completes now)
    return _remote_put(ctx, disp, dest, arr.copy(), nbytes)
