"""Exception hierarchy for the :mod:`repro` APGAS runtime.

All runtime-raised errors derive from :class:`UpcxxError` so callers can
catch the whole family.  The names mirror the failure modes of the real
UPC++ runtime where one exists (e.g. ``upcxx::bad_shared_alloc``); the
simulation-specific failures (deadlock, scheduler misuse) get their own
subclasses.
"""

from __future__ import annotations


class UpcxxError(RuntimeError):
    """Base class for all errors raised by the repro APGAS runtime."""


class NotInitializedError(UpcxxError):
    """An API call required an active runtime (inside ``spmd_run``)."""

    def __init__(self, what: str = "UPC++ API call"):
        super().__init__(
            f"{what} requires an active rank context; "
            "call it from inside a function running under spmd_run()"
        )


class BadSharedAlloc(UpcxxError, MemoryError):
    """Shared-segment allocation failed (out of segment space)."""


class SegmentError(UpcxxError):
    """Out-of-bounds or misaligned access to a shared segment."""


class InvalidGlobalPointer(UpcxxError):
    """A global pointer was dereferenced/downcast where not permitted."""


class LocalityError(InvalidGlobalPointer):
    """``.local()`` was called on a pointer that is not locally addressable."""


class FutureError(UpcxxError):
    """Misuse of a future (e.g. reading the result of a non-ready future)."""


class PromiseError(UpcxxError):
    """Misuse of a promise (e.g. fulfilling past its dependency count)."""


class CompletionError(UpcxxError):
    """Invalid completion request for an operation (e.g. remote completion
    requested on an operation that does not support it)."""


class AtomicDomainError(UpcxxError):
    """An atomic op was issued that is not part of the domain's op set, or
    the domain was used after destruction."""


class SerializationError(UpcxxError):
    """An RPC argument or return value could not be serialized."""


class DeadlockError(UpcxxError):
    """Every simulated rank is blocked and no pending event can unblock any
    of them.  This is the simulation analogue of a hung SPMD job."""


class SchedulerError(UpcxxError):
    """Internal cooperative-scheduler invariant violation or misuse (e.g.
    calling a blocking API from a non-rank thread)."""


class ProgressError(UpcxxError):
    """Illegal reentrant progress (progress from within a callback running
    inside the progress engine), mirroring UPC++'s prohibition."""


class RpcError(UpcxxError):
    """An RPC callback raised; the exception is propagated to the initiator
    wrapped in this type (the real runtime would abort the job)."""
