r"""Per-rank virtual clocks.

Each simulated rank owns a :class:`VirtualClock` measuring nanoseconds of
simulated execution.  Runtime actions advance the clock through
:meth:`VirtualClock.advance`; synchronization points (barriers, AM arrival)
use :meth:`VirtualClock.advance_to` to move a clock forward to an absolute
time (never backward — virtual time is monotone per rank).

Internally the clock counts integer *units* of 2\ :sup:`-20` ns
(:data:`UNITS_PER_NS` per nanosecond).  Machine-profile costs are quantized
to this grid at the profile level (:meth:`MachineProfile.cost_ns`), so
every charge is an exact integer number of units and accumulation is
integer addition — associative, hence order-independent.  That is what
lets batched cost accounting (``FeatureFlags.cost_batching``) park charged
units in a pending scalar and fold them in lazily while staying
**bit-identical** to per-charge advancing.  The float-facing API is exact
both ways: a unit count below 2\ :sup:`53` converts to float without
rounding (the grid is dyadic), which bounds exact operation to ~8.6
virtual seconds per rank — orders of magnitude beyond any modeled run.

When the owning :class:`~repro.sim.costmodel.CostModel` runs in batched
mode the clock carries a *flush hook* that folds the pending units in
before any read of :attr:`VirtualClock.now_ns` and before any explicit
advance, so every observable timestamp (AM stamps, barrier max-clocks,
span marks) is exactly as if each charge had advanced the clock
individually.
"""

from __future__ import annotations

#: fixed-point resolution: clock units per nanosecond (a power of two, so
#: unit counts convert to float nanoseconds exactly below 2**53 units)
UNITS_PER_NS = 1 << 20

_INV_UNITS = 1.0 / UNITS_PER_NS


class VirtualClock:
    """A monotone per-rank nanosecond counter (integer fixed-point inside).

    The clock also tracks a set of named accumulation buckets so benchmarks
    can attribute virtual time to phases (e.g. ``"solve"`` vs ``"init"``)
    via :meth:`mark`/:meth:`elapsed_since`.
    """

    __slots__ = ("_units", "_marks", "_flush_hook")

    def __init__(self, start_ns: float = 0.0):
        #: current time in integer units of 2**-20 ns
        self._units: int = round(start_ns * UNITS_PER_NS)
        self._marks: dict[str, float] = {}
        #: zero-argument callable folding a cost accumulator's pending
        #: units into ``_units`` (None → nothing batches on this clock and
        #: reads are a bare slot load)
        self._flush_hook = None

    @property
    def now_ns(self) -> float:
        """The current virtual time (flushes any batched pending charges
        first, so timestamps never go stale)."""
        hook = self._flush_hook
        if hook is not None:
            hook()
        return self._units * _INV_UNITS

    @now_ns.setter
    def now_ns(self, t_ns: float) -> None:
        self._units = round(t_ns * UNITS_PER_NS)

    def advance(self, ns: float) -> float:
        """Advance the clock by ``ns`` nanoseconds and return the new time.

        Negative advances are rejected: virtual time is monotone.  ``ns``
        values on the unit grid (every quantized profile cost and sum
        thereof) advance exactly; off-grid values round to the nearest
        unit — deterministically, so two runs still agree.
        """
        if ns < 0:
            raise ValueError(f"cannot advance clock by negative time {ns}")
        hook = self._flush_hook
        if hook is not None:
            # pending batched charges happened before this advance
            hook()
        self._units += round(ns * UNITS_PER_NS)
        return self._units * _INV_UNITS

    def advance_units(self, units: int) -> None:
        """Advance by an exact integer unit count (the cost model's
        no-conversion fast path for unbatched charges)."""
        hook = self._flush_hook
        if hook is not None:
            hook()
        self._units += units

    def advance_to(self, t_ns: float) -> float:
        """Move the clock forward to absolute time ``t_ns`` if it is ahead
        of the current time; otherwise leave the clock unchanged.

        Returns the (possibly unchanged) current time.  This models waiting
        for an event that happened at ``t_ns`` on another rank's timeline.
        Off-grid targets (e.g. arrival stamps with a bandwidth term) round
        to the nearest unit before the comparison, so the same target
        always lands every waiting rank on the same grid point.
        """
        hook = self._flush_hook
        if hook is not None:
            hook()
        units = round(t_ns * UNITS_PER_NS)
        if units > self._units:
            self._units = units
        return self._units * _INV_UNITS

    # -- phase marks -----------------------------------------------------

    def mark(self, name: str) -> None:
        """Record the current time under ``name`` (for elapsed queries)."""
        self._marks[name] = self.now_ns

    def elapsed_since(self, name: str) -> float:
        """Nanoseconds elapsed since :meth:`mark` was called with ``name``."""
        try:
            return self.now_ns - self._marks[name]
        except KeyError:
            raise KeyError(f"no mark named {name!r} on this clock") from None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now_ns={self.now_ns!r})"
