"""Per-rank virtual clocks.

Each simulated rank owns a :class:`VirtualClock` measuring nanoseconds of
simulated execution.  Runtime actions advance the clock through
:meth:`VirtualClock.advance`; synchronization points (barriers, AM arrival)
use :meth:`VirtualClock.advance_to` to move a clock forward to an absolute
time (never backward — virtual time is monotone per rank).

When the owning :class:`~repro.sim.costmodel.CostModel` runs in batched
mode (``FeatureFlags.cost_batching``) it parks charged nanoseconds in a
per-rank accumulator instead of advancing the clock per charge; the clock
then carries a *flush hook* that folds the pending time in before any
read of :attr:`VirtualClock.now_ns` and before any explicit advance, so
every observable timestamp (AM stamps, barrier max-clocks, span marks) is
exactly as if each charge had advanced the clock individually — up to
float-summation reassociation, which is why batching is opt-in.
"""

from __future__ import annotations


class VirtualClock:
    """A monotone per-rank nanosecond counter.

    The clock also tracks a set of named accumulation buckets so benchmarks
    can attribute virtual time to phases (e.g. ``"solve"`` vs ``"init"``)
    via :meth:`mark`/:meth:`elapsed_since`.
    """

    __slots__ = ("_now_ns", "_marks", "_flush_hook")

    def __init__(self, start_ns: float = 0.0):
        self._now_ns: float = float(start_ns)
        self._marks: dict[str, float] = {}
        #: zero-argument callable folding a cost accumulator's pending
        #: nanoseconds into ``_now_ns`` (None → nothing batches on this
        #: clock and reads are a bare slot load)
        self._flush_hook = None

    @property
    def now_ns(self) -> float:
        """The current virtual time (flushes any batched pending charges
        first, so timestamps never go stale)."""
        hook = self._flush_hook
        if hook is not None:
            hook()
        return self._now_ns

    @now_ns.setter
    def now_ns(self, t_ns: float) -> None:
        self._now_ns = t_ns

    def advance(self, ns: float) -> float:
        """Advance the clock by ``ns`` nanoseconds and return the new time.

        Negative advances are rejected: virtual time is monotone.
        """
        if ns < 0:
            raise ValueError(f"cannot advance clock by negative time {ns}")
        hook = self._flush_hook
        if hook is not None:
            # pending batched charges happened before this advance
            hook()
        self._now_ns += ns
        return self._now_ns

    def advance_to(self, t_ns: float) -> float:
        """Move the clock forward to absolute time ``t_ns`` if it is ahead
        of the current time; otherwise leave the clock unchanged.

        Returns the (possibly unchanged) current time.  This models waiting
        for an event that happened at ``t_ns`` on another rank's timeline.
        """
        hook = self._flush_hook
        if hook is not None:
            hook()
        if t_ns > self._now_ns:
            self._now_ns = t_ns
        return self._now_ns

    # -- phase marks -----------------------------------------------------

    def mark(self, name: str) -> None:
        """Record the current time under ``name`` (for elapsed queries)."""
        self._marks[name] = self.now_ns

    def elapsed_since(self, name: str) -> float:
        """Nanoseconds elapsed since :meth:`mark` was called with ``name``."""
        try:
            return self.now_ns - self._marks[name]
        except KeyError:
            raise KeyError(f"no mark named {name!r} on this clock") from None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now_ns={self.now_ns!r})"
