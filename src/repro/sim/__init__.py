"""Performance-model substrate: virtual clocks, cost models, machine profiles.

The paper's evaluation measures nanosecond-scale CPU overheads of the UPC++
runtime on three HPC platforms.  Those overheads are not observable from
Python, so this package provides the substitution substrate described in
DESIGN.md §2: every runtime-internal action charges simulated nanoseconds
(:class:`~repro.sim.costmodel.CostModel`) onto a per-rank virtual clock
(:class:`~repro.sim.clock.VirtualClock`), with per-architecture constants
(:mod:`repro.sim.machines`).  Benchmarks report virtual time.
"""

from repro.sim.clock import VirtualClock
from repro.sim.costmodel import CostAction, CostModel
from repro.sim.machines import (
    GENERIC,
    IBM,
    INTEL,
    MARVELL,
    MachineProfile,
    profile_by_name,
)
from repro.sim.stats import SampleStats, paper_average, run_samples

__all__ = [
    "VirtualClock",
    "CostAction",
    "CostModel",
    "MachineProfile",
    "INTEL",
    "IBM",
    "MARVELL",
    "GENERIC",
    "profile_by_name",
    "SampleStats",
    "paper_average",
    "run_samples",
]
