"""Machine profiles standing in for the paper's three evaluation platforms.

The paper evaluates on:

* **Intel** — dual-socket 20-core Xeon Gold 6148 (Skylake), NERSC Cori GPU
  partition, Intel compiler, **SMP conduit**;
* **IBM** — dual-socket 22-core POWER9, OLCF Summit, GCC, **UDP conduit**
  with process-shared memory (PSHM);
* **Marvell** — dual-socket 32-core ThunderX2 (ARMv8.1), OLCF Wombat,
  Clang, **UDP conduit** with PSHM.

A :class:`MachineProfile` assigns a nanosecond cost to each
:class:`~repro.sim.costmodel.CostAction`.  The constants below were
calibrated (see ``benchmarks/``/EXPERIMENTS.md) so that the *relative* cost
structure of each platform — allocator overhead vs. progress-queue overhead
vs. atomic-RMW cost vs. plain copies — reproduces the paper's reported
speedup bands.  They are a model, not microarchitectural ground truth; the
reproduction's claims are about shape, not absolute nanoseconds.

Salient modeled differences:

* POWER9 (``IBM``) has expensive atomic RMW and allocator operations
  relative to its progress-queue costs — hence the paper's small (15%)
  eager speedup for value-producing atomics but huge (95%) put speedup and
  ~90% non-value-vs-value gap.
* ThunderX2 (``MARVELL``) has slow cores across the board with relatively
  costly queue operations — large eager speedups for both puts (95%) and
  value atomics (52%).
* Skylake (``INTEL``) sits between, with cheap branches and fast copies.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.sim.costmodel import CostAction


@dataclass(frozen=True)
class MachineProfile:
    """Per-architecture cost table plus system-level parameters.

    Attributes
    ----------
    name:
        Short identifier (``"intel"``, ``"ibm"``, ``"marvell"``).
    description:
        Human-readable description of the platform being modeled.
    cores_per_node:
        Total cores of the modeled node (paper: 40 / 44 / 64).
    default_conduit:
        Conduit the paper used on this platform.
    network_latency_ns:
        One-way off-node small-message latency (used by the off-node path).
    costs_ns:
        Mapping from :class:`CostAction` to nanoseconds.
    """

    name: str
    description: str
    cores_per_node: int
    default_conduit: str
    network_latency_ns: float
    #: off-node network bandwidth in bytes per nanosecond (~GB/s);
    #: 12.5 B/ns ~ 100 Gb/s EDR InfiniBand-class fabric
    network_bandwidth_bpns: float = 12.5
    costs_ns: dict[CostAction, float] = field(default_factory=dict)

    def cost_ns(self, action: CostAction) -> float:
        """Cost of one occurrence of ``action`` (0.0 if unlisted).

        The returned value is quantized to the virtual clock's fixed-point
        grid (:data:`repro.sim.clock.UNITS_PER_NS` units per nanosecond,
        a power of two), so every charge is an exact integer number of
        clock units.  That exactness is what makes batched cost
        accumulation (``FeatureFlags.cost_batching``) bit-identical to
        per-charge advancing: integer addition is associative.  The grid
        is ~1e-6 ns, far below any modeled cost, so the calibrated shape
        claims are untouched; dyadic table entries (the common case) pass
        through unchanged.
        """
        if action is CostAction.NETWORK_LATENCY:
            v = self.network_latency_ns
        else:
            v = self.costs_ns.get(action, 0.0)
        return round(v * 1048576) / 1048576.0

    def with_costs(self, **overrides: float) -> "MachineProfile":
        """A copy of this profile with named cost overrides.

        Keys are :class:`CostAction` value-strings, e.g.
        ``profile.with_costs(heap_alloc_promise_cell=0.0)``.  Used by the
        ablation benchmarks to isolate individual design choices.
        """
        new_costs = dict(self.costs_ns)
        for key, val in overrides.items():
            new_costs[CostAction(key)] = float(val)
        return replace(self, costs_ns=new_costs)


def _costs(**kv: float) -> dict[CostAction, float]:
    return {CostAction(k): float(v) for k, v in kv.items()}


#: Intel Xeon Gold 6148 (Skylake) model — NERSC Cori GPU partition.
INTEL = MachineProfile(
    name="intel",
    description=(
        "dual-socket 20-core 2.40 GHz Intel Xeon Gold 6148 (Skylake), "
        "384 GiB DDR4-2666 (NERSC Cori GPU partition), SMP conduit"
    ),
    cores_per_node=40,
    default_conduit="smp",
    network_latency_ns=1400.0,
    costs_ns=_costs(
        rma_call_overhead=72.0,
        amo_call_overhead=14.0,
        locality_branch=1.0,
        gptr_downcast=1.5,
        memcpy_8b=1.0,
        memcpy_per_byte=0.04,
        cpu_load=1.0,
        cpu_store=1.0,
        cpu_atomic_rmw=18.0,
        dram_random_access=240.0,
        heap_alloc_promise_cell=33.0,
        heap_alloc_op_descriptor=8.0,
        heap_free=12.0,
        progress_queue_enqueue=7.0,
        progress_poll=6.0,
        progress_dispatch=14.0,
        progress_adapt=2.0,
        progress_poll_skip=1.0,
        progress_hint_scan=3.0,
        future_ready_check=1.0,
        future_callback_schedule=4.0,
        when_all_node_build=150.0,
        dep_graph_resolve_edge=25.0,
        promise_register=6.0,
        promise_fulfill=8.0,
        completion_process=3.0,
        cx_continuation_dispatch=3.0,
        cx_counter_signal=2.0,
        cx_counter_trip=6.0,
        am_inject=90.0,
        am_poll=30.0,
        am_execute=70.0,
        am_agg_append=9.0,
        am_bundle_header=40.0,
        am_bundle_entry_dispatch=8.0,
        am_agg_adapt=2.0,
        am_bundle_compress=1.5,
        rpc_serialize_per_byte=0.3,
        lpc_enqueue=5.0,
        barrier=600.0,
        amo_contention_per_peer=20.0,
        function_call=1.0,
    ),
)

#: IBM POWER9 model — OLCF Summit.
IBM = MachineProfile(
    name="ibm",
    description=(
        "dual-socket 22-core 3.07 GHz IBM POWER9, 512 GiB DDR4-2666 "
        "(OLCF Summit), UDP conduit with PSHM"
    ),
    cores_per_node=44,
    default_conduit="udp",
    network_latency_ns=1800.0,
    costs_ns=_costs(
        rma_call_overhead=124.0,
        amo_call_overhead=16.0,
        locality_branch=1.6,
        gptr_downcast=2.2,
        memcpy_8b=1.4,
        memcpy_per_byte=0.05,
        cpu_load=1.4,
        cpu_store=1.4,
        cpu_atomic_rmw=70.0,
        dram_random_access=300.0,
        heap_alloc_promise_cell=95.0,
        heap_alloc_op_descriptor=8.0,
        heap_free=25.0,
        progress_queue_enqueue=1.5,
        progress_poll=1.5,
        progress_dispatch=2.0,
        progress_adapt=2.8,
        progress_poll_skip=0.4,
        progress_hint_scan=4.0,
        future_ready_check=1.4,
        future_callback_schedule=5.0,
        when_all_node_build=3800.0,
        dep_graph_resolve_edge=110.0,
        promise_register=9.0,
        promise_fulfill=13.0,
        completion_process=4.0,
        cx_continuation_dispatch=4.0,
        cx_counter_signal=2.5,
        cx_counter_trip=8.0,
        am_inject=130.0,
        am_poll=45.0,
        am_execute=100.0,
        am_agg_append=13.0,
        am_bundle_header=55.0,
        am_bundle_entry_dispatch=11.0,
        am_agg_adapt=2.8,
        am_bundle_compress=2.1,
        rpc_serialize_per_byte=0.45,
        lpc_enqueue=7.0,
        barrier=900.0,
        amo_contention_per_peer=38.0,
        function_call=1.4,
    ),
)

#: Marvell/Cavium ThunderX2 CN9980 model — OLCF Wombat.
MARVELL = MachineProfile(
    name="marvell",
    description=(
        "dual-socket 32-core 2.20 GHz Marvell/Cavium ThunderX2 CN9980 "
        "(ARMv8.1), 256 GiB DDR4-2666 (OLCF Wombat), UDP conduit with PSHM"
    ),
    cores_per_node=64,
    default_conduit="udp",
    network_latency_ns=2000.0,
    costs_ns=_costs(
        rma_call_overhead=143.0,
        amo_call_overhead=20.0,
        locality_branch=1.8,
        gptr_downcast=2.6,
        memcpy_8b=1.8,
        memcpy_per_byte=0.07,
        cpu_load=1.8,
        cpu_store=1.8,
        cpu_atomic_rmw=53.0,
        dram_random_access=200.0,
        heap_alloc_promise_cell=57.0,
        heap_alloc_op_descriptor=10.0,
        heap_free=20.0,
        progress_queue_enqueue=18.0,
        progress_poll=20.0,
        progress_dispatch=30.0,
        progress_adapt=3.6,
        progress_poll_skip=2.5,
        progress_hint_scan=5.5,
        future_ready_check=1.8,
        future_callback_schedule=7.0,
        when_all_node_build=200.0,
        dep_graph_resolve_edge=16.0,
        promise_register=6.0,
        promise_fulfill=10.0,
        completion_process=5.0,
        cx_continuation_dispatch=5.0,
        cx_counter_signal=3.5,
        cx_counter_trip=10.0,
        am_inject=160.0,
        am_poll=55.0,
        am_execute=120.0,
        am_agg_append=16.0,
        am_bundle_header=70.0,
        am_bundle_entry_dispatch=14.0,
        am_agg_adapt=3.6,
        am_bundle_compress=2.7,
        rpc_serialize_per_byte=0.55,
        lpc_enqueue=9.0,
        barrier=1100.0,
        amo_contention_per_peer=30.0,
        function_call=1.8,
    ),
)

#: A neutral profile for functional tests (all ratios round, cheap).
GENERIC = MachineProfile(
    name="generic",
    description="neutral cost profile for functional testing",
    cores_per_node=16,
    default_conduit="smp",
    network_latency_ns=1000.0,
    costs_ns=_costs(
        rma_call_overhead=10.0,
        amo_call_overhead=10.0,
        locality_branch=1.0,
        gptr_downcast=1.0,
        memcpy_8b=1.0,
        memcpy_per_byte=0.05,
        cpu_load=1.0,
        cpu_store=1.0,
        cpu_atomic_rmw=10.0,
        dram_random_access=100.0,
        heap_alloc_promise_cell=20.0,
        heap_alloc_op_descriptor=10.0,
        heap_free=10.0,
        progress_queue_enqueue=5.0,
        progress_poll=5.0,
        progress_dispatch=10.0,
        progress_adapt=2.0,
        progress_poll_skip=1.0,
        progress_hint_scan=3.0,
        future_ready_check=1.0,
        future_callback_schedule=5.0,
        when_all_node_build=25.0,
        dep_graph_resolve_edge=10.0,
        promise_register=2.0,
        promise_fulfill=2.0,
        completion_process=2.0,
        cx_continuation_dispatch=3.0,
        cx_counter_signal=2.0,
        cx_counter_trip=5.0,
        am_inject=100.0,
        am_poll=30.0,
        am_execute=80.0,
        am_agg_append=10.0,
        am_bundle_header=45.0,
        am_bundle_entry_dispatch=9.0,
        am_agg_adapt=2.0,
        am_bundle_compress=1.5,
        rpc_serialize_per_byte=0.5,
        lpc_enqueue=5.0,
        barrier=500.0,
        amo_contention_per_peer=5.0,
        function_call=1.0,
    ),
)

_BY_NAME = {p.name: p for p in (INTEL, IBM, MARVELL, GENERIC)}


def profile_by_name(name: str) -> MachineProfile:
    """Look up a built-in profile by its short name (case-insensitive)."""
    try:
        return _BY_NAME[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown machine profile {name!r}; "
            f"known: {sorted(_BY_NAME)}"
        ) from None
