"""Cost accounting for runtime-internal actions.

The reproduction's core measurement device: every action the UPC++-style
runtime performs on the critical path of a communication operation is named
by a :class:`CostAction`, and a :class:`CostModel` charges that action's
nanosecond cost (from a :class:`~repro.sim.machines.MachineProfile`) onto the
calling rank's :class:`~repro.sim.clock.VirtualClock`.

The action vocabulary mirrors Section II-B/III of the paper:

* ``HEAP_ALLOC_PROMISE_CELL`` — the internal promise cell backing a
  non-ready future (the cost eager notification removes);
* ``HEAP_ALLOC_OP_DESCRIPTOR`` — the *extra* per-RMA allocation that the
  2021.3.6 snapshot elides for directly-addressable pointers (orthogonal to
  eager/defer, Section IV-A);
* ``PROGRESS_QUEUE_ENQUEUE`` / ``PROGRESS_DISPATCH`` — insertion into the
  internal progress queue and later dispatch by the progress engine;
* ``WHEN_ALL_NODE_BUILD`` / ``DEP_GRAPH_RESOLVE_EDGE`` — construction and
  resolution of the dynamically-discovered dependency graph (Figure 1);
* ``LOCALITY_BRANCH`` — the dynamic ``is_local`` check (compiled away under
  the SMP conduit in 2021.3.6, and the *single* branch added to the
  off-node path by eager support);
* data-movement primitives (``MEMCPY_8B``, ``CPU_ATOMIC_RMW``, …) and the
  active-message path (``AM_INJECT``/``AM_POLL``/``AM_EXECUTE``).

A :class:`CostModel` also counts how many times each action fired, which the
tests use to assert *structural* claims (e.g. "the eager local put performs
zero heap allocations", "the off-node path gained exactly one branch").
"""

from __future__ import annotations

import enum
from collections import Counter
from typing import TYPE_CHECKING

try:  # numpy backs the batched-count reduction; optional otherwise
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is in the standard image
    _np = None

from repro.sim.clock import UNITS_PER_NS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.clock import VirtualClock
    from repro.sim.machines import MachineProfile

_INV_UNITS = 1.0 / UNITS_PER_NS


class CostAction(enum.Enum):
    """Named runtime-internal actions with per-machine nanosecond costs."""

    # -- heap traffic ----------------------------------------------------
    HEAP_ALLOC_PROMISE_CELL = "heap_alloc_promise_cell"
    HEAP_ALLOC_OP_DESCRIPTOR = "heap_alloc_op_descriptor"
    HEAP_FREE = "heap_free"

    # -- progress engine ---------------------------------------------------
    PROGRESS_QUEUE_ENQUEUE = "progress_queue_enqueue"
    PROGRESS_DISPATCH = "progress_dispatch"
    PROGRESS_POLL = "progress_poll"
    #: one observation of the adaptive progress controller: EWMA updates of
    #: the deferred-queue depth / drain yield plus the cap recompute (paid
    #: per full poll when ``progress_adaptive`` is on)
    PROGRESS_ADAPT = "progress_adapt"
    #: an elided empty poll: the adaptive engine proved no work was possible
    #: and charged this instead of a full ``PROGRESS_POLL`` (the cadence
    #: saving the controller exists to buy)
    PROGRESS_POLL_SKIP = "progress_poll_skip"
    #: one targeted scan of the deferred/LPC queues for thunks resolving
    #: the cell an active wait is blocked on (paid per poll while a
    #: ``wait_hints`` target with a cell is published)
    PROGRESS_HINT_SCAN = "progress_hint_scan"

    # -- future / promise machinery --------------------------------------
    FUTURE_READY_CHECK = "future_ready_check"
    FUTURE_CALLBACK_SCHEDULE = "future_callback_schedule"
    WHEN_ALL_NODE_BUILD = "when_all_node_build"
    DEP_GRAPH_RESOLVE_EDGE = "dep_graph_resolve_edge"
    PROMISE_REGISTER = "promise_register"
    PROMISE_FULFILL = "promise_fulfill"

    # -- notifiable completions: continuations / counters ------------------
    #: running one continuation completion's callback inline at the agent
    #: that observed completion (``notify_sync`` fast path or the progress
    #: engine's ack dispatch) — the whole per-op cost of the callback path,
    #: replacing cell allocation + ready-check + wait machinery
    CX_CONTINUATION_DISPATCH = "cx_continuation_dispatch"
    #: one member operation signalling its :class:`CxCounter` (an integer
    #: decrement on the shared cell; the N-ops-to-one-notification
    #: amortization counters exist to buy)
    CX_COUNTER_SIGNAL = "cx_counter_signal"
    #: the counter tripping: the Nth signal fires the single aggregate
    #: notification (callback run + wake push), charged once per counter
    CX_COUNTER_TRIP = "cx_counter_trip"

    # -- pointer / dispatch ------------------------------------------------
    LOCALITY_BRANCH = "locality_branch"
    GPTR_DOWNCAST = "gptr_downcast"
    RMA_CALL_OVERHEAD = "rma_call_overhead"
    AMO_CALL_OVERHEAD = "amo_call_overhead"
    COMPLETION_PROCESS = "completion_process"

    # -- data movement -----------------------------------------------------
    MEMCPY_8B = "memcpy_8b"
    MEMCPY_PER_BYTE = "memcpy_per_byte"
    CPU_ATOMIC_RMW = "cpu_atomic_rmw"
    CPU_LOAD = "cpu_load"
    CPU_STORE = "cpu_store"
    #: random access into a table far larger than cache (GUPS's defining
    #: cost; cache-hot microbenchmark loops never pay it)
    DRAM_RANDOM_ACCESS = "dram_random_access"
    #: coherence/fence penalty paid per co-located peer when many processes
    #: issue atomic RMWs concurrently (why the paper's 16-process GUPS sees
    #: atomics as far costlier than the 2-process microbenchmark does)
    AMO_CONTENTION_PER_PEER = "amo_contention_per_peer"

    # -- active messages / network ----------------------------------------
    AM_INJECT = "am_inject"
    AM_POLL = "am_poll"
    AM_EXECUTE = "am_execute"
    NETWORK_LATENCY = "network_latency"
    RPC_SERIALIZE_PER_BYTE = "rpc_serialize_per_byte"
    #: appending one small AM to a per-destination aggregation buffer (the
    #: cheap operation that replaces a full ``AM_INJECT`` when destination
    #: batching is on — the amortization the aggregator exists to buy)
    AM_AGG_APPEND = "am_agg_append"
    #: building/writing the bundle header when a destination buffer is
    #: flushed as one bundled AM (paid once per bundle, on the sender)
    AM_BUNDLE_HEADER = "am_bundle_header"
    #: receiver-side dispatch of one entry out of a delivered bundle
    #: (cheaper than a full ``AM_EXECUTE``: no per-message poll/queue work)
    AM_BUNDLE_ENTRY_DISPATCH = "am_bundle_entry_dispatch"
    #: one observation of the adaptive batching controller: EWMA updates
    #: of the destination's inter-arrival gap / payload size plus the
    #: threshold recompute (paid per append when ``agg_adaptive`` is on)
    AM_AGG_ADAPT = "am_agg_adapt"
    #: delta-encoding one bundle entry at flush time (run detection and
    #: continuation-header emission; paid per entry when
    #: ``agg_compression`` is on)
    AM_BUNDLE_COMPRESS = "am_bundle_compress"

    # -- misc ----------------------------------------------------------------
    LPC_ENQUEUE = "lpc_enqueue"
    BARRIER = "barrier"
    FUNCTION_CALL = "function_call"


#: stable dense indexing of the action vocabulary, used by the batched
#: per-rank count accumulators (a flat list indexes ~3× faster than a
#: Counter keyed by enum members on the charge hot path)
_ACTIONS: tuple[CostAction, ...] = tuple(CostAction)
_ACTION_INDEX: dict[CostAction, int] = {a: i for i, a in enumerate(_ACTIONS)}


class CostModel:
    r"""Charges :class:`CostAction` costs onto a rank's virtual clock.

    Parameters
    ----------
    profile:
        The machine profile supplying per-action nanosecond costs.
    clock:
        The rank's virtual clock; may be swapped via :attr:`clock` when a
        context is re-bound.

    Notes
    -----
    Counting is always on (it is just a ``Counter`` update); it is what lets
    tests make structural assertions independent of the tuned constants.

    Per-action costs are precomputed at construction into two flat dicts —
    exact integer clock units (the profile quantizes every cost to the
    2\ :sup:`-20` ns grid, see :meth:`MachineProfile.cost_ns`) and their
    float-nanosecond images — so the default charge path pays one dict
    lookup and one integer clock add instead of a method call and a float
    round-trip.

    With :meth:`enable_batching` (``FeatureFlags.cost_batching``) charges
    accumulate into a pending-units integer scalar and a dense per-action
    count list instead of touching the clock/Counter per call; the clock's
    flush hook folds pending units in before any timestamp read, and the
    counts merge lazily on :meth:`count`/:meth:`snapshot`.  Because the
    accumulator is an integer sum of exact integer charges, batching is
    **bit-identical** to per-charge advancing — integer addition is
    associative, so reordering the folds cannot change the result.  The
    only remaining incompatibility is timing noise, whose jitter must be
    drawn per charge.
    """

    __slots__ = (
        "profile", "clock", "counts", "enabled", "tracer", "_ctx",
        "noise", "noise_rng", "noise_run_factor",
        "_cost_ns", "_cost_units", "_batching", "_pending_units",
        "_batch_counts",
    )

    def __init__(self, profile: "MachineProfile", clock: "VirtualClock"):
        self.profile = profile
        self.clock = clock
        self.counts: Counter[CostAction] = Counter()
        self.enabled: bool = True
        #: precomputed action -> integer clock units (resolves the
        #: profile's NETWORK_LATENCY special case once, at construction;
        #: exact because the profile quantizes to the unit grid)
        self._cost_units: dict[CostAction, int] = {
            a: round(profile.cost_ns(a) * UNITS_PER_NS) for a in _ACTIONS
        }
        #: the float-nanosecond image of ``_cost_units`` (exact — the grid
        #: is dyadic), used for charge return values and the noise path
        self._cost_ns: dict[CostAction, float] = {
            a: u * _INV_UNITS for a, u in self._cost_units.items()
        }
        self._batching: bool = False
        self._pending_units: int = 0
        self._batch_counts: list[int] = [0] * len(_ACTIONS)
        #: optional repro.sim.trace.Tracer recording the event timeline
        self.tracer = None
        #: back-reference set by RankContext (used only for tracing)
        self._ctx = None
        #: relative timing jitter (0.0 = deterministic).  Noise is
        #: one-sided — interference (OS, other processes, coherence
        #: traffic) only ever *adds* time — which is exactly why the
        #: paper's estimator keeps the *best* 10 of 20 samples.
        self.noise: float = 0.0
        self.noise_rng = None  # seeded random.Random, set with noise
        #: run-wide interference factor (≥ 1): co-runners/OS activity slow
        #: a whole sample, not individual instructions.  This correlated
        #: component is what the top-10-of-N estimator filters out.
        self.noise_run_factor: float = 1.0

    def _jitter(self, ns: float) -> float:
        if self.noise and self.noise_rng is not None and ns > 0:
            per_charge = 1.0 + self.noise * abs(self.noise_rng.gauss(0, 1))
            return ns * self.noise_run_factor * per_charge
        return ns

    def charge(self, action: CostAction, times: int = 1) -> float:
        """Charge ``times`` occurrences of ``action``; return ns charged."""
        if not self.enabled:
            return 0.0
        if self._batching:
            self._batch_counts[_ACTION_INDEX[action]] += times
            units = self._cost_units[action] * times
            if units:
                self._pending_units += units
            if self.tracer is not None and self._ctx is not None:
                self.tracer.record(self._ctx, action, times)
            return units * _INV_UNITS
        self.counts[action] += times
        if self.noise:
            ns = self._jitter(self._cost_ns[action] * times)
            if ns:
                self.clock.advance(ns)
            if self.tracer is not None and self._ctx is not None:
                self.tracer.record(self._ctx, action, times)
            return ns
        units = self._cost_units[action] * times
        if units:
            self.clock.advance_units(units)
        if self.tracer is not None and self._ctx is not None:
            self.tracer.record(self._ctx, action, times)
        return units * _INV_UNITS

    def charge_bytes(self, action: CostAction, nbytes: int) -> float:
        """Charge a per-byte action scaled by ``nbytes``."""
        if not self.enabled:
            return 0.0
        if self._batching:
            self._batch_counts[_ACTION_INDEX[action]] += 1
            units = self._cost_units[action] * nbytes
            if units:
                self._pending_units += units
            if self.tracer is not None and self._ctx is not None:
                self.tracer.record(self._ctx, action, 1)
            return units * _INV_UNITS
        self.counts[action] += 1
        if self.noise:
            ns = self._jitter(self._cost_ns[action] * nbytes)
            if ns:
                self.clock.advance(ns)
            if self.tracer is not None and self._ctx is not None:
                self.tracer.record(self._ctx, action, 1)
            return ns
        units = self._cost_units[action] * nbytes
        if units:
            self.clock.advance_units(units)
        if self.tracer is not None and self._ctx is not None:
            self.tracer.record(self._ctx, action, 1)
        return units * _INV_UNITS

    # -- batched mode --------------------------------------------------------

    def enable_batching(self) -> None:
        """Switch to accumulator mode (``FeatureFlags.cost_batching``).

        Charges park integer clock units in :attr:`_pending_units` and
        counts in the dense :attr:`_batch_counts` list; the clock's flush
        hook folds the pending units in before any timestamp is observed.
        Bit-identical to per-charge advancing (integer sums are
        order-independent).  Incompatible with timing noise: jitter must
        be drawn per charge, which is the per-charge work batching
        removes.
        """
        if self.noise:
            raise ValueError(
                "cost_batching is incompatible with timing noise "
                "(jitter is drawn per charge)"
            )
        self._batching = True
        self.clock._flush_hook = self._flush_pending

    def _flush_pending(self) -> None:
        """Fold accumulated pending units into the clock (installed as
        the clock's flush hook; runs before any ``now_ns`` read)."""
        units = self._pending_units
        if units:
            self._pending_units = 0
            self.clock._units += units

    def _merge_batched_counts(self) -> None:
        """Fold the dense batched count list into the ``counts`` Counter."""
        batch = self._batch_counts
        if _np is not None:
            nonzero = _np.nonzero(_np.asarray(batch, dtype=_np.int64))[0]
        else:  # pragma: no cover - numpy-less fallback
            nonzero = [i for i, c in enumerate(batch) if c]
        if len(nonzero) == 0:
            return
        counts = self.counts
        for i in nonzero:
            counts[_ACTIONS[i]] += batch[i]
            batch[i] = 0

    # -- queries -------------------------------------------------------------

    def count(self, action: CostAction) -> int:
        """How many times ``action`` has been charged."""
        if self._batching:
            self._merge_batched_counts()
        return self.counts[action]

    def snapshot(self) -> Counter:
        """A copy of the current action counters (for differential checks)."""
        if self._batching:
            self._merge_batched_counts()
        return Counter(self.counts)

    def reset_counts(self) -> None:
        """Zero the action counters (clock is left untouched)."""
        if self._batching:
            self._batch_counts = [0] * len(_ACTIONS)
        self.counts.clear()
