"""The paper's sampling protocol.

Section IV: "Each experimental result was obtained by running twenty
samples, taking the average of the top ten.  The exception is GUPS on IBM
with 16 processes; due to higher noise in this experiment, we ran 60 samples
and took the average of the top ten."

Our virtual-time measurements are deterministic given a seed, so "noise" is
injected by varying the sample seed; the protocol is still applied so the
harness matches the paper's methodology (and so the stats helpers are
exercised end-to-end).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.runtime import World


@dataclass(frozen=True)
class SampleStats:
    """Summary of a sampled measurement.

    ``value`` follows the paper's estimator.  For latency-like metrics
    (lower is better) the "top ten" are the ten *smallest* samples; for
    throughput-like metrics (higher is better) they are the ten largest.
    """

    samples: tuple[float, ...]
    value: float
    best: float
    worst: float
    mean: float

    @property
    def n(self) -> int:
        return len(self.samples)


def paper_average(
    samples: Sequence[float], *, top: int = 10, lower_is_better: bool = True
) -> SampleStats:
    """Apply the paper's estimator: average of the best ``top`` samples.

    Parameters
    ----------
    samples:
        Raw measurements (at least one).
    top:
        How many of the best samples to average (paper: 10).  If fewer
        samples are available, all are used.
    lower_is_better:
        Direction of "best": ``True`` for latencies, ``False`` for rates.
    """
    if not samples:
        raise ValueError("paper_average requires at least one sample")
    ordered = sorted(samples, reverse=not lower_is_better)
    chosen = ordered[: max(1, min(top, len(ordered)))]
    mean_all = sum(samples) / len(samples)
    return SampleStats(
        samples=tuple(samples),
        value=sum(chosen) / len(chosen),
        best=ordered[0],
        worst=ordered[-1],
        mean=mean_all,
    )


def run_samples(
    fn: Callable[[int], float],
    *,
    n_samples: int = 20,
    top: int = 10,
    lower_is_better: bool = True,
) -> SampleStats:
    """Run ``fn(sample_index)`` ``n_samples`` times and apply the paper's
    estimator to the results.

    ``fn`` receives the sample index (useful as a seed perturbation) and
    must return a single measurement.
    """
    if n_samples < 1:
        raise ValueError("n_samples must be >= 1")
    samples = [float(fn(i)) for i in range(n_samples)]
    return paper_average(samples, top=top, lower_is_better=lower_is_better)


# ---------------------------------------------------------------------------
# seed-repetition confidence intervals (the A/B engine's error bars)
# ---------------------------------------------------------------------------

#: two-sided Student-t critical values at 95% confidence by degrees of
#: freedom; beyond the table the normal approximation (1.96) is close
#: enough for an error bar.  Hardcoded so the helper stays stdlib-only
#: and bit-reproducible across environments (no scipy dependency).
_T95_BY_DF = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
    16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
    21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
    26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
}


@dataclass(frozen=True)
class ConfidenceInterval:
    """A 95% Student-t confidence interval of a mean over per-seed
    samples.  Virtual-time metrics are deterministic given a seed, so all
    interval width comes from seed-to-seed workload variation; a single
    seed (or identical samples) yields a zero-width interval — a gate
    built on it then demands exact reproduction."""

    mean: float
    lo: float
    hi: float
    n: int
    stdev: float

    @property
    def halfwidth(self) -> float:
        return self.hi - self.mean

    def as_dict(self) -> dict:
        """JSON-artifact form (rounded for stable diffs)."""
        return {
            "mean": round(self.mean, 9),
            "lo": round(self.lo, 9),
            "hi": round(self.hi, 9),
            "n": self.n,
            "stdev": round(self.stdev, 9),
        }


def seed_confidence_interval(
    samples: Sequence[float],
) -> ConfidenceInterval:
    """95% confidence interval of the mean of ``samples`` (one
    measurement per seed), using Student-t critical values for small n.
    """
    if not samples:
        raise ValueError(
            "seed_confidence_interval requires at least one sample"
        )
    vals = [float(v) for v in samples]
    n = len(vals)
    mean = sum(vals) / n
    if n == 1:
        return ConfidenceInterval(mean=mean, lo=mean, hi=mean, n=1, stdev=0.0)
    var = sum((v - mean) ** 2 for v in vals) / (n - 1)
    stdev = var ** 0.5
    t = _T95_BY_DF.get(n - 1, 1.96)
    half = t * stdev / n ** 0.5
    return ConfidenceInterval(
        mean=mean, lo=mean - half, hi=mean + half, n=n, stdev=stdev
    )


# ---------------------------------------------------------------------------
# runtime-internal counters surfaced for benchmarks/tests
# ---------------------------------------------------------------------------


def gather_rank_snapshots(world: "World", getter: Callable):
    """Collect per-rank observability snapshots across ``world.contexts``.

    ``getter(ctx)`` returns the rank's snapshot or ``None`` when the
    corresponding subsystem is disabled on that rank; disabled ranks are
    skipped.  This is the one shared rollup walk behind
    :func:`aggregation_snapshots` and :func:`observability_snapshots` —
    every per-rank stats subsystem gathers through it so world iteration
    and the None-means-off convention live in a single place.
    """
    snaps = []
    for ctx in world.contexts:
        snap = getter(ctx)
        if snap is not None:
            snaps.append(snap)
    return snaps


def observability_snapshots(world: "World"):
    """Per-rank :class:`~repro.obs.ObsSnapshot` list (empty when
    ``FeatureFlags.obs_spans`` is off)."""
    return gather_rank_snapshots(
        world,
        lambda ctx: ctx.obs.snapshot() if ctx.obs is not None else None,
    )


def observability_stats(world: "World"):
    """World-wide :class:`~repro.obs.ObsStats` rollup (``None`` when
    ``FeatureFlags.obs_spans`` is off)."""
    snaps = observability_snapshots(world)
    if not snaps:
        return None
    from repro.obs import merge_obs_snapshots  # local: repro.obs is leaf-light

    return merge_obs_snapshots(snaps)


def serve_snapshots(world: "World"):
    """Per-rank :class:`~repro.serve.driver.ServeRankSnapshot` list
    (empty when the world never ran the serving driver).

    The serving driver parks its measurement state on the rank context
    as ``ctx.serve_obs`` — same convention as the aggregation/progress
    subsystems, gathered through the one shared rollup walk."""
    return gather_rank_snapshots(
        world,
        lambda ctx: (
            ctx.serve_obs.snapshot()
            if getattr(ctx, "serve_obs", None) is not None
            else None
        ),
    )


def serve_stats(world: "World"):
    """World-wide serving rollup (``None`` when the world never served):
    counters summed, percentile sketches merged per phase/class."""
    snaps = serve_snapshots(world)
    if not snaps:
        return None
    from repro.serve.driver import merge_serve_snapshots

    return merge_serve_snapshots(snaps)


def pshm_cache_hits(world: "World") -> int:
    """Lookups served by the conduit's static-topology reachability memo.

    The memo is built once at conduit construction, so every reachability
    check (the on-node fast-path gate of RMA/AMO operations and the AM
    routing decision) is a hit; this counter is how benchmarks verify the
    fast path stayed on the memo rather than recomputing ``World``
    arithmetic per operation.
    """
    return world.conduit.pshm_cache_hits


@dataclass(frozen=True)
class AggregationStats:
    """World-wide AM-aggregation counters (summed over ranks).

    The adaptive/compression fields stay zero (and ``bundle_size_hist`` /
    ``flush_reasons`` empty) unless the corresponding feature flags were
    on — aggregating them is free either way.
    """

    appended: int
    bundles_flushed: int
    entries_flushed: int
    largest_bundle: int
    #: summed simulated parking time (append -> flush) over all entries
    parked_ns_total: float = 0.0
    #: buffers force-flushed by the adaptive age bound
    age_flushes: int = 0
    #: targeted wait flushes across all ranks (0 unless ``wait_hints``)
    wait_flushes: int = 0
    #: adaptive-controller observations across all ranks
    adaptive_updates: int = 0
    #: recorded controller threshold decisions across all ranks
    threshold_decisions: int = 0
    #: framing bytes saved by bundle delta-compression
    compression_saved_bytes: int = 0
    #: merged bundle-size -> count histogram
    bundle_size_hist: dict = field(default_factory=dict)
    #: merged flush-trigger -> count tally
    flush_reasons: dict = field(default_factory=dict)

    @property
    def mean_bundle_size(self) -> float:
        if not self.bundles_flushed:
            return 0.0
        return self.entries_flushed / self.bundles_flushed

    @property
    def mean_parked_ns(self) -> float:
        """Mean simulated parking latency of a flushed entry (the
        quantity the adaptive controller drives down for sparse
        traffic)."""
        if not self.entries_flushed:
            return 0.0
        return self.parked_ns_total / self.entries_flushed


def aggregation_stats(world: "World") -> AggregationStats:
    """Aggregate the per-rank :class:`~repro.gasnet.aggregator.AmAggregator`
    counters of a world (all zeros when aggregation is off)."""
    appended = flushed = entries = largest = 0
    parked = 0.0
    age = waits = updates = decisions = saved = 0
    hist: dict[int, int] = {}
    reasons: dict[str, int] = {}
    for s in aggregation_snapshots(world):
        appended += s.appended
        flushed += s.bundles_flushed
        entries += s.entries_flushed
        largest = max(largest, s.largest_bundle)
        parked += s.parked_ns_total
        age += s.age_flushes
        waits += s.wait_flushes
        updates += s.adaptive_updates
        decisions += len(s.threshold_trajectory)
        saved += s.compression_saved_bytes
        for size, count in s.bundle_size_hist.items():
            hist[size] = hist.get(size, 0) + count
        for reason, count in s.flush_reasons.items():
            reasons[reason] = reasons.get(reason, 0) + count
    return AggregationStats(
        appended=appended,
        bundles_flushed=flushed,
        entries_flushed=entries,
        largest_bundle=largest,
        parked_ns_total=parked,
        age_flushes=age,
        wait_flushes=waits,
        adaptive_updates=updates,
        threshold_decisions=decisions,
        compression_saved_bytes=saved,
        bundle_size_hist=hist,
        flush_reasons=reasons,
    )


def aggregation_snapshots(world: "World"):
    """Per-rank :class:`~repro.gasnet.aggregator.AggregatorSnapshot` list
    (empty when aggregation is off) — the full per-rank view behind
    :func:`aggregation_stats`, including each rank's adaptive threshold
    trajectory."""
    return gather_rank_snapshots(
        world,
        lambda ctx: ctx.am_agg.stats() if ctx.am_agg is not None else None,
    )


@dataclass(frozen=True)
class ProgressStats:
    """World-wide adaptive-progress counters (summed over ranks).

    All zeros when ``FeatureFlags.progress_adaptive`` is off — use
    :func:`progress_stats` (which returns ``None`` in that case, like
    :func:`observability_stats`) to distinguish off from idle.
    """

    ranks: int
    #: full polls observed (each charged PROGRESS_POLL + PROGRESS_ADAPT)
    full_polls: int
    #: provably-empty polls elided (each charged PROGRESS_POLL_SKIP)
    skipped_polls: int
    #: thunks dispatched under the controller (drain loop + aged retires)
    dispatched: int
    #: polls that hit the drain cap with non-aged work left over
    capped_polls: int
    #: enqueue-time mini-drains triggered by the age bound
    aged_drains: int
    #: thunks retired because they outlived ``progress_max_age_ticks``
    aged_dispatched: int
    #: recorded control decisions across all ranks
    decisions: int
    #: targeted-drain scans that found awaited work (0 unless
    #: ``wait_hints``)
    hinted_scans: int = 0
    #: thunks dispatched ahead of the cap for an active wait target
    hinted_dispatched: int = 0

    @property
    def elision_ratio(self) -> float:
        """Fraction of progress calls elided as cheap skips."""
        calls = self.full_polls + self.skipped_polls
        if not calls:
            return 0.0
        return self.skipped_polls / calls


def progress_snapshots(world: "World"):
    """Per-rank
    :class:`~repro.runtime.adaptive_progress.ProgressControllerSnapshot`
    list (empty when ``FeatureFlags.progress_adaptive`` is off), including
    each rank's control-decision trajectory."""
    return gather_rank_snapshots(
        world,
        lambda ctx: (
            ctx.progress_ctl.snapshot(ctx.rank)
            if ctx.progress_ctl is not None
            else None
        ),
    )


def progress_stats(world: "World"):
    """World-wide :class:`ProgressStats` rollup (``None`` when
    ``FeatureFlags.progress_adaptive`` is off)."""
    snaps = progress_snapshots(world)
    if not snaps:
        return None
    return ProgressStats(
        ranks=len(snaps),
        full_polls=sum(s.full_polls for s in snaps),
        skipped_polls=sum(s.skipped_polls for s in snaps),
        dispatched=sum(s.dispatched for s in snaps),
        capped_polls=sum(s.capped_polls for s in snaps),
        aged_drains=sum(s.aged_drains for s in snaps),
        aged_dispatched=sum(s.aged_dispatched for s in snaps),
        decisions=sum(len(s.trajectory) for s in snaps),
        hinted_scans=sum(s.hinted_scans for s in snaps),
        hinted_dispatched=sum(s.hinted_dispatched for s in snaps),
    )
