"""The paper's sampling protocol.

Section IV: "Each experimental result was obtained by running twenty
samples, taking the average of the top ten.  The exception is GUPS on IBM
with 16 processes; due to higher noise in this experiment, we ran 60 samples
and took the average of the top ten."

Our virtual-time measurements are deterministic given a seed, so "noise" is
injected by varying the sample seed; the protocol is still applied so the
harness matches the paper's methodology (and so the stats helpers are
exercised end-to-end).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.runtime import World


@dataclass(frozen=True)
class SampleStats:
    """Summary of a sampled measurement.

    ``value`` follows the paper's estimator.  For latency-like metrics
    (lower is better) the "top ten" are the ten *smallest* samples; for
    throughput-like metrics (higher is better) they are the ten largest.
    """

    samples: tuple[float, ...]
    value: float
    best: float
    worst: float
    mean: float

    @property
    def n(self) -> int:
        return len(self.samples)


def paper_average(
    samples: Sequence[float], *, top: int = 10, lower_is_better: bool = True
) -> SampleStats:
    """Apply the paper's estimator: average of the best ``top`` samples.

    Parameters
    ----------
    samples:
        Raw measurements (at least one).
    top:
        How many of the best samples to average (paper: 10).  If fewer
        samples are available, all are used.
    lower_is_better:
        Direction of "best": ``True`` for latencies, ``False`` for rates.
    """
    if not samples:
        raise ValueError("paper_average requires at least one sample")
    ordered = sorted(samples, reverse=not lower_is_better)
    chosen = ordered[: max(1, min(top, len(ordered)))]
    mean_all = sum(samples) / len(samples)
    return SampleStats(
        samples=tuple(samples),
        value=sum(chosen) / len(chosen),
        best=ordered[0],
        worst=ordered[-1],
        mean=mean_all,
    )


def run_samples(
    fn: Callable[[int], float],
    *,
    n_samples: int = 20,
    top: int = 10,
    lower_is_better: bool = True,
) -> SampleStats:
    """Run ``fn(sample_index)`` ``n_samples`` times and apply the paper's
    estimator to the results.

    ``fn`` receives the sample index (useful as a seed perturbation) and
    must return a single measurement.
    """
    if n_samples < 1:
        raise ValueError("n_samples must be >= 1")
    samples = [float(fn(i)) for i in range(n_samples)]
    return paper_average(samples, top=top, lower_is_better=lower_is_better)


# ---------------------------------------------------------------------------
# runtime-internal counters surfaced for benchmarks/tests
# ---------------------------------------------------------------------------


def pshm_cache_hits(world: "World") -> int:
    """Lookups served by the conduit's static-topology reachability memo.

    The memo is built once at conduit construction, so every reachability
    check (the on-node fast-path gate of RMA/AMO operations and the AM
    routing decision) is a hit; this counter is how benchmarks verify the
    fast path stayed on the memo rather than recomputing ``World``
    arithmetic per operation.
    """
    return world.conduit.pshm_cache_hits


@dataclass(frozen=True)
class AggregationStats:
    """World-wide AM-aggregation counters (summed over ranks)."""

    appended: int
    bundles_flushed: int
    entries_flushed: int
    largest_bundle: int

    @property
    def mean_bundle_size(self) -> float:
        if not self.bundles_flushed:
            return 0.0
        return self.entries_flushed / self.bundles_flushed


def aggregation_stats(world: "World") -> AggregationStats:
    """Aggregate the per-rank :class:`~repro.gasnet.aggregator.AmAggregator`
    counters of a world (all zeros when aggregation is off)."""
    appended = flushed = entries = largest = 0
    for ctx in world.contexts:
        agg = ctx.am_agg
        if agg is None:
            continue
        appended += agg.appended
        flushed += agg.bundles_flushed
        entries += agg.entries_flushed
        largest = max(largest, agg.largest_bundle)
    return AggregationStats(
        appended=appended,
        bundles_flushed=flushed,
        entries_flushed=entries,
        largest_bundle=largest,
    )
