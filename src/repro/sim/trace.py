"""Execution tracing: an optional timeline of cost-model events.

Attach a :class:`Tracer` to one or more ranks' cost models to record every
charged action with its virtual timestamp — the simulation analogue of a
profiler.  Used by the diagnostics in ``tools/`` and by tests that verify
*ordering* claims (e.g. "the deferred notification's dispatch happens
after the wait began").

Tracing is off by default and costs nothing when disabled (the cost model
checks a single attribute).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional

from repro.sim.costmodel import CostAction

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.context import RankContext


@dataclass(frozen=True)
class TraceEvent:
    """One recorded action occurrence."""

    t_ns: float
    rank: int
    action: CostAction
    times: int


class Tracer:
    """Collects :class:`TraceEvent` records from attached rank contexts."""

    def __init__(self, capacity: Optional[int] = None):
        self.events: list[TraceEvent] = []
        self.capacity = capacity
        self.dropped = 0

    # -- recording ---------------------------------------------------------

    def record(self, ctx: "RankContext", action: CostAction, times: int) -> None:
        if self.capacity is not None and len(self.events) >= self.capacity:
            self.dropped += 1
            return
        self.events.append(
            TraceEvent(
                t_ns=ctx.clock.now_ns,
                rank=ctx.rank,
                action=action,
                times=times,
            )
        )

    def attach(self, ctx: "RankContext") -> None:
        """Start recording this rank's cost-model activity."""
        ctx.costs.tracer = self  # type: ignore[attr-defined]

    def detach(self, ctx: "RankContext") -> None:
        if getattr(ctx.costs, "tracer", None) is self:
            ctx.costs.tracer = None  # type: ignore[attr-defined]

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def filter(
        self,
        action: Optional[CostAction] = None,
        rank: Optional[int] = None,
    ) -> list[TraceEvent]:
        out: Iterable[TraceEvent] = self.events
        if action is not None:
            out = (e for e in out if e.action is action)
        if rank is not None:
            out = (e for e in out if e.rank == rank)
        return list(out)

    def counts(self) -> Counter:
        c: Counter = Counter()
        for e in self.events:
            c[e.action] += e.times
        return c

    def first(self, action: CostAction) -> Optional[TraceEvent]:
        for e in self.events:
            if e.action is action:
                return e
        return None

    def last(self, action: CostAction) -> Optional[TraceEvent]:
        for e in reversed(self.events):
            if e.action is action:
                return e
        return None

    def summary(self) -> dict:
        """Structured completeness accounting: what was recorded, what was
        dropped at capacity, and whether the record is partial."""
        return {
            "recorded": len(self.events),
            "dropped": self.dropped,
            "capacity": self.capacity,
            "complete": self.dropped == 0,
        }

    # -- rendering -----------------------------------------------------------

    def format_timeline(self, limit: int = 50) -> str:
        """A human-readable timeline (first ``limit`` events).

        A capacity-truncated trace says so up front in the header — a
        silently incomplete timeline reads exactly like a complete one,
        so the dropped count is surfaced before the events, not only in
        the trailing marker line.
        """
        header = "     t/ns  rank  action"
        if self.dropped:
            header += f"  [dropped={self.dropped} at capacity={self.capacity}]"
        lines = [header]
        if not self.events:
            # an empty trace renders as an explicit marker, not a bare
            # header that reads like a formatting accident
            lines.append("  (no events)")
        for e in self.events[:limit]:
            lines.append(
                f"{e.t_ns:9.1f}  {e.rank:4d}  {e.action.value}"
                + (f" x{e.times}" if e.times != 1 else "")
            )
        if len(self.events) > limit:
            lines.append(f"... {len(self.events) - limit} more events")
        if self.dropped:
            lines.append(f"... {self.dropped} events dropped (capacity)")
        return "\n".join(lines)
