"""repro — a Python APGAS runtime reproducing *"Optimization of
Asynchronous Communication Operations through Eager Notifications"*
(Kamil & Bonachea, SC 2021).

The public API mirrors UPC++ (namespace qualifiers elided, as in the
paper's listings)::

    from repro import (
        spmd_run, rank_me, rank_n, barrier,
        new_, new_array, delete_,
        rput, rget, rget_into, when_all, make_future,
        Promise, operation_cx, source_cx, remote_cx,
        AtomicDomain, rpc, rpc_ff, Version,
    )

    def main():
        gptr = new_("i64", 3)           # allocate in my shared segment
        fut = rput(42, gptr)             # asynchronous put
        fut.wait()
        assert rget(gptr).wait() == 42
        barrier()

    spmd_run(main, ranks=4, version=Version.V2021_3_6_EAGER)

Everything runs inside a simulated SPMD world (one cooperatively scheduled
thread per rank) with virtual-time cost accounting; see DESIGN.md for the
reproduction methodology.
"""

from __future__ import annotations

from repro.atomics import AMO_OPS, AtomicDomain
from repro.core import (
    Completions,
    CxCounter,
    Event,
    Future,
    Promise,
    make_future,
    operation_cx,
    remote_cx,
    source_cx,
    to_future,
    when_all,
)
from repro.errors import UpcxxError
from repro.gasnet.team import Team
from repro.memory.global_ptr import GlobalPtr, LocalRef
from repro.memory.segment import TypeSpec, type_spec
from repro.coll import barrier_async, broadcast, reduce_all, reduce_one
from repro.rma import (
    copy,
    rget,
    rget_bulk,
    rget_indexed,
    rget_into,
    rget_strided,
    rput,
    rput_bulk,
    rput_indexed,
    rput_strided,
)
from repro.rpc import rpc, rpc_ff
from repro.runtime import RuntimeConfig, SpmdResult, Version, spmd_run
from repro.runtime.config import FeatureFlags, flags_for
from repro.runtime.context import current_ctx, current_ctx_or_none
from repro.runtime.dist import DistObject
from repro.runtime.persona import (
    Persona,
    current_persona,
    lpc,
    master_persona,
    persona_scope,
)
from repro.sim.machines import GENERIC, IBM, INTEL, MARVELL, profile_by_name

__version__ = "1.0.0"

__all__ = [
    # runtime / world
    "spmd_run", "SpmdResult", "Version", "RuntimeConfig", "FeatureFlags",
    "flags_for", "rank_me", "rank_n", "barrier", "barrier_gen", "progress",
    "world_team", "local_team", "current_ctx", "current_ctx_or_none",
    # memory
    "GlobalPtr", "LocalRef", "TypeSpec", "type_spec",
    "new_", "new_array", "delete_",
    # futures / promises / completions
    "Future", "Promise", "make_future", "to_future", "when_all",
    "Completions", "CxCounter", "Event",
    "operation_cx", "source_cx", "remote_cx",
    # communication
    "rput", "rput_bulk", "rget", "rget_into", "rget_bulk", "copy",
    "rput_strided", "rget_strided", "rput_indexed", "rget_indexed",
    "AtomicDomain", "AMO_OPS", "rpc", "rpc_ff",
    # collectives / distributed objects
    "broadcast", "reduce_one", "reduce_all", "barrier_async", "DistObject",
    # personas
    "Persona", "master_persona", "current_persona", "persona_scope", "lpc",
    # teams / profiles
    "Team", "INTEL", "IBM", "MARVELL", "GENERIC", "profile_by_name",
    "UpcxxError",
]


# ---------------------------------------------------------------------------
# SPMD convenience functions (the upcxx:: free functions)
# ---------------------------------------------------------------------------


def rank_me() -> int:
    """The calling rank's index in the world (``upcxx::rank_me``)."""
    return current_ctx().rank


def rank_n() -> int:
    """The number of ranks in the world (``upcxx::rank_n``)."""
    return current_ctx().world_size


def barrier() -> None:
    """Block until all ranks arrive (``upcxx::barrier``); runs progress."""
    current_ctx().barrier()


def barrier_gen():
    """Generator form of :func:`barrier` for continuation rank bodies:
    ``yield from barrier_gen()``.  Runs on both scheduler substrates (the
    event loop interprets the yields in place; rank threads drive them
    through the blocking primitives)."""
    return current_ctx().barrier_gen()


def progress() -> None:
    """Invoke the progress engine (``upcxx::progress``)."""
    current_ctx().progress()


def world_team() -> Team:
    """The team of all ranks."""
    return current_ctx().world.world_team()


def local_team() -> Team:
    """The team of ranks co-located on the caller's node (PSHM peers)."""
    ctx = current_ctx()
    return ctx.world.local_team(ctx)


# ---------------------------------------------------------------------------
# shared-heap allocation (upcxx::new_ / new_array / delete_)
# ---------------------------------------------------------------------------


def new_(ts: str | TypeSpec = "u64", value=0) -> GlobalPtr:
    """Allocate one element in the calling rank's shared segment and
    initialize it to ``value``; returns the global pointer."""
    ctx = current_ctx()
    spec = type_spec(ts)
    offset = ctx.allocator.allocate(spec.size)
    ctx.segment.write_scalar(offset, spec, value)
    return GlobalPtr(ctx.rank, offset, spec)


def new_array(ts: str | TypeSpec, count: int, fill=0) -> GlobalPtr:
    """Allocate ``count`` elements in the calling rank's shared segment
    (zero/fill-initialized); returns a pointer to the first element."""
    if count < 1:
        raise ValueError("new_array needs count >= 1")
    ctx = current_ctx()
    spec = type_spec(ts)
    offset = ctx.allocator.allocate(spec.size * count)
    view = ctx.segment.view_array(offset, spec, count)
    view[:] = fill
    return GlobalPtr(ctx.rank, offset, spec)


def delete_(gptr: GlobalPtr) -> None:
    """Free a shared-heap allocation (scalar or array) made by the
    corresponding ``new_``/``new_array``.  The memory must be locally
    addressable (same node), as in UPC++."""
    ctx = current_ctx()
    if gptr.is_null:
        return
    if not ctx.is_local_rank(gptr.rank):
        raise UpcxxError(
            "delete_ requires a locally addressable global pointer"
        )
    ctx.world.allocators[gptr.rank].free(gptr.offset)
