"""Future-returning collectives over active messages.

Matching discipline: collectives are matched by *call order per kind of
exchange* — every rank's i-th collective call must be the same collective
with compatible arguments (the standard SPMD contract; violations surface
as mismatched-root errors or hangs, and a best-effort check raises on
root mismatches).

Implementation notes
--------------------
Each world owns a :class:`CollectiveEngine` holding per-sequence state.
Communication is flat (root ↔ everyone) over AMs: an O(P) pattern rather
than a tree — adequate for the single-node process counts of the paper's
experiments, and the cost model charges per-message work so the virtual
cost scales correctly with P either way.

* ``broadcast``: non-root ranks get a future that readies when the root's
  value AM arrives; the root's own future is ready immediately (its value
  contribution is synchronous).
* ``reduce_one``: everyone sends its contribution to the root; the root's
  future readies after all P contributions; non-root futures ready at
  send time (their part is done — matching ``upcxx::reduce_one`` where
  only the root receives the value).
* ``reduce_all``: ``reduce_one`` at rank 0 followed by an internal
  broadcast of the result; every rank's future carries the reduced value.
* ``barrier_async``: a value-less ``reduce_all``.
"""

from __future__ import annotations

import operator
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.core.cell import PromiseCell, alloc_cell
from repro.core.future import Future
from repro.errors import UpcxxError
from repro.runtime.context import current_ctx

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.context import RankContext

#: Named reduction operators (callables are also accepted).
REDUCTION_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "add": operator.add,
    "mul": operator.mul,
    "min": min,
    "max": max,
    "bit_and": operator.and_,
    "bit_or": operator.or_,
    "bit_xor": operator.xor,
}


def _resolve_op(op) -> Callable[[Any, Any], Any]:
    if callable(op):
        return op
    try:
        return REDUCTION_OPS[op]
    except KeyError:
        raise UpcxxError(
            f"unknown reduction op {op!r}; known: {sorted(REDUCTION_OPS)}"
        ) from None


class _SeqState:
    """Per-(kind, seq) rendezvous state."""

    __slots__ = ("root", "value", "arrived", "contribs", "cells", "done")

    def __init__(self) -> None:
        self.root: Optional[int] = None
        self.value: Any = None
        self.arrived = False  # broadcast payload arrived
        self.contribs: list = []  # reduction contributions
        self.cells: dict[int, PromiseCell] = {}  # rank -> waiting cell
        self.done = False


class CollectiveEngine:
    """World-level matcher for collective calls."""

    def __init__(self, world_size: int):
        self.world_size = world_size
        self._state: dict[tuple[str, int], _SeqState] = {}

    def seq_for(self, ctx: "RankContext", kind: str) -> int:
        key = f"_coll_seq_{kind}"
        n = getattr(ctx, key, 0)
        setattr(ctx, key, n + 1)
        return n

    def state(self, kind: str, seq: int) -> _SeqState:
        return self._state.setdefault((kind, seq), _SeqState())

    def check_root(self, st: _SeqState, root: int, kind: str) -> None:
        if st.root is None:
            st.root = root
        elif st.root != root:
            raise UpcxxError(
                f"collective mismatch: {kind} invoked with root {root} on "
                f"one rank but {st.root} on another"
            )


def _engine(ctx: "RankContext") -> CollectiveEngine:
    world = ctx.world
    eng = getattr(world, "_coll_engine", None)
    if eng is None:
        eng = CollectiveEngine(world.size)
        world._coll_engine = eng  # type: ignore[attr-defined]
    return eng


# ---------------------------------------------------------------------------
# broadcast
# ---------------------------------------------------------------------------


def broadcast(value: Any, root: int) -> Future:
    """``future<T>`` of ``root``'s ``value`` on every rank.

    ``value`` is ignored on non-root ranks (as in ``upcxx::broadcast``'s
    one-argument-per-rank form).
    """
    ctx = current_ctx()
    if not (0 <= root < ctx.world_size):
        raise UpcxxError(f"broadcast root {root} out of range")
    eng = _engine(ctx)
    seq = eng.seq_for(ctx, "bcast")
    st = eng.state("bcast", seq)
    eng.check_root(st, root, "broadcast")
    obs = ctx.obs
    span = (
        obs.begin_span("broadcast", "none", target=root, locality="coll")
        if obs is not None
        else None
    )

    if ctx.rank == root:
        st.value = value
        st.arrived = True
        # ship the payload to every other rank
        from repro.rpc.serialization import payload_nbytes

        nbytes = payload_nbytes(value)
        for r in range(ctx.world_size):
            if r == root:
                continue
            ctx.conduit.send_am(
                ctx,
                r,
                _bcast_arrive,
                (seq, value),
                nbytes=nbytes,
                label="bcast",
            )
        # wake anything parked locally (a non-root can't park at the root,
        # but symmetric handling keeps the engine simple)
        _drain_cells(st)
        from repro.core.cell import ready_cell

        if span is not None:
            span.nbytes = nbytes
            span.t_injected = ctx.clock.now_ns
            obs.close_notification(span, ctx.clock.now_ns)
        return Future(ready_cell(ctx, (value,)))

    if st.arrived:
        from repro.core.cell import ready_cell

        if span is not None:
            obs.close_notification(span, ctx.clock.now_ns)
        return Future(ready_cell(ctx, (st.value,)))
    cell = alloc_cell(ctx, nvalues=1, deps=1)
    st.cells[ctx.rank] = cell
    if span is not None:
        # fulfilment happens in _bcast_arrive on this very rank's context
        cell.add_callback(
            lambda vals, s=span: obs.close_notification(s, ctx.clock.now_ns)
        )
    return Future(cell)


def _bcast_arrive(tctx, seq: int, value: Any) -> None:
    eng = _engine(tctx)
    st = eng.state("bcast", seq)
    st.value = value
    st.arrived = True
    cell = st.cells.pop(tctx.rank, None)
    if cell is not None:
        cell.values = (value,)
        cell.fulfill()


def _drain_cells(st: _SeqState) -> None:
    for rank, cell in list(st.cells.items()):
        cell.values = (st.value,)
        cell.fulfill()
        del st.cells[rank]


# ---------------------------------------------------------------------------
# reductions
# ---------------------------------------------------------------------------


def reduce_one(value: Any, op, root: int) -> Future:
    """Reduce every rank's ``value`` with ``op`` at ``root``.

    The root's future carries the reduced value; other ranks get a
    value-less completion future (their contribution has been sent).
    """
    ctx = current_ctx()
    if not (0 <= root < ctx.world_size):
        raise UpcxxError(f"reduce root {root} out of range")
    fn = _resolve_op(op)
    eng = _engine(ctx)
    seq = eng.seq_for(ctx, "reduce")
    st = eng.state("reduce", seq)
    eng.check_root(st, root, "reduce_one")
    obs = ctx.obs
    span = (
        obs.begin_span("reduce_one", "none", target=root, locality="coll")
        if obs is not None
        else None
    )

    if ctx.rank == root:
        st.contribs.append(value)
        if len(st.contribs) == ctx.world_size:
            fut = _finish_reduce(ctx, st, fn)
            if span is not None:
                obs.close_notification(span, ctx.clock.now_ns)
            return fut
        cell = alloc_cell(ctx, nvalues=1, deps=1)
        st.cells[root] = cell
        st.value = fn  # stash the op for the last arrival
        if span is not None:
            # fulfilment happens in _reduce_arrive on the root's context
            cell.add_callback(
                lambda vals, s=span: obs.close_notification(
                    s, ctx.clock.now_ns
                )
            )
        return Future(cell)

    from repro.rpc.serialization import payload_nbytes

    nbytes = payload_nbytes(value)
    ctx.conduit.send_am(
        ctx,
        root,
        _reduce_arrive,
        (seq, value),
        nbytes=nbytes,
        label="reduce",
    )
    from repro.core.cell import ready_unit_cell

    if span is not None:
        span.nbytes = nbytes
        span.t_injected = ctx.clock.now_ns
        obs.close_notification(span, ctx.clock.now_ns)
    return Future(ready_unit_cell(ctx))


def _finish_reduce(ctx, st: _SeqState, fn) -> Future:
    acc = st.contribs[0]
    for v in st.contribs[1:]:
        acc = fn(acc, v)
    st.done = True
    st.contribs = [acc]
    from repro.core.cell import ready_cell

    return Future(ready_cell(ctx, (acc,)))


def _reduce_arrive(tctx, seq: int, value: Any) -> None:
    eng = _engine(tctx)
    st = eng.state("reduce", seq)
    st.contribs.append(value)
    if len(st.contribs) == tctx.world_size:
        fn = st.value if callable(st.value) else operator.add
        acc = st.contribs[0]
        for v in st.contribs[1:]:
            acc = fn(acc, v)
        st.done = True
        st.contribs = [acc]
        cell = st.cells.pop(tctx.rank, None)
        if cell is not None:
            cell.values = (acc,)
            cell.fulfill()


def reduce_all(value: Any, op) -> Future:
    """Reduce every rank's ``value``; the result lands on every rank.

    Implemented as ``reduce_one`` at rank 0 chained into an internal
    broadcast, like typical flat all-reduce implementations.
    """
    fn = _resolve_op(op)
    root_fut = reduce_one(value, fn, 0)
    ctx = current_ctx()
    if ctx.rank == 0:
        return root_fut.then(lambda acc: broadcast(acc, 0))
    # non-root: the reduce_one future is value-less and ready; the result
    # arrives via the broadcast leg
    return root_fut.then(lambda: broadcast(None, 0))


def barrier_async() -> Future:
    """A future that readies once every rank has called it (value-less)."""
    return reduce_all(0, "add").then(lambda _s: None)
