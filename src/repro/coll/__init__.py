"""Asynchronous collectives: broadcast, reductions, asynchronous barrier.

UPC++ provides future-returning collectives (``upcxx::broadcast``,
``upcxx::reduce_one`` / ``reduce_all``, ``upcxx::barrier_async``); the
paper's graph-matching application relies on collectives for its data
initialization.  This package implements them over the active-message
substrate with the same call-order-based matching discipline as real
collectives (every rank must invoke the same collectives in the same
order).
"""

from repro.coll.collectives import (
    REDUCTION_OPS,
    barrier_async,
    broadcast,
    reduce_all,
    reduce_one,
)

__all__ = [
    "broadcast",
    "reduce_one",
    "reduce_all",
    "barrier_async",
    "REDUCTION_OPS",
]
