"""Shared segments: the per-rank registered memory of the PGAS model.

A :class:`Segment` is a contiguous numpy byte buffer with typed accessors.
All remote-memory traffic in the runtime ultimately lands here, so the data
movement in every experiment is real: an ``rput`` writes bytes into the
target rank's segment and a subsequent ``rget`` (or local load) observes
them.

Typed access is mediated by :class:`TypeSpec`, a small registry of the
fixed-width element types the runtime supports (the paper's experiments use
64-bit payloads throughout).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SegmentError


@dataclass(frozen=True)
class TypeSpec:
    """A fixed-width element type usable in shared segments."""

    name: str
    dtype: np.dtype
    size: int

    def __repr__(self) -> str:
        return f"TypeSpec({self.name!r})"


def _ts(name: str, np_name: str) -> TypeSpec:
    dt = np.dtype(np_name)
    return TypeSpec(name=name, dtype=dt, size=dt.itemsize)


_TYPES: dict[str, TypeSpec] = {
    t.name: t
    for t in (
        _ts("i64", "int64"),
        _ts("u64", "uint64"),
        _ts("f64", "float64"),
        _ts("i32", "int32"),
        _ts("u32", "uint32"),
        _ts("u8", "uint8"),
    )
}


def type_spec(name: str | TypeSpec) -> TypeSpec:
    """Resolve a type name (or pass through a :class:`TypeSpec`)."""
    if isinstance(name, TypeSpec):
        return name
    try:
        return _TYPES[name]
    except KeyError:
        raise KeyError(
            f"unknown element type {name!r}; known: {sorted(_TYPES)}"
        ) from None


class Segment:
    """One rank's shared segment: a byte buffer with typed views.

    Parameters
    ----------
    owner_rank:
        The rank whose address space this segment models.
    size_bytes:
        Capacity; must be a multiple of 8 (the max element alignment).
    """

    def __init__(self, owner_rank: int, size_bytes: int):
        if size_bytes <= 0 or size_bytes % 8 != 0:
            raise ValueError("segment size must be a positive multiple of 8")
        self.owner_rank = owner_rank
        self.size_bytes = size_bytes
        self._buf = np.zeros(size_bytes, dtype=np.uint8)
        # cached per-dtype full-buffer views (offset indexing divides by size)
        self._views: dict[str, np.ndarray] = {}

    # -- bounds / alignment ----------------------------------------------

    def _check(self, offset: int, nbytes: int, align: int) -> None:
        if offset < 0 or offset + nbytes > self.size_bytes:
            raise SegmentError(
                f"access [{offset}, {offset + nbytes}) outside segment of "
                f"rank {self.owner_rank} (size {self.size_bytes})"
            )
        if offset % align != 0:
            raise SegmentError(
                f"offset {offset} not aligned to {align} for typed access"
            )

    def _view(self, ts: TypeSpec) -> np.ndarray:
        v = self._views.get(ts.name)
        if v is None:
            v = self._buf.view(ts.dtype)
            self._views[ts.name] = v
        return v

    # -- scalar access -----------------------------------------------------

    def read_scalar(self, offset: int, ts: TypeSpec):
        """Read one ``ts`` element at byte ``offset`` (returns a Python
        scalar)."""
        self._check(offset, ts.size, ts.size)
        return self._view(ts)[offset // ts.size].item()

    def write_scalar(self, offset: int, ts: TypeSpec, value) -> None:
        """Write one ``ts`` element at byte ``offset``."""
        self._check(offset, ts.size, ts.size)
        self._view(ts)[offset // ts.size] = value

    # -- array access -------------------------------------------------------

    def read_array(self, offset: int, ts: TypeSpec, count: int) -> np.ndarray:
        """Copy out ``count`` elements starting at byte ``offset``."""
        if count < 0:
            raise ValueError("count must be >= 0")
        self._check(offset, ts.size * count, ts.size)
        start = offset // ts.size
        return self._view(ts)[start : start + count].copy()

    def write_array(self, offset: int, ts: TypeSpec, values) -> None:
        """Write a sequence of ``ts`` elements starting at byte ``offset``."""
        arr = np.asarray(values, dtype=ts.dtype)
        if arr.ndim != 1:
            raise ValueError("write_array expects a 1-D sequence")
        self._check(offset, ts.size * arr.size, ts.size)
        start = offset // ts.size
        self._view(ts)[start : start + arr.size] = arr

    def view_array(self, offset: int, ts: TypeSpec, count: int) -> np.ndarray:
        """A mutable *view* (no copy) of ``count`` elements at ``offset`` —
        the simulation analogue of a raw C++ pointer into the segment."""
        if count < 0:
            raise ValueError("count must be >= 0")
        self._check(offset, ts.size * count, ts.size)
        start = offset // ts.size
        return self._view(ts)[start : start + count]

    # -- raw bytes -----------------------------------------------------------

    def read_bytes(self, offset: int, nbytes: int) -> bytes:
        self._check(offset, nbytes, 1)
        return self._buf[offset : offset + nbytes].tobytes()

    def write_bytes(self, offset: int, data: bytes) -> None:
        self._check(offset, len(data), 1)
        self._buf[offset : offset + len(data)] = np.frombuffer(
            data, dtype=np.uint8
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Segment rank={self.owner_rank} size={self.size_bytes}>"
