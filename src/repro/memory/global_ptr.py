"""Global pointers: typed names for locations in any rank's segment.

:class:`GlobalPtr` mirrors ``upcxx::global_ptr<T>``:

* ``where()`` — the owning rank;
* ``is_local()`` — whether the *calling* rank can address the memory
  directly (always true within a simulated node, as with PSHM in the
  paper's single-node runs).  The query costs one dynamic branch — unless
  the build has the 2021.3.6 ``constexpr is_local`` optimization and the
  world runs on the SMP conduit, in which case it is compiled away (free);
* ``local()`` — downcast to a :class:`LocalRef`, the analogue of a raw
  C++ pointer, supporting direct loads/stores at CPU cost with no runtime
  machinery (the "manual localization" of Section II-C);
* element-wise pointer arithmetic, ordering and hashing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import InvalidGlobalPointer, LocalityError
from repro.memory.segment import Segment, TypeSpec, type_spec
from repro.sim.costmodel import CostAction

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.context import RankContext


class GlobalPtr:
    """A typed global pointer ``(rank, byte offset, element type)``.

    Instances are immutable value objects; arithmetic returns new pointers.
    The null pointer is ``GlobalPtr.NULL`` (rank −1).
    """

    __slots__ = ("rank", "offset", "ts")

    NULL: "GlobalPtr"

    def __init__(self, rank: int, offset: int, ts: TypeSpec | str):
        object.__setattr__(self, "rank", rank)
        object.__setattr__(self, "offset", offset)
        object.__setattr__(self, "ts", type_spec(ts))

    def __setattr__(self, name, value):  # immutability
        raise AttributeError("GlobalPtr is immutable")

    # -- identity / null -----------------------------------------------------

    @property
    def is_null(self) -> bool:
        return self.rank < 0

    def where(self) -> int:
        """The rank owning the referenced memory."""
        if self.is_null:
            raise InvalidGlobalPointer("where() on a null global pointer")
        return self.rank

    # -- locality ---------------------------------------------------------

    def is_local(self, ctx: "RankContext | None" = None) -> bool:
        """Whether the calling rank has direct access to the target memory.

        Charges one ``LOCALITY_BRANCH`` unless the build's
        ``constexpr_is_local_smp`` optimization applies (SMP conduit).
        """
        from repro.runtime.context import current_ctx

        if ctx is None:
            ctx = current_ctx()
        if self.is_null:
            ctx.charge(CostAction.LOCALITY_BRANCH)
            return False
        if not (
            ctx.flags.constexpr_is_local_smp
            and ctx.world.conduit_name == "smp"
        ):
            ctx.charge(CostAction.LOCALITY_BRANCH)
        return ctx.is_local_rank(self.rank)

    def local(self, ctx: "RankContext | None" = None) -> "LocalRef":
        """Downcast to a raw local reference (charges the downcast cost).

        Raises :class:`~repro.errors.LocalityError` if the memory is not
        directly addressable from the calling rank.
        """
        from repro.runtime.context import current_ctx

        if ctx is None:
            ctx = current_ctx()
        if self.is_null:
            raise InvalidGlobalPointer("local() on a null global pointer")
        if not ctx.is_local_rank(self.rank):
            raise LocalityError(
                f"global pointer to rank {self.rank} is not locally "
                f"addressable from rank {ctx.rank}"
            )
        ctx.charge(CostAction.GPTR_DOWNCAST)
        return LocalRef(ctx.world.segment_of(self.rank), self.offset, self.ts)

    # -- arithmetic ----------------------------------------------------------

    def __add__(self, n: int) -> "GlobalPtr":
        if self.is_null:
            raise InvalidGlobalPointer("arithmetic on a null global pointer")
        return GlobalPtr(self.rank, self.offset + n * self.ts.size, self.ts)

    def __radd__(self, n: int) -> "GlobalPtr":
        return self.__add__(n)

    def __sub__(self, other):
        if isinstance(other, GlobalPtr):
            if other.rank != self.rank or other.ts is not self.ts:
                raise InvalidGlobalPointer(
                    "pointer difference requires same rank and element type"
                )
            return (self.offset - other.offset) // self.ts.size
        return self.__add__(-other)

    # -- comparison / hashing --------------------------------------------------

    def _key(self):
        return (self.rank, self.offset, self.ts.name)

    def __eq__(self, other) -> bool:
        return isinstance(other, GlobalPtr) and self._key() == other._key()

    def __lt__(self, other: "GlobalPtr") -> bool:
        if not isinstance(other, GlobalPtr):
            return NotImplemented
        if self.rank != other.rank or self.ts is not other.ts:
            raise InvalidGlobalPointer(
                "ordering requires same rank and element type"
            )
        return self.offset < other.offset

    def __hash__(self) -> int:
        return hash(self._key())

    def __bool__(self) -> bool:
        return not self.is_null

    def __repr__(self) -> str:
        if self.is_null:
            return "GlobalPtr.NULL"
        return f"GlobalPtr(rank={self.rank}, offset={self.offset}, ts={self.ts.name})"


GlobalPtr.NULL = GlobalPtr(-1, 0, "u8")


class LocalRef:
    """The downcast of a local :class:`GlobalPtr` — a "raw pointer".

    Element access goes straight to the segment at plain CPU load/store
    cost, bypassing all runtime machinery (this is what makes manual
    localization and the raw-C++ GUPS variant fast).
    """

    __slots__ = ("segment", "offset", "ts")

    def __init__(self, segment: Segment, offset: int, ts: TypeSpec):
        self.segment = segment
        self.offset = offset
        self.ts = ts

    def read(self, index: int = 0):
        """Load the element at ``index`` (charges one CPU load)."""
        from repro.runtime.context import current_ctx

        current_ctx().charge(CostAction.CPU_LOAD)
        return self.segment.read_scalar(
            self.offset + index * self.ts.size, self.ts
        )

    def write(self, value, index: int = 0) -> None:
        """Store ``value`` at ``index`` (charges one CPU store)."""
        from repro.runtime.context import current_ctx

        current_ctx().charge(CostAction.CPU_STORE)
        self.segment.write_scalar(
            self.offset + index * self.ts.size, self.ts, value
        )

    def __getitem__(self, index: int):
        return self.read(index)

    def __setitem__(self, index: int, value) -> None:
        self.write(value, index)

    def view(self, count: int):
        """A numpy view of ``count`` elements (bulk, no per-element cost;
        callers charge ``MEMCPY_PER_BYTE`` themselves for modeled copies)."""
        return self.segment.view_array(self.offset, self.ts, count)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<LocalRef rank={self.segment.owner_rank} offset={self.offset} "
            f"ts={self.ts.name}>"
        )
