"""PGAS memory substrate: shared segments, the shared-heap allocator, and
global pointers.

Each simulated rank owns a :class:`~repro.memory.segment.Segment` — a
numpy-backed byte buffer standing in for the process's registered shared
segment.  :class:`~repro.memory.global_ptr.GlobalPtr` values name typed
locations inside any rank's segment and support the UPC++ operations the
paper relies on: ``is_local()`` locality queries, ``local()`` downcasts to
direct (raw) access, and pointer arithmetic.
"""

from repro.memory.global_ptr import GlobalPtr, LocalRef
from repro.memory.segment import Segment, TypeSpec, type_spec
from repro.memory.allocator import SharedAllocator

__all__ = [
    "GlobalPtr",
    "LocalRef",
    "Segment",
    "TypeSpec",
    "type_spec",
    "SharedAllocator",
]
