"""Shared-heap allocator over a rank's segment.

Implements the allocation API behind ``upcxx::new_<T>`` /
``upcxx::new_array<T>`` / ``upcxx::delete_``: a first-fit free-list
allocator with block splitting and coalescing of adjacent free blocks.
Every block is 8-byte aligned (the maximum element alignment of the
supported types), so any block can hold any supported element type.

This allocator manages *user* shared objects (GUPS tables, matching
mailboxes, …).  It is distinct from the runtime-internal promise-cell
"allocations" that the paper's optimization removes — those are cost-model
events (:data:`~repro.sim.costmodel.CostAction.HEAP_ALLOC_PROMISE_CELL`),
not segment traffic.
"""

from __future__ import annotations

from bisect import insort

from repro.errors import BadSharedAlloc, SegmentError
from repro.memory.segment import Segment

_ALIGN = 8


def _round_up(n: int) -> int:
    return (n + _ALIGN - 1) & ~(_ALIGN - 1)


class SharedAllocator:
    """First-fit free-list allocator for one rank's shared segment."""

    def __init__(self, segment: Segment):
        self.segment = segment
        #: sorted list of (offset, size) free blocks, non-adjacent invariant
        self._free: list[tuple[int, int]] = [(0, segment.size_bytes)]
        #: live allocations: offset -> size
        self._live: dict[int, int] = {}

    # -- queries -------------------------------------------------------------

    def bytes_free(self) -> int:
        return sum(size for _, size in self._free)

    def bytes_live(self) -> int:
        return sum(self._live.values())

    def live_blocks(self) -> int:
        return len(self._live)

    def owns(self, offset: int) -> bool:
        return offset in self._live

    def size_of(self, offset: int) -> int:
        """Size in bytes of the live block starting at ``offset``."""
        try:
            return self._live[offset]
        except KeyError:
            raise SegmentError(
                f"offset {offset} is not the start of a live allocation"
            ) from None

    # -- allocate / free -----------------------------------------------------

    def allocate(self, nbytes: int) -> int:
        """Allocate ``nbytes`` (rounded up to 8) and return the offset."""
        if nbytes <= 0:
            raise ValueError("allocation size must be positive")
        need = _round_up(nbytes)
        for i, (off, size) in enumerate(self._free):
            if size >= need:
                rest = size - need
                if rest:
                    self._free[i] = (off + need, rest)
                else:
                    del self._free[i]
                self._live[off] = need
                return off
        raise BadSharedAlloc(
            f"shared segment of rank {self.segment.owner_rank} exhausted: "
            f"requested {need} bytes, {self.bytes_free()} free "
            f"(fragmented into {len(self._free)} blocks)"
        )

    def free(self, offset: int) -> None:
        """Release a live block (detects double-free and bad pointers)."""
        try:
            size = self._live.pop(offset)
        except KeyError:
            raise SegmentError(
                f"free of offset {offset}: not a live allocation "
                "(double free or corrupted pointer?)"
            ) from None
        insort(self._free, (offset, size))
        self._coalesce_around(offset)

    def _coalesce_around(self, offset: int) -> None:
        """Merge the block at ``offset`` with adjacent free neighbours."""
        idx = next(
            i for i, (off, _) in enumerate(self._free) if off == offset
        )
        # merge with successor
        if idx + 1 < len(self._free):
            off, size = self._free[idx]
            noff, nsize = self._free[idx + 1]
            if off + size == noff:
                self._free[idx] = (off, size + nsize)
                del self._free[idx + 1]
        # merge with predecessor
        if idx > 0:
            poff, psize = self._free[idx - 1]
            off, size = self._free[idx]
            if poff + psize == off:
                self._free[idx - 1] = (poff, psize + size)
                del self._free[idx]
