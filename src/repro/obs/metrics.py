"""A lightweight metrics registry: counters and fixed-bucket histograms.

The observability layer needs distributions, not just totals — the paper's
argument (and the MPI Continuations / HPX+LCI follow-ups) is that
notification-latency *distributions* and progress-engine behaviour over
time are what distinguish completion designs.  This module provides the
minimal machinery for that: named monotonic counters and histograms with
fixed bucket edges, owned per rank by :class:`~repro.obs.span.ObsState`
and merged world-wide by :func:`merge_metrics`.

Design constraints:

* **Zero simulated cost** — recording a metric never charges the cost
  model or touches the virtual clock, so enabling observability cannot
  perturb any measured figure.
* **Fixed buckets** — edges are chosen at creation and never rebalance,
  so per-rank histograms merge by plain element-wise addition.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Iterable, Optional

#: Default bucket edges for nanosecond latencies.  The first edge is 0.0
#: so an *exactly zero* notification gap (the eager pshm-local signature)
#: lands in its own bucket, distinguishable from merely-small gaps.
LATENCY_EDGES_NS = (
    0.0, 1.0, 10.0, 50.0, 100.0, 250.0, 500.0,
    1e3, 2.5e3, 5e3, 1e4, 5e4, 1e5, 1e6,
)

#: Default bucket edges for queue depths / batch sizes.
DEPTH_EDGES = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)

#: Default bucket edges for payload sizes in bytes.
SIZE_EDGES_BYTES = (0.0, 8.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0)


class CounterMetric:
    """A named monotonic counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


@dataclass(frozen=True)
class HistogramSnapshot:
    """Immutable view of one histogram (mergeable across ranks)."""

    name: str
    edges: tuple[float, ...]
    #: ``len(edges) + 1`` buckets; bucket ``i < len(edges)`` counts values
    #: ``edges[i-1] < v <= edges[i]`` (first bucket: ``v <= edges[0]``),
    #: the final bucket counts overflow values ``v > edges[-1]``.
    counts: tuple[int, ...]
    n: int
    total: float
    min: Optional[float]
    max: Optional[float]

    @property
    def mean(self) -> float:
        return self.total / self.n if self.n else 0.0

    def quantile(self, q: float) -> float:
        """Approximate value at quantile ``q`` (0 <= q <= 1).

        Fixed buckets only bound the answer to the containing bucket, so
        this interpolates linearly by rank inside it, clamping the bucket
        bounds to the observed ``min``/``max`` (which makes the first and
        overflow buckets answerable at all).  The extreme quantiles are
        known exactly — ``q=0.0`` returns the observed minimum and
        ``q=1.0`` the observed maximum — and no answer ever extrapolates
        past the observed range (a single-sample histogram returns its
        sample at every ``q``).  For guaranteed-relative-error quantiles
        use :class:`~repro.obs.percentiles.PercentileSketch`; this helper
        exists so the *existing* gap/depth histograms can report a p99
        without changing their storage.
        """
        if not (0.0 <= q <= 1.0):
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.n:
            return 0.0
        # the extremes are recorded, not estimated: interpolation would
        # otherwise place q=1.0 strictly inside the containing bucket —
        # wrong in the overflow bucket, where max is the only upper bound
        if q <= 0.0:
            return float(self.min)
        if q >= 1.0:
            return float(self.max)
        rank = q * (self.n - 1)
        seen = 0
        for i, count in enumerate(self.counts):
            if not count:
                continue
            if rank < seen + count:
                lo = self.edges[i - 1] if i > 0 else self.min
                hi = self.edges[i] if i < len(self.edges) else self.max
                if self.min is not None:
                    lo = max(lo, self.min)
                if self.max is not None:
                    hi = min(hi, self.max)
                if hi <= lo:
                    return float(lo)
                # linear-by-rank interpolation inside the bucket: the
                # k-th of `count` values sits at (k + 0.5) / count
                frac = (rank - seen + 0.5) / count
                return float(lo + (hi - lo) * min(1.0, max(0.0, frac)))
            seen += count
        return float(self.max if self.max is not None else 0.0)

    def bucket_label(self, i: int) -> str:
        if i == 0:
            return f"<= {self.edges[0]:g}"
        if i == len(self.edges):
            return f"> {self.edges[-1]:g}"
        return f"{self.edges[i - 1]:g}..{self.edges[i]:g}"


class HistogramMetric:
    """A fixed-bucket histogram (see :class:`HistogramSnapshot`)."""

    __slots__ = ("name", "edges", "counts", "n", "total", "min", "max")

    def __init__(self, name: str, edges: Iterable[float] = LATENCY_EDGES_NS):
        self.name = name
        self.edges = tuple(float(e) for e in edges)
        if not self.edges or list(self.edges) != sorted(set(self.edges)):
            raise ValueError(
                f"histogram {name!r} needs strictly increasing edges"
            )
        self.counts = [0] * (len(self.edges) + 1)
        self.n = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def record(self, value: float) -> None:
        v = float(value)
        self.counts[bisect_left(self.edges, v)] += 1
        self.n += 1
        self.total += v
        if self.min is None or v < self.min:
            self.min = v
        if self.max is None or v > self.max:
            self.max = v

    def snapshot(self) -> HistogramSnapshot:
        return HistogramSnapshot(
            name=self.name,
            edges=self.edges,
            counts=tuple(self.counts),
            n=self.n,
            total=self.total,
            min=self.min,
            max=self.max,
        )


@dataclass(frozen=True)
class MetricsSnapshot:
    """Immutable view of one registry (or a merge of several)."""

    counters: dict[str, int]
    histograms: dict[str, HistogramSnapshot]


class MetricsRegistry:
    """Per-rank named metrics, created lazily on first use."""

    __slots__ = ("_counters", "_histograms")

    def __init__(self):
        self._counters: dict[str, CounterMetric] = {}
        self._histograms: dict[str, HistogramMetric] = {}

    def counter(self, name: str) -> CounterMetric:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = CounterMetric(name)
        return c

    def histogram(
        self, name: str, edges: Iterable[float] = LATENCY_EDGES_NS
    ) -> HistogramMetric:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = HistogramMetric(name, edges)
        return h

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot(
            counters={n: c.value for n, c in self._counters.items()},
            histograms={
                n: h.snapshot() for n, h in self._histograms.items()
            },
        )


def _merge_hist(
    a: HistogramSnapshot, b: HistogramSnapshot
) -> HistogramSnapshot:
    if a.edges != b.edges:
        raise ValueError(
            f"cannot merge histograms {a.name!r}: differing bucket edges"
        )
    mins = [m for m in (a.min, b.min) if m is not None]
    maxs = [m for m in (a.max, b.max) if m is not None]
    return HistogramSnapshot(
        name=a.name,
        edges=a.edges,
        counts=tuple(x + y for x, y in zip(a.counts, b.counts)),
        n=a.n + b.n,
        total=a.total + b.total,
        min=min(mins) if mins else None,
        max=max(maxs) if maxs else None,
    )


def merge_metrics(snapshots: Iterable[MetricsSnapshot]) -> MetricsSnapshot:
    """Element-wise merge of per-rank registries (the world-wide view)."""
    counters: dict[str, int] = {}
    hists: dict[str, HistogramSnapshot] = {}
    for snap in snapshots:
        for name, value in snap.counters.items():
            counters[name] = counters.get(name, 0) + value
        for name, h in snap.histograms.items():
            hists[name] = _merge_hist(hists[name], h) if name in hists else h
    return MetricsSnapshot(counters=counters, histograms=hists)
