"""Chrome/Perfetto trace-event exporter for operation spans.

Emits the JSON object format of the Trace Event specification (the
format both ``chrome://tracing`` and https://ui.perfetto.dev load):

* one ``ph: "X"`` (complete) event per span, ``ts``/``dur`` in
  microseconds, ``pid`` = simulated node, ``tid`` = rank;
* ``ph: "i"`` (instant) events for the transfer-complete and
  notification-dispatched phase marks, so the notification gap is
  visible as the distance between the two ticks inside a span bar;
* ``ph: "C"`` (counter) events for the deferred-queue depth samples
  taken at each ``progress()`` entry;
* one ``ph: "X"`` bar per serving :class:`~repro.obs.request.RequestSpan`
  (admit → complete, category ``request``) plus ``ph: "i"`` instants for
  the request *arrival* (which may precede the bar under backlog — the
  visible gap is the queueing delay) and for the request's *SLO
  deadline*, so a bar crossing its deadline tick reads directly as an
  SLO miss;
* ``ph: "M"`` metadata naming processes ("node N") and threads
  ("rank R").

:func:`validate_trace_events` structurally checks a document against the
subset of the schema the viewers require (well-formed ``ph``/``ts``/
``pid``/``tid``), which CI runs on every exported artifact.
"""

from __future__ import annotations

import json
from typing import Iterable, Optional, Union

from repro.obs.span import ObsSnapshot

_NS_PER_US = 1000.0

#: Event phase types this exporter emits plus the common ones viewers
#: accept; used by the validator.
_KNOWN_PHASES = frozenset("XiICMBEbesnOND")


def trace_events(
    snapshots: Iterable[ObsSnapshot],
    *,
    phase_instants: bool = True,
    depth_counters: bool = True,
    request_events: bool = True,
) -> list[dict]:
    """Build the ``traceEvents`` list for a set of per-rank snapshots."""
    events: list[dict] = []
    seen_nodes: set[int] = set()
    snaps = list(snapshots)

    for snap in snaps:
        if snap.node not in seen_nodes:
            seen_nodes.add(snap.node)
            events.append({
                "name": "process_name",
                "ph": "M",
                "pid": snap.node,
                "tid": 0,
                "args": {"name": f"node {snap.node}"},
            })
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": snap.node,
            "tid": snap.rank,
            "args": {"name": f"rank {snap.rank}"},
        })

    for snap in snaps:
        pid, tid = snap.node, snap.rank
        for span in snap.spans:
            gap = span.notification_gap_ns
            events.append({
                "name": span.op,
                "cat": f"{span.mode},{span.locality}",
                "ph": "X",
                "ts": span.t_init / _NS_PER_US,
                "dur": span.duration_ns / _NS_PER_US,
                "pid": pid,
                "tid": tid,
                "args": {
                    "sid": span.sid,
                    "target": span.target,
                    "nbytes": span.nbytes,
                    "mode": span.mode,
                    "locality": span.locality,
                    "notification_gap_ns": gap,
                    "t_injected_ns": span.t_injected,
                    "t_transfer_ns": span.t_transfer,
                    "t_dispatched_ns": span.t_dispatched,
                    "t_waited_ns": span.t_waited,
                    "t_hinted_ns": span.t_hinted,
                },
            })
            if phase_instants:
                if span.t_transfer is not None:
                    events.append({
                        "name": f"{span.op}:transfer_complete",
                        "cat": "phase",
                        "ph": "i",
                        "s": "t",
                        "ts": span.t_transfer / _NS_PER_US,
                        "pid": pid,
                        "tid": tid,
                        "args": {"sid": span.sid},
                    })
                if span.t_dispatched is not None:
                    events.append({
                        "name": f"{span.op}:notification_dispatched",
                        "cat": "phase",
                        "ph": "i",
                        "s": "t",
                        "ts": span.t_dispatched / _NS_PER_US,
                        "pid": pid,
                        "tid": tid,
                        "args": {"sid": span.sid, "gap_ns": gap},
                    })
        if request_events:
            for req in snap.request_spans:
                start = (
                    req.t_admit if req.t_admit is not None else req.t_arrival
                )
                end = req.end_ns
                events.append({
                    "name": f"req:{req.op}",
                    "cat": f"request,{req.kclass}",
                    "ph": "X",
                    "ts": start / _NS_PER_US,
                    "dur": max(0.0, end - start) / _NS_PER_US,
                    "pid": pid,
                    "tid": tid,
                    "args": {
                        "rid": req.rid,
                        "key": req.key,
                        "kclass": req.kclass,
                        "t_arrival_ns": req.t_arrival,
                        "queue_ns": req.queue_ns,
                        "latency_ns": req.latency_ns,
                        "slo_deadline_ns": req.slo_deadline_ns,
                        "slo_missed": req.slo_missed,
                        "op_sids": list(req.op_sids),
                    },
                })
                # Arrival tick: under backlog it lands *before* the bar —
                # the visible gap is the request's queueing delay.
                events.append({
                    "name": "request:arrival",
                    "cat": "request",
                    "ph": "i",
                    "s": "t",
                    "ts": req.t_arrival / _NS_PER_US,
                    "pid": pid,
                    "tid": tid,
                    "args": {"rid": req.rid, "kclass": req.kclass},
                })
                if req.slo_deadline_ns is not None:
                    events.append({
                        "name": "request:slo_deadline",
                        "cat": "request",
                        "ph": "i",
                        "s": "t",
                        "ts": req.slo_deadline_ns / _NS_PER_US,
                        "pid": pid,
                        "tid": tid,
                        "args": {
                            "rid": req.rid,
                            "missed": req.slo_missed,
                        },
                    })
        if depth_counters:
            for t_ns, depth in snap.depth_samples:
                events.append({
                    "name": f"deferred_queue_depth.rank{snap.rank}",
                    "ph": "C",
                    "ts": t_ns / _NS_PER_US,
                    "pid": pid,
                    "tid": tid,
                    "args": {"depth": depth},
                })

    # Metadata first, then everything else in timestamp order — both
    # viewers sort anyway, but deterministic output diffs cleanly.
    events.sort(key=lambda e: (e["ph"] != "M", e.get("ts", 0.0)))
    return events


def chrome_trace(
    snapshots: Iterable[ObsSnapshot],
    *,
    phase_instants: bool = True,
    depth_counters: bool = True,
    request_events: bool = True,
) -> dict:
    """The full JSON-object-format trace document."""
    return {
        "traceEvents": trace_events(
            snapshots,
            phase_instants=phase_instants,
            depth_counters=depth_counters,
            request_events=request_events,
        ),
        "displayTimeUnit": "ns",
        "otherData": {"source": "repro.obs", "clock": "virtual"},
    }


def write_chrome_trace(
    path: str,
    snapshots: Iterable[ObsSnapshot],
    *,
    indent: Optional[int] = None,
) -> dict:
    """Serialize :func:`chrome_trace` to ``path``; returns the document."""
    doc = chrome_trace(snapshots)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=indent)
        f.write("\n")
    return doc


def validate_trace_events(doc: Union[dict, list]) -> list[str]:
    """Structurally validate a trace document.

    Returns a list of problems (empty means the document is well-formed
    enough for chrome://tracing and ui.perfetto.dev to load).
    """
    errors: list[str] = []
    if isinstance(doc, dict):
        events = doc.get("traceEvents")
        if not isinstance(events, list):
            return ["document has no 'traceEvents' list"]
    elif isinstance(doc, list):
        events = doc
    else:
        return [f"expected dict or list at top level, got {type(doc).__name__}"]

    # An empty traceEvents list is structurally valid: both viewers load
    # it (showing nothing), and an empty *run* — zero ops, zero spans —
    # legitimately exports one.  Truncation is reported by the exporter's
    # own accounting (ObsSnapshot.spans_dropped), not guessed at here.
    for i, ev in enumerate(events):
        where = f"event[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if not isinstance(ph, str) or ph not in _KNOWN_PHASES:
            errors.append(f"{where}: bad ph {ph!r}")
            continue
        if not isinstance(ev.get("name"), str):
            errors.append(f"{where}: missing/non-string name")
        if not isinstance(ev.get("pid"), int):
            errors.append(f"{where}: missing/non-int pid")
        if not isinstance(ev.get("tid"), int):
            errors.append(f"{where}: missing/non-int tid")
        if ph == "M":
            continue  # metadata carries no timestamp
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"{where}: missing/negative ts {ts!r}")
        if ph == "i":
            scope = ev.get("s", "t")
            if scope not in ("t", "p", "g"):
                errors.append(f"{where}: ph=i bad scope {scope!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: ph=X missing/negative dur {dur!r}")
    return errors
