"""Request-lifecycle spans for open-loop serving.

The existing :class:`~repro.obs.span.OpSpan` describes one asynchronous
*operation*; a served request is a level above: it **arrives** at a
virtual-time instant the server does not control (open loop), waits for
the server to pick it up, spawns one or more operations against the DHT,
and completes when its last operation's result is visible.  The span
stamps that lifecycle:

``t_arrival``
    the request's scheduled arrival (from the workload's Poisson
    process) — the open-loop clock starts here, whether or not the
    server has even looked at the request yet;
``t_admit``
    the server picked the request up.  ``t_admit - t_arrival`` is the
    **queueing delay**, exactly the quantity closed-loop benchmarks
    cannot observe (they never let a backlog form);
``t_issue``
    the first DHT operation was issued;
``t_complete``
    the request's result became visible to the (virtual) client.

``op_sids`` links the request to the :class:`OpSpan` s it spawned (same
rank, contiguous sid range), so a Perfetto timeline can nest the
operation bars under the request bar, and ``slo_deadline_ns`` carries the
workload's latency objective so exports can draw the deadline marker and
rollups can count misses.

Like every ``repro.obs`` record, stamping charges **no** cost-model
actions; and the whole span layer only exists when
``FeatureFlags.obs_spans`` is on — the serve driver measures latency
percentiles through :mod:`repro.obs.percentiles` regardless, but
allocates no span objects with the flag off (pinned by
``tests/test_serve.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class RequestSpan:
    """One served request's lifecycle (all times virtual ns)."""

    rid: int
    rank: int
    op: str  # "get" | "put" | "cas"
    key: int
    kclass: str  # key-popularity class: "hot" | "warm" | "cold"
    t_arrival: float
    t_admit: Optional[float] = None
    t_issue: Optional[float] = None
    t_complete: Optional[float] = None
    #: absolute virtual-time deadline (t_arrival + SLO), None = no SLO
    slo_deadline_ns: Optional[float] = None
    #: sids of the OpSpans this request spawned (same rank)
    op_sids: tuple[int, ...] = field(default_factory=tuple)

    @property
    def latency_ns(self) -> Optional[float]:
        """Sojourn time (arrival -> complete), or None while open."""
        if self.t_complete is None:
            return None
        return self.t_complete - self.t_arrival

    @property
    def queue_ns(self) -> Optional[float]:
        """Open-loop queueing delay (arrival -> admit)."""
        if self.t_admit is None:
            return None
        return self.t_admit - self.t_arrival

    @property
    def service_ns(self) -> Optional[float]:
        """Service time (admit -> complete)."""
        if self.t_admit is None or self.t_complete is None:
            return None
        return self.t_complete - self.t_admit

    @property
    def slo_missed(self) -> Optional[bool]:
        """Whether the request finished past its deadline (None when no
        SLO was set or the request is still open)."""
        if self.slo_deadline_ns is None or self.t_complete is None:
            return None
        return self.t_complete > self.slo_deadline_ns

    @property
    def end_ns(self) -> float:
        """Latest stamped phase (spans render as [t_arrival, end_ns])."""
        end = self.t_arrival
        for t in (self.t_admit, self.t_issue, self.t_complete):
            if t is not None and t > end:
                end = t
        return end


class RequestRecorder:
    """Bounded per-rank request-span store (the
    :class:`~repro.obs.span.SpanRecorder` discipline: spans past capacity
    are still created and stamped, just not retained, and the drop is
    counted so rollups can say the record is partial)."""

    __slots__ = ("rank", "capacity", "spans", "dropped", "_next_rid")

    def __init__(self, rank: int, capacity: int):
        self.rank = rank
        self.capacity = capacity
        self.spans: list[RequestSpan] = []
        self.dropped = 0
        self._next_rid = 0

    def begin(
        self,
        op: str,
        key: int,
        kclass: str,
        t_arrival: float,
        *,
        slo_deadline_ns: Optional[float] = None,
    ) -> RequestSpan:
        rid = self._next_rid
        self._next_rid += 1
        span = RequestSpan(
            rid=rid,
            rank=self.rank,
            op=op,
            key=key,
            kclass=kclass,
            t_arrival=t_arrival,
            slo_deadline_ns=slo_deadline_ns,
        )
        if len(self.spans) < self.capacity:
            self.spans.append(span)
        else:
            self.dropped += 1
        return span
