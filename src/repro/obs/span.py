"""Operation-lifecycle spans.

Every asynchronous operation — RMA put/get/copy/vis, atomics, rpc, and
collectives — opens an :class:`OpSpan` at initiation and stamps virtual
timestamps as it moves through its lifecycle:

``t_init``
    the operation was initiated (its :class:`~repro.core.completions.\
CxDispatcher` was constructed);
``t_injected``
    the payload left the initiator (memcpy for pshm-local, AM injection
    for off-node);
``t_transfer``
    the data transfer itself completed (the paper's "operation finished
    at the hardware level" instant);
``t_dispatched``
    the completion *notification* reached user-visible state — a future
    became ready, a promise was fulfilled, an LPC ran.  The interval
    ``t_dispatched - t_transfer`` is the **notification gap**, the
    quantity eager notification collapses to zero for dynamically-local
    transfers;
``t_waited``
    a ``Future.wait()`` observed the operation complete (absent when the
    result is consumed through callbacks only);
``t_hinted``
    a hinted wait (``FeatureFlags.wait_hints``) published this operation
    as its wait target (absent unless the flag is on and the future was
    actually blocked on).

Spans carry op kind, peer rank, payload size, locality (``pshm`` vs
``offnode``) and completion mode (``eager`` vs ``defer``), so the world
rollup (:func:`merge_obs_snapshots`) can bucket notification gaps by
(mode, locality) — the paper's figure axes.

All timestamps come from the per-rank :class:`~repro.sim.clock.\
VirtualClock` and recording charges **no** cost-model actions: runs with
observability on are tick-for-tick identical to runs with it off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional

from repro.obs.metrics import (
    DEPTH_EDGES,
    LATENCY_EDGES_NS,
    HistogramMetric,
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
    merge_metrics,
)
from repro.obs.request import RequestRecorder, RequestSpan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.context import RankContext


@dataclass
class OpSpan:
    """One asynchronous operation's lifecycle (all times virtual ns)."""

    sid: int
    rank: int
    op: str
    mode: str  # "eager" | "defer" | "none" (no completion to notify)
    t_init: float
    target: Optional[int] = None
    nbytes: int = 0
    locality: str = "unknown"  # "pshm" | "offnode" | "coll" | "unknown"
    t_injected: Optional[float] = None
    t_transfer: Optional[float] = None
    t_dispatched: Optional[float] = None
    t_waited: Optional[float] = None
    t_hinted: Optional[float] = None

    @property
    def notification_gap_ns(self) -> Optional[float]:
        """transfer-complete -> notification-dispatched, or None if open."""
        if self.t_transfer is None or self.t_dispatched is None:
            return None
        return self.t_dispatched - self.t_transfer

    @property
    def end_ns(self) -> float:
        """Latest stamped phase (spans render as [t_init, end_ns])."""
        end = self.t_init
        for t in (self.t_injected, self.t_transfer, self.t_dispatched,
                  self.t_waited, self.t_hinted):
            if t is not None and t > end:
                end = t
        return end

    @property
    def duration_ns(self) -> float:
        return self.end_ns - self.t_init


class SpanRecorder:
    """Bounded per-rank span store.

    Spans past ``capacity`` are still created (so phase marking keeps
    working and costs nothing extra) but are not retained; the drop is
    counted so rollups and exports can say the record is partial.
    """

    __slots__ = ("rank", "capacity", "spans", "dropped", "_next_sid")

    def __init__(self, rank: int, capacity: int):
        self.rank = rank
        self.capacity = capacity
        self.spans: list[OpSpan] = []
        self.dropped = 0
        self._next_sid = 0

    def begin(
        self,
        op: str,
        mode: str,
        now_ns: float,
        *,
        target: Optional[int] = None,
        nbytes: int = 0,
        locality: str = "unknown",
    ) -> OpSpan:
        sid = self._next_sid
        self._next_sid += 1
        span = OpSpan(
            sid=sid,
            rank=self.rank,
            op=op,
            mode=mode,
            t_init=now_ns,
            target=target,
            nbytes=nbytes,
            locality=locality,
        )
        if len(self.spans) < self.capacity:
            self.spans.append(span)
        else:
            self.dropped += 1
        return span

    @property
    def next_sid(self) -> int:
        """The sid the *next* :meth:`begin` will assign — bracketing two
        reads of this around a code region yields the contiguous sid
        range of every span that region began (how request spans link to
        the operation spans they spawned)."""
        return self._next_sid


@dataclass(frozen=True)
class ObsSnapshot:
    """Immutable per-rank observability state, safe to roll up."""

    rank: int
    node: int
    spans: tuple[OpSpan, ...]
    spans_dropped: int
    #: (t_ns, deferred-queue depth) sampled at each ``progress()`` entry.
    depth_samples: tuple[tuple[float, int], ...]
    metrics: MetricsSnapshot
    #: request-lifecycle spans from the serve driver (empty outside a
    #: served run — see :mod:`repro.obs.request`)
    request_spans: tuple[RequestSpan, ...] = ()
    request_spans_dropped: int = 0


@dataclass(frozen=True)
class GapStats:
    """Notification-gap distribution for one (mode, locality) class."""

    mode: str
    locality: str
    hist: HistogramSnapshot

    @property
    def count(self) -> int:
        return self.hist.n

    @property
    def zeros(self) -> int:
        """Gaps that are exactly zero (first bucket, edge 0.0)."""
        return self.hist.counts[0]

    @property
    def mean_ns(self) -> float:
        return self.hist.mean


@dataclass(frozen=True)
class ObsStats:
    """World-wide rollup of per-rank :class:`ObsSnapshot`."""

    ranks: int
    total_spans: int
    total_dropped: int
    spans_by_op: dict[str, int]
    #: keyed by (mode, locality)
    gaps: dict[tuple[str, str], GapStats]
    #: gap distributions restricted to spans some caller blocked on
    #: (``t_waited`` stamped) — the population wait hints exist to serve
    waited_gaps: dict[tuple[str, str], GapStats]
    metrics: MetricsSnapshot
    #: request-lifecycle accounting (zeros outside a served run)
    total_requests: int = 0
    total_requests_dropped: int = 0
    requests_by_op: dict = field(default_factory=dict)
    slo_misses: int = 0

    def gap(self, mode: str, locality: str) -> Optional[GapStats]:
        return self.gaps.get((mode, locality))

    def waited_gap(self, mode: str, locality: str) -> Optional[GapStats]:
        return self.waited_gaps.get((mode, locality))


def merge_obs_snapshots(snapshots: Iterable[ObsSnapshot]) -> ObsStats:
    """Combine per-rank snapshots into the world-wide view."""
    snaps = list(snapshots)
    total_spans = 0
    total_dropped = 0
    by_op: dict[str, int] = {}
    gap_hists: dict[tuple[str, str], HistogramMetric] = {}
    waited_hists: dict[tuple[str, str], HistogramMetric] = {}
    total_requests = 0
    total_requests_dropped = 0
    requests_by_op: dict[str, int] = {}
    slo_misses = 0
    for snap in snaps:
        total_spans += len(snap.spans) + snap.spans_dropped
        total_dropped += snap.spans_dropped
        total_requests += len(snap.request_spans) + snap.request_spans_dropped
        total_requests_dropped += snap.request_spans_dropped
        for req in snap.request_spans:
            requests_by_op[req.op] = requests_by_op.get(req.op, 0) + 1
            if req.slo_missed:
                slo_misses += 1
        for span in snap.spans:
            by_op[span.op] = by_op.get(span.op, 0) + 1
            gap = span.notification_gap_ns
            if gap is None:
                continue
            key = (span.mode, span.locality)
            h = gap_hists.get(key)
            if h is None:
                h = gap_hists[key] = HistogramMetric(
                    f"notify_gap_ns.{span.mode}.{span.locality}",
                    LATENCY_EDGES_NS,
                )
            h.record(gap)
            if span.t_waited is not None:
                w = waited_hists.get(key)
                if w is None:
                    w = waited_hists[key] = HistogramMetric(
                        f"waited_gap_ns.{span.mode}.{span.locality}",
                        LATENCY_EDGES_NS,
                    )
                w.record(gap)
    return ObsStats(
        ranks=len(snaps),
        total_spans=total_spans,
        total_dropped=total_dropped,
        spans_by_op=by_op,
        gaps={
            key: GapStats(mode=key[0], locality=key[1], hist=h.snapshot())
            for key, h in sorted(gap_hists.items())
        },
        waited_gaps={
            key: GapStats(mode=key[0], locality=key[1], hist=h.snapshot())
            for key, h in sorted(waited_hists.items())
        },
        metrics=merge_metrics(s.metrics for s in snaps),
        total_requests=total_requests,
        total_requests_dropped=total_requests_dropped,
        requests_by_op=requests_by_op,
        slo_misses=slo_misses,
    )


class ObsState:
    """Per-rank observability root, hung off ``RankContext.obs``.

    ``ctx.obs`` is ``None`` unless ``FeatureFlags.obs_spans`` is set;
    every instrumentation site guards on that single attribute, the same
    zero-cost pattern ``CostModel`` uses for its tracer hook.
    """

    MAX_DEPTH_SAMPLES = 100_000

    __slots__ = ("ctx", "spans", "requests", "metrics", "depth_samples",
                 "depth_samples_dropped")

    def __init__(self, ctx: "RankContext"):
        self.ctx = ctx
        self.spans = SpanRecorder(ctx.rank, ctx.flags.obs_span_capacity)
        self.requests = RequestRecorder(
            ctx.rank, ctx.flags.obs_span_capacity
        )
        self.metrics = MetricsRegistry()
        self.depth_samples: list[tuple[float, int]] = []
        self.depth_samples_dropped = 0

    # -- span lifecycle ------------------------------------------------

    def begin_span(
        self,
        op: str,
        mode: str,
        *,
        target: Optional[int] = None,
        nbytes: int = 0,
        locality: str = "unknown",
    ) -> OpSpan:
        return self.spans.begin(
            op,
            mode,
            self.ctx.clock.now_ns,
            target=target,
            nbytes=nbytes,
            locality=locality,
        )

    def begin_request(
        self,
        op: str,
        key: int,
        kclass: str,
        t_arrival: float,
        *,
        slo_deadline_ns=None,
    ) -> RequestSpan:
        """Open a request-lifecycle span (serve driver only; see
        :mod:`repro.obs.request`)."""
        return self.requests.begin(
            op, key, kclass, t_arrival, slo_deadline_ns=slo_deadline_ns
        )

    def close_notification(self, span: OpSpan, now_ns: float) -> None:
        """Stamp notification dispatch and feed the gap histogram."""
        if span.t_transfer is None:
            span.t_transfer = now_ns
        if span.t_dispatched is not None:
            return  # already closed (e.g. multi-cell fulfilment)
        span.t_dispatched = now_ns
        self.metrics.histogram(
            f"notify_gap_ns.{span.mode}.{span.locality}", LATENCY_EDGES_NS
        ).record(now_ns - span.t_transfer)

    # -- progress-engine signals ---------------------------------------

    def on_progress_enter(self, depth: int, now_ns: float) -> None:
        self.metrics.histogram(
            "progress.deferred_depth", DEPTH_EDGES
        ).record(depth)
        if len(self.depth_samples) < self.MAX_DEPTH_SAMPLES:
            self.depth_samples.append((now_ns, depth))
        else:
            self.depth_samples_dropped += 1

    def on_progress_drained(self, batch: int) -> None:
        self.metrics.histogram(
            "progress.drain_batch", DEPTH_EDGES
        ).record(batch)

    # -- wait-hint signals ----------------------------------------------

    def on_wait_hint(self, dst_rank: Optional[int]) -> None:
        """One hinted wait entered its spin (``wait_hints`` on and the
        future was not already ready)."""
        self.metrics.counter("wait.hints").inc()
        if dst_rank is not None:
            self.metrics.counter("wait.hints_offnode").inc()

    def on_wait_stall(self, stall_ns: float) -> None:
        """Virtual time one hinted wait spent blocked (entry to ready)."""
        self.metrics.histogram(
            "wait.stall_ns", LATENCY_EDGES_NS
        ).record(stall_ns)

    # -- snapshotting --------------------------------------------------

    def snapshot(self) -> ObsSnapshot:
        return ObsSnapshot(
            rank=self.ctx.rank,
            node=self.ctx.world.node_of(self.ctx.rank),
            spans=tuple(self.spans.spans),
            spans_dropped=self.spans.dropped,
            depth_samples=tuple(self.depth_samples),
            metrics=self.metrics.snapshot(),
            request_spans=tuple(self.requests.spans),
            request_spans_dropped=self.requests.dropped,
        )
