"""Operation-lifecycle observability for the simulated runtime.

Gated behind ``FeatureFlags.obs_spans`` (default off).  When the flag is
off, ``RankContext.obs`` stays ``None`` and every instrumentation site
reduces to one attribute check — the same zero-cost pattern the cost
tracer uses — so all existing figures are bit-identical.  When on, each
rank records :class:`~repro.obs.span.OpSpan` lifecycles and a
:class:`~repro.obs.metrics.MetricsRegistry`, exportable as a
Chrome/Perfetto trace (:func:`~repro.obs.export.chrome_trace`) or rolled
up world-wide (:func:`~repro.obs.span.merge_obs_snapshots`).
"""

from repro.obs.metrics import (
    DEPTH_EDGES,
    LATENCY_EDGES_NS,
    SIZE_EDGES_BYTES,
    CounterMetric,
    HistogramMetric,
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
    merge_metrics,
)
from repro.obs.percentiles import (
    DEFAULT_REL_ERR,
    PercentileSketch,
    PercentileSnapshot,
    merge_percentiles,
)
from repro.obs.request import RequestRecorder, RequestSpan
from repro.obs.span import (
    GapStats,
    ObsSnapshot,
    ObsState,
    ObsStats,
    OpSpan,
    SpanRecorder,
    merge_obs_snapshots,
)
from repro.obs.export import (
    chrome_trace,
    trace_events,
    validate_trace_events,
    write_chrome_trace,
)

__all__ = [
    "DEPTH_EDGES",
    "LATENCY_EDGES_NS",
    "SIZE_EDGES_BYTES",
    "CounterMetric",
    "GapStats",
    "HistogramMetric",
    "HistogramSnapshot",
    "MetricsRegistry",
    "MetricsSnapshot",
    "DEFAULT_REL_ERR",
    "ObsSnapshot",
    "ObsState",
    "ObsStats",
    "OpSpan",
    "PercentileSketch",
    "PercentileSnapshot",
    "RequestRecorder",
    "RequestSpan",
    "SpanRecorder",
    "chrome_trace",
    "merge_metrics",
    "merge_obs_snapshots",
    "merge_percentiles",
    "trace_events",
    "validate_trace_events",
    "write_chrome_trace",
]
