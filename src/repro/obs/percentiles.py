"""Streaming log-bucketed percentile sketches (bounded relative error).

Tail latency is the serving benchmark's headline quantity, and a fixed-
bucket histogram cannot answer "what is p999?" with a guaranteed error:
the answer depends on where the edges happened to fall.  This module
provides the standard fix — a DDSketch-style *log-bucketed* histogram
whose bucket boundaries grow geometrically, so every recorded value lands
in a bucket whose midpoint estimate is within a configurable **relative**
error of the true value, at every quantile, for any value range.

Design constraints (shared with :mod:`repro.obs.metrics`):

* **Zero simulated cost** — recording never charges the cost model or
  reads the virtual clock, so sketches cannot perturb a measured run.
* **Deterministic** — bucketing uses only ``math.log`` on the value and
  integer arithmetic; two runs that record the same stream produce
  bit-identical snapshots.
* **Mergeable** — buckets are keyed by integer index, so per-rank
  sketches with the same ``rel_err`` merge by summing counts (associative
  and commutative; rolled up world-wide through
  :func:`repro.sim.stats.gather_rank_snapshots`).

Error bound
-----------

With relative accuracy ``a`` the bucket growth factor is
``gamma = (1 + a) / (1 - a)``; value ``v > 0`` lands in bucket
``i = ceil(log_gamma(v))`` covering ``(gamma**(i-1), gamma**i]``, and the
bucket's midpoint estimate ``2 * gamma**i / (gamma + 1)`` is within
``a * v`` of every value in the bucket.  Quantiles are answered by
rank-walking the (sorted-by-index) buckets, so the reported
``quantile(q)`` is within relative error ``a`` of the element a sorted
reference oracle would return at rank ``floor(q * (n - 1))`` — the bound
:class:`tests.test_percentiles` pins against an exact oracle.  Values
``<= 0`` (an exactly-zero latency is meaningful here: the eager zero-gap
signature) are counted in a dedicated zero bucket and reported as 0.0.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional

#: default relative accuracy: 1% — p999 of a millisecond-scale tail is
#: resolved to ~10 us, far tighter than any effect the benchmarks quote
DEFAULT_REL_ERR = 0.01


@dataclass(frozen=True)
class PercentileSnapshot:
    """Immutable view of one sketch (mergeable across ranks)."""

    name: str
    rel_err: float
    #: ``(bucket_index, count)`` pairs sorted by index; bucket ``i``
    #: covers values in ``(gamma**(i-1), gamma**i]``
    buckets: tuple[tuple[int, int], ...]
    #: values ``<= 0`` (kept exact, reported as 0.0)
    zero_count: int
    n: int
    total: float
    min: Optional[float]
    max: Optional[float]

    @property
    def gamma(self) -> float:
        return (1.0 + self.rel_err) / (1.0 - self.rel_err)

    @property
    def mean(self) -> float:
        return self.total / self.n if self.n else 0.0

    def quantile(self, q: float) -> float:
        """The value at quantile ``q`` (0 <= q <= 1), within ``rel_err``
        relative error of the exact order statistic at rank
        ``floor(q * (n - 1))``; 0.0 for an empty sketch."""
        if not (0.0 <= q <= 1.0):
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.n:
            return 0.0
        rank = int(q * (self.n - 1))
        if rank < self.zero_count:
            return 0.0
        seen = self.zero_count
        gamma = self.gamma
        for index, count in self.buckets:
            seen += count
            if rank < seen:
                return 2.0 * gamma**index / (gamma + 1.0)
        # unreachable when bucket counts sum to n; guard for safety
        return self.max if self.max is not None else 0.0

    def percentiles(self, qs: Iterable[float] = (0.5, 0.99, 0.999)) -> dict:
        """Convenience: ``{"p50": ..., "p99": ..., "p999": ...}``."""
        out = {}
        for q in qs:
            label = f"p{q * 100:g}".replace(".", "")
            out[label] = self.quantile(q)
        return out


class PercentileSketch:
    """A streaming log-bucketed quantile sketch (see module docstring)."""

    __slots__ = (
        "name", "rel_err", "_gamma", "_log_gamma", "_buckets",
        "zero_count", "n", "total", "min", "max",
    )

    def __init__(self, name: str, rel_err: float = DEFAULT_REL_ERR):
        if not (0.0 < rel_err < 1.0):
            raise ValueError(
                f"rel_err must be in (0, 1), got {rel_err}"
            )
        self.name = name
        self.rel_err = rel_err
        self._gamma = (1.0 + rel_err) / (1.0 - rel_err)
        self._log_gamma = math.log(self._gamma)
        self._buckets: dict[int, int] = {}
        self.zero_count = 0
        self.n = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def record(self, value: float) -> None:
        v = float(value)
        self.n += 1
        self.total += v
        if self.min is None or v < self.min:
            self.min = v
        if self.max is None or v > self.max:
            self.max = v
        if v <= 0.0:
            self.zero_count += 1
            return
        index = math.ceil(math.log(v) / self._log_gamma)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    def quantile(self, q: float) -> float:
        return self.snapshot().quantile(q)

    def snapshot(self) -> PercentileSnapshot:
        return PercentileSnapshot(
            name=self.name,
            rel_err=self.rel_err,
            buckets=tuple(sorted(self._buckets.items())),
            zero_count=self.zero_count,
            n=self.n,
            total=self.total,
            min=self.min,
            max=self.max,
        )


def merge_percentiles(
    snapshots: Iterable[PercentileSnapshot],
) -> PercentileSnapshot:
    """Merge same-accuracy snapshots by summing bucket counts.

    Bucket addition is associative and commutative, so any merge tree over
    the same set of per-rank snapshots yields the identical result — the
    property the rank-rollup tests pin.  Raises on an empty iterable or on
    mismatched ``rel_err`` (buckets would not be commensurable).
    """
    snaps = list(snapshots)
    if not snaps:
        raise ValueError("merge_percentiles requires at least one snapshot")
    first = snaps[0]
    buckets: dict[int, int] = {}
    zero = 0
    n = 0
    total = 0.0
    mins = []
    maxs = []
    for s in snaps:
        if s.rel_err != first.rel_err:
            raise ValueError(
                f"cannot merge sketches {first.name!r}: differing rel_err "
                f"({first.rel_err} vs {s.rel_err})"
            )
        for index, count in s.buckets:
            buckets[index] = buckets.get(index, 0) + count
        zero += s.zero_count
        n += s.n
        total += s.total
        if s.min is not None:
            mins.append(s.min)
        if s.max is not None:
            maxs.append(s.max)
    return PercentileSnapshot(
        name=first.name,
        rel_err=first.rel_err,
        buckets=tuple(sorted(buckets.items())),
        zero_count=zero,
        n=n,
        total=total,
        min=min(mins) if mins else None,
        max=max(maxs) if maxs else None,
    )
