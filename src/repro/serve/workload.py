"""Deterministic open-loop workload generation for the serving driver.

The arrival schedule is a pure function of ``(ServeConfig, rank, ranks)``
— no shared state, no wall clock — so a serving run is exactly
reproducible from its config, and two ranks' schedules are independent
streams.  Three generator stages compose:

* **Poisson arrivals** in virtual time: inter-arrival gaps are drawn
  i.i.d. exponential with mean ``1e9 / per-rank rate`` nanoseconds, so
  the world-wide offered load is ``offered_rate_rps`` requests per
  virtual second regardless of how fast the server drains them (the
  defining property of an open loop).
* **Zipfian key popularity**: request keys are drawn from a fixed
  ``key_space``-element universe with probability ``∝ 1/(i+1)**zipf_s``
  for popularity index ``i``.  The most popular keys hash to a handful
  of "hot" table slots, so high skew concentrates contention on a few
  owner ranks — the hot-shard regime where tail latency decouples from
  the mean.
* **Mixed op blend**: each request is a get / put / CAS draw with
  configured probabilities; all three resolve against the prepopulated
  universe so a correct run observes *zero* absent keys (the driver's
  correctness check).

Keys are classed ``hot`` / ``warm`` / ``cold`` by popularity index
(:func:`kclass_bounds`) and every request carries its class so latency
sketches can be reported per popularity class.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from dataclasses import dataclass

#: Key-popularity classes, most to least popular.
KCLASSES = ("hot", "warm", "cold")


@dataclass(frozen=True)
class ServeConfig:
    """One serving run: table shape, key universe, traffic, and SLO."""

    log2_slots: int = 12
    #: Distinct keys prepopulated before serving starts; all requests
    #: draw from this universe.
    key_space: int = 256
    #: Open-loop arrival count per rank (the schedule length).
    requests_per_rank: int = 128
    #: World-wide offered load, requests per *virtual* second.
    offered_rate_rps: float = 2e6
    #: Zipf exponent for key popularity (0 = uniform).
    zipf_s: float = 1.1
    #: Op blend; CAS gets the remainder ``1 - get_frac - put_frac``.
    get_frac: float = 0.6
    put_frac: float = 0.25
    #: Per-request latency SLO in virtual nanoseconds (arrival → complete).
    slo_ns: float = 150_000.0
    #: Idle-polling quantum, virtual ns: while waiting for its next
    #: arrival a server advances time in slices of this size, running the
    #: progress engine between slices so remote traffic is serviced
    #: promptly (a parked server would otherwise strand incoming AMs
    #: until its own next request — unbounded added tail).
    idle_poll_ns: float = 1000.0
    #: Fraction of the key universe (by popularity) classed hot / warm.
    hot_frac: float = 0.02
    warm_frac: float = 0.18
    seed: int = 11

    def __post_init__(self):
        if self.key_space < 1:
            raise ValueError("key_space must be >= 1")
        if self.requests_per_rank < 1:
            raise ValueError("requests_per_rank must be >= 1")
        if self.offered_rate_rps <= 0:
            raise ValueError("offered_rate_rps must be positive")
        if self.zipf_s < 0:
            raise ValueError("zipf_s must be >= 0")
        if not (0.0 <= self.get_frac <= 1.0 and 0.0 <= self.put_frac <= 1.0):
            raise ValueError("op fractions must be in [0, 1]")
        if self.get_frac + self.put_frac > 1.0 + 1e-12:
            raise ValueError("get_frac + put_frac must be <= 1")
        if self.slo_ns <= 0:
            raise ValueError("slo_ns must be positive")
        if self.idle_poll_ns <= 0:
            raise ValueError("idle_poll_ns must be positive")
        if not (0.0 <= self.hot_frac <= 1.0 and 0.0 <= self.warm_frac <= 1.0):
            raise ValueError("class fractions must be in [0, 1]")
        if self.hot_frac + self.warm_frac > 1.0 + 1e-12:
            raise ValueError("hot_frac + warm_frac must be <= 1")


@dataclass(frozen=True)
class Request:
    """One scheduled arrival (everything the server needs, precomputed)."""

    #: Arrival time as an offset from the serving epoch, virtual ns.
    offset_ns: float
    op: str  # "get" | "put" | "cas"
    key: int
    #: Popularity index of ``key`` (0 = most popular).
    key_index: int
    kclass: str  # "hot" | "warm" | "cold"
    #: Payload for puts; (expected, desired) source for CAS.
    value: int


def key_for(cfg: ServeConfig, index: int) -> int:
    """The concrete table key for popularity index ``index``.

    Distinct, nonzero, and seed-dependent; the slot hash
    (:func:`repro.apps.dht._mix`) spreads them over the table, so
    popularity skew translates into *slot* skew without further help.
    """
    return ((cfg.seed + 1) << 32) + index + 1


def initial_value(index: int) -> int:
    """Prepopulated value for popularity index ``index``."""
    return index + 1


def kclass_bounds(cfg: ServeConfig) -> tuple[int, int]:
    """``(hot_end, warm_end)`` popularity-index bounds: indices
    ``< hot_end`` are hot, ``< warm_end`` warm, the rest cold.  At least
    one key is hot whenever ``hot_frac > 0`` (likewise warm)."""
    hot_end = int(round(cfg.hot_frac * cfg.key_space))
    if cfg.hot_frac > 0:
        hot_end = max(1, hot_end)
    warm_end = hot_end + int(round(cfg.warm_frac * cfg.key_space))
    if cfg.warm_frac > 0:
        warm_end = max(hot_end + 1, warm_end)
    return min(hot_end, cfg.key_space), min(warm_end, cfg.key_space)


def kclass_of(cfg: ServeConfig, index: int) -> str:
    hot_end, warm_end = kclass_bounds(cfg)
    if index < hot_end:
        return "hot"
    if index < warm_end:
        return "warm"
    return "cold"


def zipf_weights(n: int, s: float) -> list[float]:
    """Normalized Zipf(s) probabilities over popularity indices 0..n-1."""
    raw = [(i + 1) ** -s for i in range(n)]
    total = sum(raw)
    return [w / total for w in raw]


def _zipf_cdf(cfg: ServeConfig) -> list[float]:
    cdf, acc = [], 0.0
    for w in zipf_weights(cfg.key_space, cfg.zipf_s):
        acc += w
        cdf.append(acc)
    cdf[-1] = 1.0  # guard float drift so bisect never falls off the end
    return cdf


def build_schedule(
    cfg: ServeConfig, rank: int, ranks: int
) -> tuple[Request, ...]:
    """The full arrival schedule for one rank, sorted by arrival time.

    Each of the ``ranks`` servers is an independent Poisson stream at
    ``offered_rate_rps / ranks``, which superpose to the configured
    world-wide Poisson offered load.  Deterministic: the RNG is seeded
    from ``(cfg.seed, rank)`` only.
    """
    if ranks < 1:
        raise ValueError("ranks must be >= 1")
    rng = random.Random((cfg.seed * 0x9E3779B1) ^ (rank * 0x85EBCA6B) ^ 0x1D)
    mean_gap_ns = 1e9 * ranks / cfg.offered_rate_rps
    cdf = _zipf_cdf(cfg)
    hot_end, warm_end = kclass_bounds(cfg)
    cas_cut = cfg.get_frac + cfg.put_frac
    out = []
    t = 0.0
    for i in range(cfg.requests_per_rank):
        t += rng.expovariate(1.0 / mean_gap_ns)
        u = rng.random()
        op = "get" if u < cfg.get_frac else ("put" if u < cas_cut else "cas")
        ki = bisect_right(cdf, rng.random())
        if ki >= cfg.key_space:
            ki = cfg.key_space - 1
        kclass = "hot" if ki < hot_end else ("warm" if ki < warm_end else "cold")
        out.append(
            Request(
                offset_ns=t,
                op=op,
                key=key_for(cfg, ki),
                key_index=ki,
                kclass=kclass,
                value=rng.randrange(1, 1 << 30),
            )
        )
    return tuple(out)
