"""The open-loop serving driver: ranks as DHT servers draining arrivals.

Every rank is a server for its slice of the table *and* the entry point
for its own arrival schedule (the classic symmetric-PGAS service shape:
clients are colocated with shards).  The loop is open: request ``i``
is admitted at ``max(now, t_arrival_i)`` — if the server is still busy
with earlier work the arrival queues, and the queueing delay counts
against the request's sojourn.  Under overload the backlog grows without
bound and tail latency diverges; the saturation sweep in
:mod:`repro.bench.servebench` walks offered rate to find that knee.

Latency phases per request (all in virtual ns):

* ``queue``   = ``t_admit - t_arrival`` — time spent waiting behind the
  server's backlog before it even looked at the request;
* ``service`` = ``t_complete - t_admit`` — the DHT operation itself
  (probe chain, remote round trips, notification waits);
* ``total``   = ``t_complete - t_arrival`` — the client-visible sojourn,
  judged against ``ServeConfig.slo_ns``.

Each phase feeds a :class:`~repro.obs.percentiles.PercentileSketch` per
key-popularity class (plus an ``all`` rollup) on the serving rank.  The
sketches are the *measurement* and are always on — they are plain Python
bookkeeping that never touches the cost model, so (like the rest of
:mod:`repro.obs`) they cannot perturb virtual time.  Full per-request
:class:`~repro.obs.request.RequestSpan` records, by contrast, are only
allocated when ``FeatureFlags.obs_spans`` is set: with observability off
the request path performs one ``ctx.obs is None`` check and allocates
nothing.

Rank snapshots merge world-wide through
:func:`repro.sim.stats.serve_snapshots` /
:func:`repro.sim.stats.serve_stats` (the shared
``gather_rank_snapshots`` walk).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro import barrier_gen, current_ctx, rank_me, rank_n
from repro.apps.dht import DistributedHashMap
from repro.errors import UpcxxError
from repro.obs.percentiles import (
    DEFAULT_REL_ERR,
    PercentileSketch,
    PercentileSnapshot,
    merge_percentiles,
)
from repro.runtime.config import Version
from repro.runtime.runtime import spmd_run
from repro.runtime.switchpoints import YIELD_NOW, run_blocking
from repro.serve.workload import (
    ServeConfig,
    build_schedule,
    initial_value,
    key_for,
)
from repro.sim.clock import UNITS_PER_NS
from repro.sim.costmodel import CostAction

#: Latency phases recorded per request.
PHASES = ("total", "queue", "service")


def sketch_key(phase: str, kclass: str) -> str:
    """Canonical sketch-map key, e.g. ``"total/hot"``."""
    return f"{phase}/{kclass}"


@dataclass(frozen=True)
class ServeRankSnapshot:
    """One rank's immutable serving measurement (mergeable)."""

    rank: int
    #: Requests served (the rank's full schedule length).
    n: int
    #: Requests whose key was absent from the table (must be 0 — the
    #: workload only draws prepopulated keys; nonzero means a bug).
    missing: int
    #: Requests whose total sojourn exceeded ``ServeConfig.slo_ns``.
    slo_misses: int
    #: Requests by op name ("get" / "put" / "cas").
    by_op: dict
    #: ``phase/kclass`` -> sketch, for every phase and every class that
    #: received at least one request (plus the ``all`` rollups).
    sketches: dict


class ServeRankObs:
    """Mutable per-rank serving measurement state.

    Hangs off the rank context as ``ctx.serve_obs`` so the world-level
    gather (:func:`repro.sim.stats.serve_snapshots`) finds it after the
    run, exactly like the aggregation / progress / obs subsystems.
    """

    __slots__ = ("rank", "rel_err", "n", "missing", "slo_misses",
                 "by_op", "_sketches")

    def __init__(self, rank: int, rel_err: float = DEFAULT_REL_ERR):
        self.rank = rank
        self.rel_err = rel_err
        self.n = 0
        self.missing = 0
        self.slo_misses = 0
        self.by_op: dict[str, int] = {}
        self._sketches: dict[str, PercentileSketch] = {}

    def _sketch(self, phase: str, kclass: str) -> PercentileSketch:
        key = sketch_key(phase, kclass)
        sk = self._sketches.get(key)
        if sk is None:
            sk = self._sketches[key] = PercentileSketch(
                key, rel_err=self.rel_err
            )
        return sk

    def record(
        self,
        op: str,
        kclass: str,
        queue_ns: float,
        service_ns: float,
        total_ns: float,
        *,
        slo_missed: bool,
        hit: bool,
    ) -> None:
        self.n += 1
        self.by_op[op] = self.by_op.get(op, 0) + 1
        if not hit:
            self.missing += 1
        if slo_missed:
            self.slo_misses += 1
        for phase, v in (
            ("total", total_ns),
            ("queue", queue_ns),
            ("service", service_ns),
        ):
            self._sketch(phase, "all").record(v)
            self._sketch(phase, kclass).record(v)

    def snapshot(self) -> ServeRankSnapshot:
        return ServeRankSnapshot(
            rank=self.rank,
            n=self.n,
            missing=self.missing,
            slo_misses=self.slo_misses,
            by_op=dict(self.by_op),
            sketches={k: s.snapshot() for k, s in self._sketches.items()},
        )


def merge_serve_snapshots(snaps) -> ServeRankSnapshot:
    """World-wide rollup of per-rank snapshots: counters sum, sketches
    merge per ``phase/kclass`` key (rank -1 marks the merge)."""
    snaps = list(snaps)
    if not snaps:
        raise ValueError("merge_serve_snapshots needs at least one snapshot")
    by_op: dict[str, int] = {}
    sketches: dict[str, list[PercentileSnapshot]] = {}
    for s in snaps:
        for op, c in s.by_op.items():
            by_op[op] = by_op.get(op, 0) + c
        for key, sk in s.sketches.items():
            sketches.setdefault(key, []).append(sk)
    return ServeRankSnapshot(
        rank=-1,
        n=sum(s.n for s in snaps),
        missing=sum(s.missing for s in snaps),
        slo_misses=sum(s.slo_misses for s in snaps),
        by_op=by_op,
        sketches={k: merge_percentiles(v) for k, v in sketches.items()},
    )


@dataclass
class ServeResult:
    """Outcome of one serving run (world-wide view)."""

    config: ServeConfig
    ranks: int
    version: Version
    machine: str
    #: Serving-phase makespan: max over ranks of (last completion -
    #: serving epoch), virtual ns.
    solve_ns: float
    offered_rate_rps: float
    requests: int
    missing: int
    slo_misses: int
    by_op: dict
    #: Merged ``phase/kclass`` -> :class:`PercentileSnapshot`.
    sketches: dict
    #: Per-rank snapshots (for merge tests and per-shard analysis).
    per_rank: tuple
    #: World obs rollup when ``obs_spans`` was on, else ``None``.
    obs: Optional[object] = None

    @property
    def correct(self) -> bool:
        return self.missing == 0

    @property
    def achieved_rate_rps(self) -> float:
        """Completed requests per virtual second of serving makespan."""
        if self.solve_ns <= 0:
            return 0.0
        return self.requests * 1e9 / self.solve_ns

    def percentiles(
        self, phase: str = "total", kclass: str = "all"
    ) -> dict[str, float]:
        """``{"p50": .., "p99": .., "p999": ..}`` for one phase/class."""
        sk = self.sketches.get(sketch_key(phase, kclass))
        if sk is None:
            return {"p50": 0.0, "p99": 0.0, "p999": 0.0}
        return sk.percentiles()

    def mean_ns(self, phase: str = "total", kclass: str = "all") -> float:
        sk = self.sketches.get(sketch_key(phase, kclass))
        return sk.mean if sk is not None else 0.0


def _serve_body_gen(cfg: ServeConfig):
    """The SPMD serving body as a generator continuation — one body for
    both scheduler substrates, like :func:`repro.apps.dht._dht_body_gen`."""
    ctx = current_ctx()
    me = rank_me()
    p = rank_n()
    table = DistributedHashMap(cfg.log2_slots)
    yield from barrier_gen()
    table.attach()
    # Prepopulate the key universe round-robin so every request hits.
    for i in range(me, cfg.key_space, p):
        yield from table.insert_gen(key_for(cfg, i), initial_value(i))
    yield from barrier_gen()

    schedule = build_schedule(cfg, me, p)
    sobs = ServeRankObs(me)
    ctx.serve_obs = sobs
    obs = ctx.obs
    clock = ctx.clock
    clock.mark("serve")
    epoch = clock.now_ns

    for req in schedule:
        # Quantize the arrival to the clock grid so "reached the arrival"
        # is an exact comparison (advance_to rounds to the grid and can
        # otherwise land a float-epsilon short of the target forever).
        t_arrival = (
            round((epoch + req.offset_ns) * UNITS_PER_NS) / UNITS_PER_NS
        )
        # Open-loop admission: idle until the arrival, or pick it up
        # immediately (late) if the backlog pushed `now` past it.  An
        # idle server is a *polling* server: advance in idle_poll_ns
        # slices, servicing incoming AMs between slices, so remote
        # requests for this rank's shard are not stranded until its own
        # next arrival.
        while True:
            if ctx.has_incoming():
                ctx.progress()
            before = clock.now_ns
            if before >= t_arrival:
                break
            now = clock.advance_to(min(t_arrival, before + cfg.idle_poll_ns))
            if now == before:
                break  # quantum under grid resolution; arrival handles it
            yield YIELD_NOW
        t_admit = clock.advance_to(t_arrival)
        span = None
        sid0 = 0
        if obs is not None:
            span = obs.begin_request(
                req.op,
                req.key,
                req.kclass,
                t_arrival,
                slo_deadline_ns=t_arrival + cfg.slo_ns,
            )
            span.t_admit = t_admit
            sid0 = obs.spans.next_sid
        ctx.charge(CostAction.FUNCTION_CALL, 2)  # parse + dispatch
        if span is not None:
            span.t_issue = clock.now_ns
        if req.op == "get":
            got = yield from table.find_gen(req.key)
            hit = got is not None
        elif req.op == "put":
            yield from table.insert_gen(req.key, req.value)
            hit = True
        else:  # cas: read-modify-write on the current value word
            observed = yield from table.cas_gen(
                req.key, req.value, req.value + 1
            )
            hit = observed is not None
        t_complete = clock.now_ns
        total_ns = t_complete - t_arrival
        slo_missed = total_ns > cfg.slo_ns
        if span is not None:
            span.t_complete = t_complete
            span.op_sids = tuple(range(sid0, obs.spans.next_sid))
        sobs.record(
            req.op,
            req.kclass,
            max(0.0, t_admit - t_arrival),
            t_complete - t_admit,
            total_ns,
            slo_missed=slo_missed,
            hit=hit,
        )
    # Drain: keep servicing remote traffic until every rank is done.
    yield from barrier_gen()
    solve_ns = clock.elapsed_since("serve")
    return solve_ns, sobs.n, sobs.missing


def _serve_body(cfg: ServeConfig):
    """Blocking form (thread-shim parity oracle for the continuation)."""
    return run_blocking(current_ctx(), _serve_body_gen(cfg))


def run_serve(
    cfg: ServeConfig,
    *,
    ranks: int = 8,
    version: Version = Version.V2021_3_6_EAGER,
    machine: str = "intel",
    conduit: Optional[str] = None,
    n_nodes: int = 1,
    flags=None,
    continuation: bool = True,
) -> ServeResult:
    """Run one open-loop serving experiment and roll it up world-wide."""
    if cfg.key_space * 2 > (1 << cfg.log2_slots):
        raise UpcxxError(
            "table too small: keep load factor <= 0.5 "
            f"({cfg.key_space} keys, {1 << cfg.log2_slots} slots)"
        )
    seg = max(1 << 17, (1 << cfg.log2_slots) // ranks * 16 * 4)
    body = _serve_body_gen if continuation else (lambda c: _serve_body(c))
    res = spmd_run(
        body,
        args=(cfg,),
        ranks=ranks,
        version=version,
        machine=machine,
        conduit=conduit,
        n_nodes=n_nodes,
        seed=cfg.seed,
        segment_bytes=seg,
        flags=flags,
    )
    from repro.sim.stats import observability_stats, serve_snapshots

    snaps = serve_snapshots(res.world)
    merged = merge_serve_snapshots(snaps)
    solve_ns = max(v[0] for v in res.values)
    return ServeResult(
        config=cfg,
        ranks=ranks,
        version=version,
        machine=machine,
        solve_ns=solve_ns,
        offered_rate_rps=cfg.offered_rate_rps,
        requests=merged.n,
        missing=merged.missing,
        slo_misses=merged.slo_misses,
        by_op=merged.by_op,
        sketches=merged.sketches,
        per_rank=tuple(snaps),
        obs=observability_stats(res.world),
    )
