"""Open-loop DHT serving: offered-load traffic over ``repro.apps.dht``.

Every benchmark elsewhere in this repository is *closed-loop* SPMD: a
rank issues its next operation when the previous one returns, so the
measured quantity is per-operation cost and the system can never fall
behind.  A service does not get that courtesy — requests arrive when
clients send them, at a rate the server does not control, and the
production question is **tail latency versus offered load**.  This
package provides:

* :mod:`repro.serve.workload` — seeded, deterministic open-loop traffic:
  Poisson arrivals in virtual time at a configurable offered rate,
  Zipfian key popularity (hot shards), and a mixed get/put/CAS request
  blend;
* :mod:`repro.serve.driver` — the serving loop itself: each rank is a
  server draining its arrival schedule against the shared
  :class:`~repro.apps.dht.DistributedHashMap`, stamping per-request
  latency phases (queue/service/total) into
  :class:`~repro.obs.percentiles.PercentileSketch` es and — when
  ``FeatureFlags.obs_spans`` is on — full
  :class:`~repro.obs.request.RequestSpan` records linked to the
  operation spans each request spawned.

The saturation-sweep harness over this driver lives in
:mod:`repro.bench.servebench` (``python -m repro.bench serve``).
"""

from repro.serve.workload import (
    KCLASSES,
    Request,
    ServeConfig,
    build_schedule,
    initial_value,
    key_for,
    kclass_bounds,
    zipf_weights,
)
from repro.serve.driver import (
    PHASES,
    ServeRankSnapshot,
    ServeResult,
    run_serve,
)

__all__ = [
    "KCLASSES",
    "PHASES",
    "Request",
    "ServeConfig",
    "ServeRankSnapshot",
    "ServeResult",
    "build_schedule",
    "initial_value",
    "key_for",
    "kclass_bounds",
    "run_serve",
    "zipf_weights",
]
