"""Remote procedure calls.

:func:`rpc` ships a callback to the target rank, runs it inside the
target's progress engine, and returns a ``future<T>`` on the initiator
that readies (always via the progress engine — an RPC round trip is never
synchronous) with the callback's return value.  A callback returning a
future defers the reply until that future readies, as in UPC++.

:func:`rpc_ff` is the fire-and-forget form: no reply, no future, halved
traffic — used by the graph-matching application for its message pattern.

Callback exceptions propagate to the initiator wrapped in
:class:`~repro.errors.RpcError` (the real runtime would abort the job;
raising at the waiter is the debuggable analogue).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.completions import Completions, CxDispatcher, operation_cx
from repro.core.events import Event
from repro.core.future import Future
from repro.errors import RpcError, UpcxxError
from repro.rpc.serialization import payload_nbytes
from repro.runtime.context import current_ctx
from repro.sim.costmodel import CostAction

_RPC_EVENTS = frozenset({Event.OPERATION})


def _charge_serialize(ctx, nbytes: int) -> None:
    if nbytes:
        ctx.charge_bytes(CostAction.RPC_SERIALIZE_PER_BYTE, nbytes)


def rpc(target: int, fn: Callable, *args,
        comps: Optional[Completions] = None):
    """Run ``fn(*args)`` on rank ``target``.

    Default completion is ``operation_cx.as_future()`` carrying the
    callback's return value (``future<T>``); promise and LPC operation
    completions are also supported.  An RPC round trip never completes
    synchronously, so eager factories behave identically to deferred ones
    here (as in UPC++, where RPC futures are never ready at initiation).
    """
    ctx = current_ctx()
    if not (0 <= target < ctx.world_size):
        raise UpcxxError(f"rpc target rank {target} out of range")
    if comps is None:
        comps = operation_cx.as_future()
    disp = CxDispatcher(
        ctx,
        comps,
        supported=_RPC_EVENTS,
        value_event=Event.OPERATION,
        nvalues=1,
        op_name="rpc",
    )
    nbytes = payload_nbytes(args)
    _charge_serialize(ctx, nbytes)
    pending = disp.pend(Event.OPERATION)
    initiator = ctx.rank

    def on_target(tctx):
        try:
            result = fn(*args)
        except Exception as exc:  # noqa: BLE001 - shipped to initiator
            _reply(tctx, initiator, pending, error=exc)
            return
        if isinstance(result, Future):
            # reply deferred until the returned future readies
            result._cell.add_callback(
                lambda vals: _reply(
                    tctx, initiator, pending,
                    value=vals[0] if len(vals) == 1 else (
                        None if not vals else vals
                    ),
                )
            )
        else:
            _reply(tctx, initiator, pending, value=result)

    ctx.conduit.send_am(
        ctx, target, on_target, nbytes=nbytes, label="rpc", aggregatable=True
    )
    # topology lookup only (no conduit memo traffic): spans must not
    # perturb the pshm-reachability hit counters
    disp.mark_injected(
        target, nbytes, local=ctx.world.same_node(ctx.rank, target)
    )
    return disp.result()


def _reply(tctx, initiator: int, pending, value=None, error=None) -> None:
    reply_bytes = payload_nbytes(value) if error is None else 64
    _charge_serialize(tctx, reply_bytes)

    def on_initiator(ictx):
        if error is not None:
            # deliver the failure at the consumer: readying the cell with
            # a raising thunk would hide the traceback, so raise here —
            # inside the initiator's progress engine, as UPC++ would abort
            raise RpcError(
                f"RPC callback raised on rank {tctx.rank}: {error!r}"
            ) from error
        pending.complete((value,))

    tctx.conduit.send_am(
        tctx, initiator, on_initiator, nbytes=reply_bytes, label="rpc_reply"
    )


def rpc_ff(target: int, fn: Callable, *args) -> None:
    """Fire-and-forget RPC: run ``fn(*args)`` on ``target``, no reply."""
    ctx = current_ctx()
    if not (0 <= target < ctx.world_size):
        raise UpcxxError(f"rpc_ff target rank {target} out of range")
    nbytes = payload_nbytes(args)
    _charge_serialize(ctx, nbytes)

    def on_target(tctx):
        try:
            fn(*args)
        except Exception as exc:  # noqa: BLE001
            raise RpcError(
                f"rpc_ff callback raised on rank {tctx.rank}: {exc!r}"
            ) from exc

    obs = ctx.obs
    span = None
    if obs is not None:
        # no dispatcher on the fire-and-forget path: there is no
        # completion to notify, so the span ends at injection
        span = obs.begin_span(
            "rpc_ff",
            "none",
            target=target,
            nbytes=nbytes,
            locality=(
                "pshm"
                if ctx.world.same_node(ctx.rank, target)
                else "offnode"
            ),
        )
    ctx.conduit.send_am(
        ctx, target, on_target, nbytes=nbytes, label="rpc_ff",
        aggregatable=True,
    )
    if span is not None:
        span.t_injected = ctx.clock.now_ns
