"""Remote procedure calls: ``rpc`` (round-trip, future-returning) and
``rpc_ff`` (fire-and-forget), with payload-size accounting via
:mod:`repro.rpc.serialization`.
"""

from repro.rpc.rpc import rpc, rpc_ff
from repro.rpc.serialization import payload_nbytes

__all__ = ["rpc", "rpc_ff", "payload_nbytes"]
