"""Payload-size accounting for RPC arguments and results.

UPC++ serializes RPC arguments with its own serialization framework; here
the simulation only needs the *size* of the payload (to charge per-byte
costs) plus a guarantee that the payload is actually shippable.  Sizes are
estimated without copying where possible (numpy buffers, bytes); other
objects are measured by pickling, which simultaneously validates that the
object could be serialized at all.
"""

from __future__ import annotations

import pickle

import numpy as np

from repro.errors import SerializationError


def payload_nbytes(obj) -> int:
    """Estimated on-the-wire size of ``obj`` in bytes.

    Raises :class:`~repro.errors.SerializationError` for objects that
    cannot be serialized (e.g. lambdas capturing sockets, open files).
    """
    if obj is None:
        return 0
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, (int, float, bool)):
        return 8
    if isinstance(obj, str):
        return len(obj.encode("utf-8"))
    if isinstance(obj, (tuple, list)):
        return sum(payload_nbytes(x) for x in obj) + 8
    if isinstance(obj, dict):
        return (
            sum(
                payload_nbytes(k) + payload_nbytes(v)
                for k, v in obj.items()
            )
            + 8
        )
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception as exc:  # noqa: BLE001 - converted to domain error
        raise SerializationError(
            f"cannot serialize RPC payload of type {type(obj).__name__}: {exc}"
        ) from exc
