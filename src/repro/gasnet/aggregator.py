"""Destination-batched active-message aggregation.

Eager notification removes per-operation *notification* overhead, but the
paper's own off-node check (§IV-A, ``benchmarks/results/offnode_rma.txt``)
shows that once a message actually crosses the network, per-message
injection cost and latency dominate and the eager gain disappears into the
noise.  The complementary optimization — the one LCI and UNR apply to
fine-grained RMA/notification traffic — is to *coalesce* many small
operations headed to the same destination into one bundled message,
amortizing injection and latency over the whole batch.

This module implements that layer for the simulated conduit:

* an :class:`AmAggregator` owned by each rank holds one
  :class:`DestinationBuffer` per remote destination it has traffic for;
* :meth:`Conduit.send_am <repro.gasnet.conduit.Conduit.send_am>` diverts
  *eligible* AMs here instead of injecting them (eligible = marked
  ``aggregatable`` by the issuing operation layer, off-node destination,
  aggregation enabled via ``RankContext.flags.am_aggregation``);
* a buffer is flushed as **one** bundled AM — one ``AM_INJECT``, one
  bundle header, one latency hop; the receiver pays one ``AM_EXECUTE`` for
  the bundle plus a cheap ``AM_BUNDLE_ENTRY_DISPATCH`` per entry, and runs
  the entry handlers in append order.

Flush policies (any of which closes a bundle):

1. **entry-count threshold** — ``flags.agg_max_entries`` entries buffered
   (with ``flags.agg_adaptive`` on, the *effective* threshold sized online
   by :class:`~repro.gasnet.adaptive.AdaptiveController` between
   ``agg_min_entries`` and ``agg_max_entries``);
2. **byte threshold** — ``flags.agg_max_bytes`` payload bytes buffered
   (adaptively sized between ``agg_min_bytes`` and ``agg_max_bytes``);
3. **age bound** — with ``flags.agg_adaptive`` on, a buffer whose oldest
   entry has waited more than ``flags.agg_max_age_ticks`` simulated ns is
   flushed by the next conduit activity (any ``send_am``/``poll``) or
   progress call, bounding a stranded entry's added latency even when the
   rank never explicitly progresses;
4. **explicit** — :meth:`AmAggregator.flush` / :meth:`flush_all`;
5. **progress entry/exit** — the progress engine flushes all buffers when
   it is entered (so ``progress()``, ``barrier()`` and ``future.wait()``
   all publish buffered work before blocking) and again after its drain
   loop (so AMs buffered *by handlers during the drain* cannot be stranded
   while the rank blocks);
6. **wait target** — with ``flags.wait_hints`` on, a hinted wait narrows
   the progress-entry/exit flush to :meth:`AmAggregator.flush_for_wait`:
   the awaited destination ships immediately, other buffers past
   ``wait_flush_fill_frac`` of their thresholds ride along in the same
   conduit activity (also applied when an age flush fires — the
   cross-destination scheduling follow-on), and the rest keep batching;
   the wait loop flushes everything before actually blocking.

Bundle framing and delta-compression
------------------------------------
A bundle's modeled wire footprint is its summed payloads plus framing: a
32-byte bundle header and an 8-byte per-entry header (conduit handler id +
length).  With ``flags.agg_compression`` on, consecutive entries sharing
one conduit-level handler — identified by the entry *label* (``rpc_ff``,
``put_req``, …; Python closures differ per call but ride the same wire
handler) — form a **run**: the full 8-byte header is charged once per run
and each continuation entry pays only a 2-byte header.  GUPS-style
homogeneous update streams collapse to a single run per bundle, cutting
framing ~4x.  Compression changes modeled bytes only; the receiver replays
exactly the same handlers in the same order.

Correctness gate
----------------
AMs that deliver source/operation completions back to an initiator
(``put_ack``, ``get_reply``, ``amo_reply``, ``rpc_reply``) are **never**
aggregated: the initiator may spin on the completion before its next
progress call, and parking the notification in the responder's buffer
would stall (or deadlock) that spin.  Operation layers express this by
simply not marking those AMs ``aggregatable``.  Consequently aggregation
changes *when* a request is injected but never *whether* a completion can
be observed: deferred and eager builds reach identical final states with
aggregation on or off (tested in ``tests/test_am_aggregation.py`` and,
for the adaptive/compressed paths, ``tests/test_agg_adaptive.py``).

Ordering: entries bundled to one destination are delivered in append
order (the transport is FIFO, and a bundle replays its entries in order).
Interleaving between bundled and non-bundled messages to the same
destination may differ from the unaggregated schedule, exactly as in real
aggregation layers.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.gasnet.adaptive import (
    AdaptiveController,
    ThresholdDecision,
    fill_fraction,
)
from repro.obs.metrics import DEPTH_EDGES as _BUNDLE_DEPTH_EDGES
from repro.sim.costmodel import CostAction

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.context import RankContext

#: Modeled on-the-wire overhead of one bundle (message header + entry
#: table), charged as payload bytes so the bandwidth term stays honest.
BUNDLE_HEADER_BYTES = 32
#: Modeled per-entry framing inside a bundle (handler id + length field).
ENTRY_HEADER_BYTES = 8
#: Modeled framing of a run-continuation entry under delta-compression
#: (length field only — the handler id was charged by the run opener).
RUN_CONT_HEADER_BYTES = 2


@dataclass
class AggEntry:
    """One small AM parked in a destination buffer awaiting flush."""

    handler: Callable
    args: tuple
    nbytes: int
    label: str
    #: simulated-clock append time (parking-latency and age accounting)
    ts_ns: float = 0.0


@dataclass
class DestinationBuffer:
    """The pending bundle for one (source rank, destination rank) pair."""

    dst_rank: int
    entries: list[AggEntry] = field(default_factory=list)
    payload_bytes: int = 0

    def append(self, entry: AggEntry) -> None:
        self.entries.append(entry)
        self.payload_bytes += entry.nbytes

    def take(self) -> tuple[list[AggEntry], int]:
        entries, nbytes = self.entries, self.payload_bytes
        self.entries, self.payload_bytes = [], 0
        return entries, nbytes

    @property
    def oldest_ns(self) -> float | None:
        """Append time of the oldest parked entry (None when empty)."""
        return self.entries[0].ts_ns if self.entries else None

    def __len__(self) -> int:
        return len(self.entries)


def bundle_framing(
    entries: list[AggEntry], compress: bool
) -> tuple[int, int, int]:
    """Modeled framing of a bundle: ``(framing_bytes, n_runs, saved)``.

    Uncompressed, every entry pays a full :data:`ENTRY_HEADER_BYTES`
    header.  Compressed, consecutive entries sharing a conduit-level
    handler (the entry ``label``) form a run: one full header per run,
    :data:`RUN_CONT_HEADER_BYTES` per continuation.  ``saved`` is the
    framing reduction versus the uncompressed encoding.
    """
    n = len(entries)
    flat = BUNDLE_HEADER_BYTES + ENTRY_HEADER_BYTES * n
    if not compress:
        return flat, n, 0
    runs = 1 if n else 0
    for prev, cur in zip(entries, entries[1:]):
        if cur.label != prev.label:
            runs += 1
    framing = (
        BUNDLE_HEADER_BYTES
        + ENTRY_HEADER_BYTES * runs
        + RUN_CONT_HEADER_BYTES * (n - runs)
    )
    return framing, runs, flat - framing


@dataclass(frozen=True)
class AggregatorSnapshot:
    """Point-in-time view of one rank's aggregator (see
    :meth:`AmAggregator.stats`)."""

    rank: int
    appended: int
    bundles_flushed: int
    entries_flushed: int
    largest_bundle: int
    pending_entries: int
    #: bundle-size -> count histogram over all flushed bundles
    bundle_size_hist: dict[int, int]
    #: flush-trigger -> count (``entries``/``bytes``/``age``/``explicit``/
    #: ``progress_entry``/``progress_exit``)
    flush_reasons: dict[str, int]
    #: summed simulated parking time (append -> flush) over flushed entries
    parked_ns_total: float
    #: buffers force-flushed by the age bound
    age_flushes: int
    #: targeted flushes for an active wait (0 unless ``wait_hints``)
    wait_flushes: int
    #: controller observations (0 unless ``agg_adaptive``)
    adaptive_updates: int
    #: recorded threshold decisions, oldest first (empty unless adaptive)
    threshold_trajectory: tuple[ThresholdDecision, ...]
    #: framing bytes saved by delta-compression (0 unless compression)
    compression_saved_bytes: int

    @property
    def mean_bundle_size(self) -> float:
        if not self.bundles_flushed:
            return 0.0
        return self.entries_flushed / self.bundles_flushed

    @property
    def mean_parked_ns(self) -> float:
        """Mean simulated parking latency of a flushed entry."""
        if not self.entries_flushed:
            return 0.0
        return self.parked_ns_total / self.entries_flushed


class AmAggregator:
    """Per-rank coalescing buffers for small off-node active messages.

    Owned by a :class:`~repro.runtime.context.RankContext` (created by the
    world wiring only when ``flags.am_aggregation`` is set, so the default
    configuration has literally zero aggregation code on any path).
    Thresholds come from the context's feature flags — statically, or via
    an :class:`~repro.gasnet.adaptive.AdaptiveController` when
    ``flags.agg_adaptive`` is on.  Flag values are validated at
    :class:`~repro.runtime.config.FeatureFlags` construction.
    """

    __slots__ = (
        "_ctx", "max_entries", "max_bytes", "_buffers",
        "controller", "max_age_ns", "compress",
        "wait_fill_frac",
        "appended", "bundles_flushed", "entries_flushed", "largest_bundle",
        "bundle_size_hist", "flush_reasons", "parked_ns_total",
        "age_flushes", "wait_flushes", "compression_saved_bytes",
    )

    def __init__(self, ctx: "RankContext"):
        flags = ctx.flags
        self._ctx = ctx
        self.max_entries = flags.agg_max_entries
        self.max_bytes = flags.agg_max_bytes
        self._buffers: dict[int, DestinationBuffer] = {}
        #: adaptive threshold control + age bound (None = static PR-1
        #: behaviour, bit-identical to the pre-adaptive layer)
        self.controller: Optional[AdaptiveController] = (
            AdaptiveController(flags) if flags.agg_adaptive else None
        )
        self.max_age_ns: float | None = (
            flags.agg_max_age_ticks if flags.agg_adaptive else None
        )
        self.compress: bool = flags.agg_compression
        #: near-full ride-along threshold of targeted flushes, or None
        #: when ``wait_hints`` is off (no ride-along, no targeted flush)
        self.wait_fill_frac: float | None = (
            flags.wait_flush_fill_frac if flags.wait_hints else None
        )
        # -- stats ----------------------------------------------------------
        self.appended = 0
        self.bundles_flushed = 0
        self.entries_flushed = 0
        self.largest_bundle = 0
        self.bundle_size_hist: Counter[int] = Counter()
        self.flush_reasons: Counter[str] = Counter()
        self.parked_ns_total = 0.0
        self.age_flushes = 0
        self.wait_flushes = 0
        self.compression_saved_bytes = 0

    # -- queries -----------------------------------------------------------

    def has_pending(self) -> bool:
        return any(self._buffers.values())

    def pending_entries(self, dst_rank: int | None = None) -> int:
        if dst_rank is not None:
            buf = self._buffers.get(dst_rank)
            return len(buf) if buf is not None else 0
        return sum(len(b) for b in self._buffers.values())

    def thresholds_for(self, dst_rank: int) -> tuple[int, int]:
        """Effective (entries, bytes) flush thresholds for a destination
        (the static flag values unless the controller has sized them)."""
        if self.controller is not None:
            return self.controller.thresholds(dst_rank)
        return self.max_entries, self.max_bytes

    # -- the append path ---------------------------------------------------

    def append(
        self,
        dst_rank: int,
        handler: Callable,
        args: tuple,
        nbytes: int,
        label: str,
    ) -> None:
        """Park one AM for ``dst_rank``; auto-flush on either threshold.

        The payload copy into the buffer is charged here (``nbytes`` of
        ``MEMCPY_PER_BYTE``), mirroring what direct injection charges, so
        aggregation saves injection overhead — never byte costs.  With the
        adaptive controller on, each append also feeds the destination's
        gap/size estimators (one ``AM_AGG_ADAPT`` charge) and retires any
        buffer that exceeded the age bound (appends count as conduit
        activity).
        """
        ctx = self._ctx
        ctx.charge(CostAction.AM_AGG_APPEND)
        if nbytes:
            ctx.charge_bytes(CostAction.MEMCPY_PER_BYTE, nbytes)
        now = ctx.clock.now_ns
        if self.controller is not None:
            ctx.charge(CostAction.AM_AGG_ADAPT)
            max_entries, max_bytes = self.controller.observe(
                now, dst_rank, nbytes
            )
            self.flush_aged()
        else:
            max_entries, max_bytes = self.max_entries, self.max_bytes
        buf = self._buffers.get(dst_rank)
        if buf is None:
            buf = self._buffers[dst_rank] = DestinationBuffer(dst_rank)
        buf.append(AggEntry(handler, args, nbytes, label, ts_ns=now))
        self.appended += 1
        if len(buf) >= max_entries:
            self.flush(dst_rank, reason="entries")
        elif buf.payload_bytes >= max_bytes:
            self.flush(dst_rank, reason="bytes")

    # -- flush policies ----------------------------------------------------

    def flush(self, dst_rank: int, reason: str = "explicit") -> int:
        """Flush the buffer for one destination; returns entries shipped."""
        buf = self._buffers.get(dst_rank)
        if not buf:
            return 0
        entries, payload = buf.take()
        ctx = self._ctx
        now = ctx.clock.now_ns
        obs = ctx.obs
        for e in entries:
            self.parked_ns_total += now - e.ts_ns
            if obs is not None:
                obs.metrics.histogram("agg.parked_ns").record(now - e.ts_ns)
        if obs is not None:
            obs.metrics.histogram(
                "agg.bundle_entries", _BUNDLE_DEPTH_EDGES
            ).record(len(entries))
        if self.compress:
            # run detection + continuation-header emission, per entry
            ctx.charge(CostAction.AM_BUNDLE_COMPRESS, len(entries))
        framing, _runs, saved = bundle_framing(entries, self.compress)
        self.compression_saved_bytes += saved
        ctx.conduit.send_bundle(
            ctx, dst_rank, entries, payload, framing_bytes=framing
        )
        self.bundles_flushed += 1
        self.entries_flushed += len(entries)
        self.bundle_size_hist[len(entries)] += 1
        self.flush_reasons[reason] += 1
        if len(entries) > self.largest_bundle:
            self.largest_bundle = len(entries)
        return len(entries)

    def flush_all(self, reason: str = "explicit") -> int:
        """Flush every destination buffer (rank order, deterministic)."""
        shipped = 0
        for dst in sorted(self._buffers):
            shipped += self.flush(dst, reason=reason)
        return shipped

    def flush_aged(self) -> int:
        """Flush buffers whose oldest entry exceeded the age bound.

        Called from every conduit activity of the owning rank (AM sends,
        polls) and on progress entry, so with ``agg_adaptive`` on a parked
        entry's added latency is bounded by ``agg_max_age_ticks`` plus the
        gap to the rank's next conduit/progress action — even if the rank
        never calls ``progress()`` explicitly.  No-op (0) when the age
        bound is off.
        """
        max_age = self.max_age_ns
        if max_age is None or not self._buffers:
            return 0
        now = self._ctx.clock.now_ns
        shipped = 0
        for dst in sorted(self._buffers):
            buf = self._buffers[dst]
            oldest = buf.oldest_ns
            if oldest is not None and now - oldest >= max_age:
                self.age_flushes += 1
                shipped += self.flush(dst, reason="age")
        if shipped and self.wait_fill_frac is not None:
            # cross-destination scheduling (wait_hints): the age flush
            # already woke the conduit — ship other near-full buffers in
            # the same activity to share the injection wake-up
            shipped += self._flush_near_full()
        return shipped

    def flush_for_wait(self, dst_rank: int | None) -> int:
        """Targeted flush while a hinted wait is active (``wait_hints``).

        Ships, in one conduit activity: the awaited destination's buffer
        (the bundle the caller is blocked on must not sit out its age
        bound), every other buffer past the ``wait_flush_fill_frac``
        ride-along threshold, and any buffer past its age bound.  Sparse
        buffers keep batching — the narrowing relative to the unhinted
        flush-all is the point; liveness is preserved because the wait
        loop flushes everything before actually blocking.
        """
        self.wait_flushes += 1
        shipped = 0
        if dst_rank is not None:
            buf = self._buffers.get(dst_rank)
            if buf:
                shipped += self.flush(dst_rank, reason="wait_hint")
        shipped += self._flush_near_full()
        max_age = self.max_age_ns
        if max_age is not None:
            now = self._ctx.clock.now_ns
            for dst in sorted(self._buffers):
                oldest = self._buffers[dst].oldest_ns
                if oldest is not None and now - oldest >= max_age:
                    self.age_flushes += 1
                    shipped += self.flush(dst, reason="age")
        return shipped

    def _flush_near_full(self) -> int:
        """Ship buffers whose fill reached ``wait_flush_fill_frac`` of
        their effective thresholds (rank order, deterministic)."""
        frac = self.wait_fill_frac
        if frac is None:
            return 0
        shipped = 0
        for dst in sorted(self._buffers):
            buf = self._buffers[dst]
            if not buf:
                continue
            max_entries, max_bytes = self.thresholds_for(dst)
            if (
                fill_fraction(
                    len(buf), buf.payload_bytes, max_entries, max_bytes
                )
                >= frac
            ):
                shipped += self.flush(dst, reason="near_full")
        return shipped

    # -- observability -----------------------------------------------------

    def stats(self) -> AggregatorSnapshot:
        """An immutable snapshot of this rank's aggregation activity."""
        traj = (
            tuple(self.controller.trajectory)
            if self.controller is not None
            else ()
        )
        return AggregatorSnapshot(
            rank=self._ctx.rank,
            appended=self.appended,
            bundles_flushed=self.bundles_flushed,
            entries_flushed=self.entries_flushed,
            largest_bundle=self.largest_bundle,
            pending_entries=self.pending_entries(),
            bundle_size_hist=dict(self.bundle_size_hist),
            flush_reasons=dict(self.flush_reasons),
            parked_ns_total=self.parked_ns_total,
            age_flushes=self.age_flushes,
            wait_flushes=self.wait_flushes,
            adaptive_updates=(
                self.controller.updates if self.controller is not None else 0
            ),
            threshold_trajectory=traj,
            compression_saved_bytes=self.compression_saved_bytes,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<AmAggregator rank={self._ctx.rank} "
            f"pending={self.pending_entries()} "
            f"flushed={self.bundles_flushed}>"
        )
