"""Destination-batched active-message aggregation.

Eager notification removes per-operation *notification* overhead, but the
paper's own off-node check (§IV-A, ``benchmarks/results/offnode_rma.txt``)
shows that once a message actually crosses the network, per-message
injection cost and latency dominate and the eager gain disappears into the
noise.  The complementary optimization — the one LCI and UNR apply to
fine-grained RMA/notification traffic — is to *coalesce* many small
operations headed to the same destination into one bundled message,
amortizing injection and latency over the whole batch.

This module implements that layer for the simulated conduit:

* an :class:`AmAggregator` owned by each rank holds one
  :class:`DestinationBuffer` per remote destination it has traffic for;
* :meth:`Conduit.send_am <repro.gasnet.conduit.Conduit.send_am>` diverts
  *eligible* AMs here instead of injecting them (eligible = marked
  ``aggregatable`` by the issuing operation layer, off-node destination,
  aggregation enabled via ``RankContext.flags.am_aggregation``);
* a buffer is flushed as **one** bundled AM — one ``AM_INJECT``, one
  bundle header, one latency hop; the receiver pays one ``AM_EXECUTE`` for
  the bundle plus a cheap ``AM_BUNDLE_ENTRY_DISPATCH`` per entry, and runs
  the entry handlers in append order.

Flush policies (any of which closes a bundle):

1. **entry-count threshold** — ``flags.agg_max_entries`` entries buffered;
2. **byte threshold** — ``flags.agg_max_bytes`` payload bytes buffered;
3. **explicit** — :meth:`AmAggregator.flush` / :meth:`flush_all`;
4. **progress entry/exit** — the progress engine flushes all buffers when
   it is entered (so ``progress()``, ``barrier()`` and ``future.wait()``
   all publish buffered work before blocking) and again after its drain
   loop (so AMs buffered *by handlers during the drain* cannot be stranded
   while the rank blocks).

Correctness gate
----------------
AMs that deliver source/operation completions back to an initiator
(``put_ack``, ``get_reply``, ``amo_reply``, ``rpc_reply``) are **never**
aggregated: the initiator may spin on the completion before its next
progress call, and parking the notification in the responder's buffer
would stall (or deadlock) that spin.  Operation layers express this by
simply not marking those AMs ``aggregatable``.  Consequently aggregation
changes *when* a request is injected but never *whether* a completion can
be observed: deferred and eager builds reach identical final states with
aggregation on or off (tested in ``tests/test_am_aggregation.py``).

Ordering: entries bundled to one destination are delivered in append
order (the transport is FIFO, and a bundle replays its entries in order).
Interleaving between bundled and non-bundled messages to the same
destination may differ from the unaggregated schedule, exactly as in real
aggregation layers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.errors import UpcxxError
from repro.sim.costmodel import CostAction

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.context import RankContext

#: Modeled on-the-wire overhead of one bundle (message header + entry
#: table), charged as payload bytes so the bandwidth term stays honest.
BUNDLE_HEADER_BYTES = 32
#: Modeled per-entry framing inside a bundle (handler id + length field).
ENTRY_HEADER_BYTES = 8


@dataclass
class AggEntry:
    """One small AM parked in a destination buffer awaiting flush."""

    handler: Callable
    args: tuple
    nbytes: int
    label: str


@dataclass
class DestinationBuffer:
    """The pending bundle for one (source rank, destination rank) pair."""

    dst_rank: int
    entries: list[AggEntry] = field(default_factory=list)
    payload_bytes: int = 0

    def append(self, entry: AggEntry) -> None:
        self.entries.append(entry)
        self.payload_bytes += entry.nbytes

    def take(self) -> tuple[list[AggEntry], int]:
        entries, nbytes = self.entries, self.payload_bytes
        self.entries, self.payload_bytes = [], 0
        return entries, nbytes

    def __len__(self) -> int:
        return len(self.entries)


class AmAggregator:
    """Per-rank coalescing buffers for small off-node active messages.

    Owned by a :class:`~repro.runtime.context.RankContext` (created by the
    world wiring only when ``flags.am_aggregation`` is set, so the default
    configuration has literally zero aggregation code on any path).
    Thresholds come from the context's feature flags.
    """

    __slots__ = (
        "_ctx", "max_entries", "max_bytes", "_buffers",
        "appended", "bundles_flushed", "entries_flushed", "largest_bundle",
    )

    def __init__(self, ctx: "RankContext"):
        flags = ctx.flags
        if flags.agg_max_entries < 1:
            raise UpcxxError("agg_max_entries must be >= 1")
        if flags.agg_max_bytes < 1:
            raise UpcxxError("agg_max_bytes must be >= 1")
        self._ctx = ctx
        self.max_entries = flags.agg_max_entries
        self.max_bytes = flags.agg_max_bytes
        self._buffers: dict[int, DestinationBuffer] = {}
        # -- stats ----------------------------------------------------------
        self.appended = 0
        self.bundles_flushed = 0
        self.entries_flushed = 0
        self.largest_bundle = 0

    # -- queries -----------------------------------------------------------

    def has_pending(self) -> bool:
        return any(self._buffers.values())

    def pending_entries(self, dst_rank: int | None = None) -> int:
        if dst_rank is not None:
            buf = self._buffers.get(dst_rank)
            return len(buf) if buf is not None else 0
        return sum(len(b) for b in self._buffers.values())

    # -- the append path ---------------------------------------------------

    def append(
        self,
        dst_rank: int,
        handler: Callable,
        args: tuple,
        nbytes: int,
        label: str,
    ) -> None:
        """Park one AM for ``dst_rank``; auto-flush on either threshold.

        The payload copy into the buffer is charged here (``nbytes`` of
        ``MEMCPY_PER_BYTE``), mirroring what direct injection charges, so
        aggregation saves injection overhead — never byte costs.
        """
        ctx = self._ctx
        ctx.charge(CostAction.AM_AGG_APPEND)
        if nbytes:
            ctx.charge_bytes(CostAction.MEMCPY_PER_BYTE, nbytes)
        buf = self._buffers.get(dst_rank)
        if buf is None:
            buf = self._buffers[dst_rank] = DestinationBuffer(dst_rank)
        buf.append(AggEntry(handler, args, nbytes, label))
        self.appended += 1
        if len(buf) >= self.max_entries or buf.payload_bytes >= self.max_bytes:
            self.flush(dst_rank)

    # -- flush policies ----------------------------------------------------

    def flush(self, dst_rank: int) -> int:
        """Flush the buffer for one destination; returns entries shipped."""
        buf = self._buffers.get(dst_rank)
        if not buf:
            return 0
        entries, payload = buf.take()
        self._ctx.conduit.send_bundle(self._ctx, dst_rank, entries, payload)
        self.bundles_flushed += 1
        self.entries_flushed += len(entries)
        if len(entries) > self.largest_bundle:
            self.largest_bundle = len(entries)
        return len(entries)

    def flush_all(self) -> int:
        """Flush every destination buffer (rank order, deterministic)."""
        shipped = 0
        for dst in sorted(self._buffers):
            shipped += self.flush(dst)
        return shipped

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<AmAggregator rank={self._ctx.rank} "
            f"pending={self.pending_entries()} "
            f"flushed={self.bundles_flushed}>"
        )
