"""Conduits: the transport layer beneath the runtime.

Three conduits mirror the paper's setups (§IV):

* **smp** — single-node only, used on Intel.  Every pointer is directly
  addressable, which is what lets 2021.3.6 turn ``is_local`` into a
  ``constexpr`` there.
* **udp** — used on IBM and Marvell "for its better integration with the
  native job launcher; process-shared memory ensures all communication
  takes place via shared memory".  On-node traffic uses PSHM bypass; only
  off-node traffic would touch the (slow) UDP path.
* **mpi** — used for the graph-matching application "to trivially satisfy
  the application's hybrid reliance on MPI collectives".  Same PSHM
  structure, different off-node latency.

A conduit owns the per-rank active-message inboxes and the node topology.
The data plane of on-node operations never passes through here — the RMA /
atomics layers use shared-memory bypass after a reachability check — but
every asynchronous operation (off-node RMA/AMO, every RPC) is an AM pair
routed through this layer.

Reachability checks are served from a per-rank node-id memo built once at
construction (the topology is static), so the check on every on-node
fast-path operation is a pair of list indexes rather than repeated
``World`` arithmetic; :data:`Conduit.pshm_cache_hits` counts lookups (see
:func:`repro.sim.stats.pshm_cache_hits`).

Small off-node AMs marked ``aggregatable`` by the operation layers are
diverted to the rank's :class:`~repro.gasnet.aggregator.AmAggregator`
(when ``flags.am_aggregation`` is on) and later delivered as one bundled
AM via :meth:`Conduit.send_bundle`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.errors import UpcxxError
from repro.gasnet.am import ActiveMessage, AmInbox
from repro.gasnet.aggregator import BUNDLE_HEADER_BYTES, ENTRY_HEADER_BYTES
from repro.obs.metrics import DEPTH_EDGES
from repro.sim.costmodel import CostAction

if TYPE_CHECKING:  # pragma: no cover
    from repro.gasnet.aggregator import AggEntry
    from repro.runtime.context import RankContext
    from repro.runtime.runtime import World

#: On-node AM one-way latency (shared-memory queues), ns.  Small and
#: conduit-independent: PSHM AMs never touch the network.
_PSHM_AM_LATENCY_NS = 250.0

#: Off-node latency multipliers relative to the machine's base network
#: latency (UDP sockets are far slower than native RDMA; MPI in between).
_OFFNODE_FACTOR = {"smp": None, "udp": 20.0, "mpi": 2.0, "ibv": 1.0}

CONDUIT_NAMES = ("smp", "udp", "mpi", "ibv")


class Conduit:
    """Transport instance shared by all ranks of a world."""

    def __init__(self, name: str, world: "World"):
        if name not in CONDUIT_NAMES:
            raise UpcxxError(
                f"unknown conduit {name!r}; known: {CONDUIT_NAMES}"
            )
        if name not in _OFFNODE_FACTOR:
            # validate the latency model up front so a future conduit name
            # fails at construction with the known-names list, not with a
            # bare KeyError deep inside am_latency_ns
            raise UpcxxError(
                f"conduit {name!r} has no off-node latency model; "
                f"modeled: {sorted(_OFFNODE_FACTOR)}"
            )
        self.name = name
        self.world = world
        self._inboxes = [AmInbox() for _ in range(world.size)]
        if name == "smp" and world.n_nodes != 1:
            raise UpcxxError(
                "the smp conduit supports single-node worlds only"
            )
        #: static-topology memo: node id per rank (the topology never
        #: changes after construction, so reachability is two list indexes)
        self._node_of: tuple[int, ...] = tuple(
            world.node_of(r) for r in range(world.size)
        )
        #: lookups served from the node-id memo (every check hits: the
        #: memo is total over the static topology)
        self.pshm_cache_hits = 0

    # -- reachability -----------------------------------------------------

    def _same_node(self, a: int, b: int) -> bool:
        """Memoized ``world.same_node`` (counts towards the hit counter)."""
        self.pshm_cache_hits += 1
        nodes = self._node_of
        if 0 <= a < len(nodes) and 0 <= b < len(nodes):
            return nodes[a] == nodes[b]
        raise UpcxxError(
            f"rank pair ({a}, {b}) out of range (size {len(nodes)})"
        )

    def pshm_reachable(self, from_rank: int, to_rank: int) -> bool:
        """Whether ``to_rank``'s segment is mapped into ``from_rank``'s
        address space (same node: PSHM, or same rank)."""
        return self._same_node(from_rank, to_rank)

    def am_latency_ns(
        self, src_rank: int, dst_rank: int, nbytes: int = 0
    ) -> float:
        """One-way delivery time: base latency plus a bandwidth term for
        the payload (on-node queues are effectively memcpy-bound; the
        per-byte cost is already charged CPU-side there)."""
        if self._same_node(src_rank, dst_rank):
            return _PSHM_AM_LATENCY_NS
        try:
            factor = _OFFNODE_FACTOR[self.name]
        except KeyError:
            raise UpcxxError(
                f"conduit {self.name!r} has no off-node latency model; "
                f"modeled: {sorted(_OFFNODE_FACTOR)}"
            ) from None
        if factor is None:
            raise UpcxxError("smp conduit cannot reach off-node ranks")
        base = self.world.profile.network_latency_ns * factor
        if nbytes:
            base += nbytes / self.world.profile.network_bandwidth_bpns
        return base

    # -- active messages ------------------------------------------------------

    def send_am(
        self,
        src_ctx: "RankContext",
        dst_rank: int,
        handler: Callable,
        args: tuple = (),
        nbytes: int = 0,
        label: str = "am",
        aggregatable: bool = False,
    ) -> None:
        """Inject an AM: charges injection (+ payload copy) on the sender
        and enqueues for delivery at ``now + latency`` on the target.

        ``aggregatable`` marks AMs eligible for destination batching (the
        request side of an operation).  AMs delivering source/operation
        completions must stay ``aggregatable=False`` — an initiator may
        spin on the completion before its next progress call, and a parked
        notification would stall that spin (the aggregation correctness
        gate).  Eligible off-node AMs are parked in the sender's
        aggregator instead of being injected, when aggregation is on.

        Every send is conduit activity for the sender: with the adaptive
        age bound on, buffers whose oldest entry outlived
        ``flags.agg_max_age_ticks`` are retired here before the new
        message is handled, so a stream of *any* AM traffic keeps every
        destination's parked entries inside the latency bound.
        """
        if not (0 <= dst_rank < self.world.size):
            raise UpcxxError(f"AM to invalid rank {dst_rank}")
        agg = src_ctx.am_agg
        if agg is not None:
            agg.flush_aged()
        if aggregatable:
            if agg is not None and not self._same_node(
                src_ctx.rank, dst_rank
            ):
                agg.append(dst_rank, handler, args, nbytes, label)
                return
        src_ctx.charge(CostAction.AM_INJECT)
        if nbytes:
            src_ctx.charge_bytes(CostAction.MEMCPY_PER_BYTE, nbytes)
        obs = src_ctx.obs
        if obs is not None:
            obs.metrics.counter("conduit.am_injected").inc()
        arrival = src_ctx.clock.now_ns + self.am_latency_ns(
            src_ctx.rank, dst_rank, nbytes
        )
        self._inboxes[dst_rank].push(
            ActiveMessage(
                src_rank=src_ctx.rank,
                dst_rank=dst_rank,
                handler=handler,
                args=args,
                nbytes=nbytes,
                arrival_ns=arrival,
                label=label,
            )
        )
        self.world.notify_incoming(dst_rank)

    def send_bundle(
        self,
        src_ctx: "RankContext",
        dst_rank: int,
        entries: list["AggEntry"],
        payload_bytes: int,
        framing_bytes: int | None = None,
    ) -> None:
        """Ship a flushed destination buffer as one bundled AM.

        Cost model: the sender pays one ``AM_INJECT`` plus one
        ``AM_BUNDLE_HEADER`` and the header/framing bytes (the per-entry
        payload bytes were charged at append time); the bundle crosses the
        network in one latency hop sized by the full wire footprint.  The
        receiver pays one ``AM_EXECUTE`` for the bundle (charged by
        :meth:`poll`) plus ``AM_BUNDLE_ENTRY_DISPATCH`` per entry.

        ``framing_bytes`` is the modeled header/framing footprint computed
        by the flushing aggregator (delta-compressed when
        ``flags.agg_compression`` is on); when omitted, the flat
        uncompressed encoding is assumed.
        """
        if not entries:
            return
        src_ctx.charge(CostAction.AM_BUNDLE_HEADER)
        src_ctx.charge(CostAction.AM_INJECT)
        framing = (
            framing_bytes
            if framing_bytes is not None
            else BUNDLE_HEADER_BYTES + ENTRY_HEADER_BYTES * len(entries)
        )
        src_ctx.charge_bytes(CostAction.MEMCPY_PER_BYTE, framing)
        obs = src_ctx.obs
        if obs is not None:
            obs.metrics.counter("conduit.bundles_sent").inc()
            obs.metrics.counter("conduit.am_injected").inc()
        wire_bytes = payload_bytes + framing
        arrival = src_ctx.clock.now_ns + self.am_latency_ns(
            src_ctx.rank, dst_rank, wire_bytes
        )
        self._inboxes[dst_rank].push(
            ActiveMessage(
                src_rank=src_ctx.rank,
                dst_rank=dst_rank,
                handler=_deliver_bundle,
                args=(entries,),
                nbytes=wire_bytes,
                arrival_ns=arrival,
                label=f"am_bundle[{len(entries)}]",
            )
        )
        self.world.notify_incoming(dst_rank)

    def has_incoming(self, rank: int) -> bool:
        return bool(self._inboxes[rank])

    def pending_for(self, rank: int) -> int:
        return len(self._inboxes[rank])

    def poll(self, ctx: "RankContext") -> bool:
        """Deliver every queued AM for ``ctx`` (called from its progress
        engine).  The receiver's clock advances to at least each message's
        arrival time before the handler runs.

        Polling is conduit activity: aged destination buffers are retired
        first (no-op unless the adaptive age bound is on), so a rank that
        only ever polls still honours the parked-entry latency bound.
        """
        agg = ctx.am_agg
        if agg is not None:
            agg.flush_aged()
        inbox = self._inboxes[ctx.rank]
        if not inbox:
            return False
        ctx.charge(CostAction.AM_POLL)
        obs = ctx.obs
        if obs is not None:
            obs.metrics.histogram(
                "conduit.inbox_depth", DEPTH_EDGES
            ).record(len(inbox))
        delivered = 0
        while inbox:
            msg = inbox.pop()
            ctx.clock.advance_to(msg.arrival_ns)
            ctx.charge(CostAction.AM_EXECUTE)
            msg.handler(ctx, *msg.args)
            delivered += 1
        if obs is not None:
            obs.metrics.counter("conduit.am_delivered").inc(delivered)
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Conduit {self.name} world={self.world.size}>"


def _deliver_bundle(tctx: "RankContext", entries: list["AggEntry"]) -> None:
    """Replay a bundle's entries in append order on the target rank."""
    for entry in entries:
        tctx.charge(CostAction.AM_BUNDLE_ENTRY_DISPATCH)
        entry.handler(tctx, *entry.args)


def make_conduit(name: str, world: "World") -> Conduit:
    """Construct the conduit for a world (validates name/topology)."""
    return Conduit(name, world)
