"""Online flush-threshold control for the AM aggregation layer.

PR 1's aggregator flushes on *static* thresholds (``agg_max_entries`` /
``agg_max_bytes``).  Static thresholds are wrong in both directions:

* **sparse senders** park an entry until 31 siblings show up (or until the
  next progress call) — the stranded entry eats unbounded latency;
* **dense senders** hit the entry threshold long before batching stops
  paying — a deeper bundle would amortize injection further at no latency
  cost, because the next entry is already on its way.

LCI's dynamic-batching result (PAPERS.md) is that the right batch depth is
a function of the *observed* inter-arrival gap: batch while messages keep
arriving, ship when the stream goes quiet.  This module implements that
control law for the simulated clock.

Estimators (per destination, updated on every append when
``flags.agg_adaptive`` is on)::

    g_hat <- g            on the first observed gap
    g_hat <- a*g + (1-a)*g_hat      a = flags.agg_ewma_alpha
    s_hat <- s / a*s + (1-a)*s_hat  (same form, payload bytes)

where ``g`` is the simulated-clock gap since the previous append to the
same destination and ``s`` the entry's payload bytes.

Control law — pick the deepest batch whose *expected fill time* stays
inside the age bound ``A = flags.agg_max_age_ticks``.  A batch of ``E``
entries arriving every ``g_hat`` ticks strands its oldest entry for about
``(E - 1) * g_hat`` ticks, so::

    E* = clamp(agg_min_entries, floor(1 + A / g_hat), agg_max_entries)
    B* = clamp(agg_min_bytes,   floor(2 * E* * s_hat), agg_max_bytes)

Dense traffic (``g_hat << A``) drives ``E*`` to the ceiling — the static
threshold is recovered as the limit — while sparse traffic (``g_hat``
comparable to ``A``) drives ``E*`` to the floor so an entry never waits
long for company that is not coming.  ``B*`` carries a 2x slack over the
expected batch payload ``E* * s_hat``: the entry threshold stays the
binding constraint for homogeneous streams (preserving the static flush
pattern in the dense limit) and the byte bound remains a safety net
against oversized outliers.

The controller is pure bookkeeping plus one cheap modeled charge
(``AM_AGG_ADAPT`` per observation, costed in every machine profile); its
decisions are exported through :meth:`AdaptiveController.trajectory` and
surfaced world-wide via :func:`repro.sim.stats.aggregation_stats`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.config import FeatureFlags

#: retained threshold decisions per rank (the trajectory is diagnostic —
#: a converged controller stops producing entries, so the cap only guards
#: against pathological non-converging workloads)
TRAJECTORY_CAP = 1024


@dataclass(frozen=True)
class ThresholdDecision:
    """One recorded controller output (emitted only when it changes)."""

    t_ns: float
    dst_rank: int
    max_entries: int
    max_bytes: int


def fill_fraction(
    entries: int, nbytes: int, max_entries: int, max_bytes: int
) -> float:
    """How close a buffer is to flushing: the larger of its entry and
    byte fill as a fraction of the effective thresholds.

    Used by the cross-destination ride-along (``wait_hints``): when one
    buffer's flush already wakes the conduit, other buffers past
    ``wait_flush_fill_frac`` of *their* thresholds ship in the same
    activity — they were about to pay an injection anyway, so sharing
    the wake-up costs nothing and saves their remaining parking time.
    """
    frac = entries / max_entries if max_entries > 0 else 0.0
    if max_bytes > 0:
        byte_frac = nbytes / max_bytes
        if byte_frac > frac:
            frac = byte_frac
    return frac


class _DestEstimator:
    """EWMA state for one destination (survives buffer flushes)."""

    __slots__ = ("last_append_ns", "gap_ewma_ns", "size_ewma_bytes")

    def __init__(self) -> None:
        self.last_append_ns: float | None = None
        self.gap_ewma_ns: float | None = None
        self.size_ewma_bytes: float | None = None

    def observe(self, now_ns: float, nbytes: int, alpha: float) -> None:
        if self.last_append_ns is not None:
            gap = now_ns - self.last_append_ns
            if self.gap_ewma_ns is None:
                self.gap_ewma_ns = gap
            else:
                self.gap_ewma_ns = alpha * gap + (1 - alpha) * self.gap_ewma_ns
        self.last_append_ns = now_ns
        if self.size_ewma_bytes is None:
            self.size_ewma_bytes = float(nbytes)
        else:
            self.size_ewma_bytes = (
                alpha * nbytes + (1 - alpha) * self.size_ewma_bytes
            )


class AdaptiveController:
    """Per-destination online sizing of the aggregator flush thresholds."""

    __slots__ = (
        "alpha", "max_age_ns",
        "floor_entries", "ceil_entries", "floor_bytes", "ceil_bytes",
        "_est", "_current", "updates", "trajectory",
    )

    def __init__(self, flags: "FeatureFlags"):
        self.alpha = flags.agg_ewma_alpha
        self.max_age_ns = flags.agg_max_age_ticks
        self.floor_entries = flags.agg_min_entries
        self.ceil_entries = flags.agg_max_entries
        self.floor_bytes = flags.agg_min_bytes
        self.ceil_bytes = flags.agg_max_bytes
        self._est: dict[int, _DestEstimator] = {}
        #: current (entries, bytes) thresholds per destination
        self._current: dict[int, tuple[int, int]] = {}
        self.updates = 0
        self.trajectory: deque[ThresholdDecision] = deque(
            maxlen=TRAJECTORY_CAP
        )

    def observe(
        self, now_ns: float, dst_rank: int, nbytes: int
    ) -> tuple[int, int]:
        """Feed one append observation; return the (entries, bytes)
        thresholds to apply to ``dst_rank``'s buffer."""
        est = self._est.get(dst_rank)
        if est is None:
            est = self._est[dst_rank] = _DestEstimator()
        est.observe(now_ns, nbytes, self.alpha)
        self.updates += 1

        gap = est.gap_ewma_ns
        if gap is None or gap <= 0.0:
            # no rate estimate yet: start at the ceiling (the static
            # behaviour) until the stream reveals its density
            entries = self.ceil_entries
        else:
            entries = int(1 + self.max_age_ns / gap)
            entries = max(self.floor_entries, min(entries, self.ceil_entries))
        size = est.size_ewma_bytes
        if not size or size <= 0.0:
            nbytes_thr = self.ceil_bytes
        else:
            nbytes_thr = int(2 * entries * size)
            nbytes_thr = max(
                self.floor_bytes, min(nbytes_thr, self.ceil_bytes)
            )

        decision = (entries, nbytes_thr)
        if self._current.get(dst_rank) != decision:
            self._current[dst_rank] = decision
            self.trajectory.append(
                ThresholdDecision(now_ns, dst_rank, entries, nbytes_thr)
            )
        return decision

    def thresholds(self, dst_rank: int) -> tuple[int, int]:
        """Current thresholds for ``dst_rank`` (ceilings before data)."""
        return self._current.get(
            dst_rank, (self.ceil_entries, self.ceil_bytes)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<AdaptiveController updates={self.updates} "
            f"dests={len(self._current)}>"
        )
