"""Active messages: the asynchronous transport under every conduit.

An :class:`ActiveMessage` is a handler plus arguments injected into a
target rank's inbox with an arrival timestamp; the target executes it from
inside its progress engine.  Delivery advances the receiver's virtual clock
to at least the arrival time (conservative causality: a message cannot be
observed before it arrives).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable


@dataclass
class ActiveMessage:
    """One in-flight active message."""

    src_rank: int
    dst_rank: int
    handler: Callable  # invoked as handler(dst_ctx, *args)
    args: tuple
    nbytes: int
    arrival_ns: float
    label: str = "am"


class AmInbox:
    """FIFO inbox of one rank (arrival order == injection order; the
    simulated transport is ordered, like GASNet's default)."""

    __slots__ = ("_queue",)

    def __init__(self) -> None:
        self._queue: deque[ActiveMessage] = deque()

    def push(self, msg: ActiveMessage) -> None:
        self._queue.append(msg)

    def pop(self) -> ActiveMessage:
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)
