"""Teams: ordered subsets of ranks.

A light analogue of ``upcxx::team``: the world team spans all ranks, the
local team spans the caller's node (under PSHM all co-located ranks).
Teams support rank translation and color/key splitting.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.errors import UpcxxError

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.context import RankContext


class Team:
    """An ordered set of world ranks."""

    def __init__(self, world_ranks: Sequence[int]):
        ranks = list(world_ranks)
        if len(set(ranks)) != len(ranks):
            raise UpcxxError("team ranks must be distinct")
        if not ranks:
            raise UpcxxError("a team cannot be empty")
        self._ranks = tuple(ranks)
        self._index = {r: i for i, r in enumerate(self._ranks)}

    # -- size / membership ----------------------------------------------------

    def rank_n(self) -> int:
        return len(self._ranks)

    def world_ranks(self) -> tuple[int, ...]:
        return self._ranks

    def contains(self, world_rank: int) -> bool:
        return world_rank in self._index

    # -- translation --------------------------------------------------------------

    def rank_me(self, ctx: "RankContext") -> int:
        """The calling rank's index within this team."""
        try:
            return self._index[ctx.rank]
        except KeyError:
            raise UpcxxError(
                f"rank {ctx.rank} is not a member of this team"
            ) from None

    def to_world(self, team_rank: int) -> int:
        if not (0 <= team_rank < len(self._ranks)):
            raise UpcxxError(f"team rank {team_rank} out of range")
        return self._ranks[team_rank]

    def from_world(self, world_rank: int) -> int:
        try:
            return self._index[world_rank]
        except KeyError:
            raise UpcxxError(
                f"world rank {world_rank} is not in this team"
            ) from None

    # -- splitting ----------------------------------------------------------------

    def split(self, color: int, key: int, ctx: "RankContext") -> "Team":
        """Split by color (collective in spirit; here computed directly
        from the world's static topology and each member's (color, key)).

        For simplicity the split function is deterministic on world rank:
        callers supply a ``color_of``-style precomputed mapping through
        repeated calls; this method builds the caller's new team from the
        colors every member would compute.  Since our teams are value
        objects over static topology, we accept a callable-free protocol:
        members of the same color are ordered by key then world rank.
        """
        raise NotImplementedError(
            "use Team.split_by(mapping) in the simulated runtime"
        )

    def split_by(self, color_key: dict[int, tuple[int, int]], my_world_rank: int) -> "Team":
        """Split using an explicit ``world_rank -> (color, key)`` mapping
        (must cover all members).  Returns the caller's new team."""
        try:
            my_color = color_key[my_world_rank][0]
        except KeyError:
            raise UpcxxError("split mapping must cover the calling rank") from None
        members = [
            (ck[1], wr)
            for wr, ck in color_key.items()
            if ck[0] == my_color and self.contains(wr)
        ]
        members.sort()
        return Team([wr for _, wr in members])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Team n={len(self._ranks)} ranks={self._ranks}>"
