"""``gex_Event``-style completion handles.

GASNet-EX initiation calls return an event handle; a handle may come back
*invalid* (``GEX_EVENT_INVALID``), meaning the operation completed
synchronously during initiation.  UPC++'s eager notification keys off
exactly this dynamic information ("obtained through a combination of
locality queries and completion status of the underlying GASNet-EX
operation", §III-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional


@dataclass
class GexEvent:
    """Completion status of one underlying conduit operation.

    ``done=True`` corresponds to ``GEX_EVENT_INVALID`` (synchronous
    completion: the PSHM bypass path).  Otherwise ``on_complete`` will be
    invoked — from progress-engine context — when the reply arrives, with
    the operation's produced values (a tuple, possibly empty).
    """

    done: bool
    values: tuple = ()
    _callbacks: Optional[list[Callable[[tuple], None]]] = None

    @classmethod
    def completed(cls, values: tuple = ()) -> "GexEvent":
        return cls(done=True, values=values)

    @classmethod
    def pending(cls) -> "GexEvent":
        return cls(done=False)

    def on_complete(self, cb: Callable[[tuple], None]) -> None:
        """Attach a callback for asynchronous completion (runs immediately
        if already complete)."""
        if self.done:
            cb(self.values)
            return
        if self._callbacks is None:
            self._callbacks = []
        self._callbacks.append(cb)

    def signal(self, values: tuple = ()) -> None:
        """Mark the operation complete (called by the conduit when the
        reply AM is delivered)."""
        if self.done:
            raise RuntimeError("GexEvent signalled twice")
        self.done = True
        self.values = values
        cbs, self._callbacks = self._callbacks, None
        if cbs:
            for cb in cbs:
                cb(values)
