"""Simulated GASNet-EX communication substrate.

UPC++ sits on GASNet-EX; the paper's experiments use its SMP conduit (on
Intel) and UDP/MPI conduits with process-shared memory (PSHM, on IBM and
Marvell) so that all on-node communication is via shared memory.  This
package provides the same structure:

* :mod:`repro.gasnet.conduit` — conduits with a PSHM shared-memory-bypass
  path (synchronous completion) and an active-message path (asynchronous,
  completion via progress);
* :mod:`repro.gasnet.am` — the active-message queues;
* :mod:`repro.gasnet.aggregator` — destination-batched coalescing of
  small off-node AMs into bundled messages (flush policies, bundle
  delta-compression, the completion-semantics gate);
* :mod:`repro.gasnet.adaptive` — online flush-threshold control for the
  aggregator (EWMA gap/size estimators, age-bound latency guarantee);
* :mod:`repro.gasnet.events` — ``gex_Event``-style handles reporting
  whether the underlying operation completed synchronously (the dynamic
  information eager notification keys off, §III-A);
* :mod:`repro.gasnet.team` — teams (world / local).
"""

from repro.gasnet.events import GexEvent
from repro.gasnet.am import ActiveMessage
from repro.gasnet.adaptive import AdaptiveController, ThresholdDecision
from repro.gasnet.aggregator import AggregatorSnapshot, AmAggregator
from repro.gasnet.conduit import Conduit, make_conduit, CONDUIT_NAMES
from repro.gasnet.team import Team

__all__ = [
    "GexEvent",
    "ActiveMessage",
    "AdaptiveController",
    "ThresholdDecision",
    "AggregatorSnapshot",
    "AmAggregator",
    "Conduit",
    "make_conduit",
    "CONDUIT_NAMES",
    "Team",
]
