"""Atomic domains: the full set of UPC++ atomic operations.

An :class:`AtomicDomain` is constructed over an element type and an
explicit set of operations (as in UPC++, where the op set lets GASNet-EX
select a coherent implementation — NIC offload vs. CPU).  Issuing an op
outside the declared set is an error.

Operation classes:

* value-less updates — ``store, add, sub, inc, dec, bit_and, bit_or,
  bit_xor, min, max``: no fetched value; notification is ``future<>``;
* value-producing (fetching) — ``load, fetch_add, fetch_sub, fetch_inc,
  fetch_dec, fetch_bit_and, fetch_bit_or, fetch_bit_xor, fetch_min,
  fetch_max, compare_exchange``: the operation event carries the fetched
  value (``future<T>``), so even an eager ready future must allocate;
* **non-value fetching** (new in 2021.3.6, §III-B) — ``fetch_*_into`` and
  ``load_into, compare_exchange_into``: the fetched value is written to a
  caller-provided local location and the notification is value-less.

On-node targets complete synchronously via CPU atomics on the shared
segment (the PSHM path); off-node targets take an AM round trip through
the conduit, with the fetched value in the reply.  Per §IV-A, eager
support does not lengthen the off-node AMO path at all.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.core.completions import Completions, CxDispatcher, operation_cx
from repro.core.events import Event
from repro.errors import AtomicDomainError, InvalidGlobalPointer
from repro.memory.global_ptr import GlobalPtr, LocalRef
from repro.memory.segment import TypeSpec, type_spec
from repro.runtime.context import current_ctx
from repro.sim.costmodel import CostAction

_AMO_EVENTS = frozenset({Event.OPERATION})

#: value-less update ops
_UPDATE_OPS = frozenset(
    {"store", "add", "sub", "inc", "dec", "bit_and", "bit_or", "bit_xor",
     "min", "max"}
)
#: fetching ops (value-producing, or *_into non-value form)
_FETCH_OPS = frozenset(
    {"load", "fetch_add", "fetch_sub", "fetch_inc", "fetch_dec",
     "fetch_bit_and", "fetch_bit_or", "fetch_bit_xor", "fetch_min",
     "fetch_max", "compare_exchange"}
)
#: every op name accepted by AtomicDomain(ops=...)
AMO_OPS = _UPDATE_OPS | _FETCH_OPS

_INT_ONLY = {"bit_and", "bit_or", "bit_xor",
             "fetch_bit_and", "fetch_bit_or", "fetch_bit_xor"}


def _mask_for(ts: TypeSpec) -> Optional[int]:
    """Wraparound mask for integer types (None for floats)."""
    if ts.dtype.kind == "u":
        return (1 << (8 * ts.size)) - 1
    if ts.dtype.kind == "i":
        return None  # handled via two's-complement wrap below
    return None


def _wrap_signed(value: int, bits: int) -> int:
    value &= (1 << bits) - 1
    if value >= 1 << (bits - 1):
        value -= 1 << bits
    return value


def _apply(op: str, old, operand, operand2, ts: TypeSpec):
    """Compute (new_value, fetched) for an atomic op.

    ``fetched`` is the value the fetching form returns (the *old* value,
    except ``load``/``compare_exchange`` which follow their own rules).
    """
    if op in ("load",):
        return old, old
    if op == "store":
        return operand, None
    if op in ("add", "fetch_add"):
        new = old + operand
    elif op in ("sub", "fetch_sub"):
        new = old - operand
    elif op in ("inc", "fetch_inc"):
        new = old + 1
    elif op in ("dec", "fetch_dec"):
        new = old - 1
    elif op in ("bit_and", "fetch_bit_and"):
        new = old & operand
    elif op in ("bit_or", "fetch_bit_or"):
        new = old | operand
    elif op in ("bit_xor", "fetch_bit_xor"):
        new = old ^ operand
    elif op in ("min", "fetch_min"):
        new = min(old, operand)
    elif op in ("max", "fetch_max"):
        new = max(old, operand)
    elif op == "compare_exchange":
        new = operand2 if old == operand else old
        return new, old
    else:  # pragma: no cover - guarded by the op-set check
        raise AtomicDomainError(f"unknown atomic op {op!r}")
    if ts.dtype.kind == "u":
        new &= (1 << (8 * ts.size)) - 1
    elif ts.dtype.kind == "i":
        new = _wrap_signed(int(new), 8 * ts.size)
    return new, old


class AtomicDomain:
    """A set of atomic operations over one element type.

    Parameters
    ----------
    ops:
        The operations this domain supports (names from :data:`AMO_OPS`;
        a fetching op's ``_into`` variant is covered by the base name).
    ts:
        Element type (default ``"u64"``, the paper's 64-bit payload).
    """

    def __init__(self, ops, ts: Union[str, TypeSpec] = "u64"):
        self.ts = type_spec(ts)
        opset = frozenset(ops)
        unknown = opset - AMO_OPS
        if unknown:
            raise AtomicDomainError(
                f"unknown atomic ops: {sorted(unknown)}; known: "
                f"{sorted(AMO_OPS)}"
            )
        if self.ts.dtype.kind == "f":
            bad = opset & _INT_ONLY
            if bad:
                raise AtomicDomainError(
                    f"bitwise ops not valid on {self.ts.name}: {sorted(bad)}"
                )
        self.ops = opset
        self._destroyed = False

    def destroy(self) -> None:
        """Collectively tear down the domain (ops are errors afterwards)."""
        self._destroyed = True

    # -- op issue -----------------------------------------------------------

    def _check(self, op: str, target: GlobalPtr) -> None:
        if self._destroyed:
            raise AtomicDomainError("atomic domain used after destroy()")
        if op not in self.ops:
            raise AtomicDomainError(
                f"op {op!r} is not in this domain's op set {sorted(self.ops)}"
            )
        if target.is_null:
            raise InvalidGlobalPointer(f"atomic {op} on a null pointer")
        if target.ts is not self.ts:
            raise AtomicDomainError(
                f"atomic domain over {self.ts.name} cannot target "
                f"{target.ts.name} memory"
            )

    def _issue(
        self,
        op: str,
        target: GlobalPtr,
        operand=None,
        operand2=None,
        result_into: Optional[Union[GlobalPtr, LocalRef]] = None,
        comps: Optional[Completions] = None,
    ):
        ctx = current_ctx()
        ctx.charge(CostAction.AMO_CALL_OVERHEAD)
        self._check(op, target)
        fetching = op in _FETCH_OPS
        if result_into is not None:
            if not fetching:
                raise AtomicDomainError(
                    f"op {op!r} produces no value to write into memory"
                )
            if not ctx.flags.nonvalue_fetching_atomics:
                raise AtomicDomainError(
                    "non-value fetching atomics require the 2021.3.6 "
                    f"builds (build is {ctx.config.version.value})"
                )
            result_ref = self._resolve_into(ctx, result_into)
        else:
            result_ref = None
        if comps is None:
            comps = operation_cx.as_future()
        produces_value = fetching and result_ref is None
        disp = CxDispatcher(
            ctx,
            comps,
            supported=_AMO_EVENTS,
            value_event=Event.OPERATION if produces_value else None,
            nvalues=1 if produces_value else 0,
            op_name=f"atomic {op}",
        )
        # the AMO path always performs its (pre-existing) protocol branch;
        # eager support changed nothing on this path (§IV-A)
        ctx.charge(CostAction.LOCALITY_BRANCH)
        if not ctx.conduit.pshm_reachable(ctx.rank, target.rank):
            # off-node: identical in every build (§IV-A) — per-op state is
            # always allocated for the in-flight operation
            ctx.charge(CostAction.HEAP_ALLOC_OP_DESCRIPTOR)
            ctx.charge(CostAction.HEAP_FREE)
            return self._issue_remote(
                ctx, disp, op, target, operand, operand2, result_ref,
                produces_value,
            )
        if disp.any_deferred():
            # deferred AMO completion keeps its per-op descriptor (the
            # 2021.3.6 allocation elision applies to RMA only)
            ctx.charge(CostAction.HEAP_ALLOC_OP_DESCRIPTOR)
            ctx.charge(CostAction.HEAP_FREE)
        # on-node: CPU atomic on the shared segment, synchronous.
        # Concurrent atomics from co-located peers contend on cache
        # lines and fences; the penalty scales with the peer count.
        disp.mark_injected(target.rank, target.ts.size, local=True)
        seg = ctx.world.segment_of(target.rank)
        ctx.charge(CostAction.CPU_ATOMIC_RMW)
        peers = ctx.world.ranks_per_node - 1
        if peers > 0:
            ctx.charge(CostAction.AMO_CONTENTION_PER_PEER, peers)
        old = seg.read_scalar(target.offset, target.ts)
        new, fetched = _apply(op, old, operand, operand2, target.ts)
        if new is not None and op != "load":
            seg.write_scalar(target.offset, target.ts, new)
        if result_ref is not None:
            ctx.charge(CostAction.CPU_STORE)
            result_ref.segment.write_scalar(
                result_ref.offset, result_ref.ts, fetched
            )
            disp.notify_sync(Event.OPERATION)
        elif produces_value:
            disp.notify_sync(Event.OPERATION, (fetched,))
        else:
            disp.notify_sync(Event.OPERATION)
        return disp.result()

    def _issue_remote(
        self, ctx, disp, op, target, operand, operand2, result_ref,
        produces_value,
    ):
        """Off-node AMO: executed by the owner via AM, value in the reply."""
        pending = disp.pend(Event.OPERATION)
        initiator = ctx.rank
        ts = target.ts

        def on_target(tctx):
            seg = tctx.world.segment_of(target.rank)
            tctx.charge(CostAction.CPU_ATOMIC_RMW)
            peers = tctx.world.ranks_per_node - 1
            if peers > 0:
                tctx.charge(CostAction.AMO_CONTENTION_PER_PEER, peers)
            old = seg.read_scalar(target.offset, ts)
            new, fetched = _apply(op, old, operand, operand2, ts)
            if new is not None and op != "load":
                seg.write_scalar(target.offset, ts, new)

            def on_reply(ictx, fetched=fetched):
                if result_ref is not None:
                    ictx.charge(CostAction.CPU_STORE)
                    result_ref.segment.write_scalar(
                        result_ref.offset, result_ref.ts, fetched
                    )
                    pending.complete(())
                elif produces_value:
                    pending.complete((fetched,))
                else:
                    pending.complete(())

            tctx.conduit.send_am(
                tctx, initiator, on_reply, nbytes=ts.size, label="amo_reply"
            )

        ctx.conduit.send_am(
            ctx, target.rank, on_target, nbytes=ts.size, label="amo_req",
            aggregatable=True,
        )
        disp.mark_injected(target.rank, ts.size, local=False)
        return disp.result()

    @staticmethod
    def _resolve_into(ctx, dest: Union[GlobalPtr, LocalRef]) -> LocalRef:
        if isinstance(dest, LocalRef):
            return dest
        if isinstance(dest, GlobalPtr):
            if not ctx.is_local_rank(dest.rank):
                raise AtomicDomainError(
                    "fetch-into destination must be locally addressable"
                )
            return LocalRef(
                ctx.world.segment_of(dest.rank), dest.offset, dest.ts
            )
        raise TypeError("fetch-into destination must be GlobalPtr or LocalRef")

    # -- public op methods -------------------------------------------------------
    # value-less updates

    def store(self, target, value, comps=None):
        return self._issue("store", target, value, comps=comps)

    def add(self, target, value, comps=None):
        return self._issue("add", target, value, comps=comps)

    def sub(self, target, value, comps=None):
        return self._issue("sub", target, value, comps=comps)

    def inc(self, target, comps=None):
        return self._issue("inc", target, comps=comps)

    def dec(self, target, comps=None):
        return self._issue("dec", target, comps=comps)

    def bit_and(self, target, value, comps=None):
        return self._issue("bit_and", target, value, comps=comps)

    def bit_or(self, target, value, comps=None):
        return self._issue("bit_or", target, value, comps=comps)

    def bit_xor(self, target, value, comps=None):
        return self._issue("bit_xor", target, value, comps=comps)

    def min(self, target, value, comps=None):
        return self._issue("min", target, value, comps=comps)

    def max(self, target, value, comps=None):
        return self._issue("max", target, value, comps=comps)

    # fetching (value-producing)

    def load(self, target, comps=None):
        return self._issue("load", target, comps=comps)

    def fetch_add(self, target, value, comps=None):
        return self._issue("fetch_add", target, value, comps=comps)

    def fetch_sub(self, target, value, comps=None):
        return self._issue("fetch_sub", target, value, comps=comps)

    def fetch_inc(self, target, comps=None):
        return self._issue("fetch_inc", target, comps=comps)

    def fetch_dec(self, target, comps=None):
        return self._issue("fetch_dec", target, comps=comps)

    def fetch_bit_and(self, target, value, comps=None):
        return self._issue("fetch_bit_and", target, value, comps=comps)

    def fetch_bit_or(self, target, value, comps=None):
        return self._issue("fetch_bit_or", target, value, comps=comps)

    def fetch_bit_xor(self, target, value, comps=None):
        return self._issue("fetch_bit_xor", target, value, comps=comps)

    def fetch_min(self, target, value, comps=None):
        return self._issue("fetch_min", target, value, comps=comps)

    def fetch_max(self, target, value, comps=None):
        return self._issue("fetch_max", target, value, comps=comps)

    def compare_exchange(self, target, expected, desired, comps=None):
        return self._issue(
            "compare_exchange", target, expected, desired, comps=comps
        )

    # non-value fetching (new in 2021.3.6, §III-B)

    def load_into(self, target, result, comps=None):
        return self._issue("load", target, result_into=result, comps=comps)

    def fetch_add_into(self, target, value, result, comps=None):
        return self._issue(
            "fetch_add", target, value, result_into=result, comps=comps
        )

    def fetch_sub_into(self, target, value, result, comps=None):
        return self._issue(
            "fetch_sub", target, value, result_into=result, comps=comps
        )

    def fetch_inc_into(self, target, result, comps=None):
        return self._issue(
            "fetch_inc", target, result_into=result, comps=comps
        )

    def fetch_dec_into(self, target, result, comps=None):
        return self._issue(
            "fetch_dec", target, result_into=result, comps=comps
        )

    def fetch_bit_xor_into(self, target, value, result, comps=None):
        return self._issue(
            "fetch_bit_xor", target, value, result_into=result, comps=comps
        )

    def fetch_bit_and_into(self, target, value, result, comps=None):
        return self._issue(
            "fetch_bit_and", target, value, result_into=result, comps=comps
        )

    def fetch_bit_or_into(self, target, value, result, comps=None):
        return self._issue(
            "fetch_bit_or", target, value, result_into=result, comps=comps
        )

    def fetch_min_into(self, target, value, result, comps=None):
        return self._issue(
            "fetch_min", target, value, result_into=result, comps=comps
        )

    def fetch_max_into(self, target, value, result, comps=None):
        return self._issue(
            "fetch_max", target, value, result_into=result, comps=comps
        )

    def compare_exchange_into(self, target, expected, desired, result, comps=None):
        return self._issue(
            "compare_exchange", target, expected, desired,
            result_into=result, comps=comps,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<AtomicDomain {self.ts.name} ops={sorted(self.ops)}>"
