"""Remote atomic memory operations (``upcxx::atomic_domain``).

Atomics must go through the runtime and conduit even for on-node targets,
"to ensure coherency correctness on systems that may offload incoming
atomic operations using the network hardware" (§II-B) — manual localization
is *not possible* for them, which is why eager notification is the only way
to cut their on-node overhead.

Includes the paper's new **non-value fetching** variants (``fetch_*_into``,
§III-B) that write the fetched value to memory, making the notification
value-less and thus eligible for the zero-allocation ready-future path.
"""

from repro.atomics.domain import AtomicDomain, AMO_OPS

__all__ = ["AtomicDomain", "AMO_OPS"]
