"""A distributed hash table over PGAS RMA and atomics.

A canonical fine-grained APGAS workload (in the spirit of the UPC++
programmer's-guide DHT, rebuilt over RMA instead of RPC so that the
paper's optimization applies): a global open-addressing table is block-
distributed across ranks' shared segments; slots are claimed with
``compare_exchange`` and read/written with fine-grained ``rget``/``rput``.
Every operation is a handful of 8-byte on-node transfers — exactly the
regime where eager notification removes a constant overhead per access.

Layout: the global table has ``2**log2_slots`` slots, each two u64 words
(key, value), striped block-wise; key 0 is reserved as EMPTY.  Linear
probing resolves collisions across rank boundaries transparently via
global pointer arithmetic over rank-substituted base pointers.

This is an *extension study* (not a figure from the paper): the benchmark
in ``benchmarks/test_dht_extension.py`` measures the same eager-vs-defer
effect on a different fine-grained application.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import (
    AtomicDomain,
    Promise,
    barrier_gen,
    current_ctx,
    new_array,
    operation_cx,
    rank_me,
    rank_n,
    rget,
    rput,
)
from repro.errors import UpcxxError
from repro.memory.global_ptr import GlobalPtr
from repro.runtime.config import Version
from repro.runtime.runtime import spmd_run
from repro.runtime.switchpoints import run_blocking
from repro.sim.costmodel import CostAction

_EMPTY = 0


def _mix(key: int) -> int:
    """splitmix64 finalizer — the slot hash."""
    z = (key + 0x9E3779B97F4A7C15) & ((1 << 64) - 1)
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & ((1 << 64) - 1)
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & ((1 << 64) - 1)
    return z ^ (z >> 31)


class DistributedHashMap:
    """One rank's handle on the global table (construct on every rank,
    then :meth:`attach` after a barrier)."""

    def __init__(self, log2_slots: int):
        if log2_slots < 2:
            raise ValueError("table needs at least 4 slots")
        self.ctx = current_ctx()
        self.p = rank_n()
        self.n_slots = 1 << log2_slots
        if self.n_slots % self.p:
            raise UpcxxError("slot count must divide evenly across ranks")
        self.per_rank = self.n_slots // self.p
        # [key0, val0, key1, val1, ...] in my segment
        self.local_part = new_array("u64", 2 * self.per_rank, fill=_EMPTY)
        self.ad = AtomicDomain({"compare_exchange"}, "u64")
        self.bases: list[GlobalPtr] = []

    def attach(self) -> None:
        """Resolve every rank's base pointer (lock-step allocation)."""
        self.bases = [
            GlobalPtr(r, self.local_part.offset, self.local_part.ts)
            for r in range(self.p)
        ]

    # -- slot addressing ---------------------------------------------------

    def _slot_ptrs(self, slot: int) -> tuple[GlobalPtr, GlobalPtr]:
        rank = slot // self.per_rank
        off = slot % self.per_rank
        base = self.bases[rank]
        return base + 2 * off, base + 2 * off + 1

    def _home_slot(self, key: int) -> int:
        return _mix(key) & (self.n_slots - 1)

    # -- operations -----------------------------------------------------------

    def insert_gen(self, key: int, value: int, comps=None):
        """Generator form of :meth:`insert` for continuation rank bodies
        (``yield from table.insert_gen(...)``).

        Linear probing with atomic claim of empty slots; raises once the
        whole table has been probed (full).
        """
        if key == _EMPTY:
            raise UpcxxError("key 0 is reserved (EMPTY)")
        slot = self._home_slot(key)
        for _ in range(self.n_slots):
            kptr, vptr = self._slot_ptrs(slot)
            old = yield from self.ad.compare_exchange(
                kptr, _EMPTY, key
            ).wait_gen()
            if old in (_EMPTY, key):
                if comps is None:
                    yield from rput(value, vptr).wait_gen()
                else:
                    rput(value, vptr, comps)
                return
            slot = (slot + 1) & (self.n_slots - 1)
        raise UpcxxError("distributed hash table is full")

    def insert(self, key: int, value: int, comps=None) -> None:
        """Insert or update ``key`` (nonzero); waits for completion.

        Blocking wrapper over :meth:`insert_gen` — one implementation,
        identical charge sequence on both scheduler substrates.
        """
        return run_blocking(self.ctx, self.insert_gen(key, value, comps))

    def find_gen(self, key: int):
        """Generator form of :meth:`find` for continuation rank bodies."""
        if key == _EMPTY:
            raise UpcxxError("key 0 is reserved (EMPTY)")
        slot = self._home_slot(key)
        for _ in range(self.n_slots):
            kptr, vptr = self._slot_ptrs(slot)
            k = yield from rget(kptr).wait_gen()
            if k == _EMPTY:
                return None
            if k == key:
                return (yield from rget(vptr).wait_gen())
            slot = (slot + 1) & (self.n_slots - 1)
        return None

    def find(self, key: int):
        """The value for ``key``, or None when absent (blocking wrapper
        over :meth:`find_gen`)."""
        return run_blocking(self.ctx, self.find_gen(key))

    def cas_gen(self, key: int, expected: int, desired: int):
        """Generator form of :meth:`cas`: atomically replace ``key``'s
        value with ``desired`` iff it currently equals ``expected``.

        Returns the value observed by the compare-exchange (``expected``
        on success, the competing value on failure), or ``None`` when the
        key is absent.  This is the serving workload's read-modify-write
        request: one probe chain of ``rget`` s to locate the slot, then a
        single ``compare_exchange`` on the value word.
        """
        if key == _EMPTY:
            raise UpcxxError("key 0 is reserved (EMPTY)")
        slot = self._home_slot(key)
        for _ in range(self.n_slots):
            kptr, vptr = self._slot_ptrs(slot)
            k = yield from rget(kptr).wait_gen()
            if k == _EMPTY:
                return None
            if k == key:
                return (
                    yield from self.ad.compare_exchange(
                        vptr, expected, desired
                    ).wait_gen()
                )
            slot = (slot + 1) & (self.n_slots - 1)
        return None

    def cas(self, key: int, expected: int, desired: int):
        """Blocking wrapper over :meth:`cas_gen`."""
        return run_blocking(self.ctx, self.cas_gen(key, expected, desired))

    def local_items(self) -> dict[int, int]:
        """Key→value pairs stored in this rank's slice."""
        view = self.ctx.segment.view_array(
            self.local_part.offset, self.local_part.ts, 2 * self.per_rank
        )
        return {
            int(view[2 * i]): int(view[2 * i + 1])
            for i in range(self.per_rank)
            if int(view[2 * i]) != _EMPTY
        }


# ---------------------------------------------------------------------------
# benchmark driver (the extension study)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DhtConfig:
    log2_slots: int = 10
    inserts_per_rank: int = 128
    finds_per_rank: int = 128
    seed: int = 7
    use_promise: bool = True  # promise-tracked value puts


@dataclass
class DhtResult:
    config: DhtConfig
    ranks: int
    version: Version
    machine: str
    solve_ns: float
    ops: int
    correct: bool


def _dht_keys(cfg: DhtConfig, rank: int) -> list[int]:
    """Deterministic distinct nonzero keys for one rank."""
    base = (cfg.seed * 1_000_003 + rank) << 20
    return [base + i + 1 for i in range(cfg.inserts_per_rank)]


def _dht_body_gen(cfg: DhtConfig):
    """The SPMD body as a generator continuation (``yield from`` at every
    blocking construct), so the event-loop scheduler resumes it in place;
    :func:`_dht_body` drives this same generator on blocking substrates —
    one body, both paths, identical charge sequences."""
    ctx = current_ctx()
    me = rank_me()
    table = DistributedHashMap(cfg.log2_slots)
    yield from barrier_gen()
    table.attach()
    keys = _dht_keys(cfg, me)
    yield from barrier_gen()
    ctx.clock.mark("solve")

    if cfg.use_promise:
        # inserts with promise-tracked value puts, batched claim waits
        p = Promise()
        for i, key in enumerate(keys):
            ctx.charge(CostAction.FUNCTION_CALL, 2)  # hash + key gen
            yield from table.insert_gen(key, i, operation_cx.as_promise(p))
        yield from p.finalize().wait_gen()
    else:
        for i, key in enumerate(keys):
            ctx.charge(CostAction.FUNCTION_CALL, 2)
            yield from table.insert_gen(key, i)
    yield from barrier_gen()
    # look up my left neighbor's keys
    peer_keys = _dht_keys(cfg, (me - 1) % rank_n())
    hits = 0
    for i, key in enumerate(peer_keys[: cfg.finds_per_rank]):
        ctx.charge(CostAction.FUNCTION_CALL, 2)
        found = yield from table.find_gen(key)
        if found == i:
            hits += 1
    yield from barrier_gen()
    solve_ns = ctx.clock.elapsed_since("solve")
    return solve_ns, hits, table.local_items()


def _dht_body(cfg: DhtConfig):
    """Blocking form of the body (rides the thread-shim on the event-loop
    substrate) — kept as the parity oracle for the continuation port."""
    return run_blocking(current_ctx(), _dht_body_gen(cfg))


def run_dht(
    cfg: DhtConfig,
    *,
    ranks: int = 8,
    version: Version = Version.V2021_3_6_EAGER,
    machine: str = "intel",
    flags=None,
    continuation: bool = True,
) -> DhtResult:
    """Run the DHT workload; correctness = every lookup hit.

    ``continuation=True`` (default) passes the generator body so the
    event-loop scheduler runs each rank as an in-place continuation;
    ``False`` forces the blocking wrapper (thread-shim path) — the parity
    tests compare the two.
    """
    total_keys = cfg.inserts_per_rank * ranks
    if total_keys * 2 > (1 << cfg.log2_slots):
        raise UpcxxError(
            "table too small: keep load factor <= 0.5 "
            f"({total_keys} keys, {1 << cfg.log2_slots} slots)"
        )
    seg = max(1 << 17, (1 << cfg.log2_slots) // ranks * 16 * 4)
    body = _dht_body_gen if continuation else (lambda c: _dht_body(c))
    res = spmd_run(
        body,
        args=(cfg,),
        ranks=ranks,
        version=version,
        machine=machine,
        seed=cfg.seed,
        segment_bytes=seg,
        flags=flags,
    )
    solve_ns = max(v[0] for v in res.values)
    hits = sum(v[1] for v in res.values)
    stored = {}
    for _, _, items in res.values:
        stored.update(items)
    expected = {
        key: i
        for r in range(ranks)
        for i, key in enumerate(_dht_keys(cfg, r))
    }
    correct = hits == ranks * cfg.finds_per_rank and stored == expected
    return DhtResult(
        config=cfg,
        ranks=ranks,
        version=version,
        machine=machine,
        solve_ns=solve_ns,
        ops=ranks * (cfg.inserts_per_rank + cfg.finds_per_rank),
        correct=correct,
    )
