"""GUPS — the HPC Challenge RandomAccess benchmark (paper §IV-B).

A table of 2^m 64-bit words is block-distributed over the ranks; each rank
performs a stream of updates ``table[ran & (N-1)] ^= ran`` where ``ran``
follows the HPCC pseudo-random sequence.  Unsynchronized updates are
permitted to race (HPCC tolerates up to 1% lost updates); the atomic
variants are exact.

Six variants, exactly the paper's:

``raw``
    "bypasses UPC++ entirely, using pure C++": locality checks, downcasts
    and all UPC++ calls are factored *out of the loop*; each update is a
    plain load/xor/store.  Single-node only; the upper bound.
``manual``
    manual localization: per update, ``is_local()`` + downcast + direct
    store (works for distributed runs too; on one node every check
    succeeds).
``rma_promise``
    pure RMA ignoring locality: batches of value-less ``rget_into`` tracked
    by one promise, local xor, then batched ``rput`` tracked by a promise.
``rma_future``
    same data path, but conjoining per-op futures with ``when_all`` in a
    loop (Figure 1's dependency graph in the deferred builds).
``amo_promise``
    remote atomic ``bit_xor`` per update, promise-tracked per batch.
``amo_future``
    remote atomic ``bit_xor`` per update, future-conjoined per batch.

Two further variants go beyond the paper:

``agg``
    one-sided fire-and-forget updates (``rpc_ff`` applying the xor at the
    owner) with **no per-update reply**; termination is a barrier /
    drain-inbox / barrier protocol, so the result is exact.  On a
    multi-node world with ``flags.am_aggregation`` enabled, the AM
    aggregation layer coalesces the per-destination update messages into
    bundles — the destination-batching optimization that attacks the
    injection/latency costs eager notification cannot (§IV-A).
``prog_adaptive``
    a defer-heavy pattern exercising the adaptive progress controller:
    promise-tracked atomic updates (each parks a completion on the
    deferred queue under deferred notification) alternating with an idle
    polling segment (one ``ctx.progress()`` per unit of overlapped local
    work).  Static defer pays a full ``PROGRESS_POLL`` per idle call and
    strands each batch's completions until the batch-end wait; with
    ``flags.progress_adaptive`` the controller elides the empty polls and
    the ``progress_max_age_ticks`` bound retires parked notifications
    early — the latency/overhead trade the controller exists to buy.
``wait_hints``
    the ``prog_adaptive`` workload reshaped so the *awaited* completion
    parks at the **back** of the deferred queue behind a batch of
    unrelated backlog: most updates are promise-tracked (their
    notifications form the backlog; promise waits never stamp
    ``t_waited``, so they stay out of the waited-gap metric), then a few
    future-tracked probe updates are each waited immediately.  A capped
    FIFO drain must chew through the whole backlog before the probe's
    notification dispatches — ``ceil(backlog/cap)`` polls of added gap —
    while a hinted wait's targeted scan dispatches exactly the awaited
    completion on the first poll.  The batch then retires its backlog
    through ``finalize().wait()`` (the set-targeting case: every backlog
    thunk shares the promise's cell) and runs the same idle polling
    segment as ``prog_adaptive``, so poll budgets compare directly.
``cont``
    the ``prog_adaptive`` workload retargeted at continuation
    completions (requires ``FeatureFlags.cx_continuations``): each
    atomic update is tracked by ``operation_cx.as_continuation`` ticking
    a done counter instead of allocating a future/promise cell.
    Continuations are eager-by-construction — they dispatch the moment
    whichever agent observes the ack (inline in ``notify_sync`` or from
    the progress engine's pend path), never parking on the deferred
    queue — so under a deferred-notification build their notification
    gaps collapse to the eager baseline while the future-path variants
    still pay the defer penalty.  The batch drain blocks on the counter
    reaching the issue count, and the idle polling segment matches
    ``prog_adaptive`` so poll budgets compare directly.


Every variant charges the same per-update "application work": the HPCC
random-number step, index arithmetic, and one random DRAM access (the
table is far larger than cache).  The runtime overhead differences between
builds ride on top of that shared base, which is what makes the promise
variants' speedups modest (15%/9%/25% for RMA, 1–4% for the pricier
atomics) while the future-conjoining variants blow up under deferred
notification.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import GeneratorType

import numpy as np

from repro import (
    AtomicDomain,
    barrier_gen,
    current_ctx,
    make_future,
    new_array,
    operation_cx,
    rank_me,
    rank_n,
    rget_into,
    rput,
    when_all,
)
from repro.core.promise import Promise
from repro.memory.global_ptr import GlobalPtr
from repro.runtime.config import Version, flags_for
from repro.runtime.runtime import SpmdResult, spmd_run
from repro.sim.costmodel import CostAction
from repro.sim.stats import (
    AggregationStats,
    ProgressStats,
    aggregation_stats,
    observability_snapshots,
    observability_stats,
    progress_stats,
)

#: the paper's six variants (Figures 5-7 grid)
PAPER_GUPS_VARIANTS = (
    "raw",
    "manual",
    "rma_promise",
    "rma_future",
    "amo_promise",
    "amo_future",
)

#: all variants, including the beyond-the-paper ones
GUPS_VARIANTS = PAPER_GUPS_VARIANTS + (
    "agg",
    "prog_adaptive",
    "wait_hints",
    "cont",
)

_MASK64 = (1 << 64) - 1
_POLY = 0x0000000000000007


def hpcc_next(ran: int) -> int:
    """One step of the HPCC RandomAccess sequence (x^64 LFSR with POLY)."""
    return ((ran << 1) & _MASK64) ^ (_POLY if ran >> 63 else 0)


def hpcc_stream(seed: int, n: int) -> list[int]:
    """``n`` values of the update stream starting from ``seed`` (nonzero)."""
    ran = seed & _MASK64 or 1
    out = []
    for _ in range(n):
        ran = hpcc_next(ran)
        out.append(ran)
    return out


def rank_seed(global_seed: int, rank: int) -> int:
    """A well-separated per-rank starting point (splitmix64 of the pair)."""
    z = (global_seed * 0x9E3779B97F4A7C15 + rank + 1) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) or 1


@dataclass(frozen=True)
class GupsConfig:
    """Parameters of one GUPS run (sizes scaled down for the simulator)."""

    variant: str = "rma_promise"
    table_log2: int = 12  # total table size N = 2**table_log2 words
    updates_per_rank: int = 256
    batch: int = 32
    seed: int = 1

    def __post_init__(self):
        if self.variant not in GUPS_VARIANTS:
            raise ValueError(
                f"unknown GUPS variant {self.variant!r}; "
                f"known: {GUPS_VARIANTS}"
            )
        if self.batch < 1:
            raise ValueError("batch must be >= 1")


@dataclass
class GupsResult:
    """Outcome of one GUPS run."""

    config: GupsConfig
    ranks: int
    version: Version
    machine: str
    total_updates: int
    solve_ns: float
    #: giga-updates per second of *virtual* time
    gups: float
    #: xor-reduction of the final table (lost updates make this differ
    #: from the oracle for the racy variants; atomic/raw/manual are exact
    #: when updates don't race within an update step)
    checksum: int
    oracle_checksum: int

    #: final table contents (concatenated across ranks), for HPCC-style
    #: verification
    table: "np.ndarray | None" = None

    #: world-wide AM traffic counters (what destination batching reduces)
    am_injects: int = 0
    am_bundles: int = 0
    am_agg_entries: int = 0
    #: mean simulated parking latency of an aggregated entry (append to
    #: flush; what the adaptive controller bounds for sparse traffic)
    agg_mean_parked_ns: float = 0.0
    #: buffers force-flushed by the adaptive age bound
    agg_age_flushes: int = 0
    #: modeled framing bytes saved by bundle delta-compression
    agg_bytes_saved: int = 0
    #: the full world-wide aggregation rollup (histogram, flush-trigger
    #: tally, adaptive counters) for report rendering
    agg_stats: "AggregationStats | None" = None

    #: per-rank observability snapshots (``FeatureFlags.obs_spans`` runs
    #: only; empty tuple otherwise) — feed these to
    #: :func:`repro.obs.write_chrome_trace` for a Perfetto timeline
    obs_snapshots: tuple = ()
    #: world-wide span/metrics rollup (:class:`repro.obs.ObsStats`),
    #: ``None`` unless the run had ``obs_spans`` on
    obs_stats: "object | None" = None

    #: world-wide full-poll count (``PROGRESS_POLL`` charges)
    progress_polls: int = 0
    #: world-wide elided-poll count (``PROGRESS_POLL_SKIP`` charges; zero
    #: unless the run had ``progress_adaptive`` on)
    progress_poll_skips: int = 0
    #: world-wide adaptive-progress rollup
    #: (:class:`repro.sim.stats.ProgressStats`), ``None`` unless the run
    #: had ``progress_adaptive`` on
    prog_stats: "ProgressStats | None" = None

    @property
    def matches_oracle(self) -> bool:
        return self.checksum == self.oracle_checksum

    @property
    def error_fraction(self) -> float:
        """HPCC verification: the fraction of table entries differing
        from a race-free execution.  HPCC accepts a run when this is at
        most 1% (lost updates from unsynchronized racing are allowed for
        the RMA variants; atomic/raw/manual variants must be exact)."""
        if self.table is None:
            raise ValueError("run_gups was invoked with collect_table=False")
        oracle = oracle_table(self.config, self.ranks)
        return float(np.count_nonzero(self.table != oracle)) / len(oracle)

    @property
    def passes_hpcc_verification(self) -> bool:
        return self.error_fraction <= 0.01


def oracle_table(cfg: GupsConfig, ranks: int) -> np.ndarray:
    """The table a race-free execution produces (xor is commutative, so
    any serialization of the updates gives this result)."""
    n = 1 << cfg.table_log2
    table = np.arange(n, dtype=np.uint64)
    for r in range(ranks):
        for ran in hpcc_stream(rank_seed(cfg.seed, r), cfg.updates_per_rank):
            table[ran & (n - 1)] ^= np.uint64(ran)
    return table


def _charge_update_work(ctx) -> None:
    """The per-update application work common to every variant: the HPCC
    RNG step, masking/index arithmetic, and the random DRAM touch."""
    ctx.charge(CostAction.FUNCTION_CALL, 3)
    ctx.charge(CostAction.DRAM_RANDOM_ACCESS)


def _gups_body(cfg: GupsConfig):
    """The SPMD body; returns this rank's xor over its owned table part.

    Written as a generator continuation (``yield from`` at every blocking
    construct) so the event-loop scheduler resumes it in place; under the
    thread scheduler the rank thread's trampoline drives the same
    generator through the blocking primitives — one body, both substrates,
    identical charge sequences.
    """
    ctx = current_ctx()
    me, p = rank_me(), rank_n()
    n = 1 << cfg.table_log2
    if n % p:
        raise ValueError("table size must divide evenly across ranks")
    per_rank = n // p
    mine = new_array("u64", per_rank)
    view = ctx.segment.view_array(mine.offset, mine.ts, per_rank)
    view[:] = np.arange(me * per_rank, (me + 1) * per_rank, dtype=np.uint64)

    # exchange base pointers (every rank allocates in lock-step, so the
    # offsets agree; a dist_object fetch would carry the same information)
    bases = [GlobalPtr(r, mine.offset, mine.ts) for r in range(p)]
    stream = hpcc_stream(rank_seed(cfg.seed, me), cfg.updates_per_rank)
    yield from barrier_gen()
    ctx.clock.mark("solve")

    runner = _VARIANT_BODIES[cfg.variant]
    body = runner(ctx, cfg, bases, per_rank, stream)
    if isinstance(body, GeneratorType):
        # waiting variants are continuation generators; raw/manual never
        # reach a switch point and stay plain calls (body is None)
        yield from body

    yield from barrier_gen()
    solve_ns = ctx.clock.elapsed_since("solve")
    local_xor = int(np.bitwise_xor.reduce(view)) if per_rank else 0
    return solve_ns, local_xor, view.copy()


# ---------------------------------------------------------------------------
# variant bodies
# ---------------------------------------------------------------------------


def _target(bases, per_rank, ran):
    idx = ran & (len(bases) * per_rank - 1)
    return bases[idx // per_rank] + (idx % per_rank)


def _run_raw(ctx, cfg, bases, per_rank, stream):
    """Raw single-node version: downcasts hoisted out of the loop."""
    if ctx.world.n_nodes != 1:
        raise ValueError("the raw variant supports single-node runs only")
    views = [
        ctx.world.segment_of(b.rank).view_array(b.offset, b.ts, per_rank)
        for b in bases
    ]
    for ran in stream:
        _charge_update_work(ctx)
        idx = ran & (len(bases) * per_rank - 1)
        v = views[idx // per_rank]
        off = idx % per_rank
        ctx.charge(CostAction.CPU_LOAD)
        ctx.charge(CostAction.CPU_STORE)
        v[off] = v[off] ^ np.uint64(ran)


def _run_manual(ctx, cfg, bases, per_rank, stream):
    """Manual localization: per-update locality check + downcast."""
    for ran in stream:
        _charge_update_work(ctx)
        dest = _target(bases, per_rank, ran)
        if dest.is_local(ctx):
            ref = dest.local(ctx)
            ctx.charge(CostAction.CPU_LOAD)
            old = ref.segment.read_scalar(ref.offset, ref.ts)
            ctx.charge(CostAction.CPU_STORE)
            ref.segment.write_scalar(ref.offset, ref.ts, (old ^ ran) & _MASK64)
        else:  # pragma: no cover - single-node runs never take this path
            from repro.rma import rget

            val = rget(dest).wait()
            rput((val ^ ran) & _MASK64, dest).wait()


def _run_rma_promise(ctx, cfg, bases, per_rank, stream):
    """Pure RMA, promise-tracked: batched get / xor / batched put."""
    scratch = new_array("u64", cfg.batch)
    sview = ctx.segment.view_array(scratch.offset, scratch.ts, cfg.batch)
    for start in range(0, len(stream), cfg.batch):
        chunk = stream[start : start + cfg.batch]
        targets = []
        p = Promise()
        for i, ran in enumerate(chunk):
            _charge_update_work(ctx)
            dest = _target(bases, per_rank, ran)
            targets.append(dest)
            rget_into(dest, scratch + i, 1, operation_cx.as_promise(p))
        yield from p.finalize().wait_gen()
        p2 = Promise()
        for i, ran in enumerate(chunk):
            ctx.charge(CostAction.CPU_LOAD)
            val = (int(sview[i]) ^ ran) & _MASK64
            rput(val, targets[i], operation_cx.as_promise(p2))
        yield from p2.finalize().wait_gen()


def _run_rma_future(ctx, cfg, bases, per_rank, stream):
    """Pure RMA, future-conjoined (the Figure 1 idiom)."""
    scratch = new_array("u64", cfg.batch)
    sview = ctx.segment.view_array(scratch.offset, scratch.ts, cfg.batch)
    for start in range(0, len(stream), cfg.batch):
        chunk = stream[start : start + cfg.batch]
        targets = []
        fut = make_future()
        for i, ran in enumerate(chunk):
            _charge_update_work(ctx)
            dest = _target(bases, per_rank, ran)
            targets.append(dest)
            fut = when_all(fut, rget_into(dest, scratch + i, 1))
        yield from fut.wait_gen()
        fut = make_future()
        for i, ran in enumerate(chunk):
            ctx.charge(CostAction.CPU_LOAD)
            val = (int(sview[i]) ^ ran) & _MASK64
            fut = when_all(fut, rput(val, targets[i]))
        yield from fut.wait_gen()


def _run_amo_promise(ctx, cfg, bases, per_rank, stream):
    """Remote atomics (bit_xor), promise-tracked per batch."""
    ad = AtomicDomain({"bit_xor"}, "u64")
    for start in range(0, len(stream), cfg.batch):
        chunk = stream[start : start + cfg.batch]
        p = Promise()
        for ran in chunk:
            _charge_update_work(ctx)
            dest = _target(bases, per_rank, ran)
            ad.bit_xor(dest, ran, operation_cx.as_promise(p))
        yield from p.finalize().wait_gen()


def _run_amo_future(ctx, cfg, bases, per_rank, stream):
    """Remote atomics (bit_xor), future-conjoined per batch."""
    ad = AtomicDomain({"bit_xor"}, "u64")
    for start in range(0, len(stream), cfg.batch):
        chunk = stream[start : start + cfg.batch]
        fut = make_future()
        for ran in chunk:
            _charge_update_work(ctx)
            dest = _target(bases, per_rank, ran)
            fut = when_all(fut, ad.bit_xor(dest, ran))
        yield from fut.wait_gen()


def _run_agg(ctx, cfg, bases, per_rank, stream):
    """One-sided fire-and-forget updates, destination-batched by the AM
    aggregation layer when ``flags.am_aggregation`` is on.

    Each update ships as a reply-less ``rpc_ff`` applying the xor at the
    owner (on-node owners still take the direct PSHM AM path).  With no
    acks there is no completion to wait on, so exactness comes from a
    termination protocol: after the first barrier every rank's buffered
    bundles have been flushed and every update is sitting in some inbox;
    draining the local inbox to quiescence and re-synchronizing therefore
    observes every update (handlers send no further AMs).
    """
    from repro.rpc import rpc_ff

    ts = bases[0].ts

    def apply_update(offset, ran):
        tctx = current_ctx()
        tctx.charge(CostAction.CPU_LOAD)
        tctx.charge(CostAction.CPU_STORE)
        seg = tctx.segment
        old = seg.read_scalar(offset, ts)
        seg.write_scalar(offset, ts, (int(old) ^ ran) & _MASK64)

    for ran in stream:
        _charge_update_work(ctx)
        dest = _target(bases, per_rank, ran)
        rpc_ff(dest.rank, apply_update, dest.offset, ran)
    # all updates injected (buffers flush on barrier progress)
    yield from barrier_gen()
    while ctx.progress():  # drain: handlers generate no new AMs
        pass
    # nobody reads its table part before everyone drained
    yield from barrier_gen()


def _run_prog_adaptive(ctx, cfg, bases, per_rank, stream):
    """Defer-heavy drain-loop workout (see the module docstring).

    Each batch issues promise-tracked atomic xors — under deferred
    notification every completion parks on the progress queue — then
    overlaps "application work" with one progress call per update (the
    polling-driven overlap idiom UPC++ programs use while waiting on
    remote events).  The result is exact: atomics never race within an
    update, and the batch-end wait orders every batch.
    """
    ad = AtomicDomain({"bit_xor"}, "u64")
    for start in range(0, len(stream), cfg.batch):
        chunk = stream[start : start + cfg.batch]
        p = Promise()
        for ran in chunk:
            _charge_update_work(ctx)
            dest = _target(bases, per_rank, ran)
            ad.bit_xor(dest, ran, operation_cx.as_promise(p))
        yield from p.finalize().wait_gen()
        # idle polling segment: after the batch completes there is nothing
        # for progress to do, but a polling-driven application cannot know
        # that — the static engine pays a full poll per call here
        for _ in chunk:
            ctx.charge(CostAction.FUNCTION_CALL)
            ctx.progress()


def _run_wait_hints(ctx, cfg, bases, per_rank, stream):
    """Backlog-then-probe workout (see the module docstring).

    Per batch: the leading updates are promise-tracked — under deferred
    notification their fulfilment thunks park on the deferred queue as
    unrelated backlog — then the trailing few are future-tracked probes,
    each waited immediately so its notification sits *behind* the whole
    backlog in FIFO order.  The backlog is retired afterwards through the
    promise wait, and the idle polling segment matches ``prog_adaptive``.
    Exactness as for ``prog_adaptive``: atomics never race within an
    update and every batch ends fully waited.
    """
    ad = AtomicDomain({"bit_xor"}, "u64")
    for start in range(0, len(stream), cfg.batch):
        chunk = stream[start : start + cfg.batch]
        probes = max(1, len(chunk) // 8)
        backlog, probed = chunk[:-probes], chunk[-probes:]
        p = Promise()
        for ran in backlog:
            _charge_update_work(ctx)
            dest = _target(bases, per_rank, ran)
            ad.bit_xor(dest, ran, operation_cx.as_promise(p))
        for ran in probed:
            _charge_update_work(ctx)
            dest = _target(bases, per_rank, ran)
            yield from ad.bit_xor(dest, ran).wait_gen()
        yield from p.finalize().wait_gen()
        # idle polling segment, as in prog_adaptive: the application
        # overlaps local work with polls that (post-wait) find nothing
        for _ in chunk:
            ctx.charge(CostAction.FUNCTION_CALL)
            ctx.progress()


def _run_cont(ctx, cfg, bases, per_rank, stream):
    """Continuation-tracked counterpart of ``prog_adaptive`` (see the
    module docstring; requires ``FeatureFlags.cx_continuations``).

    Each batch issues atomic xors tracked by a continuation that ticks a
    shared done counter — no future or promise cell is allocated, and the
    completion never parks on the deferred queue: it dispatches at
    whichever agent first observes the ack.  The batch drain spins on the
    counter (yielding to the scheduler between polls so the event-loop
    substrate stays live), then runs the same idle polling segment as
    ``prog_adaptive``.  Exactness as for ``prog_adaptive``: atomics never
    race within an update and every batch ends fully drained.
    """
    from repro.runtime.switchpoints import BlockUntil

    ad = AtomicDomain({"bit_xor"}, "u64")
    done = [0]

    def on_done():
        done[0] += 1

    issued = 0
    for start in range(0, len(stream), cfg.batch):
        chunk = stream[start : start + cfg.batch]
        for ran in chunk:
            _charge_update_work(ctx)
            dest = _target(bases, per_rank, ran)
            ad.bit_xor(dest, ran, operation_cx.as_continuation(on_done))
            issued += 1
        while done[0] < issued:
            ctx.progress()
            if done[0] >= issued:
                break
            yield BlockUntil(
                lambda: done[0] >= issued or ctx.has_incoming()
            )
        # idle polling segment, as in prog_adaptive: the application
        # overlaps local work with polls that (post-drain) find nothing
        for _ in chunk:
            ctx.charge(CostAction.FUNCTION_CALL)
            ctx.progress()


_VARIANT_BODIES = {
    "raw": _run_raw,
    "manual": _run_manual,
    "rma_promise": _run_rma_promise,
    "rma_future": _run_rma_future,
    "amo_promise": _run_amo_promise,
    "amo_future": _run_amo_future,
    "agg": _run_agg,
    "prog_adaptive": _run_prog_adaptive,
    "wait_hints": _run_wait_hints,
    "cont": _run_cont,
}


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------


def run_gups(
    cfg: GupsConfig,
    *,
    ranks: int = 16,
    version: Version = Version.V2021_3_6_EAGER,
    machine: str = "intel",
    conduit: str | None = None,
    n_nodes: int = 1,
    flags=None,
    noise: float = 0.0,
    noise_seed: int = 0,
) -> GupsResult:
    """Run one GUPS configuration and compute the virtual-time GUPS rate.

    The solve time is the maximum across ranks of the barrier-to-barrier
    update loop (all clocks synchronize at the closing barrier).
    ``n_nodes > 1`` spreads the ranks over several simulated nodes (the
    off-node regime the ``agg`` variant targets; pick a non-smp conduit).
    """
    n = 1 << cfg.table_log2
    seg_bytes = max(1 << 16, (n // ranks + cfg.batch + 64) * 8 * 2)
    if cfg.variant == "cont" and not (flags and flags.cx_continuations):
        # the cont variant is unusable without continuation completions;
        # enable the flag on top of whatever else the caller configured
        flags = (flags or flags_for(version)).replace(cx_continuations=True)
    res: SpmdResult = spmd_run(
        _gups_body,
        args=(cfg,),
        ranks=ranks,
        version=version,
        machine=machine,
        conduit=conduit,
        n_nodes=n_nodes,
        # the world seed only feeds timing jitter; the update streams are
        # derived from cfg.seed, so noisy samples share one workload
        seed=cfg.seed + 7919 * noise_seed,
        segment_bytes=seg_bytes,
        flags=flags,
        noise=noise,
    )
    agg = aggregation_stats(res.world)
    obs_snaps = tuple(observability_snapshots(res.world))
    obs = observability_stats(res.world) if obs_snaps else None
    solve_ns = max(v[0] for v in res.values)
    checksum = 0
    for _, x, _tbl in res.values:
        checksum ^= x
    oracle = int(np.bitwise_xor.reduce(oracle_table(cfg, ranks)))
    total = cfg.updates_per_rank * ranks
    return GupsResult(
        config=cfg,
        ranks=ranks,
        version=version,
        machine=machine,
        total_updates=total,
        solve_ns=solve_ns,
        gups=total / solve_ns if solve_ns else float("inf"),
        checksum=checksum,
        oracle_checksum=oracle,
        table=np.concatenate([v[2] for v in res.values]),
        am_injects=res.world.total_count(CostAction.AM_INJECT),
        am_bundles=res.world.total_count(CostAction.AM_BUNDLE_HEADER),
        am_agg_entries=res.world.total_count(CostAction.AM_AGG_APPEND),
        agg_mean_parked_ns=agg.mean_parked_ns,
        agg_age_flushes=agg.age_flushes,
        agg_bytes_saved=agg.compression_saved_bytes,
        agg_stats=agg,
        obs_snapshots=obs_snaps,
        obs_stats=obs,
        progress_polls=res.world.total_count(CostAction.PROGRESS_POLL),
        progress_poll_skips=res.world.total_count(
            CostAction.PROGRESS_POLL_SKIP
        ),
        prog_stats=progress_stats(res.world),
    )
