"""Synthetic input graphs for the matching experiments (paper §IV-C).

The paper uses four SuiteSparse graphs plus one generated graph; what
matters for the eager-notification experiment is their *locality
spectrum* — the fraction of edges whose endpoints land on different ranks
under the application's contiguous block partition:

* **channel** (``channel-500x100x100-b050``): a 3-D fluid channel mesh —
  almost all edges stay within a rank's slab;
* **venturi** (``venturiLevel3``): a 2-D/planar mesh — slightly less local;
* **random**: the paper's generated graph — geometric cutoff edges plus 15
  long random edges per 100 local ones (we implement that recipe
  literally);
* **delaunay** (``delaunay_n21``): a Delaunay triangulation whose vertex
  order only loosely follows the geometry — moderately non-local;
* **youtube** (``com-Youtube``): a social network with "highly non-local
  structure" — nearly every edge crosses ranks.

Each generator is deterministic in ``(scale, seed)`` and produces a
:class:`Graph` with symmetric adjacency and distinct positive edge weights
(ties broken by vertex ids, so the maximum-weight matching is unique —
which the tests rely on).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

GRAPH_NAMES = ("channel", "venturi", "random", "delaunay", "youtube")

_MASK = (1 << 61) - 1


def edge_weight(u: int, v: int, seed: int = 0) -> float:
    """Deterministic symmetric weight in (0, 1], distinct per edge pair."""
    a, b = (u, v) if u < v else (v, u)
    h = (a * 0x9E3779B97F4A7C15 ^ (b + seed) * 0xC2B2AE3D27D4EB4F) & _MASK
    h = (h ^ (h >> 29)) * 0xBF58476D1CE4E5B9 & _MASK
    # strictly positive, and perturbed by the pair so ties are impossible
    return (h % 1_000_003 + 1) / 1_000_003.0


@dataclass
class Graph:
    """An undirected weighted graph in adjacency-list form.

    ``adj[v]`` lists ``(neighbor, weight)`` pairs; every edge appears in
    both endpoint lists with the same weight.
    """

    name: str
    n: int
    adj: list[list[tuple[int, float]]]

    @property
    def n_edges(self) -> int:
        return sum(len(a) for a in self.adj) // 2

    def edges(self):
        """Iterate each undirected edge once as ``(u, v, w)`` with u < v."""
        for u, nbrs in enumerate(self.adj):
            for v, w in nbrs:
                if u < v:
                    yield u, v, w

    def degree(self, v: int) -> int:
        return len(self.adj[v])

    def validate(self) -> None:
        """Check symmetry and absence of self-loops/duplicates (test aid)."""
        for u, nbrs in enumerate(self.adj):
            local = set()
            for v, w in nbrs:
                if v == u:
                    raise ValueError(f"self-loop at {u}")
                if v in local:
                    raise ValueError(f"duplicate edge {u}-{v}")
                local.add(v)
                if (u, w) not in self.adj[v]:
                    raise ValueError(f"asymmetric edge {u}-{v}")


def _build(name: str, n: int, pairs) -> Graph:
    """Assemble a Graph from an iterable of (u, v) pairs (dedup, weight)."""
    adj: list[list[tuple[int, float]]] = [[] for _ in range(n)]
    seen: set[tuple[int, int]] = set()
    for u, v in pairs:
        if u == v:
            continue
        key = (u, v) if u < v else (v, u)
        if key in seen:
            continue
        seen.add(key)
        w = edge_weight(*key)
        adj[key[0]].append((key[1], w))
        adj[key[1]].append((key[0], w))
    return Graph(name=name, n=n, adj=adj)


# ---------------------------------------------------------------------------
# generators
# ---------------------------------------------------------------------------


def _channel(scale: int, seed: int) -> Graph:
    """Long-thin 3-D grid, partition axis long: a slab decomposition keeps
    nearly every edge on-rank (the most-local input; ~3% cross-rank at 16
    ranks)."""
    nx, ny = 5, 5
    nz = max(32, 40 * scale)
    n = nx * ny * nz

    def vid(x, y, z):
        return x + nx * (y + ny * z)

    def pairs():
        for z in range(nz):
            for y in range(ny):
                for x in range(nx):
                    v = vid(x, y, z)
                    if x + 1 < nx:
                        yield v, vid(x + 1, y, z)
                    if y + 1 < ny:
                        yield v, vid(x, y + 1, z)
                    if z + 1 < nz:
                        yield v, vid(x, y, z + 1)

    return _build("channel", n, pairs())


def _venturi(scale: int, seed: int) -> Graph:
    """Planar mesh: 2-D grid with one diagonal per cell, row blocks —
    local, but with a wider boundary than the channel slab."""
    nx = 16
    ny = max(64, 50 * scale)
    n = nx * ny

    def vid(x, y):
        return x + nx * y

    def pairs():
        for y in range(ny):
            for x in range(nx):
                v = vid(x, y)
                if x + 1 < nx:
                    yield v, vid(x + 1, y)
                if y + 1 < ny:
                    yield v, vid(x, y + 1)
                if x + 1 < nx and y + 1 < ny:
                    yield v, vid(x + 1, y + 1)

    return _build("venturi", n, pairs())


def _random_geometric(scale: int, seed: int) -> Graph:
    """The paper's generated input: edges between vertices within a cutoff
    distance, plus 15 extra random edges per 100 local ones.

    The cutoff neighbourhood is realized on the partition axis (vertices
    sorted by coordinate; partners drawn within an index window — the 1-D
    equivalent of a Euclidean cutoff after sorting), so the local/cross
    mix is controlled directly: ~16% cross-rank at 16 ranks."""
    rng = np.random.default_rng(seed + 1000)
    n = max(1024, 1024 * scale)
    window = max(4, n // 150)
    local_pairs = []
    for i in range(n):
        for _ in range(3):  # ~6 average degree
            off = int(rng.integers(1, window + 1))
            j = i + off if rng.integers(0, 2) else i - off
            if 0 <= j < n:
                local_pairs.append((i, j))
    n_random = (len(local_pairs) * 15) // 100
    random_pairs = [
        (int(a), int(b))
        for a, b in rng.integers(0, n, size=(n_random, 2))
        if a != b
    ]
    return _build("random", n, local_pairs + random_pairs)


def _delaunay(scale: int, seed: int) -> Graph:
    """Delaunay triangulation of random points whose vertex numbering only
    loosely follows geometry (noisy sort key → moderate non-locality)."""
    from scipy.spatial import Delaunay  # local import: optional dependency

    rng = np.random.default_rng(seed + 2000)
    n = max(1024, 1024 * scale)
    pts = rng.random((n, 2))
    noisy_key = pts[:, 0] + rng.normal(0, 0.4 / np.sqrt(n), n)
    pts = pts[np.argsort(noisy_key, kind="stable")]
    tri = Delaunay(pts)

    def pairs():
        for simplex in tri.simplices:
            a, b, c = (int(x) for x in simplex)
            yield a, b
            yield b, c
            yield a, c

    return _build("delaunay", n, pairs())


def _youtube(scale: int, seed: int) -> Graph:
    """Power-law (preferential-attachment) graph with shuffled labels —
    the highly non-local input."""
    rng = np.random.default_rng(seed + 3000)
    n = max(1024, 1024 * scale)
    m = 3
    targets = list(range(m))
    repeated: list[int] = list(range(m))
    pairs = []
    for v in range(m, n):
        chosen = set()
        while len(chosen) < m:
            chosen.add(int(repeated[rng.integers(0, len(repeated))]))
        for t in chosen:
            pairs.append((v, t))
            repeated.append(t)
        repeated.extend([v] * m)
    relabel = rng.permutation(n)
    return _build(
        "youtube", n, ((int(relabel[a]), int(relabel[b])) for a, b in pairs)
    )


_GENERATORS = {
    "channel": _channel,
    "venturi": _venturi,
    "random": _random_geometric,
    "delaunay": _delaunay,
    "youtube": _youtube,
}


def make_graph(name: str, scale: int = 4, seed: int = 0) -> Graph:
    """Build a named input graph at the given scale (vertices grow roughly
    linearly with ``scale``)."""
    try:
        gen = _GENERATORS[name]
    except KeyError:
        raise KeyError(
            f"unknown graph {name!r}; known: {GRAPH_NAMES}"
        ) from None
    return gen(scale, seed)


def owner_of(v: int, n: int, ranks: int) -> int:
    """Block partition: owner rank of vertex ``v``."""
    per = -(-n // ranks)  # ceil
    return min(v // per, ranks - 1)


def locality_fractions(g: Graph, ranks: int) -> dict[str, float]:
    """Edge-locality statistics under the block partition.

    ``same_rank`` edges are handled by the application's manual same-
    process optimization; ``cross_rank`` edges generate the co-located
    RMA traffic that eager notification accelerates (on one node).
    """
    same = cross = 0
    for u, v, _ in g.edges():
        if owner_of(u, g.n, ranks) == owner_of(v, g.n, ranks):
            same += 1
        else:
            cross += 1
    total = max(1, same + cross)
    return {
        "same_rank": same / total,
        "cross_rank": cross / total,
        "edges": total,
    }
