"""Benchmark applications from the paper's evaluation (Section IV):

* :mod:`repro.apps.gups` — the HPC Challenge RandomAccess benchmark in six
  UPC++ variants (Figures 5–7);
* :mod:`repro.apps.graphs` — synthetic input graphs with the locality
  spectrum of the paper's five matching inputs;
* :mod:`repro.apps.matching` — the ExaGraph half-approximate maximum-weight
  graph matching application over UPC++-style RMA (Figure 8).
"""

from repro.apps.dht import DhtConfig, DhtResult, DistributedHashMap, run_dht
from repro.apps.graphs import GRAPH_NAMES, Graph, locality_fractions, make_graph
from repro.apps.gups import (
    GUPS_VARIANTS,
    PAPER_GUPS_VARIANTS,
    GupsConfig,
    GupsResult,
    run_gups,
)
from repro.apps.matching import MatchingConfig, MatchingResult, run_matching
from repro.apps.stencil import (
    StencilConfig,
    StencilResult,
    run_stencil,
    serial_jacobi,
)

__all__ = [
    "GUPS_VARIANTS",
    "PAPER_GUPS_VARIANTS",
    "GupsConfig",
    "GupsResult",
    "run_gups",
    "GRAPH_NAMES",
    "Graph",
    "make_graph",
    "locality_fractions",
    "MatchingConfig",
    "MatchingResult",
    "run_matching",
    "DistributedHashMap",
    "DhtConfig",
    "DhtResult",
    "run_dht",
    "StencilConfig",
    "StencilResult",
    "run_stencil",
    "serial_jacobi",
]
