"""1-D Jacobi heat-diffusion stencil with halo exchange — the negative
control for eager notification.

Each rank owns a contiguous block of a 1-D rod; every iteration it
exchanges one-element halos with its neighbours via ``rput`` (fine-
grained) or a bulk ghost-region put (coarse-grained), then applies the
three-point Jacobi update.  Because the computation per iteration is
O(block) while the communication is O(1) operations, the *relative*
benefit of eager notification shrinks as blocks grow — the complementary
regime to GUPS, matching the paper's framing that deferral overheads
matter for workloads dominated by fine-grained on-node operations.

Correctness oracle: the distributed iteration must reproduce a serial
numpy Jacobi sweep bit-for-bit (same operation order within each cell).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import (
    Promise,
    barrier,
    current_ctx,
    new_array,
    operation_cx,
    rank_me,
    rank_n,
    rput,
)
from repro.errors import UpcxxError
from repro.memory.global_ptr import GlobalPtr
from repro.runtime.config import Version
from repro.runtime.runtime import spmd_run
from repro.sim.costmodel import CostAction


@dataclass(frozen=True)
class StencilConfig:
    n: int = 512  # global cells (excluding fixed boundary)
    iterations: int = 20
    left_temp: float = 1.0
    right_temp: float = 0.0

    def __post_init__(self):
        if self.n < 4:
            raise ValueError("need at least 4 cells")
        if self.iterations < 1:
            raise ValueError("need at least one iteration")


@dataclass
class StencilResult:
    config: StencilConfig
    ranks: int
    version: Version
    machine: str
    solve_ns: float
    field: np.ndarray
    matches_serial: bool


def serial_jacobi(cfg: StencilConfig) -> np.ndarray:
    """The oracle: serial Jacobi with fixed Dirichlet boundaries."""
    u = np.zeros(cfg.n + 2, dtype=np.float64)
    u[0], u[-1] = cfg.left_temp, cfg.right_temp
    for _ in range(cfg.iterations):
        nxt = u.copy()
        nxt[1:-1] = 0.5 * (u[:-2] + u[2:])
        u = nxt
        u[0], u[-1] = cfg.left_temp, cfg.right_temp
    return u[1:-1]


def _stencil_body(cfg: StencilConfig):
    ctx = current_ctx()
    me, p = rank_me(), rank_n()
    if cfg.n % p:
        raise UpcxxError("cells must divide evenly across ranks")
    per = cfg.n // p
    # local array layout: [left_halo, cell_0 .. cell_{per-1}, right_halo]
    cur = new_array("f64", per + 2, fill=0.0)
    nxt = new_array("f64", per + 2, fill=0.0)
    bases_cur = [GlobalPtr(r, cur.offset, cur.ts) for r in range(p)]
    bases_nxt = [GlobalPtr(r, nxt.offset, nxt.ts) for r in range(p)]
    cur_view = ctx.segment.view_array(cur.offset, cur.ts, per + 2)
    nxt_view = ctx.segment.view_array(nxt.offset, nxt.ts, per + 2)
    if me == 0:
        cur_view[0] = cfg.left_temp
        nxt_view[0] = cfg.left_temp
    if me == p - 1:
        cur_view[per + 1] = cfg.right_temp
        nxt_view[per + 1] = cfg.right_temp
    barrier()
    ctx.clock.mark("solve")

    read_bases, write_bases = bases_cur, bases_nxt
    read_view, write_view = cur_view, nxt_view
    for _ in range(cfg.iterations):
        # Jacobi update into the write buffer (vectorized; charge per cell)
        ctx.charge_bytes(CostAction.MEMCPY_PER_BYTE, per * 8 * 2)
        ctx.charge(CostAction.FUNCTION_CALL)
        write_view[1 : per + 1] = 0.5 * (
            read_view[0:per] + read_view[2 : per + 2]
        )
        barrier()  # everyone's write buffer is complete
        # halo exchange: push my edge cells into the neighbours' write
        # buffers' halo cells (for the *next* iteration's read)
        prom = Promise()
        if me > 0:
            rput(
                float(write_view[1]),
                write_bases[me - 1] + (per + 1),
                operation_cx.as_promise(prom),
            )
        if me < p - 1:
            rput(
                float(write_view[per]),
                write_bases[me + 1] + 0,
                operation_cx.as_promise(prom),
            )
        prom.finalize().wait()
        barrier()  # halos delivered
        read_bases, write_bases = write_bases, read_bases
        read_view, write_view = write_view, read_view

    barrier()
    solve_ns = ctx.clock.elapsed_since("solve")
    return solve_ns, np.array(read_view[1 : per + 1])


def run_stencil(
    cfg: StencilConfig,
    *,
    ranks: int = 8,
    version: Version = Version.V2021_3_6_EAGER,
    machine: str = "intel",
    flags=None,
) -> StencilResult:
    res = spmd_run(
        lambda: _stencil_body(cfg),
        ranks=ranks,
        version=version,
        machine=machine,
        segment_bytes=max(1 << 16, (cfg.n // ranks + 2) * 8 * 4),
        flags=flags,
    )
    solve_ns = max(v[0] for v in res.values)
    field = np.concatenate([v[1] for v in res.values])
    oracle = serial_jacobi(cfg)
    return StencilResult(
        config=cfg,
        ranks=ranks,
        version=version,
        machine=machine,
        solve_ns=solve_ns,
        field=field,
        matches_serial=bool(np.allclose(field, oracle, atol=1e-12)),
    )
