"""Half-approximate maximum-weight graph matching over RMA (paper §IV-C).

Implements the locally-dominant matching algorithm (Manne/Bisseling, the
algorithm underlying the ExaGraph application of Ghosh et al.): every
vertex points at its heaviest still-eligible neighbour; an edge whose
endpoints point at each other is *locally dominant* and joins the
matching; vertices that lose their candidate recompute and re-point.
With distinct edge weights the result is unique and identical to the
greedy (sort-by-weight) matching, and its weight is ≥ ½ of the optimum.

**Distribution.**  Vertices are block-partitioned; each rank owns the
state of its vertices.  Exactly like the UPC++ application the paper
measured, the implementation

* handles same-process updates directly (the app "manually optimizes for
  target memory locations on the same process"), but
* uses UPC++ RMA for *co-located* and remote processes alike: a cross-rank
  message claims a slot in the target's mailbox with an atomic
  ``fetch_add`` (future-synchronized) and writes the packed message with an
  ``rput`` registered on a per-round promise.

On a single node every cross-rank message is an on-node RMA+AMO pair, so
eager notification shaves per-message overhead; the overall solve speedup
is bounded by the fraction of cross-rank traffic — the graph-dependent
effect of Figure 8.

**Synchronization.**  The solve proceeds in barrier-separated rounds; a
round's sent-message count is accumulated on rank 0 with a value-less
atomic ``add`` and read back with ``rget``; the algorithm terminates when
a round sends no cross-rank messages (local work is driven to fixpoint
within the round).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro import (
    AtomicDomain,
    Promise,
    barrier_gen,
    current_ctx,
    new_,
    new_array,
    operation_cx,
    rank_me,
    rank_n,
    rget,
    rput,
)
from repro.apps.graphs import Graph, make_graph, owner_of
from repro.errors import UpcxxError
from repro.memory.global_ptr import GlobalPtr
from repro.runtime.config import Version
from repro.runtime.runtime import spmd_run
from repro.runtime.switchpoints import run_blocking
from repro.sim.costmodel import CostAction

_PROPOSE = 1
_MATCHED = 2
_MAX_ROUNDS = 10_000
_VBITS = 30
_VMASK = (1 << _VBITS) - 1


def pack_msg(kind: int, a: int, b: int) -> int:
    """Pack a message into one 64-bit mailbox word."""
    if a > _VMASK or b > _VMASK:
        raise ValueError("vertex id exceeds 30-bit message field")
    return (kind << (2 * _VBITS)) | (a << _VBITS) | b


def unpack_msg(word: int) -> tuple[int, int, int]:
    return word >> (2 * _VBITS), (word >> _VBITS) & _VMASK, word & _VMASK


@dataclass(frozen=True)
class MatchingConfig:
    """Parameters of one matching run."""

    graph: str = "random"
    scale: int = 4
    seed: int = 0
    mailbox_slack: int = 4096

    def build_graph(self) -> Graph:
        return make_graph(self.graph, scale=self.scale, seed=self.seed)


@dataclass
class MatchingResult:
    """Outcome of one distributed matching run."""

    config: MatchingConfig
    ranks: int
    version: Version
    machine: str
    n: int
    n_edges: int
    mate: list[int]  # -1 = unmatched
    weight: float
    solve_ns: float
    rounds: int
    cross_messages: int

    def matched_pairs(self) -> list[tuple[int, int]]:
        return [(v, m) for v, m in enumerate(self.mate) if 0 <= v < m]


def serial_matching(g: Graph) -> list[int]:
    """The sequential locally-dominant matching (== greedy by weight when
    weights are distinct); the distributed solve must reproduce it."""
    order = sorted(
        ((w, u, v) for u, v, w in g.edges()), reverse=True
    )
    mate = [-1] * g.n
    for _, u, v in order:
        if mate[u] < 0 and mate[v] < 0:
            mate[u] = v
            mate[v] = u
    return mate


def matching_weight(g: Graph, mate: list[int]) -> float:
    total = 0.0
    for u, m in enumerate(mate):
        if m > u:
            w = next(w for x, w in g.adj[u] if x == m)
            total += w
    return total


class _RankSolver:
    """Per-rank solver state and round logic (runs inside spmd_run)."""

    def __init__(self, g: Graph, cfg: MatchingConfig):
        self.g = g
        self.cfg = cfg
        self.ctx = current_ctx()
        self.me = rank_me()
        self.p = rank_n()
        per = -(-g.n // self.p)
        self.vlo = min(self.me * per, g.n)
        self.vhi = min(self.vlo + per, g.n)
        self.mate = {v: -1 for v in range(self.vlo, self.vhi)}
        self.cand: dict[int, int] = {}
        self.proposals: dict[int, set[int]] = {}
        self.known_dead: set[int] = set()
        self.local_queue: list[int] = []  # packed same-process messages
        self.cross_sent = 0
        self.ad = AtomicDomain({"add", "fetch_add"}, "u64")
        # mailbox capacity: worst case ~ a few messages per incident edge.
        # Uniform across ranks (global max) so that every rank's shared-heap
        # layout is identical and pointers can be exchanged by offset.
        incident_max = 0
        for r in range(self.p):
            lo, hi = min(r * per, g.n), min(r * per + per, g.n)
            incident_max = max(
                incident_max, sum(len(g.adj[v]) for v in range(lo, hi))
            )
        cap = 4 * incident_max + cfg.mailbox_slack
        self.inbox = new_array("u64", cap)
        self.cap = cap
        self.cursor = new_("u64", 0)
        self.counters = new_array("u64", 512)
        # lock-step allocation ⇒ identical offsets on every rank
        self.inbox_of = [
            GlobalPtr(r, self.inbox.offset, self.inbox.ts)
            for r in range(self.p)
        ]
        self.cursor_of = [
            GlobalPtr(r, self.cursor.offset, self.cursor.ts)
            for r in range(self.p)
        ]
        self.counter0 = GlobalPtr(0, self.counters.offset, self.counters.ts)
        self.round_promise = Promise()

    # -- helpers ------------------------------------------------------------

    def owner(self, v: int) -> int:
        return owner_of(v, self.g.n, self.p)

    def is_dead(self, v: int) -> bool:
        if self.vlo <= v < self.vhi:
            return self.mate[v] >= 0
        return v in self.known_dead

    def send_gen(self, dst_rank: int, word: int):
        """Deliver a message: direct for same-process (the app's manual
        optimization), RMA mailbox for co-located/remote processes.

        A generator (the slot claim blocks on a future) — every caller in
        the solve chain is itself a generator, so the continuation
        substrate resumes the whole stack in place via ``yield from``.
        """
        if dst_rank == self.me:
            self.ctx.charge(CostAction.CPU_STORE)
            self.local_queue.append(word)
            return
        slot = yield from self.ad.fetch_add(
            self.cursor_of[dst_rank], 1
        ).wait_gen()
        if slot >= self.cap:
            raise UpcxxError("matching mailbox overflow; raise mailbox_slack")
        rput(
            word,
            self.inbox_of[dst_rank] + int(slot),
            operation_cx.as_promise(self.round_promise),
        )
        self.cross_sent += 1

    # -- algorithm steps -------------------------------------------------------

    def recompute_candidate_gen(self, v: int):
        """Point ``v`` at its heaviest eligible neighbour and propose."""
        best, best_w = -1, -1.0
        for u, w in self.g.adj[v]:
            # neighbour-state lookup: a random access into big state arrays
            self.ctx.charge(CostAction.FUNCTION_CALL)
            self.ctx.charge(CostAction.DRAM_RANDOM_ACCESS)
            if self.is_dead(u):
                continue
            if w > best_w or (w == best_w and u > best):
                best, best_w = u, w
        self.cand[v] = best
        if best < 0:
            return  # retired unmatched: every neighbour is taken
        # The proposal is sent unconditionally — even when the mutual match
        # is already visible here — because the partner's owner must also
        # observe both sides to record its half of the match.
        yield from self.send_gen(self.owner(best), pack_msg(_PROPOSE, v, best))
        if best in self.proposals.get(v, ()):  # mutual: locally dominant
            yield from self.declare_match_gen(v, best)

    def declare_match_gen(self, v: int, u: int):
        """Record ``v``–``u`` as matched (v owned here) and notify v's
        neighbourhood so pointers at v are recomputed.  If u is also owned
        here the partner side is recorded directly; otherwise u's owner
        detects the same mutual proposal independently (both PROPOSE
        messages were sent unconditionally) and records its side."""
        if self.mate[v] >= 0:
            return
        self.mate[v] = u
        yield from self._broadcast_matched_gen(v, u)
        if self.vlo <= u < self.vhi:
            if self.mate[u] < 0:
                self.mate[u] = v
                yield from self._broadcast_matched_gen(u, v)
        else:
            self.known_dead.add(u)

    def _broadcast_matched_gen(self, v: int, partner: int):
        for x, _ in self.g.adj[v]:
            self.ctx.charge(CostAction.CPU_LOAD)
            if x == partner:
                continue
            yield from self.send_gen(self.owner(x), pack_msg(_MATCHED, v, x))

    def handle_gen(self, word: int):
        kind, a, b = unpack_msg(word)
        self.ctx.charge(CostAction.FUNCTION_CALL)
        if kind == _PROPOSE:
            # a (remote or local) proposes to owned vertex b
            v = b
            if not (self.vlo <= v < self.vhi):
                raise UpcxxError("misrouted PROPOSE message")
            if self.mate[v] >= 0:
                return  # stale: v already matched, a will learn via MATCHED
            self.proposals.setdefault(v, set()).add(a)
            if self.cand.get(v, -2) == a:
                yield from self.declare_match_gen(v, a)
        elif kind == _MATCHED:
            # vertex a has been matched; owned neighbour b may need to
            # re-point
            self.known_dead.add(a)
            v = b
            if not (self.vlo <= v < self.vhi):
                raise UpcxxError("misrouted MATCHED message")
            if self.mate[v] < 0 and self.cand.get(v, -2) == a:
                yield from self.recompute_candidate_gen(v)
        else:
            raise UpcxxError(f"corrupt mailbox word {word:#x}")

    def drain_local_gen(self):
        """Process same-process messages to fixpoint within the round."""
        while self.local_queue:
            yield from self.handle_gen(self.local_queue.pop())

    def drain_inbox(self) -> list[int]:
        """Read and reset this rank's mailbox (own memory: direct access)."""
        ctx = self.ctx
        ctx.charge(CostAction.CPU_LOAD)
        k = int(ctx.segment.read_scalar(self.cursor.offset, self.cursor.ts))
        if k == 0:
            return []
        view = ctx.segment.view_array(self.inbox.offset, self.inbox.ts, k)
        ctx.charge(CostAction.CPU_LOAD, k)
        words = [int(x) for x in view]
        ctx.charge(CostAction.CPU_STORE)
        ctx.segment.write_scalar(self.cursor.offset, self.cursor.ts, 0)
        return words

    # -- the solve loop -----------------------------------------------------------

    def solve_gen(self):
        """The solve loop as a generator continuation (``yield from`` at
        every blocking construct); :meth:`solve` drives this same
        generator on blocking substrates."""
        ctx = self.ctx
        yield from barrier_gen()
        ctx.clock.mark("solve")
        total_cross = 0
        for v in range(self.vlo, self.vhi):
            yield from self.recompute_candidate_gen(v)
        yield from self.drain_local_gen()
        rounds = 0
        while True:
            if rounds >= min(_MAX_ROUNDS, 512):
                raise UpcxxError("matching failed to converge (rounds cap)")
            # publish this round's traffic, then settle all puts
            if self.cross_sent:
                yield from self.ad.add(
                    self.counter0 + rounds, self.cross_sent
                ).wait_gen()
            yield from self.round_promise.finalize().wait_gen()
            total_cross += self.cross_sent
            yield from barrier_gen()  # round's messages all in mailboxes
            sent_global = int(
                (yield from rget(self.counter0 + rounds).wait_gen())
            )
            rounds += 1
            if sent_global == 0:
                break
            self.cross_sent = 0
            self.round_promise = Promise()
            words = self.drain_inbox()
            # drains done before anyone writes next-round slots
            yield from barrier_gen()
            for w in words:
                yield from self.handle_gen(w)
            yield from self.drain_local_gen()
        yield from barrier_gen()
        solve_ns = ctx.clock.elapsed_since("solve")
        return solve_ns, rounds, total_cross, dict(self.mate)

    def solve(self) -> tuple[float, int, int, dict[int, int]]:
        """Blocking wrapper over :meth:`solve_gen` (thread-shim path)."""
        return run_blocking(self.ctx, self.solve_gen())


def _matching_body_gen(g: Graph, cfg: MatchingConfig):
    """Generator SPMD body — the event-loop continuation fast path."""
    return (yield from _RankSolver(g, cfg).solve_gen())


def _matching_body(g: Graph, cfg: MatchingConfig):
    """Blocking SPMD body — the parity oracle for the continuation port."""
    return _RankSolver(g, cfg).solve()


def run_matching(
    cfg: MatchingConfig,
    *,
    ranks: int = 16,
    version: Version = Version.V2021_3_6_EAGER,
    machine: str = "intel",
    conduit: str = "mpi",
    graph: Optional[Graph] = None,
    flags=None,
    continuation: bool = True,
) -> MatchingResult:
    """Run the distributed matching solve and collect the global result.

    ``conduit`` defaults to mpi, matching the paper's setup for this
    application.  ``continuation=True`` (default) passes the generator
    body so the event-loop scheduler runs each rank as an in-place
    continuation; ``False`` forces the blocking wrapper (thread-shim
    path) — the parity tests compare the two.
    """
    g = graph if graph is not None else cfg.build_graph()
    incident_max = max(
        (len(a) for a in g.adj), default=0
    )
    per = -(-g.n // ranks)
    seg_bytes = 8 * (
        4 * per * max(1, incident_max) + cfg.mailbox_slack + 4096
    )
    body = _matching_body_gen if continuation else (
        lambda gg, cc: _matching_body(gg, cc)
    )
    res = spmd_run(
        body,
        args=(g, cfg),
        ranks=ranks,
        version=version,
        machine=machine,
        conduit=conduit,
        seed=cfg.seed,
        segment_bytes=max(1 << 17, seg_bytes),
        flags=flags,
    )
    mate = [-1] * g.n
    rounds = 0
    cross = 0
    solve_ns = 0.0
    for r_solve, r_rounds, r_cross, r_mate in res.values:
        solve_ns = max(solve_ns, r_solve)
        rounds = max(rounds, r_rounds)
        cross += r_cross
        for v, m in r_mate.items():
            mate[v] = m
    return MatchingResult(
        config=cfg,
        ranks=ranks,
        version=version,
        machine=machine,
        n=g.n,
        n_edges=g.n_edges,
        mate=mate,
        weight=matching_weight(g, mate),
        solve_ns=solve_ns,
        rounds=rounds,
        cross_messages=cross,
    )
