"""Declarative A/B benchmark engine: one flag toggled, everything measured.

Every claim this repo makes is *differential* — eager vs. deferred
notification, aggregation on vs. off, wake list vs. predicate scan — at
fixed everything-else.  Before this module each benchmark hand-rolled its
own comparison loop and its own JSON shape; this module is the one shared
harness:

* An :class:`ABSpec` names a workload factory (:data:`WORKLOADS`), a base
  build (:class:`~repro.runtime.config.Version` plus flag overrides),
  **exactly one toggled flag** (or a flag pair), a sweep axis, the seeds
  to repeat over, and the headline metrics to extract.  The engine builds
  both arms from the same base via :meth:`FeatureFlags.replace` and
  asserts with :func:`~repro.runtime.config.flag_delta` that they differ
  in the declared toggle and nothing else — two configurations can never
  silently drift apart in an unrelated knob.
* :func:`run_ab_spec` runs both arms at every (point, seed), computes
  per-point speedups with 95% confidence intervals over the seed
  repetitions (virtual-time metrics are deterministic per seed, so all
  interval width is seed-to-seed workload variation — see
  :func:`repro.sim.stats.seed_confidence_interval`), and emits a
  ``BENCH_ab_<name>.json`` document whose **deterministic** fields are
  strictly separated from **environment** metadata (wall-clock seconds,
  interpreter version).  Two runs of the same code produce bit-identical
  deterministic blocks, so the artifacts diff cleanly across PRs and
  regressions in the headline metrics (notification gap, injections,
  polls) are caught by :func:`gate_ab` instead of by someone re-reading
  prose.
* :func:`gate_ab` compares a fresh run against a committed artifact:
  shared (point, seed) cells must reproduce the baseline within the
  baseline's confidence interval — which is *zero-width* for
  single-seed or seed-invariant specs, making the gate an exact-equality
  check exactly where the simulation is exactly reproducible.

The discipline follows the reference A/B methodology named in ROADMAP
(same binary, one flag toggled, per-size speedup table): the
``wake_scan`` spec is the honesty check — its deterministic metrics
(switch counts, virtual clocks) must measure **exactly 1.00×**, because
the wake list is a pure pick-mechanism swap; only the environment-side
wall-clock numbers may show the win.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.runtime.config import (
    FeatureFlags,
    Version,
    flag_delta,
    flag_names,
    flags_for,
)
from repro.sim.stats import seed_confidence_interval

#: bumped when the artifact layout changes incompatibly
AB_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class MetricSpec:
    """One extracted metric: its key in the workload's metric dict and
    which direction is better (orients the speedup so >1 means the
    toggled arm improved).  ``headline`` metrics are gated by
    :func:`gate_ab`; non-headline metrics are recorded but not gated."""

    name: str
    better: str = "lower"
    headline: bool = True

    def __post_init__(self):
        if self.better not in ("lower", "higher"):
            raise ValueError(
                f"metric {self.name!r}: better must be 'lower' or "
                f"'higher', got {self.better!r}"
            )


@dataclass(frozen=True)
class ABSpec:
    """A declarative A/B experiment (see module docstring)."""

    name: str
    description: str
    #: key into :data:`WORKLOADS`
    workload: str
    #: the swept parameter's name (a workload-understood axis:
    #: ``batch``, ``ranks``, ``updates_per_rank``, ...)
    axis: str
    points: tuple
    seeds: tuple
    #: flag overrides defining arm B relative to the base (exactly one
    #: entry, or two for a declared flag-pair)
    toggle: dict
    metrics: tuple
    version: Version = Version.V2021_3_6_DEFER
    #: flag overrides applied to *both* arms on top of ``flags_for(version)``
    base_overrides: dict = field(default_factory=dict)
    #: quick-mode subsets (CI smoke); must be subsets of the full sweep so
    #: a quick run's cells are directly comparable to a full baseline's
    quick_points: Optional[tuple] = None
    quick_seeds: Optional[tuple] = None
    arm_a: str = "off"
    arm_b: str = "on"
    #: fixed workload parameters (identical in quick and full mode — only
    #: points/seeds shrink, so every quick cell exists in the full sweep)
    workload_params: dict = field(default_factory=dict)

    def __post_init__(self):
        known = set(flag_names())
        if not (1 <= len(self.toggle) <= 2):
            raise ValueError(
                f"spec {self.name!r}: toggle must name exactly one flag "
                f"(or a flag pair), got {sorted(self.toggle)}"
            )
        for k in (*self.toggle, *self.base_overrides):
            if k not in known:
                raise ValueError(
                    f"spec {self.name!r}: unknown FeatureFlags field {k!r}"
                )
        if not self.points:
            raise ValueError(f"spec {self.name!r}: empty points")
        if not self.seeds:
            raise ValueError(f"spec {self.name!r}: empty seeds")
        for sub, full, what in (
            (self.quick_points, self.points, "quick_points"),
            (self.quick_seeds, self.seeds, "quick_seeds"),
        ):
            if sub is not None and not set(sub) <= set(full):
                raise ValueError(
                    f"spec {self.name!r}: {what} must be a subset of the "
                    f"full sweep (quick cells must exist in full artifacts)"
                )
        names = [m.name for m in self.metrics]
        if len(names) != len(set(names)):
            raise ValueError(f"spec {self.name!r}: duplicate metric names")
        if self.arm_a == self.arm_b:
            raise ValueError(f"spec {self.name!r}: arm labels must differ")
        for label, payload in (
            ("toggle", self.toggle),
            ("base_overrides", self.base_overrides),
            ("workload_params", self.workload_params),
        ):
            if json.loads(json.dumps(payload)) != payload:
                raise ValueError(
                    f"spec {self.name!r}: {label} must survive a JSON "
                    "round-trip (string keys, scalar/tuple-free values)"
                )

    def sweep(self, quick: bool) -> tuple[tuple, tuple]:
        """(points, seeds) of the requested mode."""
        points = (
            self.quick_points
            if quick and self.quick_points is not None
            else self.points
        )
        seeds = (
            self.quick_seeds
            if quick and self.quick_seeds is not None
            else self.seeds
        )
        return points, seeds

    def arm_flags(self) -> dict:
        """``{arm label: FeatureFlags}`` with the one-toggle discipline
        asserted: the arms differ in exactly the declared toggle."""
        base = flags_for(self.version).replace(**self.base_overrides)
        armed = base.replace(**self.toggle)
        delta = flag_delta(base, armed)
        if set(delta) != set(self.toggle):
            raise ValueError(
                f"spec {self.name!r}: toggle {sorted(self.toggle)} is not "
                f"the exact arm delta {sorted(delta)} — a toggle entry "
                "repeats its base value (vacuous) or replace() normalized "
                "something unexpected"
            )
        return {self.arm_a: base, self.arm_b: armed}


# ---------------------------------------------------------------------------
# workload registry
# ---------------------------------------------------------------------------

#: name -> factory(point=, axis=, flags=, version=, seed=, params=) -> dict
#: with ``"metrics"`` (scalar, deterministic — the gated values),
#: optional ``"details"`` (deterministic extras, recorded not gated) and
#: optional ``"env"`` (wall-clock extras, environment side only)
WORKLOADS: dict[str, Callable] = {}


def workload(name: str):
    def deco(fn):
        WORKLOADS[name] = fn
        return fn

    return deco


def mean_update_gap(stats) -> tuple[float, int]:
    """Weighted mean notification gap over the operation spans (the
    ``mode='none'`` classes are collectives with no notification)."""
    total = 0.0
    n = 0
    for (mode, _loc), gap in stats.gaps.items():
        if mode == "none":
            continue
        total += gap.mean_ns * gap.count
        n += gap.count
    return (total / n if n else 0.0), n


def _gups_kwargs(point, axis, seed, params):
    """Split workload params into run_gups kwargs and GupsConfig kwargs,
    applying the swept axis to whichever side owns it."""
    p = dict(params)
    run_kw = {
        "ranks": p.pop("ranks", 4),
        "n_nodes": p.pop("n_nodes", 1),
        "conduit": p.pop("conduit", None),
        "machine": p.pop("machine", "intel"),
    }
    variant = p.pop("variant", None)
    by_flag = p.pop("variant_by_flag", None)
    cfg_kw = {
        "table_log2": p.pop("table_log2", 10),
        "updates_per_rank": p.pop("updates_per_rank", 64),
        "batch": p.pop("batch", 16),
        "seed": seed,
    }
    if p:
        raise ValueError(f"unknown gups workload params: {sorted(p)}")
    if axis in run_kw:
        run_kw[axis] = point
    elif axis in cfg_kw and axis != "seed":
        cfg_kw[axis] = point
    else:
        raise ValueError(f"gups workload cannot sweep axis {axis!r}")
    return run_kw, cfg_kw, variant, by_flag


def _pick_variant(variant, by_flag, flags):
    """The workload's tracking idiom may key off the toggled flag (the
    real-code shape: request continuation completions when the build has
    them, fall back to futures otherwise)."""
    if variant is not None:
        return variant
    if by_flag is not None:
        return by_flag["on" if getattr(flags, by_flag["flag"]) else "off"]
    raise ValueError("gups workload needs 'variant' or 'variant_by_flag'")


#: variants whose unsynchronized RMA read-modify-write may lose updates;
#: HPCC verification accepts them at <= 1% table error, everything else
#: must match the race-free oracle exactly
_RACY_VARIANTS = ("rma_promise", "rma_future")


def _verify_gups(res, cfg, axis, point, seed) -> None:
    ok = (
        res.passes_hpcc_verification
        if cfg.variant in _RACY_VARIANTS
        else res.matches_oracle
    )
    if not ok:
        raise AssertionError(
            f"gups workload failed verification ({cfg.variant}, "
            f"{axis}={point}, seed={seed})"
        )


def _gups_cell(res) -> dict:
    metrics = {
        "solve_ns": res.solve_ns,
        "am_injects": res.am_injects,
        "progress_polls": res.progress_polls,
    }
    details = {"gups": round(res.gups, 9), "checksum": int(res.checksum)}
    if res.obs_stats is not None:
        gap, n_gap = mean_update_gap(res.obs_stats)
        metrics["mean_gap_ns"] = round(gap, 6)
        details["gap_count"] = n_gap
        details["gap_modes"] = sorted(
            {mode for (mode, _loc) in res.obs_stats.gaps if mode != "none"}
        )
    return {"metrics": metrics, "details": details}


@workload("gups")
def _wl_gups(*, point, axis, flags, version, seed, params):
    """One GUPS run; metrics are the headline counters the ROADMAP names
    (notification gap, injections, polls) plus the virtual solve time."""
    from repro.apps.gups import GupsConfig, run_gups

    run_kw, cfg_kw, variant, by_flag = _gups_kwargs(point, axis, seed, params)
    cfg = GupsConfig(variant=_pick_variant(variant, by_flag, flags), **cfg_kw)
    res = run_gups(cfg, version=version, flags=flags, **run_kw)
    _verify_gups(res, cfg, axis, point, seed)
    return _gups_cell(res)


@workload("gups_gap_parity")
def _wl_gups_gap_parity(*, point, axis, flags, version, seed, params):
    """GUPS on *both* scheduler substrates with parity asserted
    (checksums and virtual clocks bit-identical) — the contbench cell,
    expressed as an engine workload.  Thread/event wall seconds ride in
    the env section; every deterministic field comes from the thread run.
    """
    from repro.apps.gups import GupsConfig, run_gups

    run_kw, cfg_kw, variant, by_flag = _gups_kwargs(point, axis, seed, params)
    cfg = GupsConfig(variant=_pick_variant(variant, by_flag, flags), **cfg_kw)
    out = {}
    for sub, fl in (
        ("thread", flags),
        ("event", flags.replace(sched_event_loop=True)),
    ):
        t0 = time.perf_counter()
        res = run_gups(cfg, version=version, flags=fl, **run_kw)
        out[sub] = (time.perf_counter() - t0, res)
    th_s, th_r = out["thread"]
    ev_s, ev_r = out["event"]
    if th_r.checksum != ev_r.checksum or th_r.solve_ns != ev_r.solve_ns:
        raise AssertionError(
            f"substrate parity broken on {cfg.variant}/{axis}={point} "
            f"(checksum {th_r.checksum} vs {ev_r.checksum}, "
            f"solve_ns {th_r.solve_ns} vs {ev_r.solve_ns})"
        )
    _verify_gups(th_r, cfg, axis, point, seed)
    cell = _gups_cell(th_r)
    cell["env"] = {"thread_s": round(th_s, 6), "event_s": round(ev_s, 6)}
    return cell


@workload("blocked_storm")
def _wl_blocked_storm(*, point, axis, flags, version, seed, params):
    """The blocked-heavy barrier storm from ``schedbench`` (staggered
    arrivals park nearly every rank).  Deterministic metrics are switch
    count and final virtual clock — a pure pick-mechanism swap like the
    wake list must measure exactly 1.00× on both; the wall-clock win
    lives in the environment section only."""
    from repro.bench.schedbench import _blocked_storm_body
    from repro.runtime.runtime import spmd_run

    if axis != "ranks":
        raise ValueError("blocked_storm sweeps the 'ranks' axis only")
    ranks = point
    rounds = params["rounds_by_ranks"][str(ranks)]
    res = spmd_run(
        _blocked_storm_body(rounds),
        ranks=ranks,
        version=version,
        machine="generic",
        segment_bytes=1 << 12,
        flags=flags,
    )
    return {
        "metrics": {
            "switches": res.world.sched_switches,
            "max_clock_ns": res.max_clock_ns(),
        },
        "details": {"barrier_rounds": rounds},
    }


# ---------------------------------------------------------------------------
# the engine
# ---------------------------------------------------------------------------


def run_cell(
    spec: ABSpec,
    *,
    point,
    flags: FeatureFlags,
    seed: int,
    params_override: Optional[dict] = None,
) -> tuple[dict, dict]:
    """Run one (point, arm, seed) cell of ``spec``; returns
    ``(cell, env)`` where ``cell`` holds the deterministic ``metrics`` /
    ``details`` and ``env`` the wall seconds plus any workload env
    extras.  ``params_override`` lets a caller reuse a spec's workload
    off-spec (contbench's promise rows); engine sweeps never pass it."""
    fn = WORKLOADS[spec.workload]
    params = dict(spec.workload_params)
    if params_override:
        params.update(params_override)
    t0 = time.perf_counter()
    out = fn(
        point=point,
        axis=spec.axis,
        flags=flags,
        version=spec.version,
        seed=seed,
        params=params,
    )
    wall_s = time.perf_counter() - t0
    metrics = out["metrics"]
    missing = [m.name for m in spec.metrics if m.name not in metrics]
    if missing:
        raise KeyError(
            f"workload {spec.workload!r} did not produce metrics "
            f"{missing} required by spec {spec.name!r}"
        )
    cell = {"metrics": metrics, "details": out.get("details", {})}
    env = {"wall_s": round(wall_s, 6), **out.get("env", {})}
    return cell, env


def _ratio(num: float, den: float) -> Optional[float]:
    """Oriented speedup sample; None when undefined (nonzero / zero)."""
    if den == 0:
        return 1.0 if num == 0 else None
    return num / den


def _speedup_samples(metric: MetricSpec, va: list, vb: list) -> list:
    """Per-seed speedups oriented so >1 means arm B improved."""
    if metric.better == "lower":
        return [_ratio(a, b) for a, b in zip(va, vb)]
    return [_ratio(b, a) for a, b in zip(va, vb)]


def run_ab_spec(spec: ABSpec, *, quick: bool = False, progress=None) -> dict:
    """Run the full A/B sweep of ``spec``; returns the artifact doc."""

    def say(msg: str) -> None:
        if progress is not None:
            progress(msg)

    points, seeds = spec.sweep(quick)
    arms = spec.arm_flags()
    arm_labels = (spec.arm_a, spec.arm_b)
    t_start = time.perf_counter()
    point_rows = []
    env_cells = {}
    for point in points:
        cells = {label: {} for label in arm_labels}
        for seed in seeds:
            for label in arm_labels:
                say(
                    f"ab {spec.name}: {spec.axis}={point} seed={seed} "
                    f"arm={label} ..."
                )
                cell, env = run_cell(
                    spec, point=point, flags=arms[label], seed=seed
                )
                cells[label][str(seed)] = cell
                env_cells[f"{point}|{label}|{seed}"] = env
        metrics_out = {}
        for m in spec.metrics:
            va = [
                float(cells[spec.arm_a][str(s)]["metrics"][m.name])
                for s in seeds
            ]
            vb = [
                float(cells[spec.arm_b][str(s)]["metrics"][m.name])
                for s in seeds
            ]
            sp = _speedup_samples(m, va, vb)
            defined = [s for s in sp if s is not None]
            metrics_out[m.name] = {
                "better": m.better,
                "headline": m.headline,
                "per_seed_a": [round(v, 9) for v in va],
                "per_seed_b": [round(v, 9) for v in vb],
                "a": seed_confidence_interval(va).as_dict(),
                "b": seed_confidence_interval(vb).as_dict(),
                "speedup": (
                    seed_confidence_interval(defined).as_dict()
                    if defined
                    else None
                ),
            }
        point_rows.append(
            {"point": point, "cells": cells, "metrics": metrics_out}
        )

    headline = {}
    for m in spec.metrics:
        if not m.headline:
            continue
        means = [
            row["metrics"][m.name]["speedup"]["mean"]
            for row in point_rows
            if row["metrics"][m.name]["speedup"] is not None
        ]
        headline[m.name] = {
            "better": m.better,
            "points": len(means),
            "speedup_mean_min": round(min(means), 9) if means else None,
            "speedup_mean_max": round(max(means), 9) if means else None,
        }

    wall_total = time.perf_counter() - t_start
    doc = {
        "bench": "ab",
        "schema_version": AB_SCHEMA_VERSION,
        "name": spec.name,
        "quick": quick,
        "deterministic": {
            "description": spec.description,
            "workload": spec.workload,
            "workload_params": spec.workload_params,
            "version": spec.version.value,
            "base_overrides": spec.base_overrides,
            "toggle": spec.toggle,
            "arms": {"a": spec.arm_a, "b": spec.arm_b},
            "axis": spec.axis,
            "seeds": list(seeds),
            "points": point_rows,
            "headline": headline,
        },
        "environment": {
            "python": sys.version.split()[0],
            "invocation": f"python -m repro.bench ab --spec {spec.name}",
            "wall_s_total": round(wall_total, 6),
            "cells": env_cells,
        },
    }
    return doc


def write_ab_spec(
    path: str, spec: ABSpec, *, quick: bool = False, progress=None
) -> dict:
    doc = run_ab_spec(spec, quick=quick, progress=progress)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    return doc


# ---------------------------------------------------------------------------
# the regression gate
# ---------------------------------------------------------------------------


def _shared_mean(per_seed: list, seeds: list, shared: list) -> float:
    idx = {s: i for i, s in enumerate(seeds)}
    vals = [per_seed[idx[s]] for s in shared]
    return sum(vals) / len(vals)


def _tolerance(ci: dict) -> float:
    """Baseline CI halfwidth plus float-roundoff slack: zero seed
    variation means exact reproduction is demanded (up to rounding)."""
    half = abs(ci["hi"] - ci["mean"])
    return half + 1e-9 * abs(ci["mean"]) + 1e-9


def gate_ab(
    fresh: dict, baseline: dict, *, allow_quick_baseline: bool = False
) -> list[str]:
    """Compare a fresh run against a committed baseline artifact; returns
    a list of human-readable problems (empty = gate passes).

    Shared (point, seed) cells are deterministic in virtual time, so each
    headline metric's per-arm means and speedup over the shared seeds
    must reproduce the baseline within the baseline's seed-variation
    confidence interval — exactly, when that interval is zero-width.
    """
    problems: list[str] = []
    if baseline.get("bench") != "ab":
        return [f"baseline is not an ab artifact (bench={baseline.get('bench')!r})"]
    if fresh.get("name") != baseline.get("name"):
        return [
            f"artifact mismatch: fresh {fresh.get('name')!r} vs baseline "
            f"{baseline.get('name')!r}"
        ]
    if baseline.get("schema_version") != fresh.get("schema_version"):
        return [
            f"schema_version mismatch: fresh "
            f"{fresh.get('schema_version')} vs baseline "
            f"{baseline.get('schema_version')} — regenerate the baseline"
        ]
    if baseline.get("quick") and not allow_quick_baseline:
        return [
            "baseline is a quick-mode artifact; CI gates only accept full "
            "runs (regenerate without --quick, or pass an explicit "
            "--baseline to compare quick against quick)"
        ]
    det_f, det_b = fresh["deterministic"], baseline["deterministic"]
    for key in (
        "workload",
        "workload_params",
        "version",
        "base_overrides",
        "toggle",
        "arms",
        "axis",
    ):
        if det_f.get(key) != det_b.get(key):
            problems.append(
                f"spec drifted in {key!r}: fresh {det_f.get(key)!r} vs "
                f"baseline {det_b.get(key)!r} — regenerate the baseline"
            )
    if problems:
        return problems

    seeds_f, seeds_b = det_f["seeds"], det_b["seeds"]
    shared_seeds = [s for s in seeds_f if s in seeds_b]
    if not shared_seeds:
        return ["no seeds shared between fresh run and baseline"]
    rows_b = {json.dumps(r["point"]): r for r in det_b["points"]}
    headline_names = [n for n in det_f["headline"]]
    shared_points = 0
    for row_f in det_f["points"]:
        row_b = rows_b.get(json.dumps(row_f["point"]))
        if row_b is None:
            continue
        shared_points += 1
        point = row_f["point"]
        for name in headline_names:
            mf, mb = row_f["metrics"][name], row_b["metrics"][name]
            for arm_key in ("a", "b"):
                got = _shared_mean(
                    mf[f"per_seed_{arm_key}"], seeds_f, shared_seeds
                )
                ref = _shared_mean(
                    mb[f"per_seed_{arm_key}"], seeds_b, shared_seeds
                )
                tol = _tolerance(mb[arm_key])
                if abs(got - ref) > tol:
                    problems.append(
                        f"{name} arm {arm_key} drifted at point {point}: "
                        f"{got:g} vs baseline {ref:g} "
                        f"(tolerance {tol:g}) — the simulation changed; "
                        "regenerate the artifact if intended"
                    )
            if mf["speedup"] is not None and mb["speedup"] is not None:
                tol = _tolerance(mb["speedup"])
                got, ref = mf["speedup"]["mean"], mb["speedup"]["mean"]
                if abs(got - ref) > tol:
                    problems.append(
                        f"{name} speedup drifted at point {point}: "
                        f"{got:g} vs baseline {ref:g} (tolerance {tol:g})"
                    )
    if shared_points == 0:
        problems.append("no points shared between fresh run and baseline")
    return problems


# ---------------------------------------------------------------------------
# the specs
# ---------------------------------------------------------------------------

SPECS: dict[str, ABSpec] = {}


def _register(spec: ABSpec) -> ABSpec:
    SPECS[spec.name] = spec
    return spec


EAGER_DEFER = _register(ABSpec(
    name="eager_defer",
    description=(
        "the paper's headline differential: future-conjoined GUPS "
        "(rma_future) on the 2021.3.6 snapshot, deferred vs eager "
        "notification, off-node over udp — eager collapses the "
        "notification gap (completion observed -> notification "
        "dispatched) and shortens the virtual solve time at identical "
        "injection and poll counts"
    ),
    workload="gups",
    axis="batch",
    points=(8, 16, 32, 64),
    quick_points=(16, 32),
    seeds=(1, 2, 3),
    quick_seeds=(1, 2),
    version=Version.V2021_3_6_DEFER,
    base_overrides={"obs_spans": True},
    toggle={"eager_notification": True},
    arm_a="defer",
    arm_b="eager",
    workload_params={
        "variant": "rma_future",
        "ranks": 4,
        "n_nodes": 2,
        "conduit": "udp",
        "machine": "ibm",
        # large enough that the racy RMA variant's lost updates stay
        # under the HPCC 1% verification bound at every batch size
        "table_log2": 12,
        "updates_per_rank": 48,
    },
    metrics=(
        MetricSpec("mean_gap_ns", better="lower"),
        MetricSpec("progress_polls", better="lower"),
        MetricSpec("solve_ns", better="lower"),
        MetricSpec("am_injects", better="lower", headline=False),
    ),
))

AGG_ON_OFF = _register(ABSpec(
    name="agg_on_off",
    description=(
        "destination-batched AM aggregation on the fire-and-forget GUPS "
        "variant, two nodes over ibv: aggregation coalesces per-update "
        "messages into bundles — fewer injections for the same result"
    ),
    workload="gups",
    axis="updates_per_rank",
    points=(32, 64, 96),
    quick_points=(32, 64),
    seeds=(1, 2, 3),
    quick_seeds=(1, 2),
    version=Version.V2021_3_6_EAGER,
    base_overrides={},
    toggle={"am_aggregation": True},
    arm_a="direct",
    arm_b="agg",
    workload_params={
        "variant": "agg",
        "ranks": 8,
        "n_nodes": 2,
        "conduit": "ibv",
        "machine": "intel",
        "table_log2": 10,
        "batch": 16,
    },
    metrics=(
        MetricSpec("am_injects", better="lower"),
        MetricSpec("solve_ns", better="lower"),
        MetricSpec("progress_polls", better="lower", headline=False),
    ),
))

WAKE_SCAN = _register(ABSpec(
    name="wake_scan",
    description=(
        "wake-list vs predicate-scan pick on the blocked-heavy barrier "
        "storm (event-loop substrate).  The honesty check: a pure "
        "pick-mechanism swap must measure exactly 1.00x on every "
        "deterministic metric (switch counts, virtual clocks); the "
        "wall-clock win lives in the environment section only"
    ),
    workload="blocked_storm",
    axis="ranks",
    points=(16, 64, 256),
    quick_points=(16, 64),
    seeds=(1,),
    quick_seeds=(1,),
    version=Version.V2021_3_6_EAGER,
    base_overrides={"sched_event_loop": True, "sched_wake_list": False},
    toggle={"sched_wake_list": True},
    arm_a="scan",
    arm_b="wake",
    workload_params={
        "rounds_by_ranks": {"16": 120, "64": 50, "256": 16},
    },
    metrics=(
        MetricSpec("switches", better="lower"),
        MetricSpec("max_clock_ns", better="lower"),
    ),
))

CONT_FUTURE = _register(ABSpec(
    name="cont_future",
    description=(
        "continuation completions vs the future path on the deferred "
        "build: with cx_continuations on, each GUPS atomic update is "
        "tracked by operation_cx.as_continuation (eager-by-construction, "
        "never parked on the deferred queue); with it off the workload "
        "falls back to future-conjoined batches that park until a drain"
    ),
    workload="gups_gap_parity",
    axis="batch",
    points=(8, 16, 32, 64),
    quick_points=(16, 32),
    seeds=(1, 2),
    quick_seeds=(1,),
    version=Version.V2021_3_6_DEFER,
    base_overrides={"obs_spans": True},
    toggle={"cx_continuations": True},
    arm_a="future",
    arm_b="cont",
    workload_params={
        "variant_by_flag": {
            "flag": "cx_continuations",
            "on": "cont",
            "off": "amo_future",
        },
        "ranks": 8,
        "n_nodes": 1,
        "machine": "intel",
        "table_log2": 12,
        "updates_per_rank": 96,
    },
    metrics=(
        MetricSpec("mean_gap_ns", better="lower"),
        MetricSpec("solve_ns", better="lower"),
        MetricSpec("progress_polls", better="lower", headline=False),
    ),
))


def select_specs(names=None) -> list[ABSpec]:
    """The specs to run: all registered (stable order) or a named subset."""
    if not names:
        return [SPECS[k] for k in sorted(SPECS)]
    out = []
    for name in names:
        if name not in SPECS:
            raise KeyError(
                f"unknown ab spec {name!r}; known: {sorted(SPECS)}"
            )
        out.append(SPECS[name])
    return out


def artifact_name(spec: ABSpec, *, quick: bool = False) -> str:
    return f"BENCH_ab_{spec.name}.quick.json" if quick else (
        f"BENCH_ab_{spec.name}.json"
    )
