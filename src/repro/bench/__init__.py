"""Benchmark harness: experiment grids over {version × machine × variant}
and paper-style text reports for every figure.

* :mod:`repro.bench.harness` — runners for the microbenchmarks (Figs 2–4),
  GUPS (Figs 5–7), graph matching (Fig 8), and the off-node check (§IV-A);
* :mod:`repro.bench.report` — fixed-width tables mirroring the figures'
  series, with the paper's target bands alongside measured values.
"""

from repro.bench.harness import (
    MICRO_OPS,
    MicroResult,
    gups_grid,
    matching_grid,
    micro_grid,
    offnode_grid,
    run_micro,
)
from repro.bench.report import (
    format_gups_figure,
    format_matching_figure,
    format_micro_figure,
    format_offnode_figure,
    format_table,
)

__all__ = [
    "MICRO_OPS",
    "MicroResult",
    "run_micro",
    "micro_grid",
    "gups_grid",
    "matching_grid",
    "offnode_grid",
    "format_table",
    "format_micro_figure",
    "format_gups_figure",
    "format_matching_figure",
    "format_offnode_figure",
]
