"""Command-line figure runner: ``python -m repro.bench <figure> [...]``.

Reproduces any of the paper's figures without pytest:

.. code-block:: console

    python -m repro.bench micro --machine intel
    python -m repro.bench gups --machine ibm --ranks 16
    python -m repro.bench matching --ranks 16 --scale 3
    python -m repro.bench offnode
    python -m repro.bench sched --out BENCH_sched.json
    python -m repro.bench serve --out BENCH_serve.json
    python -m repro.bench cont --out BENCH_cont.json
    python -m repro.bench ab --quick
    python -m repro.bench ab --spec eager_defer --gate
    python -m repro.bench validate
    python -m repro.bench all
    python -m repro.bench trace --variant rma_future --out gups.trace.json

Artifact hygiene: a ``--quick`` run of any artifact-writing subcommand
defaults its output to ``BENCH_<name>.quick.json`` so CI gate baselines
(the canonical ``BENCH_<name>.json``) are never clobbered by a smoke
sweep; an explicit ``--out`` pointing at an existing full artifact is
refused unless ``--force`` is given.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.bench.harness import (
    graph_localities,
    gups_grid,
    matching_grid,
    micro_grid,
    offnode_grid,
    traced_gups,
)
from repro.bench.report import (
    format_gups_figure,
    format_matching_figure,
    format_micro_bars,
    format_micro_figure,
    format_notification_report,
    format_offnode_figure,
    format_span_timeline,
)

_FIG_BY_MACHINE = {"intel": 2, "ibm": 3, "marvell": 4}
_GUPS_FIG = {"intel": 5, "ibm": 6, "marvell": 7}


def cmd_micro(args) -> None:
    fig = _FIG_BY_MACHINE.get(args.machine, "x")
    grid = micro_grid(args.machine, n_ops=args.ops, n_samples=args.samples)
    print(
        format_micro_figure(
            f"Figure {fig}: {args.machine} microbenchmarks "
            "[virtual ns/op]",
            grid,
        )
    )
    if getattr(args, "bars", False):
        for op in ("put", "get", "get_nv", "fadd", "fadd_nv"):
            print()
            print(format_micro_bars(f"Figure {fig}", grid, op))


def cmd_gups(args) -> None:
    fig = _GUPS_FIG.get(args.machine, "x")
    grid = gups_grid(
        args.machine,
        ranks=args.ranks,
        table_log2=args.table_log2,
        updates_per_rank=args.updates,
        batch=args.batch,
    )
    print(
        format_gups_figure(
            f"Figure {fig}: GUPS on {args.machine}, {args.ranks} processes "
            "[giga-updates/sec of virtual time]",
            grid,
        )
    )


def cmd_matching(args) -> None:
    loc = graph_localities(ranks=args.ranks, scale=args.scale)
    grid = matching_grid(
        args.machine, ranks=args.ranks, scale=args.scale
    )
    print(
        format_matching_figure(
            f"Figure 8: graph matching, {args.machine}, {args.ranks} "
            "processes [virtual ms]",
            grid,
            loc,
        )
    )


def cmd_offnode(args) -> None:
    grid = offnode_grid(args.machine, n_ops=args.ops)
    print(
        format_offnode_figure(
            f"Off-node RMA latency ({args.machine}, two nodes)", grid
        )
    )


def cmd_trace(args) -> None:
    from repro.apps.gups import GupsConfig
    from repro.runtime.config import Version

    version = Version(args.version)
    cfg = GupsConfig(
        variant=args.variant,
        table_log2=args.table_log2,
        updates_per_rank=args.updates,
        batch=args.batch,
    )
    res = traced_gups(
        cfg,
        ranks=args.ranks,
        version=version,
        machine=args.machine,
        trace_path=args.out,
    )
    print(
        format_notification_report(
            f"GUPS {args.variant} on {args.machine}, {args.ranks} ranks, "
            f"{version.value} [obs spans]",
            res.obs_stats,
        )
    )
    if args.timeline:
        print()
        print(format_span_timeline(res.obs_snapshots, limit=args.timeline))
    if args.out:
        print(f"\nwrote Chrome/Perfetto trace: {args.out}")
        print("open in https://ui.perfetto.dev or chrome://tracing")


def _resolve_artifact_out(name: str, args) -> str:
    """The output path of an artifact-writing subcommand.

    Quick runs default to ``BENCH_<name>.quick.json`` — the canonical
    ``BENCH_<name>.json`` files are CI gate baselines and a smoke sweep
    silently replacing one would gut the gate.  An *explicit* ``--out``
    that points a quick run at an existing full artifact is refused
    unless ``--force`` says the clobbering is intended.
    """
    out = args.out
    if out is None:
        return f"BENCH_{name}.quick.json" if args.quick else f"BENCH_{name}.json"
    if args.quick and not getattr(args, "force", False):
        try:
            with open(out) as fh:
                existing = json.load(fh)
        except (OSError, ValueError):
            existing = None
        if isinstance(existing, dict) and existing.get("quick") is False:
            raise SystemExit(
                f"refusing to overwrite the full baseline {out} with a "
                "--quick run (quick artifacts default to "
                f"BENCH_{name}.quick.json; pass --force to mean it)"
            )
    return out


def cmd_sched(args) -> None:
    from repro.bench.schedbench import write_sched_bench

    out = _resolve_artifact_out("sched", args)
    doc = write_sched_bench(
        out, quick=args.quick, progress=lambda m: print(m, flush=True)
    )
    head = doc["headline"]
    print(
        f"storm speedup (event vs thread):   "
        f"{head['storm_speedup_min']:.1f}x .. {head['storm_speedup_max']:.1f}x"
    )
    print(
        f"blocked speedup (wake vs scan):    "
        f"{head['blocked_speedup_min']:.1f}x .. "
        f"{head['blocked_speedup_max']:.1f}x "
        f"({head['blocked_1024_wake_switches_per_s']} switches/s at 1024)"
    )
    print(
        f"gups speedup (event vs thread):    "
        f"{head['gups_speedup_min']:.1f}x .. {head['gups_speedup_max']:.1f}x"
    )
    print(f"wrote {out}")


def cmd_serve(args) -> None:
    from repro.bench.report import format_serve_report
    from repro.bench.servebench import validate_serve_doc, write_serve_bench

    out = _resolve_artifact_out("serve", args)
    doc = write_serve_bench(
        out, quick=args.quick, progress=lambda m: print(m, flush=True)
    )
    errors = validate_serve_doc(doc)
    if errors:
        raise SystemExit(
            "serve artifact failed schema validation:\n  "
            + "\n  ".join(errors)
        )
    print()
    print(
        format_serve_report(
            "Open-loop DHT serving: total latency vs offered rate "
            "[virtual ns]",
            doc,
        )
    )
    print(f"\nwrote {out} (schema valid)")


def cmd_cont(args) -> None:
    from repro.bench.contbench import write_cont_bench

    out = _resolve_artifact_out("cont", args)
    doc = write_cont_bench(
        out, quick=args.quick, progress=lambda m: print(m, flush=True)
    )
    head = doc["headline"]
    for c in doc["comparisons"]:
        print(
            f"batch {c['batch']:>3}: future gap "
            f"{c['future_mean_gap_ns']:.1f}ns, cont gap "
            f"{c['cont_mean_gap_ns']:.1f}ns "
            f"({c['gap_ratio']:.1f}x)"
        )
    print(
        f"cont beats future at every batch: "
        f"{head['cont_beats_future_all_batches']} "
        f"(gap ratio {head['gap_ratio_min']:.1f}x .. "
        f"{head['gap_ratio_max']:.1f}x)"
    )
    print(f"wrote {out}")


def cmd_ab(args) -> None:
    from repro.bench import ab
    from repro.bench.schema import validate_artifact

    try:
        specs = ab.select_specs(args.spec)
    except KeyError as exc:
        raise SystemExit(str(exc.args[0]))
    if (args.out or args.baseline) and len(specs) != 1:
        raise SystemExit(
            "--out/--baseline apply to a single spec; select one with "
            "--spec"
        )
    gate_failures: list[str] = []
    for spec in specs:
        out = _resolve_artifact_out(
            f"ab_{spec.name}",
            argparse.Namespace(
                out=args.out, quick=args.quick, force=args.force
            ),
        )
        doc = ab.write_ab_spec(
            out, spec, quick=args.quick,
            progress=lambda m: print(m, flush=True),
        )
        errors = validate_artifact(doc, path=out)
        if errors:
            raise SystemExit(
                "ab artifact failed schema validation:\n  "
                + "\n  ".join(errors)
            )
        for mname, h in doc["deterministic"]["headline"].items():
            print(
                f"{spec.name}.{mname}: arm-b speedup "
                f"{h['speedup_mean_min']:g}x .. {h['speedup_mean_max']:g}x "
                f"over {h['points']} point(s)"
            )
        print(f"wrote {out} (schema valid)")
        if args.gate:
            baseline_path = args.baseline or f"BENCH_ab_{spec.name}.json"
            try:
                with open(baseline_path) as fh:
                    baseline = json.load(fh)
            except (OSError, ValueError) as exc:
                gate_failures.append(
                    f"{spec.name}: baseline {baseline_path} unreadable "
                    f"({exc})"
                )
                continue
            problems = ab.gate_ab(
                doc, baseline,
                allow_quick_baseline=args.baseline is not None,
            )
            if problems:
                gate_failures.extend(
                    f"{spec.name}: {p}" for p in problems
                )
            else:
                print(f"{spec.name}: gate OK vs {baseline_path}")
    if gate_failures:
        raise SystemExit(
            "ab gate failed:\n  " + "\n  ".join(gate_failures)
        )


def cmd_validate(args) -> None:
    import glob

    from repro.bench.schema import validate_artifact_file

    paths = args.paths or sorted(glob.glob("BENCH_*.json"))
    if not paths:
        print("no BENCH_*.json artifacts found")
        return
    total = 0
    for path in paths:
        errors = validate_artifact_file(path)
        print(f"{path}: {'OK' if not errors else 'FAIL'}")
        for e in errors:
            print(f"  {e}")
        total += len(errors)
    if total:
        raise SystemExit(f"{total} schema problem(s)")


def cmd_all(args) -> None:
    for machine in ("intel", "ibm", "marvell"):
        args.machine = machine
        cmd_micro(args)
        print()
    for machine in ("intel", "ibm", "marvell"):
        args.machine = machine
        cmd_gups(args)
        print()
    args.machine = "intel"
    cmd_matching(args)
    print()
    cmd_offnode(args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Reproduce the paper's figures from the command line.",
    )
    sub = parser.add_subparsers(dest="figure", required=True)

    def common(p, machine_default="intel"):
        p.add_argument(
            "--machine",
            choices=("intel", "ibm", "marvell", "generic"),
            default=machine_default,
            help="machine cost profile (paper platform)",
        )

    p = sub.add_parser("micro", help="Figures 2-4: microbenchmarks")
    common(p)
    p.add_argument("--ops", type=int, default=150, help="ops per timing loop")
    p.add_argument("--samples", type=int, default=3, help="paper samples")
    p.add_argument(
        "--bars", action="store_true",
        help="also render each op as a bar group (like the paper's figures)",
    )
    p.set_defaults(fn=cmd_micro)

    p = sub.add_parser("gups", help="Figures 5-7: GUPS")
    common(p)
    p.add_argument("--ranks", type=int, default=16)
    p.add_argument("--table-log2", type=int, default=12)
    p.add_argument("--updates", type=int, default=96)
    p.add_argument("--batch", type=int, default=32)
    p.set_defaults(fn=cmd_gups)

    p = sub.add_parser("matching", help="Figure 8: graph matching")
    common(p)
    p.add_argument("--ranks", type=int, default=16)
    p.add_argument("--scale", type=int, default=3)
    p.set_defaults(fn=cmd_matching)

    p = sub.add_parser("offnode", help="off-node RMA check (§IV-A)")
    common(p)
    p.add_argument("--ops", type=int, default=40)
    p.set_defaults(fn=cmd_offnode)

    p = sub.add_parser(
        "trace",
        help="one traced GUPS run: span report + Perfetto trace JSON",
    )
    common(p)
    p.add_argument("--ranks", type=int, default=4)
    from repro.apps.gups import GUPS_VARIANTS

    p.add_argument(
        "--variant", default="rma_future", choices=GUPS_VARIANTS,
        help="GUPS variant to trace (rma_future shows the defer queue best)",
    )
    from repro.runtime.config import Version

    p.add_argument(
        "--version", default="2021.3.6-eager",
        choices=[v.value for v in Version],
        help="build to trace (e.g. 2021.3.6-defer vs 2021.3.6-eager)",
    )
    p.add_argument("--table-log2", type=int, default=10)
    p.add_argument("--updates", type=int, default=64)
    p.add_argument("--batch", type=int, default=16)
    p.add_argument(
        "--out", default=None,
        help="write Chrome/Perfetto trace-event JSON here",
    )
    p.add_argument(
        "--timeline", type=int, default=0, metavar="N",
        help="also print the first N spans as a text timeline",
    )
    p.set_defaults(fn=cmd_trace)

    def artifact_io(p, name, quick_help):
        p.add_argument(
            "--out", default=None,
            help=f"artifact path (default: BENCH_{name}.json, or "
            f"BENCH_{name}.quick.json under --quick)",
        )
        p.add_argument("--quick", action="store_true", help=quick_help)
        p.add_argument(
            "--force", action="store_true",
            help="allow a --quick run to overwrite a full artifact at an "
            "explicit --out path",
        )

    p = sub.add_parser(
        "sched",
        help="scheduler substrate benchmark (thread vs event loop) "
        "-> BENCH_sched.json",
    )
    artifact_io(
        p, "sched",
        "small sweep for CI smoke (seconds instead of minutes)",
    )
    p.set_defaults(fn=cmd_sched)

    p = sub.add_parser(
        "serve",
        help="open-loop DHT serving saturation sweep "
        "-> BENCH_serve.json",
    )
    artifact_io(
        p, "serve",
        "small sweep for CI smoke (identical workload, fewer "
        "rates/configs)",
    )
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "cont",
        help="continuation vs future completion-path gap sweep "
        "-> BENCH_cont.json",
    )
    artifact_io(
        p, "cont",
        "small sweep for CI smoke (fewer batches, fewer seeds)",
    )
    p.set_defaults(fn=cmd_cont)

    from repro.bench.ab import SPECS

    p = sub.add_parser(
        "ab",
        help="declarative A/B flag-toggle sweeps "
        "-> BENCH_ab_<spec>.json (one per spec)",
    )
    p.add_argument(
        "--spec", action="append", choices=sorted(SPECS), default=None,
        help="spec(s) to run (repeatable; default: all registered specs)",
    )
    p.add_argument(
        "--gate", action="store_true",
        help="after running, compare against the committed "
        "BENCH_ab_<spec>.json and fail on drift beyond the baseline's "
        "seed-variation confidence interval",
    )
    p.add_argument(
        "--baseline", default=None,
        help="gate against this artifact instead of the committed one "
        "(single --spec only; quick baselines allowed here)",
    )
    artifact_io(
        p, "ab_<spec>",
        "subset sweep for CI smoke (same workload params, fewer "
        "points/seeds — cells stay comparable to full baselines)",
    )
    p.set_defaults(fn=cmd_ab)

    p = sub.add_parser(
        "validate",
        help="schema-validate benchmark artifacts (default: every "
        "BENCH_*.json in the cwd)",
    )
    p.add_argument(
        "paths", nargs="*",
        help="artifact files to check (default: glob BENCH_*.json)",
    )
    p.set_defaults(fn=cmd_validate)

    p = sub.add_parser("all", help="every figure, default parameters")
    common(p)
    p.add_argument("--ops", type=int, default=100)
    p.add_argument("--samples", type=int, default=1)
    p.add_argument("--ranks", type=int, default=16)
    p.add_argument("--table-log2", type=int, default=12)
    p.add_argument("--updates", type=int, default=96)
    p.add_argument("--batch", type=int, default=32)
    p.add_argument("--scale", type=int, default=3)
    p.set_defaults(fn=cmd_all)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    args.fn(args)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
