"""Parameter sweeps: the locality-crossover study.

The paper's introduction motivates eager notification with "applications
where most asynchronous communication operations are resolved on-node".
This module quantifies that: a GUPS-like update kernel runs on a two-node
world where each update targets co-located memory with probability
``local_fraction``; sweeping the fraction traces how the eager build's
advantage grows from nothing (all off-node: deferral is unavoidable) to
the full on-node gain.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import (
    Promise,
    barrier,
    current_ctx,
    new_array,
    operation_cx,
    rank_me,
    rank_n,
    rput,
)
from repro.memory.global_ptr import GlobalPtr
from repro.runtime.config import Version
from repro.runtime.runtime import spmd_run
from repro.sim.costmodel import CostAction


@dataclass
class LocalityPoint:
    """One sweep point: eager-vs-defer speedup at a given locality."""

    local_fraction: float
    defer_ns: float
    eager_ns: float

    @property
    def speedup(self) -> float:
        return self.defer_ns / self.eager_ns - 1


def _locality_body(local_fraction: float, updates: int, slots: int):
    """Each rank puts into random slots: co-located targets with
    probability ``local_fraction``, off-node targets otherwise.  All
    ranks keep serving progress until everyone finishes (off-node puts
    need the target node's attention)."""
    ctx = current_ctx()
    me, p = rank_me(), rank_n()
    table = new_array("u64", slots)
    bases = [GlobalPtr(r, table.offset, table.ts) for r in range(p)]
    my_node = ctx.world.node_of(me)
    on_node = [r for r in range(p) if ctx.world.node_of(r) == my_node]
    off_node = [r for r in range(p) if ctx.world.node_of(r) != my_node]
    barrier()
    ctx.clock.mark("solve")
    prom = Promise()
    rng = ctx.rng
    for i in range(updates):
        ctx.charge(CostAction.FUNCTION_CALL, 2)
        if rng.random() < local_fraction or not off_node:
            target_rank = on_node[rng.randrange(len(on_node))]
        else:
            target_rank = off_node[rng.randrange(len(off_node))]
        slot = rng.randrange(slots)
        rput(i, bases[target_rank] + slot, operation_cx.as_promise(prom))
        if (i + 1) % 16 == 0:
            prom.finalize().wait()
            prom = Promise()
    prom.finalize().wait()
    # serve others' off-node traffic until everyone is done
    done = getattr(ctx.world, "_sweep_done", 0)
    ctx.world._sweep_done = done + 1  # type: ignore[attr-defined]
    while ctx.world._sweep_done < p:  # type: ignore[attr-defined]
        ctx.progress()
        ctx.yield_to_others()
    barrier()
    solve_ns = ctx.clock.elapsed_since("solve")
    return solve_ns


def locality_sweep(
    fractions=(0.0, 0.25, 0.5, 0.75, 0.9, 1.0),
    *,
    ranks: int = 4,
    updates: int = 96,
    machine: str = "intel",
) -> list[LocalityPoint]:
    """Eager-vs-defer speedup at each on-node target fraction."""
    points = []
    for frac in fractions:
        times = {}
        for version in (Version.V2021_3_6_DEFER, Version.V2021_3_6_EAGER):
            res = spmd_run(
                lambda f=frac: _locality_body(f, updates, 64),
                ranks=ranks,
                n_nodes=2,
                conduit="mpi",
                version=version,
                machine=machine,
                seed=11,
            )
            times[version] = max(res.values)
        points.append(
            LocalityPoint(
                local_fraction=frac,
                defer_ns=times[Version.V2021_3_6_DEFER],
                eager_ns=times[Version.V2021_3_6_EAGER],
            )
        )
    return points
