"""Continuation-completion benchmark: callback path vs future path.

Sweeps the GUPS atomic-update workload across batch sizes under the
deferred-notification build, comparing three completion-tracking idioms
on the *mean notification gap* (completion observed → notification
dispatched, :class:`repro.obs.span.GapStats`):

* **future** — ``amo_future``: per-op futures conjoined with ``when_all``
  per batch.  Under deferred notification every fulfilment parks on the
  progress queue until a drain retires it; the gap is the defer penalty.
* **promise** — ``prog_adaptive``: promise-tracked batches with the idle
  polling segment.  Same parking behaviour, cheaper per-op bookkeeping.
* **cont** — the continuation variant (``FeatureFlags.cx_continuations``):
  each op carries ``operation_cx.as_continuation`` ticking a counter.
  Continuations are eager-by-construction — they dispatch the moment the
  ack is observed, never touching the deferred queue — so their gaps
  collapse to the eager baseline *on the defer build*, which is the
  headline this artifact pins: ``cont`` mean gap strictly below the
  future path's at every batch size.

Every cell runs on both scheduler substrates and asserts bit-identical
checksums and virtual clocks (the benchmark doubles as a parity smoke
test), and every variant's result must pass HPCC verification exactly
(atomics never race within an update).

The future-vs-cont comparison itself now runs on the shared A/B engine
(:mod:`repro.bench.ab`, spec ``cont_future`` — ``cx_continuations`` is
the one toggled flag); this module rebuilds the legacy ``BENCH_cont``
row/comparison shape from the engine's cells and adds the promise rows,
which are descriptive context rather than an arm of the experiment.
"""

from __future__ import annotations

import dataclasses
import json
import sys
import time

from repro.apps.gups import GupsConfig, run_gups
from repro.bench import ab as _ab
from repro.runtime.config import Version, flags_for

#: batch sizes of the sweep (updates per tracked batch)
BATCH_SWEEP = (8, 16, 32, 64)

#: (variant label, GUPS variant) of the completion idioms compared
CONT_VARIANTS = (
    ("future", "amo_future"),
    ("promise", "prog_adaptive"),
    ("cont", "cont"),
)


def _mean_update_gap(stats) -> tuple[float, int]:
    """Weighted mean notification gap over the operation spans (moved to
    :func:`repro.bench.ab.mean_update_gap`; re-exported for callers)."""
    return _ab.mean_update_gap(stats)


def cont_cell(
    variant: str,
    gups_variant: str,
    batch: int,
    *,
    ranks: int,
    updates_per_rank: int,
    version: Version = Version.V2021_3_6_DEFER,
    machine: str = "intel",
) -> dict:
    """One (variant, batch) cell, run on both scheduler substrates with
    parity asserted; returns the artifact row."""
    cfg = GupsConfig(
        variant=gups_variant, table_log2=12,
        updates_per_rank=updates_per_rank, batch=batch,
    )
    base = flags_for(version)
    # the flag is on for every cell (not just cont) so the only variable
    # across rows is the tracking idiom — flag-on with no continuation
    # requests is bit-identical to flag-off by construction
    fl_th = dataclasses.replace(base, cx_continuations=True, obs_spans=True)
    fl_ev = dataclasses.replace(fl_th, sched_event_loop=True)
    out = {}
    for sub, fl in (("thread", fl_th), ("event", fl_ev)):
        t0 = time.perf_counter()
        r = run_gups(
            cfg, ranks=ranks, version=version, machine=machine, flags=fl
        )
        out[sub] = (time.perf_counter() - t0, r)
    th_s, th_r = out["thread"]
    ev_s, ev_r = out["event"]
    if th_r.checksum != ev_r.checksum or th_r.solve_ns != ev_r.solve_ns:
        raise AssertionError(
            f"cont parity: substrates disagree on {variant}/{batch} "
            f"(checksum {th_r.checksum} vs {ev_r.checksum}, "
            f"solve_ns {th_r.solve_ns} vs {ev_r.solve_ns})"
        )
    if not th_r.matches_oracle:
        raise AssertionError(
            f"cont bench: {variant}/{batch} failed verification"
        )
    mean_gap, gap_count = _mean_update_gap(th_r.obs_stats)
    gap_modes = sorted(
        {mode for (mode, _loc) in th_r.obs_stats.gaps if mode != "none"}
    )
    return {
        "variant": variant,
        "gups_variant": gups_variant,
        "batch": batch,
        "ranks": ranks,
        "updates_per_rank": updates_per_rank,
        "version": version.value,
        "machine": machine,
        "solve_ns": th_r.solve_ns,
        "gups": round(th_r.gups, 9),
        "mean_gap_ns": round(mean_gap, 3),
        "gap_count": gap_count,
        "gap_modes": gap_modes,
        "thread_s": round(th_s, 6),
        "event_s": round(ev_s, 6),
    }


def _legacy_row(
    variant: str, gups_variant: str, batch: int, spec, cell: dict, env: dict
) -> dict:
    """An A/B engine cell rendered as the legacy ``BENCH_cont`` row."""
    m, d = cell["metrics"], cell["details"]
    p = spec.workload_params
    return {
        "variant": variant,
        "gups_variant": gups_variant,
        "batch": batch,
        "ranks": p["ranks"],
        "updates_per_rank": p["updates_per_rank"],
        "version": spec.version.value,
        "machine": p["machine"],
        "solve_ns": m["solve_ns"],
        "gups": d["gups"],
        "mean_gap_ns": round(m["mean_gap_ns"], 3),
        "gap_count": d["gap_count"],
        "gap_modes": d["gap_modes"],
        "thread_s": env["thread_s"],
        "event_s": env["event_s"],
    }


def run_cont_bench(*, quick: bool = False, progress=None) -> dict:
    """Run the full continuation benchmark; returns the artifact doc.

    The future/cont arms come from one :func:`repro.bench.ab.run_ab_spec`
    sweep of the ``cont_future`` spec (first seed's cells — the legacy
    rows are single-seed); the promise rows reuse the same workload
    off-spec via ``params_override``.
    """

    def say(msg: str) -> None:
        if progress is not None:
            progress(msg)

    spec = _ab.CONT_FUTURE
    ab_doc = _ab.run_ab_spec(spec, quick=quick, progress=progress)
    det = ab_doc["deterministic"]
    env_cells = ab_doc["environment"]["cells"]
    seed0 = det["seeds"][0]
    arm_flags = spec.arm_flags()
    arm_of = {"future": det["arms"]["a"], "cont": det["arms"]["b"]}
    rows = []
    for point_row in det["points"]:
        batch = point_row["point"]
        for variant, gups_variant in CONT_VARIANTS:
            label = arm_of.get(variant)
            if label is None:
                # promise is context, not an arm: same base flags as the
                # future arm, tracking idiom swapped via params_override
                say(f"cont sweep: {variant} batch={batch} ...")
                cell, env = _ab.run_cell(
                    spec,
                    point=batch,
                    flags=arm_flags[det["arms"]["a"]],
                    seed=seed0,
                    params_override={"variant": gups_variant},
                )
            else:
                cell = point_row["cells"][label][str(seed0)]
                env = env_cells[f"{batch}|{label}|{seed0}"]
            rows.append(
                _legacy_row(variant, gups_variant, batch, spec, cell, env)
            )

    by_batch = {}
    for row in rows:
        by_batch.setdefault(row["batch"], {})[row["variant"]] = row
    comparisons = []
    for batch in sorted(by_batch):
        cell = by_batch[batch]
        fut, cont = cell["future"], cell["cont"]
        comparisons.append({
            "batch": batch,
            "future_mean_gap_ns": fut["mean_gap_ns"],
            "cont_mean_gap_ns": cont["mean_gap_ns"],
            "gap_ratio": round(
                fut["mean_gap_ns"] / cont["mean_gap_ns"], 3
            ) if cont["mean_gap_ns"] else float("inf"),
            "cont_beats_future": (
                cont["mean_gap_ns"] < fut["mean_gap_ns"]
            ),
        })
    doc = {
        "bench": "cont",
        "invocation": "python -m repro.bench cont",
        "python": sys.version.split()[0],
        "quick": quick,
        "ab_spec": spec.name,
        "description": (
            "GUPS atomic-update sweep on the deferred-notification build: "
            "mean notification gap of the continuation callback path "
            "(eager-by-construction, never parked) vs the future and "
            "promise paths (parked on the deferred queue until a drain)"
        ),
        "rows": rows,
        "comparisons": comparisons,
        "headline": {
            "cont_beats_future_all_batches": all(
                c["cont_beats_future"] for c in comparisons
            ),
            "gap_ratio_min": min(c["gap_ratio"] for c in comparisons),
            "gap_ratio_max": max(c["gap_ratio"] for c in comparisons),
            "note": (
                "continuations dispatch inline at whichever agent "
                "observes the ack, so on the defer build their "
                "notification gaps are the eager baseline while "
                "future/promise completions pay the deferred-queue "
                "parking latency"
            ),
        },
    }
    return doc


def write_cont_bench(path: str, *, quick: bool = False, progress=None) -> dict:
    doc = run_cont_bench(quick=quick, progress=progress)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    return doc
