"""Experiment runners for every figure in the paper.

The microbenchmark protocol follows §IV-A: a tight loop of ``initiate;
wait`` on a single 64-bit operation, total virtual time divided by the
iteration count, sampled per the paper's 20-samples/top-10 rule (our
virtual clock is deterministic, so samples differ only through the seed —
the protocol is kept for methodological fidelity).

Five operations cover Figures 2–4's bars:

* ``put`` — scalar ``rput`` (value-less);
* ``get`` — scalar ``rget`` (value-producing);
* ``get_nv`` — ``rget_into`` a local buffer (non-value);
* ``fadd`` — ``atomic fetch_add`` (value-producing);
* ``fadd_nv`` — ``fetch_add_into`` (non-value; **2021.3.6 only** — the
  paper notes there is no 2021.3.0 measurement because the operation did
  not exist).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.apps.graphs import Graph, locality_fractions, make_graph
from repro.apps.gups import GupsConfig, GupsResult, run_gups
from repro.apps.matching import MatchingConfig, MatchingResult, run_matching
from repro.atomics import AtomicDomain
from repro.core.completions import operation_cx
from repro.memory.global_ptr import GlobalPtr
from repro.rma import rget, rget_into, rput
from repro.runtime.config import Version, flags_for
from repro.runtime.context import current_ctx
from repro.runtime.runtime import spmd_run
from repro.sim.stats import run_samples

MICRO_OPS = ("put", "get", "get_nv", "fadd", "fadd_nv")

ALL_VERSIONS = (
    Version.V2021_3_0,
    Version.V2021_3_6_DEFER,
    Version.V2021_3_6_EAGER,
)


@dataclass
class MicroResult:
    """Average virtual nanoseconds per operation for one grid cell."""

    op: str
    version: Version
    machine: str
    ns_per_op: float
    n_ops: int


def _micro_body(op: str, n_ops: int):
    """SPMD body: rank 0 times ``n_ops`` against rank 1's memory (on-node
    shared-memory bypass, as in the paper's single-node runs)."""
    from repro import barrier, new_, rank_me

    target = new_("u64", 0)
    scratch = new_("u64", 0)
    ctx = current_ctx()
    barrier()
    if rank_me() != 0:
        barrier()
        return 0.0
    remote = GlobalPtr(1, target.offset, target.ts)
    ad = AtomicDomain({"fetch_add"}, "u64") if op.startswith("fadd") else None
    ctx.clock.mark("loop")
    if op == "put":
        for _ in range(n_ops):
            rput(0, remote, operation_cx.as_future()).wait()
    elif op == "get":
        for _ in range(n_ops):
            rget(remote, operation_cx.as_future()).wait()
    elif op == "get_nv":
        for _ in range(n_ops):
            rget_into(remote, scratch, 1, operation_cx.as_future()).wait()
    elif op == "fadd":
        for _ in range(n_ops):
            ad.fetch_add(remote, 1, operation_cx.as_future()).wait()
    elif op == "fadd_nv":
        for _ in range(n_ops):
            ad.fetch_add_into(
                remote, 1, scratch, operation_cx.as_future()
            ).wait()
    else:
        raise ValueError(f"unknown micro op {op!r}")
    elapsed = ctx.clock.elapsed_since("loop")
    barrier()
    return elapsed


def run_micro(
    op: str,
    version: Version,
    machine: str,
    *,
    n_ops: int = 200,
    n_samples: int = 3,
    flags=None,
    noise: float = 0.0,
) -> Optional[MicroResult]:
    """One microbenchmark cell; None when the op doesn't exist on the
    build (``fadd_nv`` on 2021.3.0, as in the paper's figures).

    With ``noise`` > 0 each sample's virtual timings jitter (seeded by
    the sample index) and the paper's top-10-of-N estimator earns its
    keep; the default is deterministic."""
    if op == "fadd_nv" and version is Version.V2021_3_0:
        return None

    def sample(i: int) -> float:
        res = spmd_run(
            lambda: _micro_body(op, n_ops),
            ranks=2,
            version=version,
            machine=machine,
            seed=i,
            flags=flags,
            noise=noise,
        )
        return res.values[0] / n_ops

    stats = run_samples(sample, n_samples=n_samples, top=10)
    return MicroResult(
        op=op,
        version=version,
        machine=machine,
        ns_per_op=stats.value,
        n_ops=n_ops,
    )


def micro_grid(
    machine: str,
    *,
    ops=MICRO_OPS,
    versions=ALL_VERSIONS,
    n_ops: int = 200,
    n_samples: int = 3,
) -> dict[tuple[str, Version], Optional[MicroResult]]:
    """The full figure grid for one machine (Figs 2/3/4)."""
    return {
        (op, v): run_micro(
            op, v, machine, n_ops=n_ops, n_samples=n_samples
        )
        for op in ops
        for v in versions
    }


# ---------------------------------------------------------------------------
# GUPS grids (Figures 5–7)
# ---------------------------------------------------------------------------


def gups_grid(
    machine: str,
    *,
    ranks: int = 16,
    variants=None,
    versions=ALL_VERSIONS,
    table_log2: int = 12,
    updates_per_rank: int = 192,
    batch: int = 32,
    seed: int = 1,
) -> dict[tuple[str, Version], GupsResult]:
    """The paper's GUPS variants × versions on one machine (pass
    ``variants`` explicitly to include the beyond-paper ``agg`` one)."""
    from repro.apps.gups import PAPER_GUPS_VARIANTS

    if variants is None:
        variants = PAPER_GUPS_VARIANTS
    out = {}
    for variant in variants:
        cfg = GupsConfig(
            variant=variant,
            table_log2=table_log2,
            updates_per_rank=updates_per_rank,
            batch=batch,
            seed=seed,
        )
        for v in versions:
            out[(variant, v)] = run_gups(
                cfg, ranks=ranks, version=v, machine=machine
            )
    return out


# ---------------------------------------------------------------------------
# traced runs (observability spans on)
# ---------------------------------------------------------------------------


def traced_flags(version: Version, **overrides):
    """The build's feature set with operation-lifecycle spans enabled
    (``FeatureFlags.obs_spans``); extra overrides pass through."""
    return flags_for(version).replace(obs_spans=True, **overrides)


def traced_gups(
    cfg: Optional[GupsConfig] = None,
    *,
    ranks: int = 4,
    version: Version = Version.V2021_3_6_EAGER,
    machine: str = "intel",
    conduit: Optional[str] = None,
    n_nodes: int = 1,
    flags=None,
    trace_path=None,
) -> GupsResult:
    """One GUPS run with observability spans on.

    The returned :class:`~repro.apps.gups.GupsResult` carries per-rank
    span snapshots (``obs_snapshots``) and the world-wide rollup
    (``obs_stats``).  When ``trace_path`` is given, a Chrome/Perfetto
    trace-event JSON is written there — load it in ``ui.perfetto.dev``
    or ``chrome://tracing``.
    """
    if cfg is None:
        cfg = GupsConfig()
    base = flags if flags is not None else flags_for(version)
    res = run_gups(
        cfg,
        ranks=ranks,
        version=version,
        machine=machine,
        conduit=conduit,
        n_nodes=n_nodes,
        flags=base.replace(obs_spans=True),
    )
    if trace_path is not None:
        from repro.obs import write_chrome_trace

        write_chrome_trace(trace_path, res.obs_snapshots)
    return res


def traced_micro(
    op: str,
    version: Version,
    machine: str,
    *,
    n_ops: int = 200,
    flags=None,
):
    """One traced microbenchmark sample.

    Returns ``(ns_per_op, obs_snapshots, obs_stats)`` — the same timing
    the figure grids measure, plus the span record behind it (which ops
    had a notification gap, and how wide).
    """
    from repro.sim.stats import observability_snapshots, observability_stats

    base = flags if flags is not None else flags_for(version)
    res = spmd_run(
        lambda: _micro_body(op, n_ops),
        ranks=2,
        version=version,
        machine=machine,
        flags=base.replace(obs_spans=True),
    )
    snaps = observability_snapshots(res.world)
    return res.values[0] / n_ops, snaps, observability_stats(res.world)


# ---------------------------------------------------------------------------
# Graph matching grid (Figure 8)
# ---------------------------------------------------------------------------


def matching_grid(
    machine: str = "intel",
    *,
    ranks: int = 16,
    graphs=None,
    versions=ALL_VERSIONS,
    scale: int = 4,
    seed: int = 0,
) -> dict[tuple[str, Version], MatchingResult]:
    """All matching inputs × versions (paper: Intel, 16 processes, MPI
    conduit)."""
    from repro.apps.graphs import GRAPH_NAMES

    if graphs is None:
        graphs = GRAPH_NAMES
    out = {}
    for name in graphs:
        cfg = MatchingConfig(graph=name, scale=scale, seed=seed)
        g = cfg.build_graph()
        for v in versions:
            out[(name, v)] = run_matching(
                cfg, ranks=ranks, version=v, machine=machine, graph=g
            )
    return out


def graph_localities(
    ranks: int = 16, scale: int = 4, seed: int = 0
) -> dict[str, dict]:
    """Edge-locality fractions for every input (explains Figure 8's
    ordering)."""
    from repro.apps.graphs import GRAPH_NAMES

    out = {}
    for name in GRAPH_NAMES:
        g = make_graph(name, scale=scale, seed=seed)
        out[name] = locality_fractions(g, ranks)
    return out


# ---------------------------------------------------------------------------
# off-node check (§IV-A, the "omitted due to space" two-node study)
# ---------------------------------------------------------------------------


def _offnode_body(op: str, n_ops: int):
    from repro import barrier, new_, rank_me

    target = new_("u64", 0)
    ctx = current_ctx()
    barrier()
    if rank_me() != 0:
        # the target node must keep making progress to service AMs
        from repro import progress

        while ctx.world._offnode_done < 1:  # type: ignore[attr-defined]
            progress()
            ctx.yield_to_others()
        barrier()
        return 0.0
    remote = GlobalPtr(1, target.offset, target.ts)
    ctx.clock.mark("loop")
    if op == "put":
        for _ in range(n_ops):
            rput(0, remote).wait()
    else:
        for _ in range(n_ops):
            rget(remote).wait()
    elapsed = ctx.clock.elapsed_since("loop")
    ctx.world._offnode_done = 1  # type: ignore[attr-defined]
    barrier()
    return elapsed


def offnode_grid(
    machine: str = "intel",
    *,
    ops=("put", "get"),
    versions=(Version.V2021_3_6_DEFER, Version.V2021_3_6_EAGER),
    n_ops: int = 50,
) -> dict[tuple[str, Version], float]:
    """Two-node off-node RMA latency, eager-capable vs deferred build.

    Validates the paper's claim that deploying eager completion costs the
    off-node path exactly one extra branch (statistically invisible).
    Returns ns/op per cell.
    """
    out = {}
    for op in ops:
        for v in versions:

            def body(op=op):
                ctx = current_ctx()
                if not hasattr(ctx.world, "_offnode_done"):
                    ctx.world._offnode_done = 0  # type: ignore[attr-defined]
                return _offnode_body(op, n_ops)

            res = spmd_run(
                body,
                ranks=2,
                n_nodes=2,
                version=v,
                machine=machine,
                conduit="ibv" if machine == "intel" else "udp",
            )
            out[(op, v)] = res.values[0] / n_ops
    return out
