"""Paper-style text reports.

Each ``format_*_figure`` function renders one figure's data as a
fixed-width table: rows are the figure's x-axis categories, columns the
three library versions, plus derived speedup columns matching the
quantities the paper quotes in prose (eager vs. 2021.3.6-defer).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.runtime.config import Version

_V = (Version.V2021_3_0, Version.V2021_3_6_DEFER, Version.V2021_3_6_EAGER)


def format_table(
    title: str,
    headers: list[str],
    rows: Iterable[list[str]],
    *,
    align_left_first: bool = True,
) -> str:
    """Render a fixed-width table with a title rule."""
    rows = [list(r) for r in rows]
    widths = [len(h) for h in headers]
    for r in rows:
        for i, cell in enumerate(r):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells):
        out = []
        for i, cell in enumerate(cells):
            if i == 0 and align_left_first:
                out.append(cell.ljust(widths[i]))
            else:
                out.append(cell.rjust(widths[i]))
        return "  ".join(out)

    rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
    lines = [title, "=" * len(title), fmt_row(headers), rule]
    lines.extend(fmt_row(r) for r in rows)
    return "\n".join(lines)


def _pct(new: float, old: float) -> str:
    """Speedup of new over old as the paper quotes it: (old/new - 1)."""
    if new <= 0:
        return "n/a"
    return f"+{(old / new - 1) * 100:.0f}%"


def _ratio(new: float, old: float) -> str:
    if new <= 0:
        return "n/a"
    return f"{old / new:.2f}x"


def format_micro_figure(
    title: str,
    grid: dict,
    *,
    ops: tuple[str, ...] = ("put", "get", "get_nv", "fadd", "fadd_nv"),
) -> str:
    """Figures 2–4: ns/op per operation × version + eager-vs-defer
    speedup."""
    headers = [
        "op",
        "2021.3.0 ns",
        "3.6-defer ns",
        "3.6-eager ns",
        "eager speedup",
    ]
    rows = []
    for op in ops:
        cells = [op]
        vals: list[Optional[float]] = []
        for v in _V:
            r = grid.get((op, v))
            vals.append(None if r is None else r.ns_per_op)
            cells.append("--" if r is None else f"{r.ns_per_op:.1f}")
        defer_ns, eager_ns = vals[1], vals[2]
        cells.append(
            _pct(eager_ns, defer_ns)
            if defer_ns is not None and eager_ns is not None
            else "n/a"
        )
        rows.append(cells)
    return format_table(title, headers, rows)


def format_gups_figure(title: str, grid: dict) -> str:
    """Figures 5–7: GUPS per variant × version + eager-vs-defer ratio."""
    from repro.apps.gups import GUPS_VARIANTS

    headers = [
        "variant",
        "2021.3.0 GUPS",
        "3.6-defer GUPS",
        "3.6-eager GUPS",
        "eager/defer",
    ]
    rows = []
    present = {variant for (variant, _v) in grid}
    for variant in GUPS_VARIANTS:
        if variant not in present:
            continue
        cells = [variant]
        vals = []
        for v in _V:
            r = grid.get((variant, v))
            vals.append(None if r is None else r.gups)
            cells.append("--" if r is None else f"{r.gups * 1e3:.3f}m")
        if vals[1] and vals[2]:
            cells.append(f"{vals[2] / vals[1]:.2f}x")
        else:
            cells.append("n/a")
        rows.append(cells)
    return format_table(title, headers, rows)


def format_matching_figure(
    title: str, grid: dict, localities: Optional[dict] = None
) -> str:
    """Figure 8: solve time (virtual ms) per input × version + speedup."""
    from repro.apps.graphs import GRAPH_NAMES

    headers = [
        "input",
        "cross-rank",
        "2021.3.0 ms",
        "3.6-defer ms",
        "3.6-eager ms",
        "eager speedup",
    ]
    rows = []
    for name in GRAPH_NAMES:
        cells = [name]
        if localities and name in localities:
            cells.append(f"{localities[name]['cross_rank'] * 100:.0f}%")
        else:
            cells.append("--")
        vals = []
        for v in _V:
            r = grid.get((name, v))
            vals.append(None if r is None else r.solve_ns)
            cells.append("--" if r is None else f"{r.solve_ns / 1e6:.3f}")
        if vals[1] and vals[2]:
            cells.append(_pct(vals[2], vals[1]))
        else:
            cells.append("n/a")
        rows.append(cells)
    return format_table(title, headers, rows)


def format_offnode_figure(title: str, grid: dict) -> str:
    """§IV-A off-node check: defer vs eager builds must be ~identical."""
    headers = ["op", "3.6-defer ns", "3.6-eager ns", "delta"]
    rows = []
    ops = sorted({op for op, _ in grid})
    for op in ops:
        d = grid[(op, Version.V2021_3_6_DEFER)]
        e = grid[(op, Version.V2021_3_6_EAGER)]
        rows.append(
            [op, f"{d:.1f}", f"{e:.1f}", f"{(e - d) / d * 100:+.2f}%"]
        )
    return format_table(title, headers, rows)


# ---------------------------------------------------------------------------
# CSV export (plot-ready series)
# ---------------------------------------------------------------------------


def export_micro_csv(grid: dict) -> str:
    """Figures 2–4 as CSV: op,version,ns_per_op (missing cells omitted)."""
    lines = ["op,version,ns_per_op"]
    for (op, version), r in sorted(
        grid.items(), key=lambda kv: (kv[0][0], kv[0][1].value)
    ):
        if r is not None:
            lines.append(f"{op},{version.value},{r.ns_per_op:.3f}")
    return "\n".join(lines) + "\n"


def export_gups_csv(grid: dict) -> str:
    """Figures 5–7 as CSV: variant,version,gups,solve_ns."""
    lines = ["variant,version,gups,solve_ns"]
    for (variant, version), r in sorted(
        grid.items(), key=lambda kv: (kv[0][0], kv[0][1].value)
    ):
        lines.append(
            f"{variant},{version.value},{r.gups:.9f},{r.solve_ns:.1f}"
        )
    return "\n".join(lines) + "\n"


def export_matching_csv(grid: dict, localities: Optional[dict] = None) -> str:
    """Figure 8 as CSV: input,version,solve_ns,cross_rank."""
    lines = ["input,version,solve_ns,cross_rank"]
    for (name, version), r in sorted(
        grid.items(), key=lambda kv: (kv[0][0], kv[0][1].value)
    ):
        cross = ""
        if localities and name in localities:
            cross = f"{localities[name]['cross_rank']:.4f}"
        lines.append(f"{name},{version.value},{r.solve_ns:.1f},{cross}")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# ASCII bar charts (the figures as the paper draws them)
# ---------------------------------------------------------------------------


def format_bars(
    title: str,
    series: "list[tuple[str, float]]",
    *,
    unit: str = "",
    width: int = 46,
) -> str:
    """Render labeled horizontal bars scaled to the largest value.

    ``series`` is ``[(label, value), ...]``; a None value renders as the
    paper's missing bar (``--``, e.g. the non-existent 2021.3.0 non-value
    atomic).
    """
    label_w = max((len(lbl) for lbl, _ in series), default=0)
    vals = [v for _, v in series if v is not None]
    peak = max(vals) if vals else 1.0
    lines = [title, "=" * len(title)]
    for label, value in series:
        if value is None:
            lines.append(f"{label.ljust(label_w)}  --")
            continue
        n = int(round(width * value / peak)) if peak else 0
        bar = "#" * max(n, 1 if value > 0 else 0)
        lines.append(
            f"{label.ljust(label_w)}  {bar} {value:.1f}{unit}"
        )
    return "\n".join(lines)


def format_micro_bars(title: str, grid: dict, op: str) -> str:
    """One microbenchmark operation as a three-bar group (Figs 2-4)."""
    series = []
    for v in _V:
        r = grid.get((op, v))
        series.append((v.value, None if r is None else r.ns_per_op))
    return format_bars(f"{title}: {op}", series, unit=" ns")


# ---------------------------------------------------------------------------
# AM-aggregation activity report
# ---------------------------------------------------------------------------


def _fmt_hist_rows(hist, *, scale: float = 1.0, width: int = 30) -> list[str]:
    """Histogram buckets as ``label  count  bar`` lines (empty buckets
    skipped; ``scale`` divides the bucket-edge labels, e.g. 1e3 for us)."""
    peak = max(hist.counts) if hist.n else 0
    lines = []
    for i, count in enumerate(hist.counts):
        if not count:
            continue
        label = hist.bucket_label(i)
        if scale != 1.0:
            # bucket_label renders raw edge values; rebuild scaled
            if i == 0:
                label = f"<= {hist.edges[0] / scale:g}"
            elif i == len(hist.edges):
                label = f"> {hist.edges[-1] / scale:g}"
            else:
                label = (
                    f"{hist.edges[i - 1] / scale:g}.."
                    f"{hist.edges[i] / scale:g}"
                )
        bar = "#" * max(1, int(round(width * count / peak))) if peak else ""
        lines.append(f"  {label:>14}  {count:7d}  {bar}")
    return lines


def format_notification_report(title: str, stats) -> str:
    """Render a world-wide :class:`~repro.obs.ObsStats` rollup: the
    notification-gap distribution per (mode, locality) class — the
    paper's eager-vs-defer story as measured from spans — plus span
    accounting and progress-engine metrics."""
    lines = [title, "=" * len(title)]
    lines.append(
        f"spans: {stats.total_spans} recorded across {stats.ranks} ranks"
        + (f" ({stats.total_dropped} dropped at capacity)"
           if stats.total_dropped else "")
    )
    for op in sorted(stats.spans_by_op):
        lines.append(f"  {op:>12}  {stats.spans_by_op[op]}")
    lines.append("")
    lines.append("notification gap (transfer-complete -> dispatched), ns:")
    header = (
        f"  {'mode':>6} {'locality':>8} {'count':>7} {'zero-gap':>8} "
        f"{'mean ns':>9} {'p99 ns':>9} {'max ns':>9}"
    )
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    for (mode, locality), gap in stats.gaps.items():
        lines.append(
            f"  {mode:>6} {locality:>8} {gap.count:7d} {gap.zeros:8d} "
            f"{gap.mean_ns:9.1f} {gap.hist.quantile(0.99):9.1f} "
            f"{(gap.hist.max or 0.0):9.1f}"
        )
    for (mode, locality), gap in stats.gaps.items():
        lines.append("")
        lines.append(f"gap histogram [{mode}/{locality}] (ns):")
        lines.extend(_fmt_hist_rows(gap.hist))
    depth = stats.metrics.histograms.get("progress.deferred_depth")
    if depth is not None and depth.n:
        lines.append("")
        lines.append(
            f"deferred-queue depth at progress() entry "
            f"({depth.n} samples, mean {depth.mean:.2f}):"
        )
        lines.extend(_fmt_hist_rows(depth))
    if stats.metrics.counters:
        lines.append("")
        lines.append("counters:")
        for name in sorted(stats.metrics.counters):
            lines.append(f"  {name:>24}  {stats.metrics.counters[name]}")
    return "\n".join(lines)


def format_span_timeline(snapshots, *, limit: int = 40) -> str:
    """A merged, time-ordered text rendering of per-rank span snapshots —
    the terminal-friendly sibling of the Perfetto export."""
    spans = sorted(
        (s for snap in snapshots for s in snap.spans),
        key=lambda s: (s.t_init, s.rank, s.sid),
    )
    dropped = sum(snap.spans_dropped for snap in snapshots)
    header = (
        f"{'t_init/ns':>10} {'rank':>4} {'op':>12} {'mode':>5} "
        f"{'loc':>7} {'tgt':>4} {'bytes':>6} {'gap/ns':>8} {'wait/ns':>8}"
    )
    if dropped:
        header += f"  [dropped={dropped}]"
    lines = [header]
    for s in spans[:limit]:
        gap = s.notification_gap_ns
        waited = (
            s.t_waited - s.t_init if s.t_waited is not None else None
        )
        lines.append(
            f"{s.t_init:10.1f} {s.rank:4d} {s.op:>12} {s.mode:>5} "
            f"{s.locality:>7} "
            f"{('-' if s.target is None else str(s.target)):>4} "
            f"{s.nbytes:6d} "
            f"{('-' if gap is None else f'{gap:.1f}'):>8} "
            f"{('-' if waited is None else f'{waited:.1f}'):>8}"
        )
    if len(spans) > limit:
        lines.append(f"... {len(spans) - limit} more spans")
    return "\n".join(lines)


def format_aggregation_report(title: str, stats) -> str:
    """Render a world-wide :class:`~repro.sim.stats.AggregationStats`
    snapshot: bundle counts, the entries-per-bundle histogram, flush
    triggers, parking latency, and the adaptive/compression tallies."""
    rows = [
        ["entries appended", str(stats.appended)],
        ["bundles flushed", str(stats.bundles_flushed)],
        ["entries flushed", str(stats.entries_flushed)],
        ["mean bundle size", f"{stats.mean_bundle_size:.2f}"],
        ["largest bundle", str(stats.largest_bundle)],
        ["mean parked (us)", f"{stats.mean_parked_ns / 1e3:.2f}"],
        ["age-bound flushes", str(stats.age_flushes)],
        ["wait-hint flushes", str(stats.wait_flushes)],
        ["adaptive updates", str(stats.adaptive_updates)],
        ["threshold decisions", str(stats.threshold_decisions)],
        ["framing bytes saved", str(stats.compression_saved_bytes)],
    ]
    for size in sorted(stats.bundle_size_hist):
        rows.append(
            [f"bundles of {size}", str(stats.bundle_size_hist[size])]
        )
    for reason in sorted(stats.flush_reasons):
        rows.append(
            [f"flushes: {reason}", str(stats.flush_reasons[reason])]
        )
    return format_table(title, ["metric", "value"], rows)


def format_progress_report(title: str, stats) -> str:
    """Render a world-wide :class:`~repro.sim.stats.ProgressStats`
    snapshot: full-poll vs. elided-poll counts, drain-cap pressure, and
    the age-bound retirement tallies."""
    rows = [
        ["full polls", str(stats.full_polls)],
        ["skipped polls", str(stats.skipped_polls)],
        ["elision ratio", f"{stats.elision_ratio:.3f}"],
        ["thunks dispatched", str(stats.dispatched)],
        ["capped polls", str(stats.capped_polls)],
        ["aged mini-drains", str(stats.aged_drains)],
        ["aged dispatches", str(stats.aged_dispatched)],
        ["hinted scans", str(stats.hinted_scans)],
        ["hinted dispatches", str(stats.hinted_dispatched)],
        ["control decisions", str(stats.decisions)],
    ]
    return format_table(title, ["metric", "value"], rows)


def format_serve_report(title: str, doc: dict) -> str:
    """Render a ``BENCH_serve.json`` document as the saturation figure:
    one row per (configuration, offered rate) with mean/p50/p99/p999
    total latency, a knee marker at each configuration's p99 knee rate,
    and the headline mean-vs-p999 inversion witnesses."""
    knees = doc["headline"]["knee_rate_rps_by_config"]
    rows = []
    for row in doc["sweep"]["rows"]:
        total = row["phases"]["total"]
        name = row["config"]
        rate = row["offered_rate_rps"]
        marker = " <- knee" if knees.get(name) == rate else ""
        rows.append([
            name,
            f"{rate / 1e6:.2f}M",
            f"{total['mean_ns']:.0f}",
            f"{total['p50_ns']:.0f}",
            f"{total['p99_ns']:.0f}",
            f"{total['p999_ns']:.0f}",
            f"{row['slo_miss_frac'] * 100:.1f}%{marker}",
        ])
    out = [format_table(
        title,
        ["config", "rate", "mean ns", "p50 ns", "p99 ns", "p999 ns", "slo miss"],
        rows,
    )]
    inversions = doc["headline"]["inversions"]
    if inversions:
        out.append("")
        out.append("mean-vs-p999 ranking inversions (the tail-SLO trap):")
        for inv in inversions:
            a, b = inv["pair"]
            out.append(
                f"  @{inv['offered_rate_rps'] / 1e6:.2f}M rps: "
                f"{inv['mean_winner']} wins mean, "
                f"{inv['p999_winner']} wins p999  [{a} vs {b}]"
            )
    ratio = doc["headline"].get("eager_over_defer_knee")
    if ratio is not None:
        out.append("")
        out.append(
            f"eager sustains {ratio:.1f}x the offered rate of defer "
            "before its p99 knee"
        )
    return "\n".join(out)
