"""Scheduler substrate benchmark: thread token-passing vs the event loop.

Measures the two scheduling substrates
(:class:`~repro.runtime.scheduler.CooperativeScheduler` and
:class:`~repro.runtime.event_loop.EventLoopScheduler`) on two workload
families and emits a machine-readable artifact (``BENCH_sched.json``):

* **storm** — a pure switch-density microbenchmark: every rank yields in a
  tight loop, so wall-clock is scheduler overhead and nothing else.  This
  is the regime the event loop exists for (a switch is one generator
  ``send`` instead of two thread context switches plus an Event
  round-trip) and where its ≥5× speedup shows.
* **gups** — the existing §IV-B sweep cells plus a strong-scaling
  extension to 1024 ranks.  These rows are reported honestly: op-dense
  GUPS wall-clock is dominated by simulating the RMA operations
  themselves (identical Python work on both substrates), so the substrate
  speedup there is bounded well below the storm numbers.  The event
  loop's win on GUPS is capability, not per-cell wall-clock: 1024-rank
  runs without 1024 OS threads.

Every row cross-checks the two substrates (equal switch counts for storm,
equal checksums and virtual clocks for GUPS) — the benchmark doubles as a
parity smoke test.
"""

from __future__ import annotations

import dataclasses
import json
import sys
import time
from typing import Optional

from repro.apps.gups import GupsConfig, run_gups
from repro.runtime.config import Version, flags_for
from repro.runtime.runtime import spmd_run
from repro.runtime.switchpoints import YIELD_NOW

#: (ranks, yields-per-rank) of the storm sweep; iteration counts shrink as
#: ranks grow so each row stays in the same wall-clock ballpark
STORM_SWEEP = ((16, 500), (64, 200), (256, 100), (1024, 50))

#: the existing §IV-B sweep cells (weak scaling, 16 ranks — op-bound) and
#: the strong-scaling extension (fixed total updates spread over the ranks)
GUPS_TOTAL_UPDATES = 4096


def _storm_body(iters: int):
    def body():
        for _ in range(iters):
            yield YIELD_NOW

    return body


def _time_spmd(fn, *, ranks, flags, repeats: int, **kw):
    """Best-of-``repeats`` wall-clock of one spmd_run; returns
    (seconds, switches, result)."""
    best = None
    switches = 0
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        r = spmd_run(fn, ranks=ranks, flags=flags, **kw)
        dt = time.perf_counter() - t0
        if best is None or dt < best:
            best = dt
            switches = r.world.sched_switches
            result = r
    return best, switches, result


def storm_row(ranks: int, iters: int, *, repeats: int = 3) -> dict:
    ver = Version.V2021_3_6_EAGER
    base = flags_for(ver)
    fl_ev = dataclasses.replace(base, sched_event_loop=True)
    body = _storm_body(iters)
    kw = dict(version=ver, machine="generic", segment_bytes=1 << 12)
    th_s, th_sw, _ = _time_spmd(body, ranks=ranks, flags=base, repeats=repeats, **kw)
    ev_s, ev_sw, _ = _time_spmd(body, ranks=ranks, flags=fl_ev, repeats=repeats, **kw)
    if th_sw != ev_sw:
        raise AssertionError(
            f"storm parity: switch counts differ at {ranks} ranks "
            f"(thread {th_sw}, event {ev_sw})"
        )
    return {
        "ranks": ranks,
        "yields_per_rank": iters,
        "switches": ev_sw,
        "thread_s": round(th_s, 6),
        "event_s": round(ev_s, 6),
        "speedup": round(th_s / ev_s, 2),
        "thread_switches_per_s": round(th_sw / th_s),
        "event_switches_per_s": round(ev_sw / ev_s),
    }


def gups_row(
    label: str,
    cfg: GupsConfig,
    *,
    ranks: int,
    version: Version,
    machine: str = "intel",
    conduit: Optional[str] = None,
    n_nodes: int = 1,
    repeats: int = 1,
) -> dict:
    base = flags_for(version)
    fl_ev = dataclasses.replace(base, sched_event_loop=True)
    out = {}
    for sub, fl in (("thread", base), ("event", fl_ev)):
        best = None
        res = None
        for _ in range(repeats):
            t0 = time.perf_counter()
            r = run_gups(
                cfg, ranks=ranks, version=version, machine=machine,
                conduit=conduit, n_nodes=n_nodes, flags=fl,
            )
            dt = time.perf_counter() - t0
            if best is None or dt < best:
                best, res = dt, r
        out[sub] = (best, res)
    th_s, th_r = out["thread"]
    ev_s, ev_r = out["event"]
    if th_r.checksum != ev_r.checksum or th_r.solve_ns != ev_r.solve_ns:
        raise AssertionError(
            f"gups parity: substrates disagree on {label!r} "
            f"(checksum {th_r.checksum} vs {ev_r.checksum}, "
            f"solve_ns {th_r.solve_ns} vs {ev_r.solve_ns})"
        )
    return {
        "workload": label,
        "ranks": ranks,
        "variant": cfg.variant,
        "version": version.value,
        "updates_per_rank": cfg.updates_per_rank,
        "batch": cfg.batch,
        "thread_s": round(th_s, 6),
        "event_s": round(ev_s, 6),
        "speedup": round(th_s / ev_s, 2),
        "solve_ns": th_r.solve_ns,
    }


def run_sched_bench(
    *, quick: bool = False, progress=None
) -> dict:
    """Run the full scheduler benchmark; returns the artifact document."""

    def say(msg: str) -> None:
        if progress is not None:
            progress(msg)

    storm_sweep = STORM_SWEEP[:3] if quick else STORM_SWEEP
    repeats = 1 if quick else 3
    storm_rows = []
    for ranks, iters in storm_sweep:
        say(f"storm: {ranks} ranks x {iters} yields ...")
        storm_rows.append(storm_row(ranks, iters, repeats=repeats))

    gups_rows = []
    # the existing sweep's widest cells: 16 ranks, both variants x builds
    sweep_ranks = (16,)
    for ranks in sweep_ranks:
        for variant in ("rma_promise", "rma_future"):
            for ver in (Version.V2021_3_6_DEFER, Version.V2021_3_6_EAGER):
                say(f"gups sweep: {variant} {ver.value} {ranks} ranks ...")
                cfg = GupsConfig(
                    variant=variant, table_log2=12,
                    updates_per_rank=16 if quick else 64, batch=32,
                )
                gups_rows.append(gups_row(
                    "sweep-iv-b", cfg, ranks=ranks, version=ver,
                ))
    # strong-scaling extension: fixed total updates, growing rank counts
    scale_ranks = (256,) if quick else (64, 256, 1024)
    for ranks in scale_ranks:
        upr = max(1, GUPS_TOTAL_UPDATES // ranks)
        say(f"gups strong-scaling: {ranks} ranks x {upr} updates ...")
        cfg = GupsConfig(
            variant="rma_promise", table_log2=12,
            updates_per_rank=upr, batch=min(32, upr),
        )
        gups_rows.append(gups_row(
            "strong-scaling", cfg, ranks=ranks,
            version=Version.V2021_3_6_EAGER,
        ))

    storm_speedups = [r["speedup"] for r in storm_rows]
    gups_speedups = [r["speedup"] for r in gups_rows]
    doc = {
        "bench": "sched",
        "invocation": "python -m repro.bench sched",
        "python": sys.version.split()[0],
        "quick": quick,
        "storm": {
            "description": (
                "pure switch-density microbenchmark (every rank yields in "
                "a loop): wall-clock is scheduler substrate overhead only"
            ),
            "rows": storm_rows,
        },
        "gups": {
            "description": (
                "GUPS cells: the existing 16-rank sweep shape (op-bound — "
                "both substrates execute identical per-op simulator work, "
                "which dominates) and a strong-scaling extension to 1024 "
                "ranks the thread substrate could not previously reach"
            ),
            "rows": gups_rows,
        },
        "headline": {
            "storm_speedup_min": min(storm_speedups),
            "storm_speedup_max": max(storm_speedups),
            "gups_speedup_min": min(gups_speedups),
            "gups_speedup_max": max(gups_speedups),
            "meets_5x_scheduler_bound": min(storm_speedups) >= 5.0,
            "note": (
                "the >=5x substrate speedup holds wherever scheduling "
                "dominates wall-clock (storm rows, every rank count up to "
                "1024); op-dense GUPS cells are bounded by per-op "
                "simulator cost identical on both substrates, so their "
                "speedup is honest but smaller — the event loop's GUPS "
                "win is scale capability (1024 ranks on one thread)"
            ),
        },
    }
    return doc


def write_sched_bench(path: str, *, quick: bool = False, progress=None) -> dict:
    doc = run_sched_bench(quick=quick, progress=progress)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    return doc
