"""Scheduler substrate benchmark: thread token-passing vs the event loop.

Measures the two scheduling substrates
(:class:`~repro.runtime.scheduler.CooperativeScheduler` and
:class:`~repro.runtime.event_loop.EventLoopScheduler`) on two workload
families and emits a machine-readable artifact (``BENCH_sched.json``):

* **storm** — a pure switch-density microbenchmark: every rank yields in a
  tight loop, so wall-clock is scheduler overhead and nothing else.  This
  is the regime the event loop exists for (a switch is one generator
  ``send`` instead of two thread context switches plus an Event
  round-trip) and where its ≥5× speedup shows.
* **blocked storm** — the blocked-heavy variant: every rank loops over a
  barrier with staggered arrivals, so at any moment nearly every rank is
  *parked*.  This is the regime the wake-list scheduler
  (``FeatureFlags.sched_wake_list``) exists for: the legacy
  predicate-scan pick re-evaluates every blocked rank's predicate on
  every switch (O(blocked) per switch, O(ranks²) per barrier round),
  while the wake list promotes exactly the ranks whose completion event
  fired (O(1) per switch).  Rows compare wake-list on vs off on the
  event-loop substrate at 16–1024 ranks; the plain **storm** rows above
  are all-ready (nobody ever blocks) and guard the other side — the
  wake-list bookkeeping must not slow the no-blocking fast path.
* **gups** — the existing §IV-B sweep cells plus a strong-scaling
  extension to 1024 ranks.  These rows are reported honestly: op-dense
  GUPS wall-clock is dominated by simulating the RMA operations
  themselves (identical Python work on both substrates), so the substrate
  speedup there is bounded well below the storm numbers.  The event
  loop's win on GUPS is capability, not per-cell wall-clock: 1024-rank
  runs without 1024 OS threads.

Every row cross-checks its two configurations (equal switch counts for
the storms, equal checksums and virtual clocks for GUPS) — the benchmark
doubles as a parity smoke test.
"""

from __future__ import annotations

import dataclasses
import json
import sys
import time
from typing import Optional

from repro import barrier_gen, current_ctx, rank_me
from repro.apps.gups import GupsConfig, run_gups
from repro.runtime.config import Version, flags_for
from repro.runtime.runtime import spmd_run
from repro.runtime.switchpoints import YIELD_NOW
from repro.sim.costmodel import CostAction

#: (ranks, yields-per-rank) of the storm sweep; iteration counts shrink as
#: ranks grow so each row stays in the same wall-clock ballpark
STORM_SWEEP = ((16, 500), (64, 200), (256, 100), (1024, 50))

#: (ranks, barrier-rounds) of the blocked-heavy sweep.  Rounds shrink as
#: ranks grow, but note the scan's work per round *grows* with ranks —
#: that growth is the measurement.
BLOCKED_SWEEP = ((16, 200), (64, 80), (256, 30), (1024, 10))

#: the existing §IV-B sweep cells (weak scaling, 16 ranks — op-bound) and
#: the strong-scaling extension (fixed total updates spread over the ranks)
GUPS_TOTAL_UPDATES = 4096


def _storm_body(iters: int):
    def body():
        for _ in range(iters):
            yield YIELD_NOW

    return body


def _time_spmd(fn, *, ranks, flags, repeats: int, **kw):
    """Best-of-``repeats`` wall-clock of one spmd_run; returns
    (seconds, switches, result)."""
    best = None
    switches = 0
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        r = spmd_run(fn, ranks=ranks, flags=flags, **kw)
        dt = time.perf_counter() - t0
        if best is None or dt < best:
            best = dt
            switches = r.world.sched_switches
            result = r
    return best, switches, result


def storm_row(ranks: int, iters: int, *, repeats: int = 3) -> dict:
    ver = Version.V2021_3_6_EAGER
    base = flags_for(ver)
    fl_ev = dataclasses.replace(base, sched_event_loop=True)
    body = _storm_body(iters)
    kw = dict(version=ver, machine="generic", segment_bytes=1 << 12)
    th_s, th_sw, _ = _time_spmd(body, ranks=ranks, flags=base, repeats=repeats, **kw)
    ev_s, ev_sw, _ = _time_spmd(body, ranks=ranks, flags=fl_ev, repeats=repeats, **kw)
    if th_sw != ev_sw:
        raise AssertionError(
            f"storm parity: switch counts differ at {ranks} ranks "
            f"(thread {th_sw}, event {ev_sw})"
        )
    return {
        "ranks": ranks,
        "yields_per_rank": iters,
        "switches": ev_sw,
        "thread_s": round(th_s, 6),
        "event_s": round(ev_s, 6),
        "speedup": round(th_s / ev_s, 2),
        "thread_switches_per_s": round(th_sw / th_s),
        "event_switches_per_s": round(ev_sw / ev_s),
    }


def _blocked_storm_body(rounds: int):
    def body():
        ctx = current_ctx()
        me = rank_me()
        for k in range(rounds):
            # staggered arrivals: uneven local work per rank per round, so
            # early arrivals genuinely park while stragglers finish
            ctx.charge(CostAction.FUNCTION_CALL, 1 + ((me + k) % 7))
            yield from barrier_gen()

    return body


def blocked_storm_row(ranks: int, rounds: int, *, repeats: int = 3) -> dict:
    """Wake-list vs predicate-scan on a blocked-heavy barrier storm.

    Runs on the event-loop substrate (the thread substrate cannot reach
    1024 ranks); the only variable is ``sched_wake_list``.  Switch counts
    must match exactly — the wake list is a pure pick-mechanism swap."""
    ver = Version.V2021_3_6_EAGER
    base = flags_for(ver)
    fl_wake = dataclasses.replace(
        base, sched_event_loop=True, sched_wake_list=True
    )
    fl_scan = dataclasses.replace(
        base, sched_event_loop=True, sched_wake_list=False
    )
    body = _blocked_storm_body(rounds)
    kw = dict(version=ver, machine="generic", segment_bytes=1 << 12)
    sc_s, sc_sw, _ = _time_spmd(
        body, ranks=ranks, flags=fl_scan, repeats=repeats, **kw
    )
    wk_s, wk_sw, _ = _time_spmd(
        body, ranks=ranks, flags=fl_wake, repeats=repeats, **kw
    )
    if sc_sw != wk_sw:
        raise AssertionError(
            f"blocked-storm parity: switch counts differ at {ranks} ranks "
            f"(scan {sc_sw}, wake-list {wk_sw})"
        )
    return {
        "ranks": ranks,
        "barrier_rounds": rounds,
        "switches": wk_sw,
        "scan_s": round(sc_s, 6),
        "wake_s": round(wk_s, 6),
        "speedup": round(sc_s / wk_s, 2),
        "scan_switches_per_s": round(sc_sw / sc_s),
        "wake_switches_per_s": round(wk_sw / wk_s),
    }


def gups_row(
    label: str,
    cfg: GupsConfig,
    *,
    ranks: int,
    version: Version,
    machine: str = "intel",
    conduit: Optional[str] = None,
    n_nodes: int = 1,
    repeats: int = 1,
) -> dict:
    base = flags_for(version)
    fl_ev = dataclasses.replace(base, sched_event_loop=True)
    out = {}
    for sub, fl in (("thread", base), ("event", fl_ev)):
        best = None
        res = None
        for _ in range(repeats):
            t0 = time.perf_counter()
            r = run_gups(
                cfg, ranks=ranks, version=version, machine=machine,
                conduit=conduit, n_nodes=n_nodes, flags=fl,
            )
            dt = time.perf_counter() - t0
            if best is None or dt < best:
                best, res = dt, r
        out[sub] = (best, res)
    th_s, th_r = out["thread"]
    ev_s, ev_r = out["event"]
    if th_r.checksum != ev_r.checksum or th_r.solve_ns != ev_r.solve_ns:
        raise AssertionError(
            f"gups parity: substrates disagree on {label!r} "
            f"(checksum {th_r.checksum} vs {ev_r.checksum}, "
            f"solve_ns {th_r.solve_ns} vs {ev_r.solve_ns})"
        )
    return {
        "workload": label,
        "ranks": ranks,
        "variant": cfg.variant,
        "version": version.value,
        "updates_per_rank": cfg.updates_per_rank,
        "batch": cfg.batch,
        "thread_s": round(th_s, 6),
        "event_s": round(ev_s, 6),
        "speedup": round(th_s / ev_s, 2),
        "solve_ns": th_r.solve_ns,
    }


def run_sched_bench(
    *, quick: bool = False, progress=None
) -> dict:
    """Run the full scheduler benchmark; returns the artifact document."""

    def say(msg: str) -> None:
        if progress is not None:
            progress(msg)

    storm_sweep = STORM_SWEEP[:3] if quick else STORM_SWEEP
    repeats = 1 if quick else 3
    storm_rows = []
    for ranks, iters in storm_sweep:
        say(f"storm: {ranks} ranks x {iters} yields ...")
        storm_rows.append(storm_row(ranks, iters, repeats=repeats))

    # quick mode still runs the 1024-rank blocked row: it is the CI
    # regression gate for wake-list switch throughput
    blocked_sweep = ((16, 60), (1024, 8)) if quick else BLOCKED_SWEEP
    blocked_rows = []
    for ranks, rounds in blocked_sweep:
        say(f"blocked storm: {ranks} ranks x {rounds} barriers ...")
        blocked_rows.append(
            blocked_storm_row(ranks, rounds, repeats=repeats)
        )

    gups_rows = []
    # the existing sweep's widest cells: 16 ranks, both variants x builds
    sweep_ranks = (16,)
    for ranks in sweep_ranks:
        for variant in ("rma_promise", "rma_future"):
            for ver in (Version.V2021_3_6_DEFER, Version.V2021_3_6_EAGER):
                say(f"gups sweep: {variant} {ver.value} {ranks} ranks ...")
                cfg = GupsConfig(
                    variant=variant, table_log2=12,
                    updates_per_rank=16 if quick else 64, batch=32,
                )
                gups_rows.append(gups_row(
                    "sweep-iv-b", cfg, ranks=ranks, version=ver,
                ))
    # strong-scaling extension: fixed total updates, growing rank counts
    scale_ranks = (256,) if quick else (64, 256, 1024)
    for ranks in scale_ranks:
        upr = max(1, GUPS_TOTAL_UPDATES // ranks)
        say(f"gups strong-scaling: {ranks} ranks x {upr} updates ...")
        cfg = GupsConfig(
            variant="rma_promise", table_log2=12,
            updates_per_rank=upr, batch=min(32, upr),
        )
        gups_rows.append(gups_row(
            "strong-scaling", cfg, ranks=ranks,
            version=Version.V2021_3_6_EAGER,
        ))

    storm_speedups = [r["speedup"] for r in storm_rows]
    blocked_speedups = [r["speedup"] for r in blocked_rows]
    blocked_top = max(blocked_rows, key=lambda r: r["ranks"])
    gups_speedups = [r["speedup"] for r in gups_rows]
    doc = {
        "bench": "sched",
        "invocation": "python -m repro.bench sched",
        "python": sys.version.split()[0],
        "quick": quick,
        "storm": {
            "description": (
                "pure switch-density microbenchmark (every rank yields in "
                "a loop): wall-clock is scheduler substrate overhead only"
            ),
            "rows": storm_rows,
        },
        "blocked_storm": {
            "description": (
                "blocked-heavy barrier storm on the event-loop substrate: "
                "staggered arrivals keep nearly every rank parked, so the "
                "pick mechanism dominates — wake list (sched_wake_list, "
                "O(1) per switch) vs legacy predicate scan (O(blocked) "
                "per switch).  Switch counts are asserted equal; only "
                "wall-clock may differ"
            ),
            "rows": blocked_rows,
        },
        "gups": {
            "description": (
                "GUPS cells: the existing 16-rank sweep shape (op-bound — "
                "both substrates execute identical per-op simulator work, "
                "which dominates) and a strong-scaling extension to 1024 "
                "ranks the thread substrate could not previously reach"
            ),
            "rows": gups_rows,
        },
        "headline": {
            "storm_speedup_min": min(storm_speedups),
            "storm_speedup_max": max(storm_speedups),
            "blocked_speedup_min": min(blocked_speedups),
            "blocked_speedup_max": max(blocked_speedups),
            "blocked_1024_wake_switches_per_s": (
                blocked_top["wake_switches_per_s"]
            ),
            "blocked_1024_speedup": blocked_top["speedup"],
            "gups_speedup_min": min(gups_speedups),
            "gups_speedup_max": max(gups_speedups),
            "meets_5x_scheduler_bound": min(storm_speedups) >= 5.0,
            "meets_5x_wake_list_bound": blocked_top["speedup"] >= 5.0,
            "note": (
                "the >=5x substrate speedup holds wherever scheduling "
                "dominates wall-clock (storm rows, every rank count up to "
                "1024); op-dense GUPS cells are bounded by per-op "
                "simulator cost identical on both substrates, so their "
                "speedup is honest but smaller — the event loop's GUPS "
                "win is scale capability (1024 ranks on one thread)"
            ),
        },
    }
    return doc


def write_sched_bench(path: str, *, quick: bool = False, progress=None) -> dict:
    doc = run_sched_bench(quick=quick, progress=progress)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    return doc
