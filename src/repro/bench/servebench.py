"""Saturation sweep for the open-loop DHT serving driver.

Sweeps offered rate x mechanism configuration over
:func:`repro.serve.run_serve` on a fixed two-node ibv topology (the
regime where *every* studied mechanism is live: the eager/defer
notification path, AM aggregation, adaptive progress, wait hints, and
the scheduler substrate) and emits a machine-readable artifact
(``BENCH_serve.json``):

* one row per (configuration, offered rate): request counts, SLO misses,
  achieved rate, and p50/p99/p999 + mean for every latency phase
  (total/queue/service) plus the per-key-popularity-class totals —
  all in *virtual* nanoseconds, so every number is deterministic and the
  committed artifact doubles as a regression baseline;
* a **p99 knee** per configuration: the lowest swept rate whose total-
  latency p99 exceeds ``KNEE_FACTOR`` x that configuration's p99 at the
  lowest rate — the capacity figure a service operator actually reads;
* the **headline inversion**: mechanism pairs whose ranking by *mean*
  latency differs from their ranking by *p999* at the same offered rate.
  Mean-centric comparisons (the paper reports means) would pick the
  wrong mechanism for a tail SLO — this artifact exhibits concrete
  (pair, rate) witnesses with margins beyond the sketch's relative
  error;
* an **event-loop parity cross-check**: the eager configuration re-run
  on the event-loop substrate must reproduce identical virtual-time
  results (asserted, like the schedbench parity checks).

Wall-clock cost is a few seconds in quick mode (CI) and well under a
minute for the full sweep; quick mode keeps the workload parameters
identical and trims only rates/configurations, so its rows are directly
comparable against the committed artifact (the CI p99 gate).
"""

from __future__ import annotations

import dataclasses
import json
import sys
from typing import Optional

from repro.runtime.config import Version, flags_for
from repro.serve.driver import ServeResult, run_serve, sketch_key
from repro.serve.workload import KCLASSES, ServeConfig

#: p99(rate) >= KNEE_FACTOR * p99(lowest rate) marks the knee.
KNEE_FACTOR = 1.5

#: Margins an inversion witness must clear (the sketch's relative error
#: is 1%, so a 2% p999 gap cannot be bucket-quantization noise).
INVERSION_MEAN_MARGIN = 0.005
INVERSION_P999_MARGIN = 0.02

#: Offered world-wide rates, requests per virtual second.
FULL_RATES = (1e5, 2.5e5, 5e5, 1e6, 2e6, 4e6)
QUICK_RATES = (1e5, 2.5e5, 1e6)

#: The CI regression gate row: sub-saturation, so its p99 reflects
#: mechanism cost rather than queueing explosion.
GATE_CONFIG = "eager"
GATE_RATE_RPS = 2.5e5

#: Fixed serving workload (identical in quick and full mode so rows are
#: comparable across the two).
WORKLOAD = ServeConfig(
    log2_slots=10,
    key_space=128,
    requests_per_rank=128,
    zipf_s=1.1,
    get_frac=0.6,
    put_frac=0.25,
    slo_ns=150_000.0,
    seed=3,
)
RANKS = 8
N_NODES = 2
CONDUIT = "ibv"
MACHINE = "intel"


def _mech(
    *,
    eager: bool,
    am_aggregation: bool = False,
    agg_adaptive: bool = False,
    progress_adaptive: bool = False,
    wait_hints: bool = False,
    sched_event_loop: bool = False,
):
    """(version, flags, mechanism-description dict) for one configuration."""
    version = Version.V2021_3_6_EAGER if eager else Version.V2021_3_6_DEFER
    flags = dataclasses.replace(
        flags_for(version),
        am_aggregation=am_aggregation,
        agg_adaptive=agg_adaptive,
        progress_adaptive=progress_adaptive,
        wait_hints=wait_hints,
        sched_event_loop=sched_event_loop,
    )
    mech = {
        "eager_notification": eager,
        "am_aggregation": am_aggregation,
        "agg_adaptive": agg_adaptive,
        "progress_adaptive": progress_adaptive,
        "wait_hints": wait_hints,
        "sched_event_loop": sched_event_loop,
    }
    return version, flags, mech


#: name -> (version, flags, mechanism dict).  ``eager+evloop`` is the
#: parity configuration: identical virtual-time behaviour to ``eager``
#: is asserted, so it is excluded from knee/inversion analysis.
CONFIGS = {
    "defer": _mech(eager=False),
    "eager": _mech(eager=True),
    "eager+agg": _mech(eager=True, am_aggregation=True),
    "eager+agg+adaptive": _mech(
        eager=True, am_aggregation=True, agg_adaptive=True
    ),
    "eager+adaptive": _mech(eager=True, progress_adaptive=True),
    "eager+hints": _mech(
        eager=True, progress_adaptive=True, wait_hints=True
    ),
    "eager+evloop": _mech(eager=True, sched_event_loop=True),
}
QUICK_CONFIGS = ("defer", "eager", "eager+agg", "eager+hints", "eager+evloop")
PARITY_PAIR = ("eager", "eager+evloop")


def _phase_stats(res: ServeResult, phase: str, kclass: str) -> Optional[dict]:
    sk = res.sketches.get(sketch_key(phase, kclass))
    if sk is None:
        return None
    pct = sk.percentiles()
    return {
        "n": sk.n,
        "mean_ns": sk.mean,
        "p50_ns": pct["p50"],
        "p99_ns": pct["p99"],
        "p999_ns": pct["p999"],
        "max_ns": sk.max,
    }


def serve_row(name: str, rate_rps: float) -> dict:
    """Run one (configuration, offered rate) cell and build its row."""
    version, flags, mech = CONFIGS[name]
    cfg = dataclasses.replace(WORKLOAD, offered_rate_rps=rate_rps)
    res = run_serve(
        cfg,
        ranks=RANKS,
        version=version,
        machine=MACHINE,
        conduit=CONDUIT,
        n_nodes=N_NODES,
        flags=flags,
    )
    if res.missing:
        raise AssertionError(
            f"serve workload correctness: {res.missing} requests hit "
            f"absent keys ({name} @ {rate_rps:g} rps)"
        )
    phases = {
        "total": _phase_stats(res, "total", "all"),
        "queue": _phase_stats(res, "queue", "all"),
        "service": _phase_stats(res, "service", "all"),
    }
    by_class = {}
    for kc in KCLASSES:
        st = _phase_stats(res, "total", kc)
        if st is not None:
            by_class[kc] = st
    return {
        "config": name,
        "version": version.value,
        "mechanisms": mech,
        "offered_rate_rps": rate_rps,
        "ranks": res.ranks,
        "requests": res.requests,
        "missing": res.missing,
        "slo_ns": cfg.slo_ns,
        "slo_misses": res.slo_misses,
        "slo_miss_frac": res.slo_misses / res.requests,
        "by_op": dict(sorted(res.by_op.items())),
        "achieved_rate_rps": res.achieved_rate_rps,
        "solve_ns": res.solve_ns,
        "phases": phases,
        "by_class": by_class,
    }


def _check_parity(rows: list) -> int:
    """Assert the event-loop configuration is virtual-time identical to
    its thread-substrate twin at every swept rate; returns #rates
    checked."""
    base_name, ev_name = PARITY_PAIR
    by_rate: dict[float, dict[str, dict]] = {}
    for row in rows:
        by_rate.setdefault(row["offered_rate_rps"], {})[row["config"]] = row
    checked = 0
    for rate, cells in sorted(by_rate.items()):
        a, b = cells.get(base_name), cells.get(ev_name)
        if a is None or b is None:
            continue
        for field in ("phases", "by_class", "slo_misses", "solve_ns"):
            if a[field] != b[field]:
                raise AssertionError(
                    f"substrate parity: {base_name} vs {ev_name} disagree "
                    f"on {field} at {rate:g} rps"
                )
        checked += 1
    return checked


def find_knees(rows: list) -> dict:
    """Per configuration, the lowest swept rate whose total p99 is >=
    ``KNEE_FACTOR`` x the configuration's lowest-rate p99 (None if the
    sweep never saturates it)."""
    knees: dict[str, Optional[float]] = {}
    by_cfg: dict[str, list] = {}
    for row in rows:
        by_cfg.setdefault(row["config"], []).append(row)
    for name, cfg_rows in by_cfg.items():
        cfg_rows.sort(key=lambda r: r["offered_rate_rps"])
        base = cfg_rows[0]["phases"]["total"]["p99_ns"]
        knee = None
        for row in cfg_rows[1:]:
            if row["phases"]["total"]["p99_ns"] >= KNEE_FACTOR * base:
                knee = row["offered_rate_rps"]
                break
        knees[name] = knee
    return knees


def find_inversions(rows: list, knees: dict) -> list:
    """Mechanism pairs whose mean ranking contradicts their p999 ranking
    at the same offered rate, at-or-above the earliest knee.

    Both margins must clear :data:`INVERSION_MEAN_MARGIN` /
    :data:`INVERSION_P999_MARGIN` so a witness cannot be sketch
    quantization noise.  The parity configuration is excluded (it is
    ``eager`` by construction).
    """
    known_knees = [k for k in knees.values() if k is not None]
    min_knee = min(known_knees) if known_knees else None
    by_rate: dict[float, list] = {}
    for row in rows:
        if row["config"] == PARITY_PAIR[1]:
            continue
        by_rate.setdefault(row["offered_rate_rps"], []).append(row)
    out = []
    for rate in sorted(by_rate):
        if min_knee is not None and rate < min_knee:
            continue
        cells = sorted(by_rate[rate], key=lambda r: r["config"])
        for a in cells:
            for b in cells:
                if a["config"] >= b["config"]:
                    continue
                am, bm = (
                    a["phases"]["total"]["mean_ns"],
                    b["phases"]["total"]["mean_ns"],
                )
                at, bt = (
                    a["phases"]["total"]["p999_ns"],
                    b["phases"]["total"]["p999_ns"],
                )
                # a wins mean, b wins p999 (or vice versa), with margin
                lo_mean, hi_mean = sorted((am, bm))
                lo_t, hi_t = sorted((at, bt))
                if (
                    hi_mean - lo_mean < INVERSION_MEAN_MARGIN * hi_mean
                    or hi_t - lo_t < INVERSION_P999_MARGIN * hi_t
                ):
                    continue
                if (am < bm) != (at < bt):
                    mean_winner = a if am < bm else b
                    tail_winner = a if at < bt else b
                    out.append({
                        "offered_rate_rps": rate,
                        "pair": [a["config"], b["config"]],
                        "mean_winner": mean_winner["config"],
                        "p999_winner": tail_winner["config"],
                        "mean_ns": {
                            a["config"]: am, b["config"]: bm
                        },
                        "p999_ns": {
                            a["config"]: at, b["config"]: bt
                        },
                    })
    return out


def run_serve_bench(*, quick: bool = False, progress=None) -> dict:
    """Run the sweep; returns the ``BENCH_serve.json`` document."""

    def say(msg: str) -> None:
        if progress is not None:
            progress(msg)

    rates = QUICK_RATES if quick else FULL_RATES
    names = QUICK_CONFIGS if quick else tuple(CONFIGS)
    rows = []
    for rate in rates:
        for name in names:
            say(f"serve: {name} @ {rate:g} rps ...")
            rows.append(serve_row(name, rate))

    parity_rates = _check_parity(rows)
    knees = find_knees(rows)
    inversions = find_inversions(rows, knees)

    gate_row = next(
        (
            r
            for r in rows
            if r["config"] == GATE_CONFIG
            and r["offered_rate_rps"] == GATE_RATE_RPS
        ),
        None,
    )
    knee_d, knee_e = knees.get("defer"), knees.get("eager")
    doc = {
        "bench": "serve",
        "invocation": "python -m repro.bench serve",
        "python": sys.version.split()[0],
        "quick": quick,
        "workload": {
            **dataclasses.asdict(WORKLOAD),
            "ranks": RANKS,
            "n_nodes": N_NODES,
            "conduit": CONDUIT,
            "machine": MACHINE,
            "note": (
                "offered_rate_rps in the workload block is the config "
                "default; each row carries its own swept rate"
            ),
        },
        "sweep": {
            "rates_rps": list(rates),
            "configs": list(names),
            "knee_factor": KNEE_FACTOR,
            "rows": rows,
        },
        "headline": {
            "knee_rate_rps_by_config": knees,
            "eager_over_defer_knee": (
                knee_e / knee_d
                if knee_e is not None and knee_d is not None
                else None
            ),
            "inversions": inversions,
            "inversion": inversions[0] if inversions else None,
            "evloop_parity_rates_checked": parity_rates,
            "gate": (
                None
                if gate_row is None
                else {
                    "config": GATE_CONFIG,
                    "offered_rate_rps": GATE_RATE_RPS,
                    "p99_total_ns": gate_row["phases"]["total"]["p99_ns"],
                }
            ),
            "note": (
                "all latencies are virtual-time and deterministic; an "
                "'inversion' is a mechanism pair whose mean ranking "
                "contradicts its p999 ranking at the same offered rate "
                "-- the reason mean-centric comparisons mislead under "
                "tail SLOs"
            ),
        },
    }
    return doc


def write_serve_bench(
    path: str, *, quick: bool = False, progress=None
) -> dict:
    doc = run_serve_bench(quick=quick, progress=progress)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    return doc


# ---------------------------------------------------------------------------
# artifact schema validation (CI runs this on every generated artifact)
# ---------------------------------------------------------------------------


def _check_phase(errors: list, where: str, st) -> None:
    if not isinstance(st, dict):
        errors.append(f"{where}: not an object")
        return
    for key in ("n", "mean_ns", "p50_ns", "p99_ns", "p999_ns"):
        v = st.get(key)
        if not isinstance(v, (int, float)) or v < 0:
            errors.append(f"{where}.{key}: missing/negative {v!r}")
            return
    if not st["n"]:
        errors.append(f"{where}: empty phase (n == 0)")
    if not (st["p50_ns"] <= st["p99_ns"] <= st["p999_ns"]):
        errors.append(
            f"{where}: percentiles not monotone "
            f"(p50 {st['p50_ns']}, p99 {st['p99_ns']}, p999 {st['p999_ns']})"
        )


def validate_serve_doc(doc) -> list:
    """Structurally validate a ``BENCH_serve.json`` document.

    Returns a list of problems (empty = valid).  Checks the invariants
    downstream consumers rely on: row shape, monotone percentiles per
    phase, zero missing keys, and that each headline inversion witness
    references rows that exist and actually invert.
    """
    errors: list[str] = []
    if not isinstance(doc, dict):
        return [f"expected object at top level, got {type(doc).__name__}"]
    if doc.get("bench") != "serve":
        errors.append(f"bench != 'serve' ({doc.get('bench')!r})")
    sweep = doc.get("sweep")
    if not isinstance(sweep, dict) or not isinstance(sweep.get("rows"), list):
        return errors + ["no sweep.rows list"]
    rows = sweep["rows"]
    if not rows:
        errors.append("sweep.rows is empty")
    seen = set()
    for i, row in enumerate(rows):
        where = f"rows[{i}]"
        if not isinstance(row, dict):
            errors.append(f"{where}: not an object")
            continue
        name = row.get("config")
        rate = row.get("offered_rate_rps")
        if not isinstance(name, str):
            errors.append(f"{where}: missing config name")
            continue
        if not isinstance(rate, (int, float)) or rate <= 0:
            errors.append(f"{where}: bad offered_rate_rps {rate!r}")
            continue
        if (name, rate) in seen:
            errors.append(f"{where}: duplicate cell ({name}, {rate:g})")
        seen.add((name, rate))
        if row.get("missing") != 0:
            errors.append(
                f"{where}: missing != 0 ({row.get('missing')!r}) — "
                "the workload must only touch prepopulated keys"
            )
        reqs = row.get("requests")
        if not isinstance(reqs, int) or reqs <= 0:
            errors.append(f"{where}: bad requests {reqs!r}")
        phases = row.get("phases")
        if not isinstance(phases, dict):
            errors.append(f"{where}: no phases object")
            continue
        for phase in ("total", "queue", "service"):
            _check_phase(errors, f"{where}.phases.{phase}", phases.get(phase))
        by_class = row.get("by_class", {})
        if not isinstance(by_class, dict) or not by_class:
            errors.append(f"{where}: no by_class stats")
        else:
            for kc, st in by_class.items():
                _check_phase(errors, f"{where}.by_class.{kc}", st)
    head = doc.get("headline")
    if not isinstance(head, dict):
        errors.append("no headline object")
        return errors
    knees = head.get("knee_rate_rps_by_config")
    if not isinstance(knees, dict):
        errors.append("headline.knee_rate_rps_by_config missing")
    inversions = head.get("inversions")
    if not isinstance(inversions, list):
        errors.append("headline.inversions missing")
    else:
        cells = {
            (r["config"], r["offered_rate_rps"]): r
            for r in rows
            if isinstance(r, dict) and "config" in r
        }
        for j, inv in enumerate(inversions):
            where = f"headline.inversions[{j}]"
            pair = inv.get("pair") if isinstance(inv, dict) else None
            rate = inv.get("offered_rate_rps") if isinstance(inv, dict) else None
            if (
                not isinstance(pair, list)
                or len(pair) != 2
                or rate is None
            ):
                errors.append(f"{where}: malformed witness")
                continue
            ra, rb = cells.get((pair[0], rate)), cells.get((pair[1], rate))
            if ra is None or rb is None:
                errors.append(f"{where}: references missing rows")
                continue
            am = ra["phases"]["total"]["mean_ns"]
            bm = rb["phases"]["total"]["mean_ns"]
            at = ra["phases"]["total"]["p999_ns"]
            bt = rb["phases"]["total"]["p999_ns"]
            if (am < bm) == (at < bt):
                errors.append(
                    f"{where}: rows do not invert "
                    f"(mean {am:g} vs {bm:g}, p999 {at:g} vs {bt:g})"
                )
    return errors
