"""Shared schema validation for the committed ``BENCH_*.json`` artifacts.

Every benchmark artifact this repo commits is a regression baseline: CI
gates diff fresh runs against it, and PR reviews diff the artifact
itself.  That only works if two invariants hold for every artifact, not
just the one bench that happened to grow a validator first:

* **It round-trips.**  ``json.loads(json.dumps(doc)) == doc`` — no
  tuples-became-lists surprises, no NaN/Infinity, no integer keys that
  stringify on the way out and stop matching on the way back in.
* **Deterministic and environment fields are separable.**  Virtual-time
  measurements (solve times, gaps, switch counts, injection counts) are
  bit-identical across machines and runs; wall-clock seconds and the
  interpreter version are not.  A reviewer diffing an artifact must be
  able to strip the environment side and expect the rest to be stable.
  The A/B artifacts (:mod:`repro.bench.ab`) separate the two
  *structurally* (top-level ``deterministic`` / ``environment`` blocks);
  the legacy docs mix them per key, so :func:`strip_environment`
  classifies by key name.

:func:`validate_artifact` applies the common invariants plus per-bench
structural checks; the tier-1 suite runs it over every committed
artifact, and ``python -m repro.bench validate`` is the same check as a
command.
"""

from __future__ import annotations

import json
import math

#: keys that are wall-clock / interpreter artifacts in *any* document
_ENV_EXACT = frozenset({"python", "invocation"})

#: ``_s``-suffixed keys that are deterministic inputs, not wall seconds
_DET_EXCEPTIONS = frozenset({"zipf_s"})

_KNOWN_BENCHES = ("ab", "cont", "sched", "serve")


def _is_wall_key(key: str) -> bool:
    """Wall-clock or interpreter flavored: never allowed on the
    deterministic side of any artifact."""
    if key in _ENV_EXACT or "wall" in key:
        return True
    if key.endswith("_s") and key not in _DET_EXCEPTIONS:
        return True
    return key.endswith("_per_s")


def is_environment_key(key: str) -> bool:
    """Whether a *legacy* artifact key carries environment-dependent data.

    Beyond the wall/interpreter markers this also classifies the legacy
    speedup keys: the cont/sched docs' ``speedup`` / ``storm_speedup_*``
    / ``meets_5x_*`` values are ratios of wall seconds.  (The A/B docs'
    ``speedup`` blocks are ratios of *virtual-time* metrics and live on
    the deterministic side — but those docs are split structurally and
    never consult this classifier.)
    """
    return _is_wall_key(key) or "speedup" in key or key.startswith("meets_")


def _strip_keys(obj):
    if isinstance(obj, dict):
        return {
            k: _strip_keys(v)
            for k, v in obj.items()
            if not is_environment_key(k)
        }
    if isinstance(obj, list):
        return [_strip_keys(v) for v in obj]
    return obj


def strip_environment(doc: dict) -> dict:
    """The deterministic projection of an artifact: what must be
    bit-identical between two runs of the same code."""
    if doc.get("bench") == "ab":
        return {k: v for k, v in doc.items() if k != "environment"}
    return _strip_keys(doc)


def _walk_finite(errors, where, obj):
    if isinstance(obj, dict):
        for k, v in obj.items():
            _walk_finite(errors, f"{where}.{k}", v)
    elif isinstance(obj, list):
        for i, v in enumerate(obj):
            _walk_finite(errors, f"{where}[{i}]", v)
    elif isinstance(obj, float) and not math.isfinite(obj):
        errors.append(f"{where}: non-finite number {obj!r}")


def _walk_det_keys(errors, where, obj):
    if isinstance(obj, dict):
        for k, v in obj.items():
            if _is_wall_key(k):
                errors.append(
                    f"{where}.{k}: wall/interpreter-flavored key inside "
                    "the deterministic block"
                )
            _walk_det_keys(errors, f"{where}.{k}", v)
    elif isinstance(obj, list):
        for i, v in enumerate(obj):
            _walk_det_keys(errors, f"{where}[{i}]", v)


def _validate_ab(errors: list, doc: dict) -> None:
    from repro.bench.ab import AB_SCHEMA_VERSION

    if doc.get("schema_version") != AB_SCHEMA_VERSION:
        errors.append(
            f"schema_version != {AB_SCHEMA_VERSION} "
            f"({doc.get('schema_version')!r})"
        )
    if not isinstance(doc.get("name"), str) or not doc.get("name"):
        errors.append(f"missing spec name ({doc.get('name')!r})")
    det = doc.get("deterministic")
    env = doc.get("environment")
    if not isinstance(det, dict):
        errors.append("no deterministic block")
        return
    if not isinstance(env, dict):
        errors.append("no environment block")
        return
    for key in ("python", "invocation", "cells"):
        if key not in env:
            errors.append(f"environment.{key} missing")
    for key in (
        "description", "workload", "workload_params", "version",
        "base_overrides", "toggle", "arms", "axis", "seeds", "points",
        "headline",
    ):
        if key not in det:
            errors.append(f"deterministic.{key} missing")
    if errors:
        return
    _walk_det_keys(errors, "deterministic", det)
    arms = det["arms"]
    if (
        not isinstance(arms, dict)
        or set(arms) != {"a", "b"}
        or arms["a"] == arms["b"]
    ):
        errors.append(f"bad arms block {arms!r}")
        return
    toggle = det["toggle"]
    if not isinstance(toggle, dict) or not (1 <= len(toggle) <= 2):
        errors.append(
            f"toggle must name one flag (or a pair), got {toggle!r}"
        )
    seeds = det["seeds"]
    if not isinstance(seeds, list) or not seeds:
        errors.append(f"bad seeds list {seeds!r}")
        return
    points = det["points"]
    if not isinstance(points, list) or not points:
        errors.append("points list empty")
        return
    metric_names = None
    for i, row in enumerate(points):
        where = f"points[{i}]"
        if not isinstance(row, dict) or not {
            "point", "cells", "metrics"
        } <= set(row):
            errors.append(f"{where}: missing point/cells/metrics")
            continue
        cells = row["cells"]
        for label in (arms["a"], arms["b"]):
            arm_cells = cells.get(label)
            if not isinstance(arm_cells, dict):
                errors.append(f"{where}.cells.{label}: missing arm")
                continue
            for seed in seeds:
                cell = arm_cells.get(str(seed))
                if not isinstance(cell, dict) or "metrics" not in cell:
                    errors.append(
                        f"{where}.cells.{label}[{seed}]: missing cell"
                    )
        names = sorted(row["metrics"])
        if metric_names is None:
            metric_names = names
        elif names != metric_names:
            errors.append(
                f"{where}: metric set {names} differs from first point's "
                f"{metric_names}"
            )
        for name, m in row["metrics"].items():
            mwhere = f"{where}.metrics.{name}"
            if m.get("better") not in ("lower", "higher"):
                errors.append(f"{mwhere}: bad better {m.get('better')!r}")
            for side in ("per_seed_a", "per_seed_b"):
                vals = m.get(side)
                if not isinstance(vals, list) or len(vals) != len(seeds):
                    errors.append(
                        f"{mwhere}.{side}: expected {len(seeds)} samples, "
                        f"got {vals!r}"
                    )
            for side in ("a", "b"):
                ci = m.get(side)
                if not isinstance(ci, dict) or not {
                    "mean", "lo", "hi", "n", "stdev"
                } <= set(ci):
                    errors.append(f"{mwhere}.{side}: malformed interval")
                elif not ci["lo"] <= ci["mean"] <= ci["hi"]:
                    errors.append(
                        f"{mwhere}.{side}: interval not ordered "
                        f"(lo {ci['lo']}, mean {ci['mean']}, hi {ci['hi']})"
                    )
    headline = det["headline"]
    if not isinstance(headline, dict):
        errors.append(f"bad headline block {headline!r}")
        return
    for name, h in headline.items():
        if metric_names is not None and name not in metric_names:
            errors.append(f"headline.{name}: not a recorded metric")
        lo, hi = h.get("speedup_mean_min"), h.get("speedup_mean_max")
        if lo is not None and hi is not None and lo > hi:
            errors.append(
                f"headline.{name}: speedup_mean_min {lo} > max {hi}"
            )


def _validate_cont(errors: list, doc: dict) -> None:
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        errors.append("no rows list")
        return
    for i, row in enumerate(rows):
        missing = {
            "variant", "batch", "solve_ns", "mean_gap_ns", "gap_count"
        } - set(row)
        if missing:
            errors.append(f"rows[{i}]: missing {sorted(missing)}")
    comps = doc.get("comparisons")
    if not isinstance(comps, list) or not comps:
        errors.append("no comparisons list")
    if not isinstance(doc.get("headline"), dict):
        errors.append("no headline object")


def _validate_sched(errors: list, doc: dict) -> None:
    for section in ("storm", "blocked_storm", "gups"):
        sec = doc.get(section)
        if not isinstance(sec, dict) or not isinstance(
            sec.get("rows"), list
        ) or not sec["rows"]:
            errors.append(f"no {section}.rows list")
    if not isinstance(doc.get("headline"), dict):
        errors.append("no headline object")
        return
    blocked = doc.get("blocked_storm")
    if isinstance(blocked, dict) and isinstance(blocked.get("rows"), list):
        for i, row in enumerate(blocked["rows"]):
            if not {"ranks", "switches"} <= set(row):
                errors.append(f"blocked_storm.rows[{i}]: missing ranks/switches")


def validate_artifact(doc, path: str = "?") -> list:
    """Validate one artifact document; returns problems (empty = valid).

    Common invariants apply to every bench kind; the four known kinds get
    structural checks on the fields their CI gates read.  An unknown
    ``bench`` value fails — committed artifacts must be one of ours.
    """
    errors: list[str] = []
    if not isinstance(doc, dict):
        return [f"{path}: expected object, got {type(doc).__name__}"]
    bench = doc.get("bench")
    if bench not in _KNOWN_BENCHES:
        errors.append(
            f"unknown bench kind {bench!r} (known: {_KNOWN_BENCHES})"
        )
    if not isinstance(doc.get("quick"), bool):
        errors.append(
            f"quick must be a bool, got {doc.get('quick')!r} — gates need "
            "it to reject quick-mode baselines"
        )
    try:
        if json.loads(json.dumps(doc, allow_nan=False)) != doc:
            errors.append("document does not round-trip through JSON")
    except ValueError as exc:
        errors.append(f"document not JSON-serializable: {exc}")
    _walk_finite(errors, "$", doc)
    det = strip_environment(doc)
    if not det or det == {"bench": bench}:
        errors.append("deterministic projection is empty")
    if bench == "ab":
        _validate_ab(errors, doc)
    elif bench == "cont":
        _validate_cont(errors, doc)
    elif bench == "sched":
        _validate_sched(errors, doc)
    elif bench == "serve":
        from repro.bench.servebench import validate_serve_doc

        errors.extend(validate_serve_doc(doc))
    return [f"{path}: {e}" for e in errors]


def validate_artifact_file(path: str) -> list:
    """Load and validate one artifact file.  A file at a canonical name
    (no ``.quick.`` marker) is a CI baseline and must be a full run —
    quick sweeps belong in ``BENCH_<name>.quick.json``."""
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        return [f"{path}: unreadable ({exc})"]
    errors = validate_artifact(doc, path=path)
    if ".quick." not in path.rsplit("/", 1)[-1] and doc.get("quick") is True:
        errors.append(
            f"{path}: quick-mode artifact at a canonical baseline name — "
            "quick runs must not overwrite CI baselines (write to "
            "BENCH_<name>.quick.json, or pass --force to mean it)"
        )
    return errors
