"""Completion event kinds (Section II-A).

* ``SOURCE`` — for operations with a source buffer: the buffer may be
  reused/reclaimed by the initiator;
* ``REMOTE`` — for RMA put: runs on the target process after data arrival
  (notification is an RPC);
* ``OPERATION`` — the whole operation is complete from the initiator's
  perspective.
"""

from __future__ import annotations

import enum


class Event(enum.Enum):
    SOURCE = "source"
    REMOTE = "remote"
    OPERATION = "operation"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value
