"""The internal promise cell: the heap object behind every future/promise.

In UPC++ each non-ready future corresponds to a dynamically allocated
internal promise cell (Section II-A).  The 2021.3.0 path allocates one for
*every* asynchronous operation, even those that complete synchronously via
shared-memory bypass; eliminating exactly this allocation (plus the
progress-queue round trip) is what eager notification buys.

Cells are created through the factory functions below, never directly, so
that heap-cost accounting is centralized:

* :func:`alloc_cell` — a fresh non-ready cell; charges one promise-cell
  heap allocation (and its eventual free, amortized at allocation time);
* :func:`ready_cell` — a fresh *ready* cell holding values; same charge
  (the value must live somewhere — §III-B explains why this allocation
  cannot be elided for value-producing operations);
* :func:`ready_unit_cell` — a ready value-less cell.  With the 2021.3.6
  ``ready_future_shared_cell`` optimization this returns the world's shared
  pre-allocated cell at **zero** heap cost; on 2021.3.0 it allocates.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.errors import FutureError, PromiseError
from repro.sim.costmodel import CostAction

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.context import RankContext


class PromiseCell:
    """State machine shared by futures (consumers) and promises (producers).

    A cell is *ready* once its dependency counter reaches zero; promises
    start the counter at 1 (the master dependency cleared by
    ``finalize()``), plain operation cells at 1 (cleared when the operation
    completes), and conjoined cells at the number of non-ready inputs.
    """

    __slots__ = ("nvalues", "values", "deps", "finalized", "callbacks", "shared")

    def __init__(self, nvalues: int = 0, deps: int = 1, shared: bool = False):
        if deps < 0:
            raise PromiseError("dependency count cannot be negative")
        self.nvalues = nvalues
        self.values: Optional[tuple] = () if nvalues == 0 else None
        self.deps = deps
        self.finalized = deps == 0
        self.callbacks: Optional[list[Callable[[tuple], None]]] = None
        self.shared = shared

    # -- state ---------------------------------------------------------------

    @property
    def ready(self) -> bool:
        return self.deps == 0 and (self.nvalues == 0 or self.values is not None)

    def result_tuple(self) -> tuple:
        if not self.ready:
            raise FutureError("result requested from a non-ready future")
        return self.values if self.values is not None else ()

    # -- producer side ---------------------------------------------------------

    def add_deps(self, n: int) -> None:
        if self.ready:
            raise PromiseError("cannot add dependencies to a ready cell")
        if self.shared:
            raise PromiseError("the shared ready cell is immutable")
        self.deps += n

    def set_values(self, values: tuple) -> None:
        """Store the produced values (does not decrement the counter)."""
        if self.shared:
            raise PromiseError("the shared ready cell is immutable")
        if len(values) != self.nvalues:
            raise PromiseError(
                f"cell expects {self.nvalues} values, got {len(values)}"
            )
        if self.nvalues and self.values is not None:
            raise PromiseError("cell values already set")
        self.values = values

    def fulfill(self, n: int = 1) -> bool:
        """Clear ``n`` dependencies; fire callbacks if the cell became
        ready.  Returns True exactly when this call made it ready."""
        if self.shared:
            raise PromiseError("the shared ready cell is immutable")
        if n < 0:
            raise PromiseError("cannot fulfill a negative count")
        if n > self.deps:
            raise PromiseError(
                f"over-fulfillment: {n} > outstanding {self.deps}"
            )
        if n == 0:
            return False
        self.deps -= n
        if self.deps == 0:
            if self.nvalues and self.values is None:
                raise PromiseError(
                    "all dependencies cleared but values never supplied"
                )
            self._fire()
            return True
        return False

    def _fire(self) -> None:
        cbs, self.callbacks = self.callbacks, None
        if cbs:
            vals = self.result_tuple()
            for cb in cbs:
                cb(vals)

    # -- consumer side -----------------------------------------------------------

    def add_callback(self, cb: Callable[[tuple], None]) -> None:
        """Attach ``cb`` to run (synchronously) when the cell becomes ready.
        If already ready the callback runs immediately."""
        if self.ready:
            cb(self.result_tuple())
            return
        if self.callbacks is None:
            self.callbacks = []
        self.callbacks.append(cb)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "ready" if self.ready else f"deps={self.deps}"
        return f"<PromiseCell nvalues={self.nvalues} {state}>"


# ---------------------------------------------------------------------------
# allocation factories (all heap accounting happens here)
# ---------------------------------------------------------------------------


def _charge_alloc(ctx: "RankContext") -> None:
    # The eventual free is charged at allocation time (amortized); totals
    # are identical and tests can still count allocations exactly.
    ctx.charge(CostAction.HEAP_ALLOC_PROMISE_CELL)
    ctx.charge(CostAction.HEAP_FREE)


def alloc_cell(ctx: "RankContext", nvalues: int = 0, deps: int = 1) -> PromiseCell:
    """A fresh non-ready cell (one heap allocation)."""
    _charge_alloc(ctx)
    return PromiseCell(nvalues=nvalues, deps=deps)


def ready_cell(ctx: "RankContext", values: tuple) -> PromiseCell:
    """A fresh ready cell holding ``values`` (one heap allocation —
    unavoidable for value-producing results, §III-B)."""
    _charge_alloc(ctx)
    cell = PromiseCell(nvalues=len(values), deps=0)
    if values:
        cell.values = values
    return cell


def ready_unit_cell(ctx: "RankContext") -> PromiseCell:
    """A ready value-less cell.

    Under the ``ready_future_shared_cell`` optimization this is the world's
    shared pre-allocated cell (zero cost); otherwise it allocates like any
    other cell (2021.3.0 behaviour).
    """
    if ctx.flags.ready_future_shared_cell:
        return ctx.world.shared_ready_cell
    _charge_alloc(ctx)
    return PromiseCell(nvalues=0, deps=0)
