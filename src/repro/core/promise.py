"""Promises: the producer side of an asynchronous result.

Mirrors ``upcxx::promise<T...>``.  A promise is "particularly efficient at
keeping track of multiple asynchronous operations, essentially acting as a
counter" (Section II-A): registering an operation increments the dependency
counter, completion decrements it, and the single heap allocation is the
explicitly constructed promise itself — in contrast to future conjoining,
which allocates a cell per conjoined operation.

The counter starts at 1: that master dependency is cleared by
:meth:`Promise.finalize`, which closes registration and returns the future.
"""

from __future__ import annotations

from repro.core.cell import PromiseCell, alloc_cell
from repro.core.future import Future
from repro.errors import PromiseError
from repro.runtime.context import current_ctx
from repro.sim.costmodel import CostAction


class Promise:
    """An explicitly allocated completion counter.

    Parameters
    ----------
    nvalues:
        Arity of the produced result.  A promise with ``nvalues > 0`` can
        track only a single value-producing operation (the §III-B
        motivation for non-value fetching atomics); a value-less promise
        can track any number of operations.
    """

    __slots__ = ("_cell", "_finalized")

    def __init__(self, nvalues: int = 0):
        ctx = current_ctx()
        self._cell = alloc_cell(ctx, nvalues=nvalues, deps=1)
        self._finalized = False

    # -- registration (producer) ---------------------------------------------

    def require_anonymous(self, n: int) -> None:
        """Register ``n`` additional dependencies (operations) on this
        promise.  Illegal after :meth:`finalize`."""
        if n < 0:
            raise PromiseError("cannot require a negative dependency count")
        if self._finalized:
            raise PromiseError("require_anonymous after finalize")
        current_ctx().charge(CostAction.PROMISE_REGISTER)
        self._cell.add_deps(n)

    def fulfill_anonymous(self, n: int = 1) -> None:
        """Clear ``n`` previously registered dependencies."""
        current_ctx().charge(CostAction.PROMISE_FULFILL)
        # the master (finalize) dependency is not fulfillable anonymously
        outstanding = self._cell.deps - (0 if self._finalized else 1)
        if n > outstanding:
            raise PromiseError(
                f"fulfill_anonymous({n}) exceeds registered dependencies "
                f"({outstanding})"
            )
        self._cell.fulfill(n)

    def fulfill_result(self, *values) -> None:
        """Supply the result values and clear one dependency (for
        value-producing promises tracking their single operation)."""
        current_ctx().charge(CostAction.PROMISE_FULFILL)
        if self._cell.nvalues != len(values):
            raise PromiseError(
                f"promise expects {self._cell.nvalues} values, "
                f"got {len(values)}"
            )
        if self._cell.nvalues:
            self._cell.set_values(tuple(values))
        self._cell.fulfill(1)

    # -- consumption ----------------------------------------------------------

    def finalize(self) -> Future:
        """Close registration: clear the master dependency and return the
        future.  Idempotent per UPC++ (subsequent calls just return the
        future)."""
        if not self._finalized:
            self._finalized = True
            self._cell.fulfill(1)
        return Future(self._cell)

    def get_future(self) -> Future:
        """The future associated with this promise (without finalizing)."""
        return Future(self._cell)

    # -- internals for the completions dispatcher -------------------------------

    @property
    def cell(self) -> PromiseCell:
        return self._cell

    @property
    def finalized(self) -> bool:
        return self._finalized

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Promise nvalues={self._cell.nvalues} deps={self._cell.deps} "
            f"{'finalized' if self._finalized else 'open'}>"
        )
