"""Futures: the consumer side of an asynchronous result.

Mirrors ``upcxx::future<T...>``:

* :meth:`Future.is_ready` — readiness query (one load);
* :meth:`Future.result` — the value(s); requires readiness;
* :meth:`Future.then` — attach a callback.  Per UPC++ semantics the
  callback runs **synchronously during** ``then`` if the future is already
  ready — this is exactly the observable semantic difference between eager
  and deferred notification that the paper's footnote 3 discusses;
* :meth:`Future.wait` — spin on the progress engine until ready (blocking
  the simulated rank, letting other ranks run).

:func:`make_future` constructs ready futures; the value-less case uses the
shared pre-allocated cell on builds with that optimization (§III-B).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.cell import PromiseCell, alloc_cell, ready_cell, ready_unit_cell
from repro.errors import FutureError
from repro.runtime.context import current_ctx
from repro.runtime.switchpoints import BlockUntil, run_blocking
from repro.runtime.wait_hints import WaitTarget
from repro.sim.costmodel import CostAction


class Future:
    """A handle on a :class:`~repro.core.cell.PromiseCell`.

    ``nvalues`` is the arity: ``future<>`` has 0, ``future<T>`` 1, etc.
    ``result()`` unwraps arity-1 futures to the bare value and returns a
    tuple for higher arities (None for arity 0), following the ergonomics
    of the C++ API.
    """

    __slots__ = ("_cell", "_span", "_hint_dst", "_sched_charged")

    def __init__(self, cell: PromiseCell):
        self._cell = cell
        #: operation span this future notifies (observability only; set by
        #: CxDispatcher.result() so wait() can stamp the waited phase)
        self._span = None
        #: destination rank of the operation behind this future when it
        #: was injected off-node (set by CxDispatcher.result(); None for
        #: local ops) — a hinted wait passes it to the AM aggregator
        self._hint_dst = None
        #: whether this future already paid FUTURE_CALLBACK_SCHEDULE for a
        #: ``then`` (the legacy bookkeeping is per chain head, not per call
        #: — a second ``then`` on a ready future re-enters the same state)
        self._sched_charged = False

    # -- queries ----------------------------------------------------------

    @property
    def nvalues(self) -> int:
        return self._cell.nvalues

    def is_ready(self) -> bool:
        """Readiness check (charges one load-like cost)."""
        current_ctx().charge(CostAction.FUTURE_READY_CHECK)
        return self._cell.ready

    def result(self):
        """The produced value(s); raises if not ready.

        Arity 0 → ``None``; arity 1 → the value; arity ≥2 → a tuple.
        """
        vals = self._cell.result_tuple()
        if self._cell.nvalues == 0:
            return None
        if self._cell.nvalues == 1:
            return vals[0]
        return vals

    def result_tuple(self) -> tuple:
        """The values as a tuple regardless of arity (raises if not ready)."""
        return self._cell.result_tuple()

    # -- composition ----------------------------------------------------------

    def then(self, fn: Callable[..., Any]) -> "Future":
        """Schedule ``fn(*values)`` for when this future is ready.

        Returns a future of ``fn``'s result; if ``fn`` itself returns a
        future, the result is flattened (the returned future adopts it).

        If this future is already ready, ``fn`` executes immediately —
        synchronously inside ``then`` (UPC++ semantics; under deferred
        notification an operation future is never ready this early, so the
        callback is guaranteed to run inside a later progress call).
        """
        ctx = current_ctx()
        cell = self._cell
        if cell.ready and ctx.flags.eager_notification:
            # §III-B fast path: on eager builds a ready future's callback
            # runs inline right here — nothing is scheduled and no cell is
            # allocated, so no scheduling cost is charged either.  Deferred
            # builds keep the legacy charge below even when ready, matching
            # the release's unconditional scheduling bookkeeping.
            return _capture(ctx, fn, cell.result_tuple())
        if cell.ready:
            # deferred-build ready fast path: the release charges its
            # scheduling bookkeeping once per chain head — a repeat `then`
            # on an already-chained ready future schedules nothing new, so
            # the charge is deduplicated (regression-pinned in
            # tests/test_future_edge.py)
            if not self._sched_charged:
                self._sched_charged = True
                ctx.charge(CostAction.FUTURE_CALLBACK_SCHEDULE)
            return _capture(ctx, fn, cell.result_tuple())
        self._sched_charged = True
        ctx.charge(CostAction.FUTURE_CALLBACK_SCHEDULE)
        # arity is unknown until fn runs; _deliver fixes it before fulfilling
        result_cell = alloc_cell(ctx, nvalues=0, deps=1)

        def on_ready(vals: tuple) -> None:
            out = fn(*vals)
            _deliver(result_cell, out)

        cell.add_callback(on_ready)
        return Future(result_cell)

    # -- blocking -----------------------------------------------------------

    def wait(self):
        """Block (the simulated rank) until ready; return :meth:`result`.

        Runs the progress engine while waiting, as ``upcxx::future::wait``
        does, and yields to other simulated ranks when locally stalled.
        """
        ctx = current_ctx()
        cell = self._cell
        ctx.charge(CostAction.FUTURE_READY_CHECK)
        if cell.ready:
            return self._finish_wait(ctx)
        return run_blocking(ctx, self._wait_spin_gen(ctx, cell))

    def wait_gen(self):
        """Generator form of :meth:`wait` for continuation rank bodies:
        ``value = yield from fut.wait_gen()``.

        Yields switch commands instead of calling the blocking scheduler
        primitives, so the event-loop scheduler interprets the waits in
        place; :meth:`wait` drives this same spin through ``run_blocking``
        — one implementation, identical charge sequence on both
        substrates.
        """
        ctx = current_ctx()
        cell = self._cell
        ctx.charge(CostAction.FUTURE_READY_CHECK)
        if cell.ready:
            return self._finish_wait(ctx)
        return (yield from self._wait_spin_gen(ctx, cell))

    def _wait_spin_gen(self, ctx, cell):
        """The not-ready wait spin (progress / re-check / block) as a
        switch-command generator."""
        if ctx.wait_hints:
            return (yield from self._wait_hinted_gen(ctx, cell))
        while True:
            ctx.progress()
            ctx.charge(CostAction.FUTURE_READY_CHECK)
            if cell.ready:
                return self._finish_wait(ctx)
            yield BlockUntil(
                lambda: cell.ready or ctx.has_incoming(),
                wake=("cell", cell),
            )

    def _wait_hinted_gen(self, ctx, cell):
        """The ``wait_hints`` spin: same loop as ``wait`` but with this
        future's cell/destination published as the active wait target, so
        each poll's targeted drain dispatches the awaited notifications
        ahead of the batch cap and the aggregator flushes the awaited
        destination first (see :mod:`repro.runtime.wait_hints`)."""
        span = self._span
        if span is not None and span.t_hinted is None:
            span.t_hinted = ctx.clock.now_ns
        obs = ctx.obs
        if obs is not None:
            obs.on_wait_hint(self._hint_dst)
        t0 = ctx.clock.now_ns
        ctx.push_wait_target(
            WaitTarget(cell=cell, dst_rank=self._hint_dst, op="future")
        )
        try:
            while True:
                ctx.progress()
                ctx.charge(CostAction.FUTURE_READY_CHECK)
                if cell.ready:
                    if obs is not None:
                        obs.on_wait_stall(ctx.clock.now_ns - t0)
                    return self._finish_wait(ctx)
                # about to block: publish *every* parked bundle, not just
                # the targeted ones — a peer may be blocked on an AM the
                # targeted flush deliberately left batching
                ctx.flush_aggregation(reason="wait_block")
                yield BlockUntil(
                    lambda: cell.ready or ctx.has_incoming(),
                    wake=("cell", cell),
                )
        finally:
            ctx.pop_wait_target()

    def _finish_wait(self, ctx):
        """Common tail of ``wait``: stamp the waited phase and unwrap."""
        span = self._span
        if span is not None and span.t_waited is None:
            span.t_waited = ctx.clock.now_ns
        return self.result()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "ready" if self._cell.ready else "pending"
        return f"<Future nvalues={self._cell.nvalues} {state}>"


def _deliver(result_cell: PromiseCell, out) -> None:
    """Complete a ``then`` result cell with ``out`` (flattening futures)."""
    if isinstance(out, Future):
        inner = out._cell

        def adopt(vals: tuple) -> None:
            result_cell.nvalues = len(vals)
            result_cell.values = vals if vals else ()
            result_cell.fulfill()

        inner.add_callback(adopt)
        return
    if out is None:
        result_cell.nvalues = 0
        result_cell.values = ()
    elif isinstance(out, tuple):
        result_cell.nvalues = len(out)
        result_cell.values = out
    else:
        result_cell.nvalues = 1
        result_cell.values = (out,)
    result_cell.fulfill()


def _capture(ctx, fn: Callable[..., Any], vals: tuple) -> "Future":
    """Run ``fn`` immediately (ready input) and wrap its result."""
    out = fn(*vals)
    if isinstance(out, Future):
        return out
    if out is None:
        return Future(ready_unit_cell(ctx))
    if isinstance(out, tuple):
        return Future(ready_cell(ctx, out))
    return Future(ready_cell(ctx, (out,)))


def make_future(*values) -> Future:
    """A ready future holding ``values`` (``upcxx::make_future``).

    The value-less call ``make_future()`` is the idiomatic base case for
    conjoining loops; with the 2021.3.6 shared-ready-cell optimization it
    performs no allocation.
    """
    ctx = current_ctx()
    if not values:
        return Future(ready_unit_cell(ctx))
    return Future(ready_cell(ctx, values))


def to_future(value) -> Future:
    """Coerce ``value`` to a future (futures pass through unchanged)."""
    if isinstance(value, Future):
        return value
    return make_future(value)
