"""``when_all``: conjoining futures (and values) into one future.

The legacy implementation (2021.3.0) always builds a dependency-graph
vertex: a fresh heap-allocated cell wired to every input, readied when the
last input readies (Figure 1 of the paper).  Conjoining N operations in a
loop therefore allocates N cells and resolves N graph edges — the dominant
cost of the "pure RMA / atomics with futures" GUPS variants.

The optimized implementation (§III-C, ``when_all_shortcuts`` flag) avoids
the graph when the answer is semantically an existing future:

* every input ready and value-less → return one of them (and with the
  shared ready cell, that future costs nothing);
* exactly one input contributes (all others are ready value-less) →
  return that input directly;
* otherwise fall back to the graph construction.

These short-cuts matter chiefly when inputs are ready futures produced by
eager completions — which is why the combination of the two optimizations
yields the paper's headline 13.5× GUPS speedup.
"""

from __future__ import annotations

from repro.core.cell import alloc_cell
from repro.core.future import Future, to_future
from repro.runtime.context import current_ctx
from repro.sim.costmodel import CostAction


def when_all(*inputs) -> Future:
    """Combine futures/values into a single future.

    Non-future inputs are treated as ready single-value futures (UPC++
    semantics).  The result carries the concatenation of all input values
    in argument order, and becomes ready when every input is ready.
    """
    ctx = current_ctx()
    futures = [to_future(x) for x in inputs]

    if ctx.flags.when_all_shortcuts:
        shortcut = _try_shortcut(ctx, futures)
        if shortcut is not None:
            return shortcut
    return _build_conjoined(ctx, futures)


def _try_shortcut(ctx, futures: list[Future]) -> Future | None:
    """Apply the §III-C rules; None means 'use the graph'."""
    contributor: Future | None = None
    for fut in futures:
        ctx.charge(CostAction.FUTURE_READY_CHECK)
        cell = fut._cell
        if cell.ready and cell.nvalues == 0:
            continue  # contributes neither values nor readiness
        if contributor is not None:
            return None  # two contributors: need the graph
        contributor = fut
    if contributor is not None:
        return contributor
    # all inputs ready and value-less (or no inputs at all)
    if futures:
        return futures[0]
    from repro.core.future import make_future

    return make_future()


def _build_conjoined(ctx, futures: list[Future]) -> Future:
    """Legacy dependency-graph construction."""
    ctx.charge(CostAction.WHEN_ALL_NODE_BUILD)
    total_values = sum(f._cell.nvalues for f in futures)
    pending = [f for f in futures if not f._cell.ready]
    result = alloc_cell(
        ctx, nvalues=total_values, deps=max(1, len(pending))
    )

    def finish() -> None:
        if total_values:
            vals: list = []
            for f in futures:
                vals.extend(f._cell.result_tuple())
            result.values = tuple(vals)
        # else: values stays () from construction

    if not pending:
        # inputs all ready but shortcuts disabled (or value-bearing):
        # the graph node still gets built, then resolves immediately.
        ctx.charge(CostAction.DEP_GRAPH_RESOLVE_EDGE, len(futures))
        finish()
        result.fulfill(1)
        return Future(result)

    remaining = len(pending)

    def on_input_ready(_vals: tuple) -> None:
        nonlocal remaining
        ctx.charge(CostAction.DEP_GRAPH_RESOLVE_EDGE)
        remaining -= 1
        if remaining == 0:
            finish()
        result.fulfill(1)

    for f in pending:
        f._cell.add_callback(on_input_ready)
    # edges to already-ready inputs are resolved at construction time
    ctx.charge(CostAction.DEP_GRAPH_RESOLVE_EDGE, len(futures) - len(pending))
    return Future(result)
