"""The completions mechanism, including eager/deferred notification.

This module is the paper's Section III-A in executable form.

**Requesting completions.**  ``operation_cx`` / ``source_cx`` / ``remote_cx``
are factory namespaces whose methods return :class:`Completions` objects;
requests compose with ``|`` and are passed to communication operations::

    rput(value, gptr,
         source_cx.as_future() | operation_cx.as_promise(prom))

``as_future()``/``as_promise()`` use the build's default notification
discipline (eager on 2021.3.6-eager — the proposed default —, deferred
otherwise, mirroring the ``UPCXX_DEFER_COMPLETION`` macro).  The explicit
``as_eager_*``/``as_defer_*`` factories (new in 2021.3.6) force one or the
other; *eager* is permissive ("allow, do not guarantee"), *defer* is a
guarantee of the legacy behaviour.

**Delivering completions.**  Operations create a :class:`CxDispatcher` and
report each event either

* synchronously completed during initiation (:meth:`CxDispatcher.notify_sync`)
  — the shared-memory-bypass case, where eager requests take the fast path:
  a ready future (no allocation for value-less results on 2021.3.6) or a
  wholly untouched promise; deferred requests allocate a cell / register on
  the promise and round-trip through the progress queue; or
* asynchronous (:meth:`CxDispatcher.pend`) — the off-node case: state is
  allocated up front and the returned :class:`PendingEvent` is completed
  later from inside the progress engine, which is deferred notification by
  construction.

**Notifiable completions beyond futures (``cx_continuations``).**  Two
further completion kinds generalize the eager idea past future objects
(MPI Continuations / UNR lineage — see DESIGN.md §13):

* *continuation completions* (``operation_cx.as_continuation(fn)``):
  the callback is attached at initiation and runs inline at whichever
  agent observes completion — on the ``notify_sync`` fast path for
  synchronous transfers (zero future/cell allocation, even on defer
  builds) or from the progress engine's ack dispatch on the ``pend``
  path;
* *counter completions* (:class:`CxCounter`): N operation events
  aggregate into one notification on a shared cell, one allocation
  total, targetable by ``wait_hints`` as a unit (waiting on the counter
  flushes every member op's destination).

Both are gated behind ``FeatureFlags.cx_continuations`` — with the flag
off the factories raise and every existing path is untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.core.cell import alloc_cell, ready_cell, ready_unit_cell
from repro.core.events import Event
from repro.core.future import Future
from repro.core.promise import Promise
from repro.errors import CompletionError
from repro.runtime.context import current_ctx
from repro.runtime.switchpoints import BlockUntil, run_blocking
from repro.runtime.wait_hints import WaitTarget
from repro.sim.costmodel import CostAction

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs import OpSpan
    from repro.runtime.context import RankContext

_FUTURE = "future"
_PROMISE = "promise"
_LPC = "lpc"
_RPC = "rpc"
_CONTINUATION = "continuation"
_COUNTER = "counter"

_DEFAULT = "default"
_EAGER = "eager"
_DEFER = "defer"


@dataclass(frozen=True)
class CompletionRequest:
    """One requested notification: (event, mechanism, eagerness, payload)."""

    event: Event
    kind: str  # future | promise | lpc | rpc | continuation | counter
    eagerness: str = _DEFAULT  # default | eager | defer
    promise: Optional[Promise] = None
    fn: Optional[Callable] = None
    args: tuple = ()
    counter: Optional["CxCounter"] = None

    def describe(self) -> str:
        e = "" if self.eagerness == _DEFAULT else f"_{self.eagerness}"
        return f"{self.event.value}_cx::as{e}_{self.kind}"


@dataclass(frozen=True)
class Completions:
    """An ordered composition of completion requests."""

    requests: tuple[CompletionRequest, ...] = ()

    def __or__(self, other: "Completions") -> "Completions":
        if not isinstance(other, Completions):
            return NotImplemented
        return Completions(self.requests + other.requests)

    def by_event(self, event: Event) -> list[CompletionRequest]:
        return [r for r in self.requests if r.event is event]

    def __len__(self) -> int:
        return len(self.requests)


class _CxFactory:
    """Factory namespace bound to one event kind (``operation_cx`` etc.)."""

    __slots__ = ("_event",)

    def __init__(self, event: Event):
        self._event = event

    def _one(self, **kw) -> Completions:
        return Completions((CompletionRequest(event=self._event, **kw),))

    # -- futures -------------------------------------------------------------

    def as_future(self) -> Completions:
        """Notify via a future using the build's default discipline."""
        return self._one(kind=_FUTURE)

    def as_eager_future(self) -> Completions:
        """Permit eager notification (2021.3.6 factories)."""
        return self._one(kind=_FUTURE, eagerness=_EAGER)

    def as_defer_future(self) -> Completions:
        """Guarantee deferred (legacy) notification."""
        return self._one(kind=_FUTURE, eagerness=_DEFER)

    # -- promises ----------------------------------------------------------------

    def as_promise(self, p: Promise) -> Completions:
        """Notify by fulfilling ``p``, default discipline."""
        return self._one(kind=_PROMISE, promise=p)

    def as_eager_promise(self, p: Promise) -> Completions:
        return self._one(kind=_PROMISE, promise=p, eagerness=_EAGER)

    def as_defer_promise(self, p: Promise) -> Completions:
        return self._one(kind=_PROMISE, promise=p, eagerness=_DEFER)

    # -- procedure calls ---------------------------------------------------------

    def as_lpc(self, fn: Callable, *args) -> Completions:
        """Run ``fn(*args)`` on the initiator inside a progress call."""
        if self._event is Event.REMOTE:
            raise CompletionError("remote completion cannot use an LPC")
        return self._one(kind=_LPC, fn=fn, args=args)

    def as_rpc(self, fn: Callable, *args) -> Completions:
        """Run ``fn(*args)`` on the *target* after data arrival (puts only)."""
        if self._event is not Event.REMOTE:
            raise CompletionError(
                "as_rpc is only available for remote completion (remote_cx)"
            )
        return self._one(kind=_RPC, fn=fn, args=args)

    # -- notifiable completions (cx_continuations) ---------------------------

    def as_continuation(self, fn: Callable, *args) -> Completions:
        """Run ``fn(*args, *values)`` inline at whichever agent observes
        this event's completion (``FeatureFlags.cx_continuations``).

        No future or cell is allocated: a synchronously completing
        operation dispatches the callback right inside ``notify_sync``
        (even on defer builds — the continuation *is* the eager
        discipline, there is no object whose readiness could be
        observed early), and an off-node operation dispatches it from
        the progress engine when the ack arrives.
        """
        if self._event is Event.REMOTE:
            raise CompletionError(
                "remote completion cannot use a continuation (use as_rpc)"
            )
        return self._one(kind=_CONTINUATION, fn=fn, args=args)

    def as_counter(self, counter: "CxCounter") -> Completions:
        """Signal ``counter`` when this event completes
        (``FeatureFlags.cx_continuations``).

        N operations sharing one :class:`CxCounter` produce a single
        notification when the last one signals — one cell allocation
        and one wake for the whole batch.
        """
        if self._event is Event.REMOTE:
            raise CompletionError(
                "remote completion cannot target a counter"
            )
        return self._one(kind=_COUNTER, counter=counter)


#: Source-completion factory namespace (``source_cx`` in UPC++).
source_cx = _CxFactory(Event.SOURCE)
#: Remote-completion factory namespace (``remote_cx``).
remote_cx = _CxFactory(Event.REMOTE)
#: Operation-completion factory namespace (``operation_cx``).
operation_cx = _CxFactory(Event.OPERATION)


class CxCounter:
    """N operation events → one notification (a UNR-style counter object).

    Construct with the number of expected events, attach to operations
    via ``operation_cx.as_counter(ctr)`` (or ``source_cx``), and wait on
    the aggregate::

        ctr = CxCounter(len(batch))
        for dest, val in batch:
            rput(val, dest, operation_cx.as_counter(ctr))
        ctr.wait()          # one notification for the whole batch

    One cell allocation backs all N events; each member event charges the
    cheap ``CX_COUNTER_SIGNAL`` and the Nth charges ``CX_COUNTER_TRIP``
    and fires the single notification (cell callbacks run, parked waiters
    wake via the ordinary ``("cell", cell)`` wake key on both scheduler
    substrates).  Off-node member destinations are remembered so a hinted
    wait (``wait_hints``) flushes *all* of them, not just one.

    Requires ``FeatureFlags.cx_continuations``.
    """

    __slots__ = ("_cell", "_expected", "_signalled", "_dsts")

    def __init__(self, n: int):
        ctx = current_ctx()
        if not ctx.flags.cx_continuations:
            raise CompletionError(
                "CxCounter requires FeatureFlags.cx_continuations "
                f"(build is {ctx.config.version.value})"
            )
        if n < 1:
            raise CompletionError(f"CxCounter needs n >= 1, got {n}")
        #: the one shared cell: deps = n, each signal clears one
        self._cell = alloc_cell(ctx, nvalues=0, deps=n)
        self._expected = n
        self._signalled = 0
        #: off-node destination ranks of member operations (recorded by
        #: CxDispatcher.mark_injected) — the hinted wait's flush set
        self._dsts: set[int] = set()

    # -- queries ----------------------------------------------------------

    @property
    def expected(self) -> int:
        return self._expected

    @property
    def signalled(self) -> int:
        return self._signalled

    @property
    def done(self) -> bool:
        """Whether all N member events have completed."""
        return self._cell.ready

    # -- producer side (called by the completion machinery) ----------------

    def signal(self, ctx: "RankContext") -> None:
        """One member event completed (dispatcher-internal)."""
        if self._signalled >= self._expected:
            raise CompletionError(
                f"CxCounter over-signalled: already got {self._expected}"
            )
        self._signalled += 1
        ctx.charge(CostAction.CX_COUNTER_SIGNAL)
        if self._signalled == self._expected:
            # the aggregate notification: charged once per counter, then
            # the cell fires callbacks / wakes parked waiters
            ctx.charge(CostAction.CX_COUNTER_TRIP)
        self._cell.fulfill()

    def add_callback(self, cb: Callable[[], None]) -> None:
        """Run ``cb()`` when the counter trips (immediately if done)."""
        self._cell.add_callback(lambda _vals: cb())

    # -- blocking ----------------------------------------------------------

    def wait(self) -> None:
        """Block (the simulated rank) until the counter trips.

        Same spin discipline as :meth:`Future.wait`; with ``wait_hints``
        on, the published :class:`WaitTarget` carries *every* member
        off-node destination, so targeted flushes cover the whole batch.
        """
        ctx = current_ctx()
        cell = self._cell
        ctx.charge(CostAction.FUTURE_READY_CHECK)
        if cell.ready:
            return
        run_blocking(ctx, self._wait_spin_gen(ctx, cell))

    def wait_gen(self):
        """Generator form of :meth:`wait` for continuation rank bodies."""
        ctx = current_ctx()
        cell = self._cell
        ctx.charge(CostAction.FUTURE_READY_CHECK)
        if cell.ready:
            return
        yield from self._wait_spin_gen(ctx, cell)

    def _wait_spin_gen(self, ctx, cell):
        if ctx.wait_hints:
            yield from self._wait_hinted_gen(ctx, cell)
            return
        while True:
            ctx.progress()
            ctx.charge(CostAction.FUTURE_READY_CHECK)
            if cell.ready:
                return
            yield BlockUntil(
                lambda: cell.ready or ctx.has_incoming(),
                wake=("cell", cell),
            )

    def _wait_hinted_gen(self, ctx, cell):
        dsts = tuple(sorted(self._dsts))
        obs = ctx.obs
        if obs is not None:
            obs.on_wait_hint(dsts[0] if dsts else None)
        t0 = ctx.clock.now_ns
        ctx.push_wait_target(
            WaitTarget(cell=cell, dst_ranks=dsts, op="counter")
        )
        try:
            while True:
                ctx.progress()
                ctx.charge(CostAction.FUTURE_READY_CHECK)
                if cell.ready:
                    if obs is not None:
                        obs.on_wait_stall(ctx.clock.now_ns - t0)
                    return
                ctx.flush_aggregation(reason="wait_block")
                yield BlockUntil(
                    lambda: cell.ready or ctx.has_incoming(),
                    wake=("cell", cell),
                )
        finally:
            ctx.pop_wait_target()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CxCounter {self._signalled}/{self._expected}"
            f"{' done' if self.done else ''}>"
        )


@dataclass
class PendingEvent:
    """Handle for completing an asynchronous (off-node) event later.

    Created by :meth:`CxDispatcher.pend` at initiation; :meth:`complete`
    must be invoked from progress-engine context when the underlying
    operation finishes.
    """

    ctx: "RankContext"
    requests: list[CompletionRequest]
    cells: list = field(default_factory=list)  # parallel to future requests
    #: operation span whose notification this event closes (obs only)
    span: Optional["OpSpan"] = None

    def complete(self, values: tuple = ()) -> None:
        span = self.span
        if span is not None and span.t_transfer is None:
            # the transfer itself finished now; the notification below is
            # dispatched in the same progress call (deferred by construction)
            span.t_transfer = self.ctx.clock.now_ns
        cell_iter = iter(self.cells)
        for req in self.requests:
            if req.kind == _FUTURE:
                cell = next(cell_iter)
                if cell.nvalues:
                    cell.values = values
                cell.fulfill()
            elif req.kind == _PROMISE:
                if req.promise.cell.nvalues:
                    req.promise.fulfill_result(*values)
                else:
                    req.promise.fulfill_anonymous(1)
            elif req.kind == _LPC:
                self.ctx.progress_engine.enqueue_lpc(
                    lambda r=req: r.fn(*r.args)
                )
            elif req.kind == _CONTINUATION:
                # fires from whichever agent observed completion — here,
                # the progress engine delivering the ack (or a wait-hinted
                # drain): already inside progress context, dispatch inline
                self.ctx.charge(CostAction.CX_CONTINUATION_DISPATCH)
                req.fn(*req.args, *values)
            elif req.kind == _COUNTER:
                req.counter.signal(self.ctx)
        if span is not None:
            self.ctx.obs.close_notification(span, self.ctx.clock.now_ns)


class CxDispatcher:
    """Per-operation completion handling.

    Parameters
    ----------
    ctx:
        The initiating rank's context.
    comps:
        The user's :class:`Completions` (or an op-supplied default).
    supported:
        Events this operation supports (e.g. gets have no remote event).
    value_event:
        The event that carries the operation's produced values (``None``
        for value-less operations); ``nvalues`` is the arity.
    """

    def __init__(
        self,
        ctx: "RankContext",
        comps: Completions,
        *,
        supported: frozenset[Event] | set[Event],
        value_event: Optional[Event] = None,
        nvalues: int = 0,
        op_name: str = "operation",
    ):
        self.ctx = ctx
        self.comps = comps
        self.value_event = value_event
        self.nvalues = nvalues
        self._futures: list[Future] = []
        # recorded by mark_injected(): where the op's payload went, so
        # result() can hand a hinted wait its flush destination
        self._target_rank: Optional[int] = None
        self._target_local = True
        ctx.charge(CostAction.COMPLETION_PROCESS)
        flags = ctx.flags
        for req in comps.requests:
            if req.event not in supported:
                raise CompletionError(
                    f"{op_name} does not support {req.event.value} completion"
                )
            if (
                req.eagerness != _DEFAULT
                and not flags.eager_factories_available
            ):
                raise CompletionError(
                    f"{req.describe()} requires the 2021.3.6 completion "
                    f"factories (build is {ctx.config.version.value})"
                )
            if (
                req.kind in (_CONTINUATION, _COUNTER)
                and not flags.cx_continuations
            ):
                raise CompletionError(
                    f"{req.describe()} requires "
                    f"FeatureFlags.cx_continuations "
                    f"(build is {ctx.config.version.value})"
                )
        obs = ctx.obs
        self._span: Optional["OpSpan"] = (
            obs.begin_span(
                op_name, _DEFER if self.any_deferred() else _EAGER
            )
            if obs is not None
            else None
        )

    # -- observability --------------------------------------------------------

    def mark_injected(
        self, target_rank: int, nbytes: int, *, local: bool
    ) -> None:
        """Stamp the injection phase on this operation's span (no-op with
        observability off).  ``local`` is the locality the op has already
        branched on — never re-derived here, so the memoized reachability
        counters are untouched."""
        self._target_rank = target_rank
        self._target_local = local
        if not local:
            # counters remember every member op's off-node destination so
            # a hinted wait on the counter can flush them all
            for req in self.comps.requests:
                if req.kind == _COUNTER:
                    req.counter._dsts.add(target_rank)
        span = self._span
        if span is not None:
            span.target = target_rank
            span.nbytes = nbytes
            span.locality = "pshm" if local else "offnode"
            span.t_injected = self.ctx.clock.now_ns

    # -- policy --------------------------------------------------------------

    def _eager_allowed(self, req: CompletionRequest) -> bool:
        if req.eagerness == _EAGER:
            return True
        if req.eagerness == _DEFER:
            return False
        return self.ctx.flags.eager_notification

    def _values_for(self, event: Event, values: tuple) -> tuple:
        return values if event is self.value_event else ()

    def any_deferred(self) -> bool:
        """Whether any requested notification will take the deferred path
        even for a synchronously completing operation."""
        return any(
            req.kind in (_FUTURE, _PROMISE) and not self._eager_allowed(req)
            for req in self.comps.requests
        )

    # -- synchronous completion (the shared-memory-bypass case) ---------------

    def notify_sync(self, event: Event, values: tuple = ()) -> None:
        """Deliver ``event``, which completed synchronously during
        initiation, to every matching request.

        Eager requests are notified immediately: futures come back already
        ready (value-less ones via the shared cell — zero allocations) and
        promises are left entirely untouched.  Deferred requests take the
        legacy path: allocate/register now, notify from a later progress
        call.
        """
        ctx = self.ctx
        vals = self._values_for(event, values)
        # observability: the transfer is complete *now* for the operation
        # event; each request's branch below closes the notification at the
        # instant it becomes user-visible (immediately for eager, from the
        # progress-queue thunk for deferred).
        span = self._span if event is Event.OPERATION else None
        if span is not None and span.t_transfer is None:
            span.t_transfer = ctx.clock.now_ns
        for req in self.comps.by_event(event):
            if req.kind == _FUTURE:
                if self._eager_allowed(req):
                    if vals:
                        self._futures.append(Future(ready_cell(ctx, vals)))
                    else:
                        self._futures.append(Future(ready_unit_cell(ctx)))
                    if span is not None:
                        ctx.obs.close_notification(span, ctx.clock.now_ns)
                else:
                    cell = alloc_cell(ctx, nvalues=len(vals), deps=1)

                    def ready_it(cell=cell, vals=vals, note=span):
                        if cell.nvalues:
                            cell.values = vals
                        cell.fulfill()
                        if note is not None:
                            ctx.obs.close_notification(
                                note, ctx.clock.now_ns
                            )

                    ctx.progress_engine.enqueue_deferred(ready_it, cell=cell)
                    self._futures.append(Future(cell))
            elif req.kind == _PROMISE:
                if self._eager_allowed(req):
                    # elide all modification of the promise
                    if span is not None:
                        ctx.obs.close_notification(span, ctx.clock.now_ns)
                else:
                    req.promise.require_anonymous(1)

                    def fulfill_it(req=req, vals=vals, note=span):
                        if req.promise.cell.nvalues:
                            req.promise.fulfill_result(*vals)
                        else:
                            req.promise.fulfill_anonymous(1)
                        if note is not None:
                            ctx.obs.close_notification(
                                note, ctx.clock.now_ns
                            )

                    ctx.progress_engine.enqueue_deferred(
                        fulfill_it, cell=req.promise.cell
                    )
            elif req.kind == _LPC:
                if span is not None:

                    def run_it(req=req, note=span):
                        req.fn(*req.args)
                        ctx.obs.close_notification(note, ctx.clock.now_ns)

                    ctx.progress_engine.enqueue_lpc(run_it)
                else:
                    ctx.progress_engine.enqueue_lpc(
                        lambda req=req: req.fn(*req.args)
                    )
            elif req.kind == _CONTINUATION:
                # eager by construction: the initiating agent observed
                # completion synchronously, so the callback runs right
                # here — zero future/cell allocation and no progress-queue
                # round trip, even on defer builds (there is no object
                # whose readiness could have been observed early, so the
                # legacy semantics have nothing to preserve)
                ctx.charge(CostAction.CX_CONTINUATION_DISPATCH)
                req.fn(*req.args, *vals)
                if span is not None:
                    ctx.obs.close_notification(span, ctx.clock.now_ns)
            elif req.kind == _COUNTER:
                req.counter.signal(ctx)
                if span is not None:
                    ctx.obs.close_notification(span, ctx.clock.now_ns)
            # _RPC requests are shipped by the operation itself

    # -- asynchronous completion (the off-node case) -----------------------------

    def pend(self, event: Event) -> PendingEvent:
        """Prepare deferred delivery for an event that will complete later
        (off-node transfer).  Futures/promise state is allocated up front;
        the returned handle's ``complete()`` fires from progress context."""
        ctx = self.ctx
        reqs = self.comps.by_event(event)
        pending = PendingEvent(
            ctx=ctx,
            requests=reqs,
            span=self._span if event is Event.OPERATION else None,
        )
        arity = self.nvalues if event is self.value_event else 0
        for req in reqs:
            if req.kind == _FUTURE:
                cell = alloc_cell(ctx, nvalues=arity, deps=1)
                pending.cells.append(cell)
                self._futures.append(Future(cell))
            elif req.kind == _PROMISE:
                req.promise.require_anonymous(1)
        return pending

    # -- rpc access for put implementations ----------------------------------------

    def rpc_requests(self) -> list[CompletionRequest]:
        return [r for r in self.comps.requests if r.kind == _RPC]

    # -- operation return value ---------------------------------------------------

    def result(self):
        """What the operation returns: None / a future / a tuple of
        futures, matching the number of future-kind requests (in
        composition order)."""
        if not self._futures:
            return None
        if self._span is not None:
            for f in self._futures:
                f._span = self._span  # lets wait() stamp t_waited
        if self._target_rank is not None and not self._target_local:
            for f in self._futures:
                f._hint_dst = self._target_rank  # aggregator flush hint
        if len(self._futures) == 1:
            return self._futures[0]
        return tuple(self._futures)
