"""The paper's contribution: futures, promises, ``when_all`` conjoining, and
the completions mechanism with eager/deferred notification.

Module map (Section III of the paper):

* :mod:`repro.core.cell` — the internal promise cell backing every future,
  and the shared pre-allocated ready cell for value-less ``future<>``;
* :mod:`repro.core.future` — the consumer side: ``wait``/``then``/``result``;
* :mod:`repro.core.promise` — the producer side: counter-based tracking of
  many operations with a single allocation;
* :mod:`repro.core.when_all` — conjoining, with the §III-C short-cuts;
* :mod:`repro.core.completions` — the completions DSL (``operation_cx``,
  ``source_cx``, ``remote_cx``) including the new ``as_eager_*`` /
  ``as_defer_*`` factories, and the dispatcher used by every communication
  operation to deliver eager or deferred notifications.
"""

from repro.core.cell import PromiseCell, alloc_cell, ready_cell, ready_unit_cell
from repro.core.future import Future, make_future, to_future
from repro.core.promise import Promise
from repro.core.when_all import when_all
from repro.core.events import Event
from repro.core.completions import (
    Completions,
    CompletionRequest,
    CxCounter,
    CxDispatcher,
    operation_cx,
    remote_cx,
    source_cx,
)

__all__ = [
    "PromiseCell",
    "alloc_cell",
    "ready_cell",
    "ready_unit_cell",
    "Future",
    "make_future",
    "to_future",
    "Promise",
    "when_all",
    "Event",
    "Completions",
    "CompletionRequest",
    "CxCounter",
    "CxDispatcher",
    "operation_cx",
    "source_cx",
    "remote_cx",
]
