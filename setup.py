"""Setuptools shim (the environment's setuptools predates PEP 660 editable
installs from pyproject.toml alone)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Optimization of Asynchronous Communication "
        "Operations through Eager Notifications' (SC 2021)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
