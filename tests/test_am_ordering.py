"""Active-message ordering and interleaving guarantees.

Handlers append to a world-attached log so that the *execution* order on
the target is observed (closures capture objects from the sending rank,
but run on the target's thread inside its progress engine).
"""

from repro import barrier, progress, rank_me, rpc_ff
from repro.runtime.context import current_ctx
from repro.runtime.runtime import spmd_run


def world_log():
    w = current_ctx().world
    if not hasattr(w, "_am_log"):
        w._am_log = []
    return w._am_log


class TestPairwiseOrdering:
    def test_single_sender_fifo(self):
        """Messages from one sender to one target execute in send order."""

        def body():
            log = world_log()
            barrier()
            if rank_me() == 0:
                for i in range(10):
                    rpc_ff(1, lambda i=i: world_log().append(i))
            barrier()
            progress()
            barrier()
            return list(log)

        res = spmd_run(body, ranks=2)
        assert res.values[0] == list(range(10))

    def test_multiple_senders_interleave_deterministically(self):
        """With several senders the merge order is deterministic (token
        round-robin), and per-sender order is preserved."""

        def body():
            log = world_log()
            barrier()
            if rank_me() != 2:
                for i in range(3):
                    rpc_ff(
                        2,
                        lambda me=rank_me(), i=i: world_log().append((me, i)),
                    )
            barrier()
            progress()
            barrier()
            return list(log)

        a = spmd_run(body, ranks=3)
        b = spmd_run(body, ranks=3)
        merged = a.values[2]
        assert len(merged) == 6
        assert merged == b.values[2]  # deterministic merge
        for sender in (0, 1):
            seq = [i for s, i in merged if s == sender]
            assert seq == [0, 1, 2]  # per-sender FIFO

    def test_progress_inside_handler_does_not_reorder(self):
        """An AM handler calling progress() must not steal later AMs out
        of order (re-entrant progress is a no-op)."""

        def body():
            barrier()
            if rank_me() == 0:
                def first():
                    world_log().append("first")
                    progress()  # re-entrant: must not run 'second' now
                    world_log().append("first-end")

                rpc_ff(1, first)
                rpc_ff(1, lambda: world_log().append("second"))
            barrier()
            progress()
            barrier()
            return list(world_log())

        res = spmd_run(body, ranks=2)
        assert res.values[1] == ["first", "first-end", "second"]


class TestCausality:
    def test_reply_never_beats_request(self):
        """A→B request then B→A reply: A cannot observe the reply at a
        virtual time earlier than B processed the request."""

        def body():
            ctx = current_ctx()
            barrier()
            if rank_me() == 0:
                from repro import rpc

                fut = rpc(1, lambda: current_ctx().clock.now_ns)
                served_at = fut.wait()
                barrier()
                return {
                    "reply_seen": ctx.clock.now_ns,
                    "served_at": served_at,
                }
            barrier()
            return None

        res = spmd_run(body, ranks=2)
        t = res.values[0]
        assert t["reply_seen"] >= t["served_at"]

    def test_forwarded_message_chain(self):
        """0→1→2 forwarding arrives exactly once after both hops."""

        def body():
            barrier()
            if rank_me() == 0:
                rpc_ff(
                    1,
                    lambda: rpc_ff(
                        2, lambda: world_log().append("relayed")
                    ),
                )
            for _ in range(3):
                barrier()
                progress()
            barrier()
            return list(world_log())

        res = spmd_run(body, ranks=3)
        assert res.values[2] == ["relayed"]

    def test_handler_timestamps_monotone_per_target(self):
        """AM executions on one target happen at nondecreasing virtual
        times even when senders' clocks are skewed."""

        def body():
            ctx = current_ctx()
            barrier()
            if rank_me() == 1:
                ctx.clock.advance(50_000)  # a fast-forwarded sender
            if rank_me() != 2:
                rpc_ff(
                    2,
                    lambda: world_log().append(
                        current_ctx().clock.now_ns
                    ),
                )
            barrier()
            progress()
            barrier()
            return list(world_log())

        res = spmd_run(body, ranks=3)
        stamps = res.values[2]
        assert len(stamps) == 2
        assert stamps == sorted(stamps)
