"""Tests for the off-node bandwidth term."""

import pytest

from repro import barrier, new_array, progress, rank_me, rput_bulk
from repro.memory.global_ptr import GlobalPtr
from repro.runtime.config import RuntimeConfig
from repro.runtime.context import current_ctx
from repro.runtime.runtime import build_world, spmd_run


class TestLatencyModel:
    def test_payload_extends_offnode_latency(self):
        w = build_world(RuntimeConfig(conduit="ibv"), ranks=2, n_nodes=2)
        small = w.conduit.am_latency_ns(0, 1, nbytes=8)
        large = w.conduit.am_latency_ns(0, 1, nbytes=1 << 20)
        assert large > small
        # 1 MiB at 12.5 B/ns ≈ 83886 ns of serialization
        assert large - small == pytest.approx(((1 << 20) - 8) / 12.5, rel=0.01)

    def test_onnode_latency_payload_free(self):
        w = build_world(RuntimeConfig(conduit="udp"), ranks=2)
        assert w.conduit.am_latency_ns(0, 1, 0) == w.conduit.am_latency_ns(
            0, 1, 1 << 20
        )

    def test_zero_bytes_is_base_latency(self):
        w = build_world(RuntimeConfig(conduit="ibv"), ranks=2, n_nodes=2)
        assert w.conduit.am_latency_ns(0, 1) == (
            w.profile.network_latency_ns
        )


class TestEndToEnd:
    def test_bulk_offnode_put_scales_with_size(self):
        def body(count):
            ctx = current_ctx()
            g = new_array("u64", 1 << 12)
            barrier()
            if rank_me() == 0:
                remote = GlobalPtr(1, g.offset, g.ts)
                t0 = ctx.clock.now_ns
                rput_bulk([1] * count, remote).wait()
                dt = ctx.clock.now_ns - t0
                ctx.world._bw_done = True
                barrier()
                return dt
            while not getattr(ctx.world, "_bw_done", False):
                progress()
                ctx.yield_to_others()
            barrier()
            return None

        t_small = spmd_run(
            lambda: body(8), ranks=2, n_nodes=2, conduit="ibv"
        ).values[0]
        t_large = spmd_run(
            lambda: body(4000), ranks=2, n_nodes=2, conduit="ibv"
        ).values[0]
        assert t_large > t_small + 1000  # the 32KB payload costs real time
