"""Unit tests for notifiable completions: continuations and counters.

The ``cx_continuations`` feature (DESIGN.md §13) adds two completion
kinds beyond futures/promises: continuation completions (a callback
dispatched inline at whichever agent observes completion, with zero
future/cell allocation on the sync path) and counter completions (N
operation events aggregated into one notification on a shared cell).
These tests pin the flag gate, the inline-dispatch fast path, the pend
path, the allocation claim, span stamping, aggregation interplay, and
both scheduler substrates.
"""

import pytest

from repro import CxCounter, new_, rput
from repro.atomics import AtomicDomain
from repro.core.completions import CxDispatcher, operation_cx, remote_cx, source_cx
from repro.core.events import Event
from repro.errors import CompletionError
from repro.runtime.config import Version, flags_for
from repro.runtime.runtime import spmd_run
from repro.runtime.wait_hints import WaitTarget
from repro.sim.costmodel import CostAction
from repro.sim.stats import observability_snapshots

VD = Version.V2021_3_6_DEFER
VE = Version.V2021_3_6_EAGER

ALL = frozenset({Event.SOURCE, Event.REMOTE, Event.OPERATION})


def _cx_flags(version, **kw):
    return flags_for(version).replace(cx_continuations=True, **kw)


# ---------------------------------------------------------------------------
# factory validation and the feature gate
# ---------------------------------------------------------------------------


class TestGate:
    def test_continuation_not_on_remote(self):
        with pytest.raises(CompletionError):
            remote_cx.as_continuation(lambda: None)

    def test_counter_not_on_remote(self, versioned_ctx):
        versioned_ctx(VE, flags=_cx_flags(VE))
        ctr = CxCounter(1)
        with pytest.raises(CompletionError):
            remote_cx.as_counter(ctr)

    def test_dispatcher_rejects_continuation_without_flag(self, versioned_ctx):
        c = versioned_ctx(VE)  # default flags: cx_continuations off
        with pytest.raises(CompletionError, match="cx_continuations"):
            CxDispatcher(
                c, operation_cx.as_continuation(lambda: None), supported=ALL
            )

    def test_counter_construction_requires_flag(self, versioned_ctx):
        versioned_ctx(VE)
        with pytest.raises(CompletionError, match="cx_continuations"):
            CxCounter(2)

    def test_counter_needs_positive_n(self, versioned_ctx):
        versioned_ctx(VE, flags=_cx_flags(VE))
        with pytest.raises(CompletionError):
            CxCounter(0)

    def test_factories_tag_kind_and_event(self):
        req = operation_cx.as_continuation(lambda: None).requests[0]
        assert req.kind == "continuation"
        assert req.event is Event.OPERATION
        req = source_cx.as_continuation(lambda: None).requests[0]
        assert req.event is Event.SOURCE


# ---------------------------------------------------------------------------
# continuation dispatch: sync fast path and pend path
# ---------------------------------------------------------------------------


class TestContinuationDispatch:
    @pytest.mark.parametrize("version", (VE, VD))
    def test_sync_dispatch_is_inline(self, versioned_ctx, version):
        """Continuations fire during ``notify_sync`` on *both* builds —
        eager-by-construction, never parked on the deferred queue."""
        c = versioned_ctx(version, flags=_cx_flags(version))
        fired = []
        d = CxDispatcher(
            c, operation_cx.as_continuation(fired.append, 7), supported=ALL
        )
        d.notify_sync(Event.OPERATION)
        assert fired == [7]

    def test_sync_dispatch_allocates_nothing(self, versioned_ctx):
        """The zero-allocation claim: a continuation-only completion on
        the sync path allocates no future/promise cell at all."""
        c = versioned_ctx(VD, flags=_cx_flags(VD))
        a0 = c.costs.count(CostAction.HEAP_ALLOC_PROMISE_CELL)
        fired = []
        d = CxDispatcher(
            c, operation_cx.as_continuation(fired.append, 1), supported=ALL
        )
        d.notify_sync(Event.OPERATION)
        assert fired == [1]
        assert c.costs.count(CostAction.HEAP_ALLOC_PROMISE_CELL) == a0
        assert d.result() is None

    def test_sync_dispatch_charges_once(self, versioned_ctx):
        c = versioned_ctx(VE, flags=_cx_flags(VE))
        k0 = c.costs.count(CostAction.CX_CONTINUATION_DISPATCH)
        d = CxDispatcher(
            c, operation_cx.as_continuation(lambda: None), supported=ALL
        )
        d.notify_sync(Event.OPERATION)
        assert c.costs.count(CostAction.CX_CONTINUATION_DISPATCH) == k0 + 1

    def test_values_delivered_to_continuation(self, versioned_ctx):
        c = versioned_ctx(VE, flags=_cx_flags(VE))
        got = []
        d = CxDispatcher(
            c,
            operation_cx.as_continuation(lambda tag, v: got.append((tag, v)), "op"),
            supported=ALL,
            value_event=Event.OPERATION,
            nvalues=1,
        )
        d.notify_sync(Event.OPERATION, (42,))
        assert got == [("op", 42)]

    def test_pend_dispatch_fires_on_complete(self, versioned_ctx):
        """Off-node shape: the continuation fires from the progress
        engine's ack dispatch, not at pend time."""
        c = versioned_ctx(VE, flags=_cx_flags(VE))
        fired = []
        d = CxDispatcher(
            c, operation_cx.as_continuation(fired.append, 9), supported=ALL
        )
        pend = d.pend(Event.OPERATION)
        assert fired == []
        k0 = c.costs.count(CostAction.CX_CONTINUATION_DISPATCH)
        pend.complete()
        assert fired == [9]
        assert c.costs.count(CostAction.CX_CONTINUATION_DISPATCH) == k0 + 1

    def test_composes_with_future(self, versioned_ctx):
        c = versioned_ctx(VE, flags=_cx_flags(VE))
        fired = []
        d = CxDispatcher(
            c,
            operation_cx.as_continuation(fired.append, 1)
            | operation_cx.as_future(),
            supported=ALL,
        )
        d.notify_sync(Event.OPERATION)
        assert fired == [1]
        assert d.result().is_ready()

    def test_continuation_rput_local(self, versioned_ctx):
        """End-to-end through the put path on the ambient world."""
        c = versioned_ctx(VD, flags=_cx_flags(VD))
        g = new_("u64")
        fired = []
        rput(5, g, operation_cx.as_continuation(fired.append, 0))
        assert fired == [0]
        assert c.segment.read_scalar(g.offset, g.ts) == 5


# ---------------------------------------------------------------------------
# counter completions
# ---------------------------------------------------------------------------


class TestCounter:
    def test_counts_to_n_then_trips(self, versioned_ctx):
        c = versioned_ctx(VE, flags=_cx_flags(VE))
        ctr = CxCounter(3)
        hits = []
        ctr.add_callback(lambda: hits.append("trip"))
        g = new_("u64")
        for v in range(3):
            assert not ctr.done
            rput(v, g, operation_cx.as_counter(ctr))
        assert ctr.done
        assert ctr.signalled == ctr.expected == 3
        assert hits == ["trip"]
        ctr.wait()  # already done: returns immediately

    def test_one_allocation_for_n_events(self, versioned_ctx):
        c = versioned_ctx(VE, flags=_cx_flags(VE))
        g = new_("u64")
        a0 = c.costs.count(CostAction.HEAP_ALLOC_PROMISE_CELL)
        ctr = CxCounter(4)
        assert c.costs.count(CostAction.HEAP_ALLOC_PROMISE_CELL) == a0 + 1
        for v in range(4):
            rput(v, g, operation_cx.as_counter(ctr))
        assert c.costs.count(CostAction.HEAP_ALLOC_PROMISE_CELL) == a0 + 1

    def test_signal_and_trip_charges(self, versioned_ctx):
        c = versioned_ctx(VE, flags=_cx_flags(VE))
        ctr = CxCounter(2)
        s0 = c.costs.count(CostAction.CX_COUNTER_SIGNAL)
        t0 = c.costs.count(CostAction.CX_COUNTER_TRIP)
        ctr.signal(c)
        assert c.costs.count(CostAction.CX_COUNTER_SIGNAL) == s0 + 1
        assert c.costs.count(CostAction.CX_COUNTER_TRIP) == t0
        ctr.signal(c)
        assert c.costs.count(CostAction.CX_COUNTER_SIGNAL) == s0 + 2
        assert c.costs.count(CostAction.CX_COUNTER_TRIP) == t0 + 1

    def test_over_signal_raises(self, versioned_ctx):
        c = versioned_ctx(VE, flags=_cx_flags(VE))
        ctr = CxCounter(1)
        ctr.signal(c)
        with pytest.raises(CompletionError, match="over-signalled"):
            ctr.signal(c)

    def test_callback_after_done_runs_immediately(self, versioned_ctx):
        c = versioned_ctx(VE, flags=_cx_flags(VE))
        ctr = CxCounter(1)
        ctr.signal(c)
        hits = []
        ctr.add_callback(lambda: hits.append(1))
        assert hits == [1]


# ---------------------------------------------------------------------------
# wait-hint targeting of counter waits
# ---------------------------------------------------------------------------


class TestWaitTargetDsts:
    def test_flush_dsts_merges_and_sorts(self):
        t = WaitTarget(dst_rank=3, dst_ranks=(5, 1, 3))
        assert t.flush_dsts == (1, 3, 5)
        assert t.targeted

    def test_dst_ranks_alone_is_targeted(self):
        t = WaitTarget(dst_ranks=(2,))
        assert t.targeted
        assert t.flush_dsts == (2,)

    def test_single_dst_unchanged(self):
        t = WaitTarget(dst_rank=4)
        assert t.flush_dsts == (4,)
        assert WaitTarget().flush_dsts == ()


# ---------------------------------------------------------------------------
# off-node integration, both scheduler substrates
# ---------------------------------------------------------------------------


def _offnode_cont_body():
    from repro import barrier_gen, current_ctx, rank_me, rank_n
    from repro.memory.global_ptr import GlobalPtr
    from repro.runtime.switchpoints import BlockUntil

    ctx = current_ctx()
    me, p = rank_me(), rank_n()
    g = new_("u64")
    yield from barrier_gen()
    fired = []
    peer = (me + 1) % p
    dest = GlobalPtr(peer, g.offset, g.ts)
    # continuation-only tracking: no future, the span stays eager-class
    rput(me + 1, dest, operation_cx.as_continuation(fired.append, "ack"))
    while not fired:
        ctx.progress()
        if fired:
            break
        yield BlockUntil(lambda: bool(fired) or ctx.has_incoming())
    assert fired == ["ack"]
    yield from barrier_gen()
    return int(ctx.segment.read_scalar(g.offset, g.ts))


@pytest.mark.parametrize("event_loop", (False, True))
def test_offnode_continuation_fires_from_progress(event_loop):
    fl = _cx_flags(VD, obs_spans=True, sched_event_loop=event_loop)
    res = spmd_run(
        _offnode_cont_body, ranks=2, version=VD, conduit="ibv",
        n_nodes=2, flags=fl,
    )
    assert res.values == [2, 1]
    # every continuation span closed (t_dispatched stamped) with an
    # eager-class gap, even though this is the defer build
    snaps = list(observability_snapshots(res.world))
    put_spans = [
        s for sn in snaps for s in sn.spans if s.op == "rput"
    ]
    assert put_spans
    for s in put_spans:
        assert s.t_dispatched is not None
        assert s.mode == "eager"


def _offnode_counter_body(n_ops):
    from repro import barrier_gen, current_ctx, rank_me, rank_n

    ctx = current_ctx()
    me, p = rank_me(), rank_n()
    ad = AtomicDomain({"add"}, "u64")
    g = new_("u64")
    yield from barrier_gen()
    peer = (me + 1) % p
    from repro.memory.global_ptr import GlobalPtr

    dest = GlobalPtr(peer, g.offset, g.ts)
    ctr = CxCounter(n_ops)
    for _ in range(n_ops):
        ad.add(dest, 1, operation_cx.as_counter(ctr))
    yield from ctr.wait_gen()
    assert ctr.done
    yield from barrier_gen()
    return int(ctx.segment.read_scalar(g.offset, g.ts))


@pytest.mark.parametrize("event_loop", (False, True))
@pytest.mark.parametrize("hints", (False, True))
def test_offnode_counter_with_aggregation(event_loop, hints):
    """A counter aggregating off-node atomics completes under AM
    aggregation + wait hints on both substrates (the hinted wait's
    flush set covers the member destinations)."""
    fl = _cx_flags(
        VD,
        am_aggregation=True,
        agg_max_entries=64,  # large: only the wait's flush drains it
        wait_hints=hints,
        sched_event_loop=event_loop,
    )
    res = spmd_run(
        _offnode_counter_body, args=(6,), ranks=2, version=VD,
        conduit="ibv", n_nodes=2, flags=fl,
    )
    assert res.values == [6, 6]


def test_counter_records_offnode_dsts(versioned_ctx):
    """mark_injected records member destinations for the hinted wait."""
    c = versioned_ctx(VE, flags=_cx_flags(VE))
    ctr = CxCounter(2)
    d = CxDispatcher(c, operation_cx.as_counter(ctr), supported=ALL)
    d.mark_injected(0, 8, local=False)
    d2 = CxDispatcher(c, operation_cx.as_counter(ctr), supported=ALL)
    d2.mark_injected(0, 8, local=True)
    assert ctr._dsts == {0}


def test_flag_off_runs_are_bit_identical():
    """Turning the flag on without using the new kinds changes nothing:
    same values, same virtual clocks (the no-requests identity)."""

    def body():
        from repro import current_ctx

        ctx = current_ctx()
        g = new_("u64")
        fired = []
        rput(3, g, operation_cx.as_lpc(fired.append, 1))
        ctx.progress()
        return (int(ctx.segment.read_scalar(g.offset, g.ts)),
                tuple(fired), ctx.clock.now_ns)

    off = spmd_run(body, ranks=2, version=VD, flags=flags_for(VD))
    on = spmd_run(body, ranks=2, version=VD, flags=_cx_flags(VD))
    assert off.values == on.values
