"""Source-completion semantics (the first event of §II-A's example)."""

import pytest

from repro import (
    barrier,
    new_array,
    operation_cx,
    progress,
    rank_me,
    rput,
    rput_bulk,
    source_cx,
)
from repro.memory.global_ptr import GlobalPtr
from repro.runtime.config import Version
from repro.runtime.context import current_ctx
from repro.runtime.runtime import spmd_run

V0 = Version.V2021_3_0
VD = Version.V2021_3_6_DEFER
VE = Version.V2021_3_6_EAGER


class TestLocalSourceCompletion:
    def test_eager_source_ready_at_initiation(self, versioned_ctx):
        versioned_ctx(VE)
        g = new_array("u64", 2)
        fut = rput_bulk([1, 2], g, source_cx.as_future())
        assert fut.is_ready()

    def test_defer_source_waits_for_progress(self, versioned_ctx):
        c = versioned_ctx(VD)
        g = new_array("u64", 2)
        fut = rput_bulk([1, 2], g, source_cx.as_future())
        assert not fut.is_ready()
        c.progress()
        assert fut.is_ready()

    def test_explicit_factories(self, versioned_ctx):
        c = versioned_ctx(VE)
        g = new_array("u64", 2)
        assert rput_bulk(
            [1, 2], g, source_cx.as_eager_future()
        ).is_ready()
        f = rput_bulk([1, 2], g, source_cx.as_defer_future())
        assert not f.is_ready()
        c.progress()
        assert f.is_ready()

    def test_source_before_operation_in_tuple(self, versioned_ctx):
        """The §II-A example's ordering: source future first."""
        versioned_ctx(VD)
        g = new_array("u64", 1)
        out = rput(
            5, g, source_cx.as_future() | operation_cx.as_future()
        )
        assert isinstance(out, tuple) and len(out) == 2


class TestOffnodeSourceCompletion:
    def test_source_completes_before_operation_offnode(self):
        """Off-node: the source buffer is captured at injection (source
        event fires long before the operation ack returns)."""

        def body():
            ctx = current_ctx()
            g = new_array("u64", 4)
            barrier()
            if rank_me() == 0:
                remote = GlobalPtr(1, g.offset, g.ts)
                src_fut, op_fut = rput_bulk(
                    [9, 9, 9, 9],
                    remote,
                    source_cx.as_future() | operation_cx.as_future(),
                )
                src_ready_early = src_fut.is_ready()
                op_ready_early = op_fut.is_ready()
                op_fut.wait()
                ctx.world._src_done = True
                barrier()
                return (src_ready_early, op_ready_early)
            while not getattr(ctx.world, "_src_done", False):
                progress()
                ctx.yield_to_others()
            barrier()
            return list(g.local().view(4))

        res = spmd_run(
            body, ranks=2, n_nodes=2, conduit="udp",
            version=VE,
        )
        src_early, op_early = res.values[0]
        assert src_early is True  # buffer captured synchronously
        assert op_early is False  # ack must round-trip
        assert res.values[1] == [9, 9, 9, 9]

    def test_offnode_bulk_get_value(self):
        def body():
            ctx = current_ctx()
            g = new_array("u64", 4)
            if rank_me() == 1:
                g.local().view(4)[:] = [4, 3, 2, 1]
            barrier()
            if rank_me() == 0:
                from repro import rget_bulk

                remote = GlobalPtr(1, g.offset, g.ts)
                out = rget_bulk(remote, 4).wait()
                ctx.world._src_done = True
                barrier()
                return list(out)
            while not getattr(ctx.world, "_src_done", False):
                progress()
                ctx.yield_to_others()
            barrier()
            return None

        res = spmd_run(body, ranks=2, n_nodes=2, conduit="mpi")
        assert res.values[0] == [4, 3, 2, 1]

    def test_offnode_get_into(self):
        def body():
            ctx = current_ctx()
            g = new_array("u64", 3)
            dst = new_array("u64", 3)
            if rank_me() == 1:
                g.local().view(3)[:] = [7, 8, 9]
            barrier()
            if rank_me() == 0:
                from repro import rget_into

                remote = GlobalPtr(1, g.offset, g.ts)
                fut = rget_into(remote, dst, 3)
                assert fut.nvalues == 0
                fut.wait()
                ctx.world._src_done = True
                barrier()
                return list(dst.local().view(3))
            while not getattr(ctx.world, "_src_done", False):
                progress()
                ctx.yield_to_others()
            barrier()
            return None

        res = spmd_run(body, ranks=2, n_nodes=2, conduit="udp")
        assert res.values[0] == [7, 8, 9]


class TestSourceBufferIndependence:
    def test_offnode_payload_captured_by_value(self):
        """Mutating the source list after initiation must not affect the
        in-flight off-node put (the meaning of source completion)."""

        def body():
            ctx = current_ctx()
            g = new_array("u64", 3)
            barrier()
            if rank_me() == 0:
                import numpy as np

                src = np.array([1, 2, 3], dtype=np.uint64)
                remote = GlobalPtr(1, g.offset, g.ts)
                fut = rput_bulk(src, remote)
                src[:] = 0  # scribble after source completion
                fut.wait()
                ctx.world._src_done = True
                barrier()
                return None
            while not getattr(ctx.world, "_src_done", False):
                progress()
                ctx.yield_to_others()
            barrier()
            return list(g.local().view(3))

        res = spmd_run(body, ranks=2, n_nodes=2, conduit="udp")
        assert res.values[1] == [1, 2, 3]
