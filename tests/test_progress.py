"""Unit tests for the progress engine."""

from repro.sim.costmodel import CostAction


class TestQueues:
    def test_deferred_runs_at_progress(self, ctx):
        ran = []
        ctx.progress_engine.enqueue_deferred(lambda: ran.append(1))
        assert ran == []
        assert ctx.progress() is True
        assert ran == [1]

    def test_lpc_runs_at_progress(self, ctx):
        ran = []
        ctx.progress_engine.enqueue_lpc(lambda: ran.append("lpc"))
        ctx.progress()
        assert ran == ["lpc"]

    def test_fifo_order(self, ctx):
        order = []
        for i in range(5):
            ctx.progress_engine.enqueue_deferred(lambda i=i: order.append(i))
        ctx.progress()
        assert order == [0, 1, 2, 3, 4]

    def test_empty_progress_reports_no_work(self, ctx):
        assert ctx.progress() is False

    def test_drains_until_quiescent(self, ctx):
        """Notifications enqueued by callbacks run in the same call."""
        ran = []

        def outer():
            ran.append("outer")
            ctx.progress_engine.enqueue_deferred(lambda: ran.append("inner"))

        ctx.progress_engine.enqueue_deferred(outer)
        ctx.progress()
        assert ran == ["outer", "inner"]

    def test_has_pending(self, ctx):
        assert not ctx.progress_engine.has_pending()
        ctx.progress_engine.enqueue_deferred(lambda: None)
        assert ctx.progress_engine.has_pending()
        ctx.progress()
        assert not ctx.progress_engine.has_pending()

    def test_pending_deferred_count(self, ctx):
        ctx.progress_engine.enqueue_deferred(lambda: None)
        ctx.progress_engine.enqueue_deferred(lambda: None)
        assert ctx.progress_engine.pending_deferred() == 2


class TestReentrancy:
    def test_progress_inside_callback_is_noop(self, ctx):
        observed = []

        def cb():
            observed.append(ctx.progress_engine.in_progress)
            # a re-entrant call must not recurse or dispatch
            assert ctx.progress() is False

        ctx.progress_engine.enqueue_deferred(cb)
        ctx.progress()
        assert observed == [True]
        assert not ctx.progress_engine.in_progress


class TestCosts:
    def test_enqueue_charge(self, ctx):
        before = ctx.costs.count(CostAction.PROGRESS_QUEUE_ENQUEUE)
        ctx.progress_engine.enqueue_deferred(lambda: None)
        assert (
            ctx.costs.count(CostAction.PROGRESS_QUEUE_ENQUEUE) == before + 1
        )

    def test_poll_and_dispatch_charges(self, ctx):
        ctx.progress_engine.enqueue_deferred(lambda: None)
        p0 = ctx.costs.count(CostAction.PROGRESS_POLL)
        d0 = ctx.costs.count(CostAction.PROGRESS_DISPATCH)
        ctx.progress()
        assert ctx.costs.count(CostAction.PROGRESS_POLL) == p0 + 1
        assert ctx.costs.count(CostAction.PROGRESS_DISPATCH) == d0 + 1

    def test_poller_registration(self, ctx):
        polled = []
        ctx.progress_engine.register_poller(lambda: polled.append(1) or False)
        ctx.progress()
        assert polled == [1]
