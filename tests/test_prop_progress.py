"""Property-based invariants of the progress drain loop.

Randomized engine-level action streams (stdlib ``random`` with fixed
seeds — reruns are bit-identical) check, for the static engine, the
adaptive controller, and the hinted mode (adaptive + ``wait_hints``):

* **termination** — drain-until-quiescent always terminates, including
  thunk chains where callbacks enqueue further thunks;
* **conservation** — every enqueued thunk is dispatched exactly once:
  at quiescence ``PROGRESS_DISPATCH == PROGRESS_QUEUE_ENQUEUE +
  LPC_ENQUEUE`` (engine level and world level);
* **latency** — immediately after any engine activity (enqueue or
  progress), no queued entry is older than ``progress_max_age_ticks``
  (adaptive mode; the static engine trivially drains to empty);
* **targeted removal** (``wait_hints``) — a targeted drain removes
  exactly the entries resolving the awaited cell, wherever they sit in
  either queue; survivors keep their relative FIFO order and monotone
  stamps, the age guarantee still holds right after the poll, and the
  conservation identity is undisturbed at quiescence.
"""

import random

import pytest

from repro import barrier, current_ctx, rput
from repro.runtime.config import flags_for
from repro.runtime.runtime import spmd_run
from repro.runtime.wait_hints import WaitTarget
from repro.sim.costmodel import CostAction
from tests.conftest import VD, progress_adaptive_flags

SEEDS = (11, 23, 37)

MODE_FLAGS = {
    "static": lambda: flags_for(VD),
    "adaptive": lambda: progress_adaptive_flags(),
    "hinted": lambda: progress_adaptive_flags(wait_hints=True),
}


def drain(ctx, limit=10_000):
    """Drain to quiescence, failing loudly instead of hanging."""
    calls = 0
    while ctx.progress_engine.has_pending():
        ctx.progress()
        calls += 1
        assert calls < limit, "drain loop failed to reach quiescence"
    while ctx.progress():
        calls += 1
        assert calls < limit, "drain loop failed to reach quiescence"
    return calls


def dispatch_balance(ctx):
    """Dispatched minus enqueued; zero exactly at quiescence."""
    c = ctx.costs
    return c.count(CostAction.PROGRESS_DISPATCH) - (
        c.count(CostAction.PROGRESS_QUEUE_ENQUEUE)
        + c.count(CostAction.LPC_ENQUEUE)
    )


class EngineModel:
    """Random action stream against one rank's engine, with the
    invariant checks folded into every step."""

    def __init__(self, ctx, rng):
        self.ctx = ctx
        self.eng = ctx.progress_engine
        self.rng = rng
        self.ran = []
        self.chain_budget = 0

    def check_age(self):
        age = self.eng.oldest_pending_age_ns()
        max_age = self.ctx.flags.progress_max_age_ticks
        assert age is None or age < max_age

    def _thunk(self, tag):
        def run():
            self.ran.append(tag)
            # chained enqueues: callbacks may schedule more work, which
            # the drain loop must also retire (bounded so the stream
            # itself terminates)
            if self.chain_budget > 0 and self.rng.random() < 0.4:
                self.chain_budget -= 1
                self._enqueue(f"{tag}+chain")

        return run

    def _enqueue(self, tag):
        if self.rng.random() < 0.3:
            self.eng.enqueue_lpc(self._thunk(tag))
        else:
            self.eng.enqueue_deferred(self._thunk(tag))

    def step(self, i):
        roll = self.rng.random()
        if roll < 0.5:
            self.chain_budget += 2
            self._enqueue(f"op{i}")
            if self.ctx.progress_ctl is not None:
                self.check_age()
        elif roll < 0.7:
            self.ctx.clock.advance(self.rng.uniform(0.0, 900.0))
        else:
            self.ctx.progress()
            if self.ctx.progress_ctl is not None:
                self.check_age()


@pytest.mark.parametrize("mode", sorted(MODE_FLAGS))
@pytest.mark.parametrize("seed", SEEDS)
class TestEngineProperties:
    def test_random_stream_invariants(self, versioned_ctx, mode, seed):
        ctx = versioned_ctx(VD, flags=MODE_FLAGS[mode]())
        model = EngineModel(ctx, random.Random(seed))
        for i in range(300):
            model.step(i)
        drain(ctx)
        assert not ctx.progress_engine.has_pending()
        assert dispatch_balance(ctx) == 0
        assert len(model.ran) == ctx.costs.count(
            CostAction.PROGRESS_DISPATCH
        )

    def test_thunk_chains_terminate(self, versioned_ctx, mode, seed):
        """Deep enqueue-from-callback chains still drain to quiescence
        (the adaptive cap defers but never drops chained work)."""
        ctx = versioned_ctx(VD, flags=MODE_FLAGS[mode]())
        eng = ctx.progress_engine
        rng = random.Random(seed)
        ran = []

        def chain(depth):
            def run():
                ran.append(depth)
                if depth > 0:
                    # alternate queue kinds down the chain
                    if rng.random() < 0.5:
                        eng.enqueue_deferred(chain(depth - 1))
                    else:
                        eng.enqueue_lpc(chain(depth - 1))

            return run

        for _ in range(10):
            eng.enqueue_deferred(chain(rng.randrange(1, 30)))
        drain(ctx)
        assert not eng.has_pending()
        assert dispatch_balance(ctx) == 0

    def test_replay_bit_identical(self, versioned_ctx, mode, seed):
        """Same seed, same flags -> same dispatch order and same clock."""

        def one_run():
            ctx = versioned_ctx(VD, flags=MODE_FLAGS[mode]())
            model = EngineModel(ctx, random.Random(seed))
            for i in range(120):
                model.step(i)
            drain(ctx)
            return list(model.ran), ctx.clock.now_ns

        assert one_run() == one_run()


@pytest.mark.parametrize("seed", SEEDS)
class TestTargetedRemoval:
    """``wait_hints`` targeted drains: mid-queue removal must not break
    the invariants the untargeted modes guarantee."""

    N_OPS = 60

    def _fill(self, ctx, rng, n_cells=5):
        """Random enqueues tagged with random cells (some untagged), with
        clock advances sprinkled in; returns what was issued."""
        eng = ctx.progress_engine
        cells = [object() for _ in range(n_cells)]
        ran = []
        for i in range(self.N_OPS):
            cell = rng.choice(cells) if rng.random() < 0.8 else None

            def thunk(i=i):
                ran.append(i)

            thunk.tag = i
            if rng.random() < 0.3:
                eng.enqueue_lpc(thunk, cell=cell)
            else:
                eng.enqueue_deferred(thunk, cell=cell)
            if rng.random() < 0.4:
                ctx.clock.advance(rng.uniform(0.0, 40.0))
        return eng, cells, ran

    @staticmethod
    def _queued_tags(eng):
        return {
            name: [e[1].tag for e in getattr(eng, name)]
            for name in ("_deferred", "_lpcs")
        }

    def test_targeted_poll_invariants(self, versioned_ctx, seed):
        ctx = versioned_ctx(VD, flags=MODE_FLAGS["hinted"]())
        rng = random.Random(seed)
        eng, cells, ran = self._fill(ctx, rng)
        target = rng.choice(cells)
        pre = self._queued_tags(eng)
        pre_target = [
            e[1].tag
            for name in ("_deferred", "_lpcs")
            for e in getattr(eng, name)
            if e[2] is target
        ]
        ctx.push_wait_target(WaitTarget(cell=target, op="future"))
        try:
            ctx.progress()
        finally:
            ctx.pop_wait_target()
        # the scan ran, and no entry resolving the target survived it
        assert ctx.costs.count(CostAction.PROGRESS_HINT_SCAN) >= 1
        for name in ("_deferred", "_lpcs"):
            assert all(e[2] is not target for e in getattr(eng, name))
        assert set(pre_target) <= set(ran)
        # survivors keep their relative FIFO order and monotone stamps
        for name in ("_deferred", "_lpcs"):
            queue = getattr(eng, name)
            stamps = [e[0] for e in queue]
            assert stamps == sorted(stamps)
            tags = [e[1].tag for e in queue]
            assert tags == [t for t in pre[name] if t in set(tags)]
        # the age guarantee holds right after the targeted poll
        age = eng.oldest_pending_age_ns()
        assert age is None or age < ctx.flags.progress_max_age_ticks
        # conservation + exactly-once at quiescence
        drain(ctx)
        assert dispatch_balance(ctx) == 0
        assert sorted(ran) == list(range(self.N_OPS))

    def test_target_absent_from_queue_is_scan_only(self, versioned_ctx, seed):
        """Targeting a cell with no queued entries removes nothing: the
        poll behaves as the plain adaptive drain plus one scan charge."""
        ctx = versioned_ctx(VD, flags=MODE_FLAGS["hinted"]())
        rng = random.Random(seed)
        eng, cells, ran = self._fill(ctx, rng)
        pre = self._queued_tags(eng)
        ctx.push_wait_target(WaitTarget(cell=object(), op="future"))
        try:
            ctx.progress()
        finally:
            ctx.pop_wait_target()
        assert ctx.costs.count(CostAction.PROGRESS_HINT_SCAN) >= 1
        # whatever was dispatched came off the FIFO heads, in order
        for name in ("_deferred", "_lpcs"):
            tags = [e[1].tag for e in getattr(eng, name)]
            assert tags == pre[name][len(pre[name]) - len(tags):]
        drain(ctx)
        assert dispatch_balance(ctx) == 0
        assert sorted(ran) == list(range(self.N_OPS))

    def test_targeted_replay_bit_identical(self, versioned_ctx, seed):
        """Same seed, same target choice -> same dispatch order and same
        clock, scans included."""

        def one_run():
            ctx = versioned_ctx(VD, flags=MODE_FLAGS["hinted"]())
            rng = random.Random(seed)
            eng, cells, ran = self._fill(ctx, rng)
            ctx.push_wait_target(WaitTarget(cell=rng.choice(cells)))
            try:
                ctx.progress()
            finally:
                ctx.pop_wait_target()
            drain(ctx)
            return list(ran), ctx.clock.now_ns

        assert one_run() == one_run()


def _rput_storm(seed):
    """SPMD body: a random burst of rputs to the right neighbour with
    interleaved progress, then a full drain."""
    ctx = current_ctx()
    rng = random.Random(seed + ctx.rank)
    from repro import new_array
    from repro.memory.global_ptr import GlobalPtr

    arr = new_array("u64", 32)
    barrier()
    right = (ctx.rank + 1) % ctx.world_size
    base = GlobalPtr(right, arr.offset, arr.ts)
    futs = []
    for i in range(40):
        futs.append(rput(rng.randrange(1 << 32), base + (i % 32)))
        if rng.random() < 0.3:
            ctx.progress()
    for f in futs:
        f.wait()
    barrier()
    while ctx.progress():
        pass
    barrier()
    return True


@pytest.mark.parametrize("mode", sorted(MODE_FLAGS))
@pytest.mark.parametrize("seed", SEEDS)
class TestWorldProperties:
    def test_world_level_conservation(self, mode, seed):
        """After a drained SPMD run the dispatch/enqueue identity holds
        world-wide, in both static and adaptive mode."""
        res = spmd_run(
            lambda: _rput_storm(seed),
            ranks=4,
            n_nodes=2,
            conduit="udp",
            version=VD,
            flags=MODE_FLAGS[mode](),
        )
        assert all(res.values)
        w = res.world
        dispatched = w.total_count(CostAction.PROGRESS_DISPATCH)
        enqueued = w.total_count(
            CostAction.PROGRESS_QUEUE_ENQUEUE
        ) + w.total_count(CostAction.LPC_ENQUEUE)
        assert dispatched == enqueued
        for ctx in w.contexts:
            assert not ctx.progress_engine.has_pending()
