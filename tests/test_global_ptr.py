"""Unit tests for global pointers, locality queries, and downcasts."""

import pytest

from repro import new_, new_array
from repro.errors import InvalidGlobalPointer, LocalityError
from repro.memory.global_ptr import GlobalPtr
from repro.memory.segment import type_spec
from repro.runtime.config import Version
from repro.sim.costmodel import CostAction


class TestNullAndIdentity:
    def test_null_properties(self):
        assert GlobalPtr.NULL.is_null
        assert not bool(GlobalPtr.NULL)

    def test_where_on_null_raises(self):
        with pytest.raises(InvalidGlobalPointer):
            GlobalPtr.NULL.where()

    def test_immutability(self):
        g = GlobalPtr(0, 8, "u64")
        with pytest.raises(AttributeError):
            g.rank = 1

    def test_equality_and_hash(self):
        a = GlobalPtr(0, 8, "u64")
        b = GlobalPtr(0, 8, "u64")
        c = GlobalPtr(0, 16, "u64")
        assert a == b and hash(a) == hash(b)
        assert a != c
        assert a != "not a pointer"

    def test_where(self, ctx):
        g = new_("u64")
        assert g.where() == ctx.rank


class TestArithmetic:
    def test_add_moves_by_element_size(self):
        g = GlobalPtr(0, 8, "u64")
        assert (g + 3).offset == 8 + 24

    def test_radd(self):
        g = GlobalPtr(0, 0, "u64")
        assert (2 + g).offset == 16

    def test_sub_int(self):
        g = GlobalPtr(0, 80, "u64")
        assert (g - 2).offset == 64

    def test_pointer_difference(self):
        base = GlobalPtr(0, 0, "u64")
        assert (base + 5) - base == 5

    def test_difference_requires_same_rank(self):
        a = GlobalPtr(0, 0, "u64")
        b = GlobalPtr(1, 0, "u64")
        with pytest.raises(InvalidGlobalPointer):
            _ = a - b

    def test_ordering_within_rank(self):
        a = GlobalPtr(0, 0, "u64")
        assert a < a + 1

    def test_ordering_across_ranks_rejected(self):
        with pytest.raises(InvalidGlobalPointer):
            _ = GlobalPtr(0, 0, "u64") < GlobalPtr(1, 8, "u64")

    def test_arithmetic_on_null_rejected(self):
        with pytest.raises(InvalidGlobalPointer):
            _ = GlobalPtr.NULL + 1


class TestLocality:
    def test_own_allocation_is_local(self, ctx):
        assert new_("u64").is_local()

    def test_null_is_not_local(self, ctx):
        assert not GlobalPtr.NULL.is_local()

    def test_local_downcast_roundtrip(self, ctx):
        g = new_("i64", -5)
        ref = g.local()
        assert ref.read() == -5
        ref.write(10)
        assert ref[0] == 10

    def test_downcast_indexing(self, ctx):
        g = new_array("u64", 4, fill=9)
        ref = g.local()
        ref[2] = 1
        assert [ref[i] for i in range(4)] == [9, 9, 1, 9]

    def test_null_downcast_rejected(self, ctx):
        with pytest.raises(InvalidGlobalPointer):
            GlobalPtr.NULL.local()

    def test_constexpr_smp_locality_check_is_free(self, versioned_ctx):
        c = versioned_ctx(Version.V2021_3_6_EAGER, conduit="smp")
        from repro import new_ as alloc

        g = alloc("u64")
        before = c.costs.count(CostAction.LOCALITY_BRANCH)
        g.is_local()
        assert c.costs.count(CostAction.LOCALITY_BRANCH) == before

    def test_2021_3_0_locality_check_charges_branch(self, versioned_ctx):
        c = versioned_ctx(Version.V2021_3_0, conduit="smp")
        from repro import new_ as alloc

        g = alloc("u64")
        before = c.costs.count(CostAction.LOCALITY_BRANCH)
        g.is_local()
        assert c.costs.count(CostAction.LOCALITY_BRANCH) == before + 1

    def test_downcast_charges(self, ctx):
        g = new_("u64")
        before = ctx.costs.count(CostAction.GPTR_DOWNCAST)
        g.local()
        assert ctx.costs.count(CostAction.GPTR_DOWNCAST) == before + 1


class TestLocalRefViews:
    def test_view_aliases_segment(self, ctx):
        g = new_array("u64", 8)
        view = g.local().view(8)
        view[5] = 123
        assert (g + 5).local().read() == 123

    def test_load_store_charges(self, ctx):
        g = new_("u64")
        ref = g.local()
        l0 = ctx.costs.count(CostAction.CPU_LOAD)
        s0 = ctx.costs.count(CostAction.CPU_STORE)
        ref.read()
        ref.write(1)
        assert ctx.costs.count(CostAction.CPU_LOAD) == l0 + 1
        assert ctx.costs.count(CostAction.CPU_STORE) == s0 + 1
