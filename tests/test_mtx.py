"""Tests for Matrix Market graph I/O."""

import gzip

import pytest

from repro.apps.graphs import make_graph
from repro.apps.matching import serial_matching
from repro.apps.mtx import MtxFormatError, load_mtx, save_mtx


def write(tmp_path, text, name="g.mtx"):
    p = tmp_path / name
    p.write_text(text)
    return p


SIMPLE = """%%MatrixMarket matrix coordinate real symmetric
% a comment
3 3 2
2 1 0.5
3 2 1.5
"""


class TestLoad:
    def test_simple_symmetric(self, tmp_path):
        g = load_mtx(write(tmp_path, SIMPLE))
        g.validate()
        assert g.n == 3
        assert g.n_edges == 2
        assert (0, 0.5) in g.adj[1]
        assert (2, 1.5) in g.adj[1]

    def test_pattern_gets_synthetic_weights(self, tmp_path):
        text = """%%MatrixMarket matrix coordinate pattern symmetric
2 2 1
2 1
"""
        g = load_mtx(write(tmp_path, text))
        (v, w), = g.adj[0]
        assert v == 1 and 0 < w <= 1

    def test_general_symmetrizes(self, tmp_path):
        text = """%%MatrixMarket matrix coordinate real general
2 2 2
1 2 3.0
2 1 3.0
"""
        g = load_mtx(write(tmp_path, text))
        assert g.n_edges == 1
        g.validate()

    def test_self_loops_dropped(self, tmp_path):
        text = """%%MatrixMarket matrix coordinate real symmetric
2 2 2
1 1 1.0
2 1 1.0
"""
        g = load_mtx(write(tmp_path, text))
        assert g.n_edges == 1

    def test_gzip_supported(self, tmp_path):
        p = tmp_path / "g.mtx.gz"
        with gzip.open(p, "wt") as fh:
            fh.write(SIMPLE)
        assert load_mtx(p).n_edges == 2

    def test_name_defaults_to_stem(self, tmp_path):
        g = load_mtx(write(tmp_path, SIMPLE, "channelish.mtx"))
        assert g.name == "channelish"

    def test_nonpositive_weight_replaced(self, tmp_path):
        text = """%%MatrixMarket matrix coordinate real symmetric
2 2 1
2 1 -4.0
"""
        g = load_mtx(write(tmp_path, text))
        (_, w), = g.adj[0]
        assert w > 0


class TestLoadErrors:
    @pytest.mark.parametrize(
        "text,match",
        [
            ("no header\n", "header"),
            ("%%MatrixMarket matrix array real symmetric\n1 1\n", "layout"),
            (
                "%%MatrixMarket matrix coordinate complex symmetric\n"
                "1 1 0\n",
                "value type",
            ),
            (
                "%%MatrixMarket matrix coordinate real skew-symmetric\n"
                "1 1 0\n",
                "symmetry",
            ),
            (
                "%%MatrixMarket matrix coordinate real symmetric\n2 3 0\n",
                "square",
            ),
            (
                "%%MatrixMarket matrix coordinate real symmetric\n"
                "2 2 5\n2 1 1.0\n",
                "mismatch",
            ),
        ],
    )
    def test_bad_files(self, tmp_path, text, match):
        with pytest.raises(MtxFormatError, match=match):
            load_mtx(write(tmp_path, text))


class TestRoundTrip:
    def test_synthetic_graph_roundtrips(self, tmp_path):
        g = make_graph("random", scale=1, seed=3)
        p = tmp_path / "out.mtx"
        save_mtx(g, p)
        g2 = load_mtx(p)
        g2.validate()
        assert g2.n == g.n
        assert g2.n_edges == g.n_edges
        # identical matchings — weights preserved to 9 significant digits
        assert serial_matching(g2) == serial_matching(g)

    def test_roundtrip_preserves_adjacency_sets(self, tmp_path):
        g = make_graph("venturi", scale=1)
        p = tmp_path / "v.mtx"
        save_mtx(g, p)
        g2 = load_mtx(p)
        for u in range(g.n):
            assert {v for v, _ in g.adj[u]} == {v for v, _ in g2.adj[u]}
