"""Parity tests: the event-loop scheduler vs the thread scheduler.

The tentpole guarantee of ``FeatureFlags.sched_event_loop``: swapping the
scheduling substrate is *unobservable* — same per-rank results, same
virtual clocks, same switch traces (every scheduling decision, in order),
same deadlock declarations and failure teardown.  These tests compare the
two substrates event by event on direct SPMD programs, on the GUPS
variants across the flag matrix axes, and on seeded fuzz programs.

Traces are compared up to the first terminal event (``deadlock``/``fail``):
past that point the thread substrate wakes the to-be-torn-down rank
threads in OS order, so the *order* of subsequent ``fail`` entries is
scheduler-noise by design (the set of torn-down ranks is still checked).
"""

import dataclasses

import pytest

from repro import barrier, barrier_gen, current_ctx, rank_me
from repro.errors import DeadlockError, SchedulerError
from repro.fuzz import generate_program
from repro.fuzz.runner import _fuzz_body, mode_flags, run_program
from repro.runtime.config import Version, flags_for
from repro.runtime.runtime import spmd_run
from repro.runtime.switchpoints import YIELD_NOW, BlockUntil

TERMINALS = ("deadlock", "fail")


def _truncate(trace):
    """The deterministic prefix: everything up to and including the first
    terminal event (teardown wake order after it is OS noise)."""
    for i, ev in enumerate(trace):
        if ev[0] in TERMINALS:
            return trace[: i + 1]
    return trace


def _flags(version=Version.V2021_3_6_EAGER, **kw):
    return dataclasses.replace(flags_for(version), **kw)


def run_both(fn, *, ranks, args=(), expect=None, **kw):
    """Run ``fn`` under both substrates; assert identical values, clocks,
    and truncated switch traces; return the two results."""
    tr_th, tr_ev = [], []
    base = kw.pop("flags", flags_for(kw.get("version", Version.V2021_3_6_EAGER)))
    fl_ev = dataclasses.replace(base, sched_event_loop=True)
    if expect is None:
        r_th = spmd_run(fn, ranks=ranks, args=args, flags=base,
                        switch_trace=tr_th, **kw)
        r_ev = spmd_run(fn, ranks=ranks, args=args, flags=fl_ev,
                        switch_trace=tr_ev, **kw)
        assert r_ev.values == r_th.values
    else:
        with pytest.raises(expect) as ei_th:
            spmd_run(fn, ranks=ranks, args=args, flags=base,
                     switch_trace=tr_th, **kw)
        with pytest.raises(expect) as ei_ev:
            spmd_run(fn, ranks=ranks, args=args, flags=fl_ev,
                     switch_trace=tr_ev, **kw)
        assert str(ei_ev.value) == str(ei_th.value)
        r_th = r_ev = None
    assert _truncate(tr_ev) == _truncate(tr_th)
    if r_th is not None:
        assert [c.clock.now_ns for c in r_ev.world.contexts] == [
            c.clock.now_ns for c in r_th.world.contexts
        ]
    return r_th, r_ev


class TestBasicParity:
    def test_values_and_clocks(self):
        def body():
            yield from barrier_gen()
            return rank_me() * 3

        r_th, _ = run_both(body, ranks=8)
        assert r_th.values == [r * 3 for r in range(8)]

    def test_round_robin_promotion_order(self):
        """Satellite check: the fused single-pass _pick_next keeps the
        exact round-robin order of the old two-pass scan."""
        log = []

        def body():
            me = rank_me()
            for _ in range(3):
                log.append(me)
                yield YIELD_NOW

        fl = _flags(sched_event_loop=True)
        spmd_run(body, ranks=4, flags=fl)
        assert log[:4] == [0, 1, 2, 3]
        log_ev = list(log)
        log.clear()
        spmd_run(body, ranks=4)
        assert log == log_ev

    def test_block_until_producer_consumer(self):
        def body():
            ctx = current_ctx()
            box = ctx.world.shared  # type: ignore[attr-defined]
            me = rank_me()
            if me == 0:
                yield YIELD_NOW
                box.append("ping")
                yield BlockUntil(lambda: len(box) == 2)
                return box[-1]
            yield BlockUntil(lambda: len(box) == 1)
            box.append("pong")
            return box[0]

        def run(flags):
            tr = []
            world_box = []

            def wrapped():
                ctx = current_ctx()
                ctx.world.shared = world_box  # type: ignore[attr-defined]
                return (yield from body())

            r = spmd_run(wrapped, ranks=2, flags=flags, switch_trace=tr)
            return r.values, tr

        v_th, t_th = run(_flags())
        v_ev, t_ev = run(_flags(sched_event_loop=True))
        assert v_ev == v_th == ["pong", "ping"]
        assert t_ev == t_th

    def test_plain_function_rides_the_shim(self):
        """Un-ported (non-generator) bodies run under the thread shim and
        stay observably identical."""
        def body():
            barrier()
            ctx = current_ctx()
            ctx.yield_to_others()
            barrier()
            return rank_me()

        r_th, r_ev = run_both(body, ranks=6)
        assert r_th.values == list(range(6))


class TestDeadlockParity:
    def test_all_blocked_is_deadlock_with_state_dump(self):
        def body():
            yield BlockUntil(lambda: False)

        tr_th, tr_ev = [], []
        with pytest.raises(DeadlockError) as ei_th:
            spmd_run(body, ranks=3, switch_trace=tr_th)
        with pytest.raises(DeadlockError) as ei_ev:
            spmd_run(body, ranks=3, flags=_flags(sched_event_loop=True),
                     switch_trace=tr_ev)
        assert str(ei_ev.value) == str(ei_th.value)
        assert "states:" in str(ei_ev.value)
        for r in range(3):
            assert f"{r}:" in str(ei_ev.value)
        assert _truncate(tr_ev) == _truncate(tr_th)
        assert tr_ev[-1][0] == "deadlock" or ("deadlock" in
                                              [e[0] for e in tr_ev])

    def test_partial_deadlock_after_finishes(self):
        """The finish-path declaration: the last runnable rank completes
        while others still block — deadlock without a blocking declarer."""
        def body():
            if rank_me() == 0:
                return "done"
            yield BlockUntil(lambda: False)

        run_both(body, ranks=3, expect=DeadlockError)

    def test_deadlock_unwinds_finally_blocks(self):
        cleaned = []

        def body():
            try:
                yield BlockUntil(lambda: False)
            finally:
                cleaned.append(rank_me())

        with pytest.raises(DeadlockError):
            spmd_run(body, ranks=3, flags=_flags(sched_event_loop=True))
        assert sorted(cleaned) == [0, 1, 2]
        cleaned.clear()
        with pytest.raises(DeadlockError):
            spmd_run(body, ranks=3)
        assert sorted(cleaned) == [0, 1, 2]


class TestFailureParity:
    def test_failure_tears_down_blocked_ranks(self):
        cleaned = []

        def body():
            try:
                if rank_me() == 1:
                    raise ValueError("kaboom")
                yield from barrier_gen()
            finally:
                cleaned.append(rank_me())

        # rank 0 blocks at the barrier, rank 1 fails before ranks 2/3 ever
        # start: started ranks unwind (finally runs), never-started ranks
        # run no user code at all — identically on both substrates
        with pytest.raises(ValueError, match="kaboom"):
            spmd_run(body, ranks=4, flags=_flags(sched_event_loop=True))
        assert sorted(cleaned) == [0, 1]
        cleaned.clear()
        with pytest.raises(ValueError, match="kaboom"):
            spmd_run(body, ranks=4)
        assert sorted(cleaned) == [0, 1]

    def test_failure_unwinds_all_started_ranks(self):
        cleaned = []

        def body():
            try:
                yield from barrier_gen()  # everyone starts and syncs
                if rank_me() == 1:
                    raise ValueError("kaboom")
                yield from barrier_gen()
            finally:
                cleaned.append(rank_me())

        with pytest.raises(ValueError, match="kaboom"):
            spmd_run(body, ranks=4, flags=_flags(sched_event_loop=True))
        assert sorted(cleaned) == [0, 1, 2, 3]
        cleaned.clear()
        with pytest.raises(ValueError, match="kaboom"):
            spmd_run(body, ranks=4)
        assert sorted(cleaned) == [0, 1, 2, 3]

    def test_first_error_wins(self):
        def body():
            raise KeyError(f"r{rank_me()}")
            yield  # pragma: no cover - makes this a generator function

        # rank 0 errors before any other rank has started on both
        # substrates, so its error is the one that propagates
        tr_th, tr_ev = [], []
        with pytest.raises(KeyError, match="r0"):
            spmd_run(body, ranks=3, switch_trace=tr_th)
        with pytest.raises(KeyError, match="r0"):
            spmd_run(body, ranks=3, flags=_flags(sched_event_loop=True),
                     switch_trace=tr_ev)
        assert _truncate(tr_ev) == _truncate(tr_th) == [("fail", 0)]

    def test_teardown_error_type_for_survivors(self):
        seen = []

        def body():
            if rank_me() == 2:
                raise RuntimeError("boom")
            try:
                yield from barrier_gen()
            except DeadlockError as exc:
                seen.append(str(exc))
                raise

        with pytest.raises(RuntimeError, match="boom"):
            spmd_run(body, ranks=3, flags=_flags(sched_event_loop=True))
        assert len(seen) == 2
        assert all("tearing down" in s for s in seen)


class TestInlineGuards:
    def test_inline_block_with_pending_predicate_raises(self):
        def body():
            ctx = current_ctx()
            if rank_me() == 0:
                with pytest.raises(SchedulerError, match="switch commands"):
                    ctx.block_until(lambda: False)
            yield from barrier_gen()

        spmd_run(body, ranks=2, flags=_flags(sched_event_loop=True))

    def test_inline_yield_with_runnable_peer_raises(self):
        def body():
            ctx = current_ctx()
            if rank_me() == 0:
                # rank 1 has not started yet and is runnable
                with pytest.raises(SchedulerError, match="YIELD_NOW"):
                    ctx.yield_to_others()
            yield from barrier_gen()

        spmd_run(body, ranks=2, flags=_flags(sched_event_loop=True))

    def test_inline_calls_fine_when_alone(self):
        """A 1-rank world never switches, so inline blocking primitives
        (ambient-style code) keep working inside continuation bodies."""
        def body():
            ctx = current_ctx()
            ctx.yield_to_others()
            ctx.block_until(lambda: True)
            return "ok"
            yield  # pragma: no cover - makes this a generator function

        r = spmd_run(body, ranks=1, flags=_flags(sched_event_loop=True))
        assert r.values == ["ok"]


class TestGupsFlagMatrixParity:
    """Spot checks over the existing flag-matrix axes: the substrates must
    agree on functional results and virtual clocks for every build."""

    @pytest.mark.parametrize("variant", ["rma_promise", "rma_future", "agg"])
    @pytest.mark.parametrize("version", [Version.V2021_3_6_EAGER,
                                         Version.V2021_3_6_DEFER])
    def test_gups_variant_parity(self, variant, version):
        from repro.apps.gups import GupsConfig, run_gups

        cfg = GupsConfig(variant=variant, table_log2=8,
                         updates_per_rank=16, batch=8)
        kw = dict(ranks=4, version=version, machine="generic",
                  conduit="udp", n_nodes=2)
        base = flags_for(version)
        if variant == "agg":
            base = dataclasses.replace(base, am_aggregation=True)
        r_th = run_gups(cfg, flags=base, **kw)
        r_ev = run_gups(
            cfg, flags=dataclasses.replace(base, sched_event_loop=True), **kw
        )
        assert r_ev.checksum == r_th.checksum
        assert r_ev.solve_ns == r_th.solve_ns
        assert r_ev.gups == r_th.gups
        assert (r_ev.table == r_th.table).all()

    def test_wait_hints_and_adaptive_axes(self):
        from repro.apps.gups import GupsConfig, run_gups

        cfg = GupsConfig(variant="wait_hints", table_log2=8,
                         updates_per_rank=16, batch=8)
        base = dataclasses.replace(
            flags_for(Version.V2021_3_6_DEFER),
            wait_hints=True, progress_adaptive=True, obs_spans=True,
        )
        kw = dict(ranks=4, version=Version.V2021_3_6_DEFER,
                  machine="generic", conduit="udp", n_nodes=2)
        r_th = run_gups(cfg, flags=base, **kw)
        r_ev = run_gups(
            cfg, flags=dataclasses.replace(base, sched_event_loop=True), **kw
        )
        assert r_ev.checksum == r_th.checksum
        assert r_ev.solve_ns == r_th.solve_ns


class TestFuzzParity:
    """Property tests on seeded fuzz programs: for any generated program
    and any mode, the two substrates produce the same FuzzOutcome —
    tables, per-op values, completion counts, *and clocks*."""

    @pytest.mark.parametrize("seed", range(10))
    def test_outcomes_identical(self, seed):
        program = generate_program(seed)
        from repro.fuzz import MODES

        mode = MODES[seed % len(MODES)]
        assert run_program(program, mode, "event") == run_program(
            program, mode, "thread"
        )

    @pytest.mark.parametrize("seed", [3, 11, 27])
    def test_switch_traces_identical(self, seed):
        program = generate_program(seed)
        version, flags = mode_flags("hinted")
        tr_th, tr_ev = [], []
        kw = dict(
            ranks=program.ranks, version=version, machine="generic",
            conduit=program.conduit, n_nodes=program.n_nodes,
            seed=program.seed, args=(program,),
        )
        r_th = spmd_run(_fuzz_body, flags=flags, switch_trace=tr_th, **kw)
        r_ev = spmd_run(
            _fuzz_body,
            flags=flags.replace(sched_event_loop=True),
            switch_trace=tr_ev,
            **kw,
        )
        assert tr_ev == tr_th
        assert r_ev.values == r_th.values

    def test_check_program_covers_both_substrates(self):
        from repro.fuzz import SCHEDULERS, check_program

        program = generate_program(5)
        assert check_program(program, schedulers=SCHEDULERS) == []


class TestCostBatching:
    """cost_batching (default-on) accumulates exact integer clock units,
    so toggling the opt-out knob is *bit-identical*: same counts, same
    clocks, no tolerance — the integer accumulator is order-independent."""

    def test_counts_identical_and_clocks_bit_identical(self):
        from repro.apps.gups import GupsConfig, run_gups

        cfg = GupsConfig(variant="rma_promise", table_log2=8,
                         updates_per_rank=32, batch=8)
        base = _flags(sched_event_loop=True, cost_batching=False)
        r_plain = run_gups(cfg, ranks=4, machine="generic", flags=base)
        r_batch = run_gups(
            cfg, ranks=4, machine="generic",
            flags=dataclasses.replace(base, cost_batching=True),
        )
        assert r_batch.checksum == r_plain.checksum
        assert r_batch.solve_ns == r_plain.solve_ns

    def test_counts_merge_lazily(self):
        from repro.fuzz.runner import _fuzz_body

        program = generate_program(7)
        kw = dict(ranks=program.ranks, machine="generic",
                  conduit=program.conduit, n_nodes=program.n_nodes,
                  seed=program.seed, args=(program,))
        r_plain = spmd_run(
            _fuzz_body, flags=_flags(cost_batching=False), **kw
        )
        r_batch = spmd_run(
            _fuzz_body, flags=_flags(cost_batching=True), **kw
        )
        for cp, cb in zip(r_plain.world.contexts, r_batch.world.contexts):
            assert cb.costs.snapshot() == cp.costs.snapshot()
            assert cb.clock.now_ns == cp.clock.now_ns

    def test_noise_auto_disables_default_batching(self):
        """``noise`` with flags=None quietly resolves to batching-off
        (jitter needs per-charge draws); only an *explicit* batching flag
        combined with noise is an error."""
        def body():
            return 0

        r = spmd_run(body, ranks=2, noise=0.1, seed=3)
        assert r.values == [0, 0]

    def test_noise_is_rejected(self):
        from repro.errors import UpcxxError

        def body():
            return 0

        with pytest.raises(UpcxxError, match="cost_batching"):
            spmd_run(body, ranks=2, noise=0.1,
                     flags=_flags(cost_batching=True))
