"""A/B engine tests: one-toggle discipline, deterministic artifacts,
confidence intervals, and the regression gate.

The cheap spec to exercise end-to-end is ``wake_scan`` (a few hundred
barrier rounds); the full GUPS specs are covered by their quick sweeps in
CI and by the unit pieces here.
"""

import copy
import json

import pytest

from repro.bench import ab
from repro.bench.schema import validate_artifact
from repro.runtime.config import Version
from repro.sim.stats import seed_confidence_interval


@pytest.fixture(scope="module")
def wake_scan_doc():
    return ab.run_ab_spec(ab.WAKE_SCAN, quick=True)


class TestSpecValidation:
    def _spec(self, **kw):
        base = dict(
            name="t", description="d", workload="blocked_storm",
            axis="ranks", points=(2,), seeds=(1,),
            toggle={"sched_wake_list": True},
            metrics=(ab.MetricSpec("switches"),),
        )
        base.update(kw)
        return ab.ABSpec(**base)

    def test_minimal_spec_accepted(self):
        self._spec()

    def test_empty_toggle_rejected(self):
        with pytest.raises(ValueError, match="toggle"):
            self._spec(toggle={})

    def test_three_flag_toggle_rejected(self):
        with pytest.raises(ValueError, match="toggle"):
            self._spec(toggle={
                "sched_wake_list": True,
                "sched_event_loop": True,
                "cx_continuations": True,
            })

    def test_unknown_flag_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            self._spec(toggle={"not_a_flag": True})

    def test_quick_points_must_be_subset(self):
        with pytest.raises(ValueError, match="subset"):
            self._spec(points=(2, 4), quick_points=(8,))

    def test_quick_seeds_must_be_subset(self):
        with pytest.raises(ValueError, match="subset"):
            self._spec(seeds=(1, 2), quick_seeds=(3,))

    def test_duplicate_metric_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            self._spec(metrics=(
                ab.MetricSpec("switches"), ab.MetricSpec("switches"),
            ))

    def test_bad_better_rejected(self):
        with pytest.raises(ValueError, match="better"):
            ab.MetricSpec("x", better="sideways")

    def test_vacuous_toggle_rejected(self):
        # sched_wake_list is already True on every build: toggling it
        # *to* True produces identical arms, which arm_flags refuses
        spec = self._spec()
        with pytest.raises(ValueError, match="vacuous|exact arm delta"):
            spec.arm_flags()

    def test_arm_flags_differ_in_exactly_the_toggle(self):
        from repro.runtime.config import flag_delta

        arms = ab.EAGER_DEFER.arm_flags()
        delta = flag_delta(arms["defer"], arms["eager"])
        assert set(delta) == {"eager_notification"}

    def test_registered_specs_are_wellformed(self):
        for spec in ab.select_specs():
            arms = spec.arm_flags()
            assert len(arms) == 2
            assert spec.workload in ab.WORKLOADS

    def test_select_specs_unknown_name(self):
        with pytest.raises(KeyError):
            ab.select_specs(["nope"])


class TestConfidenceInterval:
    def test_single_sample_zero_width(self):
        ci = seed_confidence_interval([5.0])
        assert (ci.mean, ci.lo, ci.hi, ci.n) == (5.0, 5.0, 5.0, 1)

    def test_identical_samples_zero_width(self):
        ci = seed_confidence_interval([3.0, 3.0, 3.0])
        assert ci.lo == ci.hi == ci.mean == 3.0

    def test_varying_samples_bracket_mean(self):
        ci = seed_confidence_interval([1.0, 2.0, 3.0])
        assert ci.lo < ci.mean == 2.0 < ci.hi
        # df=2 -> t=4.303, stdev=1, half = 4.303/sqrt(3)
        assert ci.halfwidth == pytest.approx(4.303 / 3 ** 0.5)


class TestSpeedupOrientation:
    def test_lower_is_better_orients_a_over_b(self):
        m = ab.MetricSpec("x", better="lower")
        assert ab._speedup_samples(m, [10.0], [5.0]) == [2.0]

    def test_higher_is_better_orients_b_over_a(self):
        m = ab.MetricSpec("x", better="higher")
        assert ab._speedup_samples(m, [5.0], [10.0]) == [2.0]

    def test_zero_over_zero_is_parity(self):
        m = ab.MetricSpec("x", better="lower")
        assert ab._speedup_samples(m, [0.0], [0.0]) == [1.0]

    def test_nonzero_over_zero_is_undefined(self):
        m = ab.MetricSpec("x", better="lower")
        assert ab._speedup_samples(m, [3.0], [0.0]) == [None]


class TestWakeScanRun:
    def test_deterministic_block_bit_identical(self, wake_scan_doc):
        doc2 = ab.run_ab_spec(ab.WAKE_SCAN, quick=True)
        assert json.dumps(
            wake_scan_doc["deterministic"], sort_keys=True
        ) == json.dumps(doc2["deterministic"], sort_keys=True)

    def test_pure_pick_swap_measures_exact_parity(self, wake_scan_doc):
        # the honesty check: every deterministic metric exactly 1.00x
        for row in wake_scan_doc["deterministic"]["points"]:
            for name, m in row["metrics"].items():
                assert m["speedup"]["mean"] == 1.0, (row["point"], name)
                assert m["speedup"]["stdev"] == 0.0

    def test_schema_valid(self, wake_scan_doc):
        assert validate_artifact(wake_scan_doc, path="mem") == []

    def test_environment_separated(self, wake_scan_doc):
        from repro.bench.schema import _is_wall_key

        env = wake_scan_doc["environment"]
        assert all("wall_s" in c for c in env["cells"].values())

        def keys_of(obj):
            if isinstance(obj, dict):
                for k, v in obj.items():
                    yield k
                    yield from keys_of(v)
            elif isinstance(obj, list):
                for v in obj:
                    yield from keys_of(v)

        # no wall-clock/interpreter flavored key anywhere deterministic
        assert not [
            k for k in keys_of(wake_scan_doc["deterministic"])
            if _is_wall_key(k)
        ]

    def test_round_trips(self, wake_scan_doc):
        assert json.loads(json.dumps(wake_scan_doc)) == wake_scan_doc


class TestGate:
    def test_gate_passes_against_itself(self, wake_scan_doc):
        assert ab.gate_ab(
            wake_scan_doc, wake_scan_doc, allow_quick_baseline=True
        ) == []

    def test_quick_baseline_rejected_by_default(self, wake_scan_doc):
        problems = ab.gate_ab(wake_scan_doc, wake_scan_doc)
        assert problems and "quick" in problems[0]

    def test_perturbed_metric_fails(self, wake_scan_doc):
        baseline = copy.deepcopy(wake_scan_doc)
        row = baseline["deterministic"]["points"][0]
        m = row["metrics"]["switches"]
        m["per_seed_b"] = [v * 1.5 for v in m["per_seed_b"]]
        problems = ab.gate_ab(
            wake_scan_doc, baseline, allow_quick_baseline=True
        )
        assert any("switches" in p and "drifted" in p for p in problems)

    def test_drift_within_baseline_ci_passes(self, wake_scan_doc):
        # widen the baseline's interval wider than the injected drift:
        # the gate must tolerate seed-variation-sized movement
        baseline = copy.deepcopy(wake_scan_doc)
        fresh = copy.deepcopy(wake_scan_doc)
        for doc, bump in ((baseline, 0.0), (fresh, 0.5)):
            row = doc["deterministic"]["points"][0]
            m = row["metrics"]["switches"]
            if bump:
                m["per_seed_a"] = [v + bump for v in m["per_seed_a"]]
        row = baseline["deterministic"]["points"][0]
        ci = row["metrics"]["switches"]["a"]
        ci["hi"] = ci["mean"] + 10.0  # halfwidth 10 >> drift 0.5
        assert ab.gate_ab(fresh, baseline, allow_quick_baseline=True) == []

    def test_spec_drift_fails(self, wake_scan_doc):
        baseline = copy.deepcopy(wake_scan_doc)
        baseline["deterministic"]["toggle"] = {"cx_continuations": True}
        problems = ab.gate_ab(
            wake_scan_doc, baseline, allow_quick_baseline=True
        )
        assert any("drifted in 'toggle'" in p for p in problems)

    def test_name_mismatch_fails(self, wake_scan_doc):
        baseline = copy.deepcopy(wake_scan_doc)
        baseline["name"] = "other"
        problems = ab.gate_ab(
            wake_scan_doc, baseline, allow_quick_baseline=True
        )
        assert problems

    def test_quick_subset_gates_against_full_shape(self, wake_scan_doc):
        # a doc with MORE points/seeds than the fresh run still gates on
        # the shared cells (quick-vs-committed-full is the CI shape)
        baseline = copy.deepcopy(wake_scan_doc)
        baseline["quick"] = False
        extra = copy.deepcopy(baseline["deterministic"]["points"][0])
        extra["point"] = 999
        baseline["deterministic"]["points"].append(extra)
        assert ab.gate_ab(wake_scan_doc, baseline) == []


class TestWorkloadHelpers:
    def test_gups_axis_routes_to_config(self):
        run_kw, cfg_kw, variant, by_flag = ab._gups_kwargs(
            64, "batch", 7, {"variant": "agg", "ranks": 8}
        )
        assert cfg_kw["batch"] == 64 and cfg_kw["seed"] == 7
        assert run_kw["ranks"] == 8 and variant == "agg"

    def test_gups_axis_routes_to_run(self):
        run_kw, cfg_kw, _, _ = ab._gups_kwargs(
            16, "ranks", 1, {"variant": "agg"}
        )
        assert run_kw["ranks"] == 16

    def test_gups_unknown_param_rejected(self):
        with pytest.raises(ValueError, match="unknown gups workload"):
            ab._gups_kwargs(1, "batch", 1, {"variant": "agg", "bogus": 1})

    def test_gups_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="cannot sweep"):
            ab._gups_kwargs(1, "bogus_axis", 1, {"variant": "agg"})

    def test_variant_by_flag_picks_by_toggle(self):
        arms = ab.CONT_FUTURE.arm_flags()
        by_flag = ab.CONT_FUTURE.workload_params["variant_by_flag"]
        assert ab._pick_variant(None, by_flag, arms["future"]) == "amo_future"
        assert ab._pick_variant(None, by_flag, arms["cont"]) == "cont"
        # explicit variant wins (contbench's promise rows)
        assert ab._pick_variant("prog_adaptive", by_flag, arms["cont"]) == (
            "prog_adaptive"
        )

    def test_blocked_storm_wrong_axis_rejected(self):
        with pytest.raises(ValueError, match="ranks"):
            ab.WORKLOADS["blocked_storm"](
                point=4, axis="batch",
                flags=ab.WAKE_SCAN.arm_flags()["wake"],
                version=Version.V2021_3_6_EAGER, seed=1,
                params=ab.WAKE_SCAN.workload_params,
            )

    def test_missing_metric_detected(self):
        spec = ab.ABSpec(
            name="t", description="d", workload="blocked_storm",
            axis="ranks", points=(2,), seeds=(1,),
            toggle={"sched_event_loop": True},
            metrics=(ab.MetricSpec("not_produced"),),
            workload_params={"rounds_by_ranks": {"2": 2}},
        )
        with pytest.raises(KeyError, match="not_produced"):
            ab.run_cell(
                spec, point=2, flags=spec.arm_flags()["off"], seed=1
            )
