"""Tests for VIS (strided/indexed) RMA operations."""

import numpy as np
import pytest

from repro import (
    barrier,
    new_array,
    progress,
    rank_me,
    rget_indexed,
    rget_strided,
    rput_indexed,
    rput_strided,
)
from repro.errors import InvalidGlobalPointer
from repro.memory.global_ptr import GlobalPtr
from repro.runtime.context import current_ctx
from repro.runtime.runtime import spmd_run
from tests.conftest import ALL_VERSIONS


@pytest.mark.parametrize("version", ALL_VERSIONS)
class TestStridedLocal:
    def test_put_stride_2(self, versioned_ctx, version):
        c = versioned_ctx(version)
        g = new_array("u64", 8)
        rput_strided([1, 2, 3, 4], g, 4, 2).wait()
        assert list(g.local().view(8)) == [1, 0, 2, 0, 3, 0, 4, 0]

    def test_get_stride_2(self, versioned_ctx, version):
        versioned_ctx(version)
        g = new_array("u64", 8)
        rput_strided([5, 6, 7, 8], g, 4, 2).wait()
        out = rget_strided(g, 4, 2).wait()
        assert list(out) == [5, 6, 7, 8]

    def test_negative_stride(self, versioned_ctx, version):
        versioned_ctx(version)
        g = new_array("u64", 4, fill=0)
        rput_strided([1, 2], g + 3, 2, -3).wait()
        assert list(g.local().view(4)) == [2, 0, 0, 1]

    def test_stride_1_matches_bulk(self, versioned_ctx, version):
        versioned_ctx(version)
        g = new_array("u64", 4)
        rput_strided([9, 9, 9, 9], g, 4, 1).wait()
        assert list(g.local().view(4)) == [9] * 4


class TestIndexedLocal:
    def test_scatter_gather(self, ctx):
        g = new_array("u64", 10)
        rput_indexed([7, 8, 9], g, [1, 4, 9]).wait()
        assert list(rget_indexed(g, [9, 4, 1]).wait()) == [9, 8, 7]

    def test_duplicate_indices_last_wins(self, ctx):
        g = new_array("u64", 4)
        rput_indexed([1, 2], g, [0, 0]).wait()
        assert g.local()[0] == 2

    def test_float_elements(self, ctx):
        g = new_array("f64", 4)
        rput_indexed([0.5, 1.5], g, [0, 3]).wait()
        out = rget_indexed(g, [0, 3]).wait()
        assert list(out) == [0.5, 1.5]


class TestValidation:
    def test_null_pointer(self, ctx):
        with pytest.raises(InvalidGlobalPointer):
            rput_strided([1], GlobalPtr.NULL, 1, 1)
        with pytest.raises(InvalidGlobalPointer):
            rget_indexed(GlobalPtr.NULL, [0])

    def test_zero_stride(self, ctx):
        g = new_array("u64", 4)
        with pytest.raises(ValueError):
            rput_strided([1], g, 1, 0)
        with pytest.raises(ValueError):
            rget_strided(g, 1, 0)

    def test_count_mismatch(self, ctx):
        g = new_array("u64", 8)
        with pytest.raises(ValueError):
            rput_strided([1, 2], g, 3, 1)
        with pytest.raises(ValueError):
            rput_indexed([1], g, [0, 1])

    def test_empty_indices(self, ctx):
        g = new_array("u64", 4)
        with pytest.raises(ValueError):
            rget_indexed(g, [])

    def test_out_of_segment_stride_detected(self, ctx):
        from repro.errors import SegmentError

        g = new_array("u64", 4)
        with pytest.raises(SegmentError):
            rput_strided(
                np.arange(64, dtype=np.uint64), g, 64, 1 << 14
            ).wait()


class TestCrossRank:
    def test_strided_put_to_peer(self):
        def body():
            g = new_array("u64", 8)
            barrier()
            if rank_me() == 0:
                target = GlobalPtr(1, g.offset, g.ts)
                rput_strided([1, 2, 3], target, 3, 3).wait()
            barrier()
            return list(g.local().view(8))

        res = spmd_run(body, ranks=2)
        assert res.values[1] == [1, 0, 0, 2, 0, 0, 3, 0]

    def test_indexed_get_from_peer(self):
        def body():
            g = new_array("u64", 6)
            view = current_ctx().segment.view_array(g.offset, g.ts, 6)
            view[:] = [10 * rank_me() + i for i in range(6)]
            barrier()
            peer = GlobalPtr((rank_me() + 1) % 2, g.offset, g.ts)
            out = list(rget_indexed(peer, [5, 0]).wait())
            barrier()
            return out

        res = spmd_run(body, ranks=2)
        assert res.values[0] == [15, 10]
        assert res.values[1] == [5, 0]

    def test_offnode_strided_roundtrip(self):
        def body():
            g = new_array("u64", 6)
            barrier()
            if rank_me() == 0:
                remote = GlobalPtr(1, g.offset, g.ts)
                rput_strided([4, 5, 6], remote, 3, 2).wait()
                out = rget_strided(remote, 3, 2).wait()
                current_ctx().world._vis_done = True  # type: ignore
                barrier()
                return list(out)
            ctx = current_ctx()
            while not getattr(ctx.world, "_vis_done", False):
                progress()
                ctx.yield_to_others()
            barrier()
            return list(g.local().view(6))

        res = spmd_run(body, ranks=2, n_nodes=2, conduit="udp")
        assert res.values[0] == [4, 5, 6]
        assert res.values[1] == [4, 0, 5, 0, 6, 0]


class TestEagerSemantics:
    def test_local_strided_eager_ready(self, versioned_ctx):
        from repro.runtime.config import Version

        versioned_ctx(Version.V2021_3_6_EAGER)
        g = new_array("u64", 4)
        assert rput_strided([1, 1], g, 2, 2).is_ready()

    def test_local_strided_defer_not_ready(self, versioned_ctx):
        from repro.runtime.config import Version

        c = versioned_ctx(Version.V2021_3_6_DEFER)
        g = new_array("u64", 4)
        f = rput_strided([1, 1], g, 2, 2)
        assert not f.is_ready()
        c.progress()
        assert f.is_ready()
