"""Empty-run regressions: zero ops, zero spans, zero samples.

Every rendering/rollup surface must degrade gracefully when a run did
nothing: no ``max()`` on an empty sequence, no division by a zero count,
no validator error for a legitimately empty export.  Exercised both at
the unit level (empty tracers/histograms) and end to end (an SPMD run
whose body performs no communication, with observability enabled).
"""

from repro.bench.report import (
    _fmt_hist_rows,
    format_bars,
    format_notification_report,
    format_span_timeline,
)
from repro.obs.export import chrome_trace, validate_trace_events
from repro.obs.metrics import (
    HistogramMetric,
    MetricsRegistry,
    merge_metrics,
)
from repro.runtime.runtime import spmd_run
from repro.sim.stats import observability_snapshots, observability_stats
from repro.sim.trace import Tracer
from tests.conftest import VD, obs_flags


def _noop_body():
    # genuinely zero ops: even barrier() would record a collective span
    return True


def _empty_obs_world():
    return spmd_run(_noop_body, ranks=2, version=VD, flags=obs_flags(VD))


class TestTracerEmpty:
    def test_format_timeline_no_events(self):
        text = Tracer().format_timeline()
        assert "t/ns" in text
        assert "(no events)" in text

    def test_format_timeline_empty_with_capacity_drop_note(self):
        tr = Tracer(capacity=0)
        assert tr.summary()["complete"]
        assert "(no events)" in tr.format_timeline()

    def test_counts_first_last_on_empty(self):
        from repro.sim.costmodel import CostAction

        tr = Tracer()
        assert tr.counts() == {}
        assert tr.first(CostAction.PROGRESS_POLL) is None
        assert tr.last(CostAction.PROGRESS_POLL) is None


class TestHistogramsEmpty:
    def test_snapshot_of_unrecorded_histogram(self):
        snap = HistogramMetric("h").snapshot()
        assert snap.n == 0
        assert snap.mean == 0.0
        assert snap.min is None and snap.max is None

    def test_fmt_hist_rows_empty(self):
        assert _fmt_hist_rows(HistogramMetric("h").snapshot()) == []

    def test_merge_of_empty_registries(self):
        merged = merge_metrics(
            [MetricsRegistry().snapshot(), MetricsRegistry().snapshot()]
        )
        assert merged.counters == {}
        assert merged.histograms == {}

    def test_merge_empty_with_nonempty(self):
        reg = MetricsRegistry()
        reg.histogram("x").record(5.0)
        merged = merge_metrics(
            [MetricsRegistry().snapshot(), reg.snapshot()]
        )
        assert merged.histograms["x"].n == 1

    def test_format_bars_empty_series(self):
        text = format_bars("t", [])
        assert text.startswith("t")  # title renders, no max() crash


class TestEmptyObsRun:
    def test_reports_render_without_spans(self):
        res = _empty_obs_world()
        stats = observability_stats(res.world)
        assert stats is not None
        assert stats.total_spans == 0
        text = format_notification_report("empty run", stats)
        assert "0 recorded" in text
        snaps = tuple(observability_snapshots(res.world))
        assert format_span_timeline(snaps)  # header only, no crash

    def test_export_validates_clean(self):
        res = _empty_obs_world()
        snaps = tuple(observability_snapshots(res.world))
        doc = chrome_trace(snaps)
        # metadata-only document (process/thread names, zero spans)
        assert all(e["ph"] == "M" for e in doc["traceEvents"])
        assert validate_trace_events(doc) == []

    def test_zero_snapshot_export_validates_clean(self):
        assert validate_trace_events(chrome_trace([])) == []
