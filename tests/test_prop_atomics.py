"""Property-based tests: atomic op sequences vs a Python reference model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import AtomicDomain, new_
from repro.runtime.context import reset_ambient_ctx

_M64 = (1 << 64) - 1

op_strategy = st.sampled_from(
    ["add", "sub", "inc", "dec", "bit_and", "bit_or", "bit_xor",
     "min", "max", "store", "compare_exchange"]
)
u64 = st.integers(0, _M64)


def model_apply(op, state, a, b):
    if op == "add":
        return (state + a) & _M64
    if op == "sub":
        return (state - a) & _M64
    if op == "inc":
        return (state + 1) & _M64
    if op == "dec":
        return (state - 1) & _M64
    if op == "bit_and":
        return state & a
    if op == "bit_or":
        return state | a
    if op == "bit_xor":
        return state ^ a
    if op == "min":
        return min(state, a)
    if op == "max":
        return max(state, a)
    if op == "store":
        return a
    if op == "compare_exchange":
        return b if state == a else state
    raise AssertionError(op)


class TestAtomicSequences:
    @settings(max_examples=60, deadline=None)
    @given(
        initial=u64,
        ops=st.lists(st.tuples(op_strategy, u64, u64), max_size=25),
    )
    def test_sequence_matches_model(self, initial, ops):
        reset_ambient_ctx()
        ad = AtomicDomain(
            {"add", "sub", "inc", "dec", "bit_and", "bit_or", "bit_xor",
             "min", "max", "store", "compare_exchange", "load"},
            "u64",
        )
        g = new_("u64", initial)
        state = initial
        for op, a, b in ops:
            if op == "compare_exchange":
                ad.compare_exchange(g, a, b).wait()
            elif op in ("inc", "dec"):
                getattr(ad, op)(g).wait()
            else:
                getattr(ad, op)(g, a).wait()
            state = model_apply(op, state, a, b)
            assert ad.load(g).wait() == state

    @settings(max_examples=40, deadline=None)
    @given(
        initial=u64,
        deltas=st.lists(u64, min_size=1, max_size=15),
    )
    def test_fetch_forms_return_pre_values(self, initial, deltas):
        """Every fetch_add returns the model's pre-state, and the into-
        memory form writes exactly the same value."""
        reset_ambient_ctx()
        ad = AtomicDomain({"fetch_add", "load"}, "u64")
        g = new_("u64", initial)
        slot = new_("u64", 0)
        state = initial
        for i, d in enumerate(deltas):
            if i % 2 == 0:
                old = ad.fetch_add(g, d).wait()
            else:
                ad.fetch_add_into(g, d, slot).wait()
                old = slot.local().read()
            assert old == state
            state = (state + d) & _M64
        assert ad.load(g).wait() == state

    @settings(max_examples=30, deadline=None)
    @given(
        initial=st.integers(-(1 << 63), (1 << 63) - 1),
        deltas=st.lists(
            st.integers(-(1 << 31), (1 << 31) - 1), max_size=12
        ),
    )
    def test_signed_arithmetic_wraps_like_int64(self, initial, deltas):
        reset_ambient_ctx()
        ad = AtomicDomain({"add", "load"}, "i64")
        g = new_("i64", initial)
        state = initial
        for d in deltas:
            ad.add(g, d).wait()
            state = (state + d + (1 << 63)) % (1 << 64) - (1 << 63)
        assert ad.load(g).wait() == state
