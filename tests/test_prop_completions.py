"""Property-based tests (hypothesis) for continuation/counter completions.

Three invariants of the ``cx_continuations`` kinds (DESIGN.md §13):

* **counter conservation** — a :class:`CxCounter` fires its notification
  exactly once, exactly after the Nth member event: never early, never
  twice, and over-signalling is an error whatever the interleaving of
  callback attachment and signals;
* **replay determinism** — a run using continuations and counters is
  bit-identical when re-executed (fire orders, memory, virtual clocks),
  i.e. the new kinds introduce no hidden nondeterminism;
* **FIFO preservation** — continuations dispatch in ack order on the
  pend path, and interleaving them with deferred completions does not
  reorder the deferred queue's FIFO drain (they jump the queue, they do
  not perturb it).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.completions import (
    CxCounter,
    CxDispatcher,
    operation_cx,
)
from repro.core.events import Event
from repro.runtime.config import RuntimeConfig, Version, flags_for
from repro.runtime.context import set_current_ctx
from repro.runtime.runtime import build_world, spmd_run

VD = Version.V2021_3_6_DEFER
VE = Version.V2021_3_6_EAGER

ALL = frozenset({Event.SOURCE, Event.REMOTE, Event.OPERATION})


def bind(version=VE):
    flags = flags_for(version).replace(cx_continuations=True)
    world = build_world(RuntimeConfig(version=version, flags=flags))
    ctx = world.contexts[0]
    set_current_ctx(ctx)
    return ctx


class TestCounterConservation:
    @settings(max_examples=60, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=8),
        cb_at=st.integers(min_value=0, max_value=8),
    )
    def test_exactly_one_trip_after_n_arms(self, n, cb_at):
        """One notification, fired at the Nth signal and never again,
        wherever the callback attaches relative to the signals."""
        ctx = bind()
        ctr = CxCounter(n)
        hits = []
        cb_at = min(cb_at, n)
        for i in range(n):
            if i == cb_at:
                ctr.add_callback(lambda: hits.append(ctr.signalled))
            assert not ctr.done
            assert hits == []
            ctr.signal(ctx)
        if cb_at >= n:  # attaching after the trip fires immediately
            ctr.add_callback(lambda: hits.append(ctr.signalled))
        assert ctr.done
        assert hits == [n], "the notification must fire exactly once"
        assert ctr.signalled == ctr.expected == n

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(min_value=1, max_value=6))
    def test_over_signal_always_raises(self, n):
        import pytest

        ctx = bind()
        ctr = CxCounter(n)
        for _ in range(n):
            ctr.signal(ctx)
        with pytest.raises(Exception, match="over-signalled"):
            ctr.signal(ctx)
        assert ctr.signalled == n  # the failed signal did not count

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=6),
        extra_cbs=st.integers(min_value=0, max_value=3),
    )
    def test_every_callback_runs_once(self, n, extra_cbs):
        ctx = bind()
        ctr = CxCounter(n)
        hits = [0] * (extra_cbs + 1)

        def make(i):
            return lambda: hits.__setitem__(i, hits[i] + 1)

        for i in range(extra_cbs + 1):
            ctr.add_callback(make(i))
        for _ in range(n):
            ctr.signal(ctx)
        assert hits == [1] * (extra_cbs + 1)


def _replay_body(n_cont, n_ctr, values):
    """A rank body mixing continuation- and counter-tracked local puts;
    returns everything observable (fire log, memory, clock)."""
    from repro import current_ctx, new_array, rput

    ctx = current_ctx()
    g = new_array("u64", max(1, n_cont + n_ctr))
    log = []
    for i in range(n_cont):
        rput(
            values[i % len(values)], g + i,
            operation_cx.as_continuation(log.append, ("cont", i)),
        )
    if n_ctr:
        ctr = CxCounter(n_ctr)
        ctr.add_callback(lambda: log.append(("trip", ctr.signalled)))
        for j in range(n_ctr):
            rput(
                values[j % len(values)], g + n_cont + j,
                operation_cx.as_counter(ctr),
            )
        assert ctr.done
    mem = tuple(
        int(ctx.segment.view_array(g.offset, g.ts, n_cont + n_ctr or 1)[k])
        for k in range(n_cont + n_ctr or 1)
    )
    return tuple(log), mem, ctx.clock.now_ns


class TestReplayDeterminism:
    @settings(max_examples=20, deadline=None)
    @given(
        n_cont=st.integers(min_value=0, max_value=5),
        n_ctr=st.integers(min_value=0, max_value=5),
        values=st.lists(
            st.integers(min_value=0, max_value=2**32),
            min_size=1, max_size=4,
        ),
        version=st.sampled_from((VE, VD)),
    )
    def test_run_twice_bit_identical(self, n_cont, n_ctr, values, version):
        """Continuations run exactly once and identically under replay:
        same fire log, same memory, same virtual clocks."""
        set_current_ctx(None)
        flags = flags_for(version).replace(cx_continuations=True)
        kw = dict(
            args=(n_cont, n_ctr, values), ranks=2,
            version=version, flags=flags,
        )
        a = spmd_run(_replay_body, **kw)
        b = spmd_run(_replay_body, **kw)
        assert a.values == b.values
        # each continuation fired exactly once, in issue order
        for log, _mem, _clk in a.values:
            conts = [e for e in log if e[0] == "cont"]
            assert conts == [("cont", i) for i in range(n_cont)]
            trips = [e for e in log if e[0] == "trip"]
            assert trips == ([("trip", n_ctr)] if n_ctr else [])


class TestFifoPreservation:
    @settings(max_examples=40, deadline=None)
    @given(
        kinds=st.lists(st.booleans(), min_size=1, max_size=8),
        order_seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_pend_path_fires_in_ack_order(self, kinds, order_seed):
        """On the pend path, continuations dispatch in the order their
        acks complete — whatever order the operations were issued in."""
        import random

        ctx = bind()
        log = []
        pends = []
        for i, is_cont in enumerate(kinds):
            comps = (
                operation_cx.as_continuation(log.append, i)
                if is_cont
                else operation_cx.as_future()
            )
            d = CxDispatcher(ctx, comps, supported=ALL)
            pends.append((i, d.pend(Event.OPERATION)))
        random.Random(order_seed).shuffle(pends)
        assert log == []
        for i, pend in pends:
            pend.complete()
        ack_order = [i for i, _ in pends if kinds[i]]
        assert log == ack_order

    @settings(max_examples=40, deadline=None)
    @given(kinds=st.lists(st.booleans(), min_size=1, max_size=8))
    def test_deferred_fifo_unperturbed_by_continuations(self, kinds):
        """Deferred completions drain in issue order (FIFO) whether or
        not continuation ops are interleaved; the continuations all fire
        inline, before any deferred dispatch."""
        ctx = bind(VD)
        log = []
        for i, is_cont in enumerate(kinds):
            comps = (
                operation_cx.as_continuation(log.append, ("cont", i))
                if is_cont
                else operation_cx.as_lpc(log.append, ("lpc", i))
            )
            d = CxDispatcher(ctx, comps, supported=ALL)
            d.notify_sync(Event.OPERATION)
        # continuations fired inline, in issue order, before any drain
        assert log == [
            ("cont", i) for i, is_cont in enumerate(kinds) if is_cont
        ]
        while ctx.progress():
            pass
        # the deferred drain appended the lpc ops in FIFO issue order
        assert log[sum(kinds):] == [
            ("lpc", i) for i, is_cont in enumerate(kinds) if not is_cont
        ]
