"""Tests for the noise model and its interaction with the paper's
sampling protocol."""

import statistics

import pytest

from repro.bench.harness import run_micro
from repro.runtime.config import Version
from repro.runtime.runtime import spmd_run
from repro.sim.stats import paper_average

VE = Version.V2021_3_6_EAGER


def _timed_body():
    from repro import new_, rput
    from repro.runtime.context import current_ctx

    g = new_("u64")
    ctx = current_ctx()
    t0 = ctx.clock.now_ns
    for _ in range(20):
        rput(1, g).wait()
    return ctx.clock.now_ns - t0


class TestNoiseModel:
    def test_zero_noise_is_deterministic(self):
        a = spmd_run(_timed_body, ranks=1, seed=1).values[0]
        b = spmd_run(_timed_body, ranks=1, seed=2).values[0]
        assert a == b

    def test_noise_perturbs_timing(self):
        a = spmd_run(_timed_body, ranks=1, seed=1, noise=0.1).values[0]
        b = spmd_run(_timed_body, ranks=1, seed=2, noise=0.1).values[0]
        assert a != b

    def test_noise_is_seeded_and_reproducible(self):
        a = spmd_run(_timed_body, ranks=1, seed=7, noise=0.1).values[0]
        b = spmd_run(_timed_body, ranks=1, seed=7, noise=0.1).values[0]
        assert a == b

    def test_noise_is_one_sided(self):
        """Interference only adds time: every noisy sample is at least
        the noise-free value (the premise of the paper's estimator)."""
        nominal = spmd_run(_timed_body, ranks=1).values[0]
        samples = [
            spmd_run(_timed_body, ranks=1, seed=i, noise=0.05).values[0]
            for i in range(20)
        ]
        assert all(s >= nominal for s in samples)
        # per-charge jitter (~σ·0.8) plus the run-wide factor (~2σ·0.8)
        mean = statistics.mean(samples)
        assert nominal < mean < nominal * 1.35

    def test_noise_never_perturbs_functional_results(self):
        """Jitter must not change what the program computes — only when."""
        from repro.apps.gups import GupsConfig, run_gups

        cfg = GupsConfig(
            variant="amo_promise", table_log2=9, updates_per_rank=24,
            batch=8,
        )
        clean = run_gups(cfg, ranks=2, machine="generic")
        # noise plumbed via spmd_run isn't exposed by run_gups (apps are
        # measured deterministically); exercise it at the micro level:
        noisy = run_micro("put", VE, "generic", n_ops=20, n_samples=5,
                          noise=0.2)
        assert clean.matches_oracle
        assert noisy.ns_per_op > 0

    def test_counts_unaffected_by_noise(self):
        from repro.sim.costmodel import CostAction

        def body():
            from repro import new_, rput
            from repro.runtime.context import current_ctx

            g = new_("u64")
            rput(1, g).wait()
            return current_ctx().costs.count(
                CostAction.HEAP_ALLOC_PROMISE_CELL
            )

        a = spmd_run(body, ranks=1).values[0]
        b = spmd_run(body, ranks=1, noise=0.3).values[0]
        assert a == b


class TestProtocolUnderNoise:
    def test_top10_estimator_closer_to_truth_than_mean(self):
        """With one-sided interference the best-10 average approaches the
        noise-free truth from above and is strictly closer to it than the
        plain mean — the reason the paper's protocol exists."""
        nominal = spmd_run(_timed_body, ranks=1).values[0]
        samples = [
            spmd_run(_timed_body, ranks=1, seed=i, noise=0.15).values[0]
            for i in range(20)
        ]
        top10 = paper_average(samples, top=10, lower_is_better=True).value
        mean = statistics.mean(samples)
        assert nominal <= top10 < mean
        assert abs(top10 - nominal) < abs(mean - nominal)

    def test_noisy_micro_still_lands_in_band(self):
        defer = run_micro(
            "put", Version.V2021_3_6_DEFER, "intel",
            n_ops=60, n_samples=20, noise=0.05,
        )
        eager = run_micro(
            "put", VE, "intel", n_ops=60, n_samples=20, noise=0.05
        )
        speedup = defer.ns_per_op / eager.ns_per_op - 1
        assert 0.75 <= speedup <= 1.15  # paper: +92%, despite the noise
