"""Unit tests for the shared-heap free-list allocator."""

import pytest

from repro.errors import BadSharedAlloc, SegmentError
from repro.memory.allocator import SharedAllocator
from repro.memory.segment import Segment


@pytest.fixture
def alloc():
    return SharedAllocator(Segment(0, 1024))


class TestAllocate:
    def test_first_allocation_at_zero(self, alloc):
        assert alloc.allocate(8) == 0

    def test_sequential_non_overlapping(self, alloc):
        a = alloc.allocate(16)
        b = alloc.allocate(16)
        assert b >= a + 16

    def test_rounds_up_to_8(self, alloc):
        a = alloc.allocate(1)
        b = alloc.allocate(1)
        assert b - a == 8
        assert alloc.size_of(a) == 8

    def test_all_offsets_aligned(self, alloc):
        for _ in range(10):
            assert alloc.allocate(12) % 8 == 0

    def test_exhaustion(self, alloc):
        alloc.allocate(1000)
        with pytest.raises(BadSharedAlloc):
            alloc.allocate(64)

    def test_exact_fill(self, alloc):
        alloc.allocate(1024)
        assert alloc.bytes_free() == 0
        with pytest.raises(BadSharedAlloc):
            alloc.allocate(8)

    def test_nonpositive_rejected(self, alloc):
        with pytest.raises(ValueError):
            alloc.allocate(0)
        with pytest.raises(ValueError):
            alloc.allocate(-8)


class TestFree:
    def test_free_returns_space(self, alloc):
        off = alloc.allocate(512)
        before = alloc.bytes_free()
        alloc.free(off)
        assert alloc.bytes_free() == before + 512

    def test_double_free_detected(self, alloc):
        off = alloc.allocate(8)
        alloc.free(off)
        with pytest.raises(SegmentError):
            alloc.free(off)

    def test_bogus_pointer_detected(self, alloc):
        alloc.allocate(64)
        with pytest.raises(SegmentError):
            alloc.free(8)  # interior pointer

    def test_reuse_after_free(self, alloc):
        off = alloc.allocate(64)
        alloc.free(off)
        assert alloc.allocate(64) == off


class TestCoalescing:
    def test_adjacent_blocks_merge(self, alloc):
        a = alloc.allocate(128)
        b = alloc.allocate(128)
        c = alloc.allocate(128)
        alloc.allocate(128)  # guard so the tail free block isn't adjacent
        alloc.free(a)
        alloc.free(c)
        alloc.free(b)  # middle: should merge with both neighbors
        # a 384-byte allocation must fit in the coalesced hole at `a`
        assert alloc.allocate(384) == a

    def test_fragmentation_without_coalescing_would_fail(self, alloc):
        offs = [alloc.allocate(64) for _ in range(16)]  # fill completely
        assert alloc.bytes_free() == 0
        for off in offs:
            alloc.free(off)
        # everything coalesced back into one block
        assert alloc.allocate(1024) == 0

    def test_live_accounting(self, alloc):
        a = alloc.allocate(100)  # rounds to 104
        assert alloc.bytes_live() == 104
        assert alloc.live_blocks() == 1
        alloc.free(a)
        assert alloc.bytes_live() == 0
        assert alloc.live_blocks() == 0

    def test_owns(self, alloc):
        a = alloc.allocate(8)
        assert alloc.owns(a)
        assert not alloc.owns(a + 8)
        alloc.free(a)
        assert not alloc.owns(a)
