"""Unit tests for ``when_all`` conjoining and the §III-C short-cuts."""

import pytest

from repro.core.cell import PromiseCell
from repro.core.future import Future, make_future
from repro.core.when_all import when_all
from repro.runtime.config import Version
from repro.sim.costmodel import CostAction


def pending(nvalues=0):
    return Future(PromiseCell(nvalues=nvalues, deps=1))


class TestSemantics:
    def test_empty_is_ready_valueless(self, ctx):
        f = when_all()
        assert f.is_ready() and f.result() is None

    def test_all_ready_valueless(self, ctx):
        f = when_all(make_future(), make_future())
        assert f.is_ready()

    def test_value_concatenation_order(self, ctx):
        f = when_all(make_future(1), make_future(), make_future(2, 3))
        assert f.result_tuple() == (1, 2, 3)

    def test_plain_values_wrapped(self, ctx):
        f = when_all(5, make_future(6))
        assert f.result_tuple() == (5, 6)

    def test_readiness_requires_all(self, ctx):
        p1, p2 = pending(), pending()
        f = when_all(p1, p2)
        assert not f._cell.ready
        p1._cell.fulfill()
        assert not f._cell.ready
        p2._cell.fulfill()
        assert f._cell.ready

    def test_pending_values_gathered(self, ctx):
        p1, p2 = pending(1), pending(1)
        f = when_all(p1, p2)
        p2._cell.values = (20,)
        p2._cell.fulfill()
        p1._cell.values = (10,)
        p1._cell.fulfill()
        assert f.result_tuple() == (10, 20)  # argument order, not readiness

    def test_mixed_ready_and_pending(self, ctx):
        p = pending(1)
        f = when_all(make_future(1), p, make_future(3))
        assert not f._cell.ready
        p._cell.values = (2,)
        p._cell.fulfill()
        assert f.result_tuple() == (1, 2, 3)

    def test_conjoining_loop_idiom(self, ctx):
        """The §II-A loop: f = when_all(f, op) over value-less futures."""
        f = make_future()
        pendings = [pending() for _ in range(10)]
        for p in pendings:
            f = when_all(f, p)
        assert not f._cell.ready
        for p in pendings:
            p._cell.fulfill()
        assert f._cell.ready


class TestShortcuts:
    """§III-C: the optimized when_all returns inputs directly."""

    def test_single_contributor_returned_directly(self, versioned_ctx):
        versioned_ctx(Version.V2021_3_6_EAGER)
        p = pending()
        f = when_all(make_future(), p, make_future())
        assert f is p

    def test_value_bearing_ready_contributor_returned(self, versioned_ctx):
        versioned_ctx(Version.V2021_3_6_EAGER)
        v = make_future(1, 2)
        f = when_all(v, make_future())
        assert f is v

    def test_all_ready_valueless_returns_input(self, versioned_ctx):
        versioned_ctx(Version.V2021_3_6_EAGER)
        a, b = make_future(), make_future()
        assert when_all(a, b) is a

    def test_two_contributors_build_graph(self, versioned_ctx):
        c = versioned_ctx(Version.V2021_3_6_EAGER)
        before = c.costs.count(CostAction.WHEN_ALL_NODE_BUILD)
        f = when_all(pending(), pending())
        assert f is not None
        assert c.costs.count(CostAction.WHEN_ALL_NODE_BUILD) == before + 1

    def test_shortcut_builds_no_graph(self, versioned_ctx):
        c = versioned_ctx(Version.V2021_3_6_EAGER)
        before = c.costs.count(CostAction.WHEN_ALL_NODE_BUILD)
        a0 = c.costs.count(CostAction.HEAP_ALLOC_PROMISE_CELL)
        when_all(make_future(), make_future(), make_future())
        assert c.costs.count(CostAction.WHEN_ALL_NODE_BUILD) == before
        assert c.costs.count(CostAction.HEAP_ALLOC_PROMISE_CELL) == a0

    def test_legacy_always_builds_graph(self, versioned_ctx):
        c = versioned_ctx(Version.V2021_3_0)
        before = c.costs.count(CostAction.WHEN_ALL_NODE_BUILD)
        a, b = make_future(), make_future()
        f = when_all(a, b)
        assert f is not a and f is not b
        assert f.is_ready()
        assert c.costs.count(CostAction.WHEN_ALL_NODE_BUILD) == before + 1

    def test_shortcut_equivalence_with_legacy(self, versioned_ctx):
        """Both implementations produce semantically identical results."""
        for version in (Version.V2021_3_0, Version.V2021_3_6_EAGER):
            versioned_ctx(version)
            p = pending(1)
            f = when_all(make_future(), p)
            assert not f._cell.ready
            p._cell.values = (9,)
            p._cell.fulfill()
            assert f.result_tuple() == (9,)


class TestCostScaling:
    def test_legacy_conjoining_cost_linear_in_ops(self, versioned_ctx):
        """Figure 1's dependency graph: N conjoins → N nodes, ≥N edges."""
        c = versioned_ctx(Version.V2021_3_0)
        n0 = c.costs.count(CostAction.WHEN_ALL_NODE_BUILD)
        f = make_future()
        for _ in range(20):
            f = when_all(f, make_future())
        assert c.costs.count(CostAction.WHEN_ALL_NODE_BUILD) == n0 + 20

    def test_optimized_conjoining_of_ready_inputs_is_flat(self, versioned_ctx):
        c = versioned_ctx(Version.V2021_3_6_EAGER)
        n0 = c.costs.count(CostAction.WHEN_ALL_NODE_BUILD)
        f = make_future()
        for _ in range(20):
            f = when_all(f, make_future())
        assert c.costs.count(CostAction.WHEN_ALL_NODE_BUILD) == n0
