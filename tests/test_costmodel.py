"""Unit tests for the cost model and machine profiles."""

import pytest

from repro.sim.clock import VirtualClock
from repro.sim.costmodel import CostAction, CostModel
from repro.sim.machines import (
    GENERIC,
    IBM,
    INTEL,
    MARVELL,
    profile_by_name,
)


@pytest.fixture
def model():
    return CostModel(GENERIC, VirtualClock())


class TestCharge:
    def test_charge_advances_clock(self, model):
        ns = model.charge(CostAction.MEMCPY_8B)
        assert ns == GENERIC.cost_ns(CostAction.MEMCPY_8B)
        assert model.clock.now_ns == ns

    def test_charge_counts(self, model):
        model.charge(CostAction.PROGRESS_POLL)
        model.charge(CostAction.PROGRESS_POLL)
        assert model.count(CostAction.PROGRESS_POLL) == 2

    def test_charge_times(self, model):
        model.charge(CostAction.CPU_LOAD, times=5)
        assert model.count(CostAction.CPU_LOAD) == 5
        assert model.clock.now_ns == 5 * GENERIC.cost_ns(CostAction.CPU_LOAD)

    def test_charge_bytes_scales(self, model):
        ns = model.charge_bytes(CostAction.MEMCPY_PER_BYTE, 100)
        assert ns == pytest.approx(
            100 * GENERIC.cost_ns(CostAction.MEMCPY_PER_BYTE)
        )

    def test_disabled_model_charges_nothing(self, model):
        model.enabled = False
        assert model.charge(CostAction.HEAP_ALLOC_PROMISE_CELL) == 0.0
        assert model.clock.now_ns == 0.0
        assert model.count(CostAction.HEAP_ALLOC_PROMISE_CELL) == 0

    def test_snapshot_is_a_copy(self, model):
        model.charge(CostAction.CPU_LOAD)
        snap = model.snapshot()
        model.charge(CostAction.CPU_LOAD)
        assert snap[CostAction.CPU_LOAD] == 1
        assert model.count(CostAction.CPU_LOAD) == 2

    def test_reset_counts_keeps_clock(self, model):
        model.charge(CostAction.CPU_LOAD)
        t = model.clock.now_ns
        model.reset_counts()
        assert model.count(CostAction.CPU_LOAD) == 0
        assert model.clock.now_ns == t


class TestProfiles:
    def test_lookup_by_name(self):
        assert profile_by_name("intel") is INTEL
        assert profile_by_name("IBM") is IBM
        assert profile_by_name("Marvell") is MARVELL

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            profile_by_name("cray")

    def test_unlisted_action_is_free(self):
        assert GENERIC.cost_ns(CostAction.NETWORK_LATENCY) == 1000.0

    def test_network_latency_special_cased(self):
        assert INTEL.cost_ns(CostAction.NETWORK_LATENCY) == (
            INTEL.network_latency_ns
        )

    @pytest.mark.parametrize("profile", [INTEL, IBM, MARVELL, GENERIC])
    def test_all_costs_nonnegative(self, profile):
        for action, ns in profile.costs_ns.items():
            assert ns >= 0, action

    def test_with_costs_override(self):
        p = GENERIC.with_costs(heap_alloc_promise_cell=0.0)
        assert p.cost_ns(CostAction.HEAP_ALLOC_PROMISE_CELL) == 0.0
        # original untouched (frozen dataclass semantics)
        assert GENERIC.cost_ns(CostAction.HEAP_ALLOC_PROMISE_CELL) > 0

    def test_with_costs_unknown_key_raises(self):
        with pytest.raises(ValueError):
            GENERIC.with_costs(not_an_action=1.0)

    def test_paper_platform_metadata(self):
        assert INTEL.default_conduit == "smp"
        assert IBM.default_conduit == "udp"
        assert MARVELL.default_conduit == "udp"
        assert (INTEL.cores_per_node, IBM.cores_per_node,
                MARVELL.cores_per_node) == (40, 44, 64)

    def test_cost_structure_supports_paper_shapes(self):
        """The qualitative relations the calibration relies on."""
        for p in (INTEL, IBM, MARVELL):
            # deferred notification must cost something beyond the branch
            q = (
                p.cost_ns(CostAction.PROGRESS_QUEUE_ENQUEUE)
                + p.cost_ns(CostAction.PROGRESS_DISPATCH)
            )
            assert q > p.cost_ns(CostAction.LOCALITY_BRANCH)
            # a promise-cell allocation is a dominant per-op cost
            assert p.cost_ns(CostAction.HEAP_ALLOC_PROMISE_CELL) > 5 * (
                p.cost_ns(CostAction.MEMCPY_8B)
            )
        # IBM's allocator/atomics are modeled as the priciest (→ its 95%
        # put speedup, 15% fadd speedup, ~90% non-value gap)
        assert IBM.cost_ns(CostAction.HEAP_ALLOC_PROMISE_CELL) > INTEL.cost_ns(
            CostAction.HEAP_ALLOC_PROMISE_CELL
        )
        assert IBM.cost_ns(CostAction.CPU_ATOMIC_RMW) > INTEL.cost_ns(
            CostAction.CPU_ATOMIC_RMW
        )
