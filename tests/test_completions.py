"""Unit tests for the completions DSL and the eager/deferred dispatcher."""

import pytest

from repro.core.completions import (
    Completions,
    CxDispatcher,
    operation_cx,
    remote_cx,
    source_cx,
)
from repro.core.events import Event
from repro.core.promise import Promise
from repro.errors import CompletionError
from repro.runtime.config import Version
from repro.sim.costmodel import CostAction

ALL = frozenset({Event.SOURCE, Event.REMOTE, Event.OPERATION})


class TestDsl:
    def test_factories_tag_events(self):
        assert operation_cx.as_future().requests[0].event is Event.OPERATION
        assert source_cx.as_future().requests[0].event is Event.SOURCE

    def test_composition_preserves_order(self):
        comps = source_cx.as_future() | operation_cx.as_future()
        assert [r.event for r in comps.requests] == [
            Event.SOURCE,
            Event.OPERATION,
        ]
        assert len(comps) == 2

    def test_eagerness_tags(self):
        assert operation_cx.as_future().requests[0].eagerness == "default"
        assert (
            operation_cx.as_eager_future().requests[0].eagerness == "eager"
        )
        assert (
            operation_cx.as_defer_future().requests[0].eagerness == "defer"
        )

    def test_promise_factories(self, ctx):
        p = Promise()
        req = operation_cx.as_promise(p).requests[0]
        assert req.kind == "promise" and req.promise is p

    def test_rpc_only_on_remote(self):
        with pytest.raises(CompletionError):
            operation_cx.as_rpc(lambda: None)
        assert remote_cx.as_rpc(lambda: None).requests[0].kind == "rpc"

    def test_lpc_not_on_remote(self):
        with pytest.raises(CompletionError):
            remote_cx.as_lpc(lambda: None)

    def test_by_event(self):
        comps = (
            source_cx.as_future()
            | operation_cx.as_future()
            | operation_cx.as_defer_future()
        )
        assert len(comps.by_event(Event.OPERATION)) == 2

    def test_describe(self):
        assert (
            operation_cx.as_eager_future().requests[0].describe()
            == "operation_cx::as_eager_future"
        )


class TestValidation:
    def test_unsupported_event_rejected(self, ctx):
        with pytest.raises(CompletionError):
            CxDispatcher(
                ctx,
                remote_cx.as_rpc(lambda: None),
                supported=frozenset({Event.OPERATION}),
                op_name="rget",
            )

    def test_explicit_factories_need_36(self, versioned_ctx):
        c = versioned_ctx(Version.V2021_3_0)
        with pytest.raises(CompletionError):
            CxDispatcher(
                c, operation_cx.as_eager_future(), supported=ALL
            )
        with pytest.raises(CompletionError):
            CxDispatcher(
                c, operation_cx.as_defer_future(), supported=ALL
            )

    def test_default_factories_work_everywhere(self, versioned_ctx):
        c = versioned_ctx(Version.V2021_3_0)
        CxDispatcher(c, operation_cx.as_future(), supported=ALL)


class TestSyncDispatch:
    def test_eager_future_is_ready(self, versioned_ctx):
        c = versioned_ctx(Version.V2021_3_6_EAGER)
        d = CxDispatcher(c, operation_cx.as_future(), supported=ALL)
        d.notify_sync(Event.OPERATION)
        fut = d.result()
        assert fut.is_ready()

    def test_defer_future_waits_for_progress(self, versioned_ctx):
        c = versioned_ctx(Version.V2021_3_6_DEFER)
        d = CxDispatcher(c, operation_cx.as_future(), supported=ALL)
        d.notify_sync(Event.OPERATION)
        fut = d.result()
        assert not fut.is_ready()
        c.progress()
        assert fut.is_ready()

    def test_explicit_defer_wins_on_eager_build(self, versioned_ctx):
        c = versioned_ctx(Version.V2021_3_6_EAGER)
        d = CxDispatcher(c, operation_cx.as_defer_future(), supported=ALL)
        d.notify_sync(Event.OPERATION)
        assert not d.result().is_ready()
        c.progress()
        assert d.result().is_ready()

    def test_explicit_eager_wins_on_defer_build(self, versioned_ctx):
        c = versioned_ctx(Version.V2021_3_6_DEFER)
        d = CxDispatcher(c, operation_cx.as_eager_future(), supported=ALL)
        d.notify_sync(Event.OPERATION)
        assert d.result().is_ready()

    def test_eager_promise_untouched(self, versioned_ctx):
        """§III-A: eager notification elides all promise modification."""
        c = versioned_ctx(Version.V2021_3_6_EAGER)
        p = Promise()
        r0 = c.costs.count(CostAction.PROMISE_REGISTER)
        d = CxDispatcher(c, operation_cx.as_promise(p), supported=ALL)
        d.notify_sync(Event.OPERATION)
        assert c.costs.count(CostAction.PROMISE_REGISTER) == r0
        assert p.finalize().is_ready()

    def test_defer_promise_registered_and_fulfilled(self, versioned_ctx):
        c = versioned_ctx(Version.V2021_3_6_DEFER)
        p = Promise()
        d = CxDispatcher(c, operation_cx.as_promise(p), supported=ALL)
        d.notify_sync(Event.OPERATION)
        f = p.finalize()
        assert not f.is_ready()
        c.progress()
        assert f.is_ready()

    def test_values_delivered_on_value_event(self, versioned_ctx):
        c = versioned_ctx(Version.V2021_3_6_EAGER)
        d = CxDispatcher(
            c,
            operation_cx.as_future(),
            supported=ALL,
            value_event=Event.OPERATION,
            nvalues=1,
        )
        d.notify_sync(Event.OPERATION, (5,))
        assert d.result().result() == 5

    def test_values_not_delivered_to_other_events(self, versioned_ctx):
        c = versioned_ctx(Version.V2021_3_6_EAGER)
        d = CxDispatcher(
            c,
            source_cx.as_future() | operation_cx.as_future(),
            supported=ALL,
            value_event=Event.OPERATION,
            nvalues=1,
        )
        d.notify_sync(Event.SOURCE, (5,))
        d.notify_sync(Event.OPERATION, (5,))
        src, op = d.result()
        assert src.nvalues == 0
        assert op.result() == 5

    def test_lpc_runs_in_progress(self, versioned_ctx):
        c = versioned_ctx(Version.V2021_3_6_EAGER)
        ran = []
        d = CxDispatcher(
            c,
            operation_cx.as_lpc(ran.append, 1),
            supported=ALL,
        )
        d.notify_sync(Event.OPERATION)
        assert ran == []
        c.progress()
        assert ran == [1]

    def test_result_shapes(self, versioned_ctx):
        c = versioned_ctx(Version.V2021_3_6_EAGER)
        # no futures requested → None
        p = Promise()
        d = CxDispatcher(c, operation_cx.as_promise(p), supported=ALL)
        d.notify_sync(Event.OPERATION)
        assert d.result() is None
        # two futures → tuple in composition order (source, operation)
        d = CxDispatcher(
            c,
            source_cx.as_future() | operation_cx.as_future(),
            supported=ALL,
        )
        d.notify_sync(Event.SOURCE)
        d.notify_sync(Event.OPERATION)
        out = d.result()
        assert isinstance(out, tuple) and len(out) == 2


class TestPendDispatch:
    def test_pend_completes_later(self, versioned_ctx):
        c = versioned_ctx(Version.V2021_3_6_EAGER)
        d = CxDispatcher(
            c,
            operation_cx.as_future(),
            supported=ALL,
            value_event=Event.OPERATION,
            nvalues=1,
        )
        pend = d.pend(Event.OPERATION)
        fut = d.result()
        assert not fut.is_ready()
        pend.complete((11,))
        assert fut.result() == 11

    def test_pend_promise(self, versioned_ctx):
        c = versioned_ctx(Version.V2021_3_6_EAGER)
        p = Promise()
        d = CxDispatcher(c, operation_cx.as_promise(p), supported=ALL)
        pend = d.pend(Event.OPERATION)
        f = p.finalize()
        assert not f.is_ready()
        pend.complete()
        assert f.is_ready()

    def test_any_deferred(self, versioned_ctx):
        c = versioned_ctx(Version.V2021_3_6_EAGER)
        d = CxDispatcher(c, operation_cx.as_future(), supported=ALL)
        assert not d.any_deferred()
        d2 = CxDispatcher(
            c, operation_cx.as_defer_future(), supported=ALL
        )
        assert d2.any_deferred()
        c2 = versioned_ctx(Version.V2021_3_6_DEFER)
        d3 = CxDispatcher(c2, operation_cx.as_future(), supported=ALL)
        assert d3.any_deferred()
