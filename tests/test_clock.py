"""Unit tests for the per-rank virtual clock."""

import pytest

from repro.sim.clock import VirtualClock


class TestAdvance:
    def test_starts_at_zero(self):
        assert VirtualClock().now_ns == 0.0

    def test_custom_start(self):
        assert VirtualClock(25.0).now_ns == 25.0

    def test_advance_accumulates(self):
        c = VirtualClock()
        c.advance(10)
        c.advance(5.5)
        assert c.now_ns == 15.5

    def test_advance_returns_new_time(self):
        c = VirtualClock(2)
        assert c.advance(3) == 5.0

    def test_zero_advance_allowed(self):
        c = VirtualClock()
        c.advance(0)
        assert c.now_ns == 0.0

    def test_negative_advance_rejected(self):
        c = VirtualClock()
        with pytest.raises(ValueError):
            c.advance(-1)


class TestAdvanceTo:
    def test_moves_forward(self):
        c = VirtualClock(10)
        assert c.advance_to(50) == 50.0

    def test_never_moves_backward(self):
        c = VirtualClock(100)
        assert c.advance_to(50) == 100.0
        assert c.now_ns == 100.0

    def test_equal_time_is_noop(self):
        c = VirtualClock(7)
        assert c.advance_to(7) == 7.0


class TestMarks:
    def test_elapsed_since(self):
        c = VirtualClock()
        c.advance(5)
        c.mark("phase")
        c.advance(12)
        assert c.elapsed_since("phase") == 12.0

    def test_mark_overwrite(self):
        c = VirtualClock()
        c.mark("m")
        c.advance(4)
        c.mark("m")
        c.advance(6)
        assert c.elapsed_since("m") == 6.0

    def test_unknown_mark_raises(self):
        with pytest.raises(KeyError):
            VirtualClock().elapsed_since("nope")
