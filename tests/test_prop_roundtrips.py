"""Property-based round-trip tests across serialization boundaries:
Matrix Market I/O, mailbox message packing, and the distributed stencil
vs its serial oracle."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.graphs import Graph, edge_weight
from repro.apps.matching import (
    pack_msg,
    serial_matching,
    unpack_msg,
)
from repro.apps.mtx import load_mtx, save_mtx
from repro.apps.stencil import StencilConfig, run_stencil


class TestMessagePackingProperties:
    @settings(max_examples=200, deadline=None)
    @given(
        kind=st.integers(1, 2),
        a=st.integers(0, (1 << 30) - 1),
        b=st.integers(0, (1 << 30) - 1),
    )
    def test_pack_unpack_identity(self, kind, a, b):
        assert unpack_msg(pack_msg(kind, a, b)) == (kind, a, b)

    @settings(max_examples=100, deadline=None)
    @given(
        x=st.tuples(
            st.integers(1, 2),
            st.integers(0, (1 << 30) - 1),
            st.integers(0, (1 << 30) - 1),
        ),
        y=st.tuples(
            st.integers(1, 2),
            st.integers(0, (1 << 30) - 1),
            st.integers(0, (1 << 30) - 1),
        ),
    )
    def test_packing_is_injective(self, x, y):
        if x != y:
            assert pack_msg(*x) != pack_msg(*y)

    @settings(max_examples=100, deadline=None)
    @given(
        kind=st.integers(1, 2),
        a=st.integers(0, (1 << 30) - 1),
        b=st.integers(0, (1 << 30) - 1),
    )
    def test_packed_word_fits_u64(self, kind, a, b):
        assert 0 <= pack_msg(kind, a, b) < (1 << 64)


class TestMtxRoundtripProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(3, 40),
        edges=st.lists(
            st.tuples(st.integers(0, 500), st.integers(0, 500)),
            max_size=80,
        ),
    )
    def test_arbitrary_graph_roundtrips(self, tmp_path_factory, n, edges):
        adj = [[] for _ in range(n)]
        seen = set()
        for u, v in edges:
            u, v = u % n, v % n
            if u == v:
                continue
            key = (min(u, v), max(u, v))
            if key in seen:
                continue
            seen.add(key)
            w = edge_weight(*key)
            adj[key[0]].append((key[1], w))
            adj[key[1]].append((key[0], w))
        g = Graph("hyp", n, adj)
        path = tmp_path_factory.mktemp("mtx") / "g.mtx"
        save_mtx(g, path)
        g2 = load_mtx(path)
        g2.validate()
        assert g2.n == g.n and g2.n_edges == g.n_edges
        # weights survive well enough to preserve the unique matching
        assert serial_matching(g2) == serial_matching(g)


class TestStencilProperties:
    @settings(max_examples=8, deadline=None)
    @given(
        blocks=st.integers(2, 8),
        ranks=st.sampled_from([1, 2, 4]),
        iters=st.integers(1, 12),
    )
    def test_distributed_always_matches_serial(self, blocks, ranks, iters):
        n = blocks * 8 * ranks  # divisible by any chosen rank count
        cfg = StencilConfig(n=n, iterations=iters)
        r = run_stencil(cfg, ranks=ranks, machine="generic")
        assert r.matches_serial
