"""The streaming percentile sketch and the serving workload generators.

Three properties carry the serving benchmark's credibility:

* **bounded relative error** — every quantile the sketch reports is
  within its documented relative-error bound of the exact order
  statistic (checked against a sorted-reference oracle across
  adversarial distributions);
* **merge algebra** — merging per-rank snapshots is associative and
  commutative and equals the sketch of the concatenated stream, so the
  world-wide rollup is independent of gather order;
* **workload determinism** — the Poisson/Zipf schedule is a pure
  function of (config, rank), so a serving run is reproducible from its
  seed alone.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.obs.percentiles import (
    DEFAULT_REL_ERR,
    PercentileSketch,
    merge_percentiles,
)
from repro.serve.workload import (
    ServeConfig,
    build_schedule,
    key_for,
    kclass_bounds,
    zipf_weights,
)


def exact_quantile(values, q):
    """The oracle: the element the sketch's rank rule should target."""
    ordered = sorted(values)
    rank = int(q * (len(ordered) - 1))
    return ordered[rank]


class TestSketchAccuracy:
    DISTRIBUTIONS = {
        "uniform": lambda rng: rng.uniform(1.0, 1e6),
        "lognormal": lambda rng: rng.lognormvariate(8.0, 2.5),
        "exponential": lambda rng: rng.expovariate(1e-4),
        "bimodal": lambda rng: (
            rng.uniform(100.0, 200.0)
            if rng.random() < 0.99
            else rng.uniform(1e6, 2e6)
        ),
    }

    @pytest.mark.parametrize("dist", sorted(DISTRIBUTIONS))
    @pytest.mark.parametrize("q", [0.5, 0.9, 0.99, 0.999])
    def test_quantiles_within_documented_relative_error(self, dist, q):
        rng = random.Random(sum(map(ord, dist)) * 10007 + int(q * 1000))
        draw = self.DISTRIBUTIONS[dist]
        values = [draw(rng) for _ in range(5000)]
        sk = PercentileSketch("t")
        for v in values:
            sk.record(v)
        snap = sk.snapshot()
        got = snap.quantile(q)
        want = exact_quantile(values, q)
        assert got == pytest.approx(want, rel=DEFAULT_REL_ERR), (
            f"{dist} q={q}: sketch {got} vs exact {want}"
        )

    def test_tighter_rel_err_is_honoured(self):
        rng = random.Random(11)
        values = [rng.lognormvariate(5.0, 3.0) for _ in range(4000)]
        sk = PercentileSketch("t", rel_err=0.001)
        for v in values:
            sk.record(v)
        snap = sk.snapshot()
        for q in (0.5, 0.99, 0.999):
            assert snap.quantile(q) == pytest.approx(
                exact_quantile(values, q), rel=0.001
            )

    def test_zero_and_negative_values_land_in_zero_bucket(self):
        sk = PercentileSketch("t")
        for v in (0.0, -5.0, 0.0, 10.0):
            sk.record(v)
        snap = sk.snapshot()
        assert snap.zero_count == 3
        assert snap.n == 4
        # rank 0..2 of 4 values are the zero bucket
        assert snap.quantile(0.5) == 0.0
        assert snap.quantile(1.0) == pytest.approx(10.0, rel=DEFAULT_REL_ERR)

    def test_min_max_total_exact(self):
        sk = PercentileSketch("t")
        vals = [3.0, 7.0, 1.5, 9.25]
        for v in vals:
            sk.record(v)
        snap = sk.snapshot()
        assert snap.min == 1.5
        assert snap.max == 9.25
        assert snap.total == pytest.approx(sum(vals))
        assert snap.mean == pytest.approx(sum(vals) / len(vals))

    def test_empty_sketch_quantile_is_zero(self):
        snap = PercentileSketch("t").snapshot()
        assert snap.n == 0
        assert snap.quantile(0.99) == 0.0

    def test_quantile_bounds_validated(self):
        snap = PercentileSketch("t").snapshot()
        with pytest.raises(ValueError):
            snap.quantile(1.5)
        with pytest.raises(ValueError):
            snap.quantile(-0.1)


class TestSketchMerge:
    def _sketch_of(self, values, name="t"):
        sk = PercentileSketch(name)
        for v in values:
            sk.record(v)
        return sk.snapshot()

    def test_merge_equals_concatenated_stream(self):
        rng = random.Random(7)
        parts = [
            [rng.expovariate(1e-3) for _ in range(n)]
            for n in (100, 0, 350, 17)
        ]
        merged = merge_percentiles(
            [self._sketch_of(p) for p in parts]
        )
        whole = self._sketch_of([v for p in parts for v in p])
        assert merged.buckets == whole.buckets
        assert merged.n == whole.n
        assert merged.zero_count == whole.zero_count
        assert merged.min == whole.min
        assert merged.max == whole.max
        assert merged.total == pytest.approx(whole.total)

    def test_merge_associative_and_commutative(self):
        rng = random.Random(13)
        a, b, c = (
            self._sketch_of([rng.lognormvariate(6, 2) for _ in range(200)])
            for _ in range(3)
        )
        left = merge_percentiles([merge_percentiles([a, b]), c])
        right = merge_percentiles([a, merge_percentiles([b, c])])
        shuffled = merge_percentiles([c, a, b])
        assert left.buckets == right.buckets == shuffled.buckets
        assert left.n == right.n == shuffled.n

    def test_merge_rejects_empty_and_mismatched_rel_err(self):
        with pytest.raises(ValueError):
            merge_percentiles([])
        a = PercentileSketch("t", rel_err=0.01).snapshot()
        b = PercentileSketch("t", rel_err=0.001).snapshot()
        with pytest.raises(ValueError):
            merge_percentiles([a, b])

    def test_gamma_matches_rel_err(self):
        snap = PercentileSketch("t", rel_err=0.01).snapshot()
        gamma = snap.gamma
        assert gamma == pytest.approx((1 + 0.01) / (1 - 0.01))
        # bucket midpoint estimate is within rel_err of any value in it
        v = 12345.0
        idx = math.ceil(math.log(v) / math.log(gamma))
        est = 2.0 * gamma**idx / (gamma + 1.0)
        assert est == pytest.approx(v, rel=0.01)


class TestWorkloadDeterminism:
    def test_schedule_is_a_pure_function_of_config_and_rank(self):
        cfg = ServeConfig(seed=21)
        a = build_schedule(cfg, 3, 8)
        b = build_schedule(cfg, 3, 8)
        assert a == b

    def test_ranks_get_distinct_streams(self):
        cfg = ServeConfig(seed=21)
        a = build_schedule(cfg, 0, 8)
        b = build_schedule(cfg, 1, 8)
        assert a != b

    def test_seed_changes_the_schedule(self):
        a = build_schedule(ServeConfig(seed=1), 0, 4)
        b = build_schedule(ServeConfig(seed=2), 0, 4)
        assert a != b

    def test_arrivals_are_sorted_and_mean_gap_matches_rate(self):
        cfg = ServeConfig(
            seed=5, requests_per_rank=4000, offered_rate_rps=1e6
        )
        ranks = 8
        sched = build_schedule(cfg, 2, ranks)
        offsets = [r.offset_ns for r in sched]
        assert offsets == sorted(offsets)
        gaps = [
            b - a for a, b in zip(offsets, offsets[1:])
        ]
        mean_gap = sum(gaps) / len(gaps)
        expected = 1e9 * ranks / cfg.offered_rate_rps
        assert mean_gap == pytest.approx(expected, rel=0.1)

    def test_zipf_skew_concentrates_on_popular_keys(self):
        cfg = ServeConfig(
            seed=9, requests_per_rank=4000, key_space=128, zipf_s=1.1
        )
        sched = build_schedule(cfg, 0, 1)
        hot_end, _ = kclass_bounds(cfg)
        hot_hits = sum(1 for r in sched if r.key_index < hot_end)
        # Zipf(1.1) over 128 keys puts far more than the uniform share
        # (hot_end/128) on the hot prefix
        assert hot_hits / len(sched) > 3 * (hot_end / cfg.key_space)

    def test_kclass_labels_match_bounds(self):
        cfg = ServeConfig(seed=9, requests_per_rank=500)
        hot_end, warm_end = kclass_bounds(cfg)
        for r in build_schedule(cfg, 1, 4):
            if r.key_index < hot_end:
                assert r.kclass == "hot"
            elif r.key_index < warm_end:
                assert r.kclass == "warm"
            else:
                assert r.kclass == "cold"
            assert r.key == key_for(cfg, r.key_index)

    def test_op_blend_respects_fractions(self):
        cfg = ServeConfig(
            seed=17, requests_per_rank=6000, get_frac=0.5, put_frac=0.3
        )
        sched = build_schedule(cfg, 0, 1)
        n = len(sched)
        by_op = {"get": 0, "put": 0, "cas": 0}
        for r in sched:
            by_op[r.op] += 1
        assert by_op["get"] / n == pytest.approx(0.5, abs=0.03)
        assert by_op["put"] / n == pytest.approx(0.3, abs=0.03)
        assert by_op["cas"] / n == pytest.approx(0.2, abs=0.03)

    def test_zipf_weights_normalized_and_monotone(self):
        w = zipf_weights(64, 1.2)
        assert sum(w) == pytest.approx(1.0)
        assert all(a >= b for a, b in zip(w, w[1:]))
        flat = zipf_weights(16, 0.0)
        assert flat[0] == pytest.approx(flat[-1])

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServeConfig(offered_rate_rps=0.0)
        with pytest.raises(ValueError):
            ServeConfig(get_frac=0.8, put_frac=0.5)
        with pytest.raises(ValueError):
            ServeConfig(hot_frac=0.9, warm_frac=0.5)
        with pytest.raises(ValueError):
            ServeConfig(requests_per_rank=0)
        with pytest.raises(ValueError):
            ServeConfig(idle_poll_ns=0.0)
