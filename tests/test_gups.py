"""Tests for the GUPS application (HPCC RandomAccess)."""

import pytest

from repro.apps.gups import (
    GUPS_VARIANTS,
    GupsConfig,
    hpcc_next,
    hpcc_stream,
    oracle_table,
    rank_seed,
    run_gups,
)
from repro.runtime.config import Version
from tests.conftest import ALL_VERSIONS

SMALL = dict(table_log2=9, updates_per_rank=48, batch=16)


class TestHpccSequence:
    def test_values_stay_64bit(self):
        ran = 1
        for _ in range(100):
            ran = hpcc_next(ran)
            assert 0 <= ran < (1 << 64)

    def test_sequence_deterministic(self):
        assert hpcc_stream(123, 50) == hpcc_stream(123, 50)

    def test_polynomial_feedback(self):
        # a value with the top bit set gets the POLY xor
        high = 1 << 63
        assert hpcc_next(high) == 0x7
        assert hpcc_next(1) == 2

    def test_zero_seed_coerced(self):
        assert hpcc_stream(0, 3) == hpcc_stream(1, 3)

    def test_rank_seeds_distinct(self):
        seeds = {rank_seed(1, r) for r in range(64)}
        assert len(seeds) == 64
        assert all(s != 0 for s in seeds)

    def test_period_not_tiny(self):
        seen = set()
        ran = rank_seed(1, 0)
        for _ in range(2000):
            ran = hpcc_next(ran)
            assert ran not in seen
            seen.add(ran)


class TestConfig:
    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            GupsConfig(variant="gpu")

    def test_bad_batch(self):
        with pytest.raises(ValueError):
            GupsConfig(batch=0)

    def test_table_must_divide(self):
        cfg = GupsConfig(variant="raw", table_log2=9, updates_per_rank=8)
        with pytest.raises(ValueError):
            run_gups(cfg, ranks=3)  # 512 % 3 != 0


@pytest.mark.parametrize("variant", GUPS_VARIANTS)
class TestCorrectness:
    def test_single_rank_matches_oracle(self, variant):
        """With one rank there is no racing: every variant must produce
        exactly the oracle table."""
        cfg = GupsConfig(variant=variant, **SMALL)
        r = run_gups(cfg, ranks=1, machine="generic")
        assert r.matches_oracle

    def test_multi_rank_atomic_variants_exact(self, variant):
        cfg = GupsConfig(variant=variant, **SMALL)
        r = run_gups(cfg, ranks=4, machine="generic")
        if variant in ("raw", "manual", "amo_promise", "amo_future"):
            assert r.matches_oracle
        # rma variants may legitimately lose racing updates (HPCC allows
        # this); with the deterministic scheduler they usually don't, but
        # we only require the run to complete and report a checksum
        assert isinstance(r.checksum, int)


@pytest.mark.parametrize("version", ALL_VERSIONS)
class TestAcrossVersions:
    def test_results_version_independent(self, version):
        """Library version changes timing, never functional results."""
        cfg = GupsConfig(variant="amo_promise", **SMALL)
        r = run_gups(cfg, ranks=2, version=version, machine="generic")
        assert r.matches_oracle

    def test_gups_rate_positive(self, version):
        cfg = GupsConfig(variant="manual", **SMALL)
        r = run_gups(cfg, ranks=2, version=version, machine="generic")
        assert r.gups > 0
        assert r.solve_ns > 0
        assert r.total_updates == 2 * SMALL["updates_per_rank"]


class TestPaperShapes:
    """Figure 5–7 orderings at reduced size (full grids live in
    benchmarks/)."""

    def test_variant_ordering_eager_intel(self):
        times = {}
        for variant in GUPS_VARIANTS:
            cfg = GupsConfig(variant=variant, **SMALL)
            times[variant] = run_gups(
                cfg, ranks=4, version=Version.V2021_3_6_EAGER,
                machine="intel",
            ).solve_ns
        assert times["raw"] <= times["manual"]
        assert times["manual"] <= times["rma_promise"]
        # under eager notification futures ≈ promises (the paper's point)
        assert times["rma_future"] == pytest.approx(
            times["rma_promise"], rel=0.25
        )
        assert times["amo_future"] == pytest.approx(
            times["amo_promise"], rel=0.25
        )

    def test_eager_beats_defer_for_rma_futures_everywhere(self):
        for machine in ("intel", "ibm", "marvell"):
            cfg = GupsConfig(variant="rma_future", **SMALL)
            t = {
                v: run_gups(cfg, ranks=4, version=v, machine=machine).solve_ns
                for v in (Version.V2021_3_6_DEFER, Version.V2021_3_6_EAGER)
            }
            ratio = t[Version.V2021_3_6_DEFER] / t[Version.V2021_3_6_EAGER]
            assert ratio > 1.5, machine

    def test_2021_3_0_is_never_faster(self):
        for variant in ("rma_promise", "rma_future"):
            cfg = GupsConfig(variant=variant, **SMALL)
            t30 = run_gups(
                cfg, ranks=2, version=Version.V2021_3_0, machine="intel"
            ).solve_ns
            t36 = run_gups(
                cfg, ranks=2, version=Version.V2021_3_6_DEFER,
                machine="intel",
            ).solve_ns
            assert t30 >= t36

    def test_manual_insensitive_to_eagerness(self):
        cfg = GupsConfig(variant="manual", **SMALL)
        td = run_gups(
            cfg, ranks=2, version=Version.V2021_3_6_DEFER, machine="intel"
        ).solve_ns
        te = run_gups(
            cfg, ranks=2, version=Version.V2021_3_6_EAGER, machine="intel"
        ).solve_ns
        assert td == pytest.approx(te, rel=1e-9)


class TestOracle:
    def test_oracle_shape(self):
        cfg = GupsConfig(variant="raw", table_log2=9, updates_per_rank=10)
        t = oracle_table(cfg, ranks=2)
        assert len(t) == 512

    def test_oracle_depends_on_seed(self):
        a = GupsConfig(variant="raw", table_log2=9, updates_per_rank=10, seed=1)
        b = GupsConfig(variant="raw", table_log2=9, updates_per_rank=10, seed=2)
        assert list(oracle_table(a, 2)) != list(oracle_table(b, 2))


class TestHpccVerification:
    def test_exact_variant_zero_errors(self):
        cfg = GupsConfig(variant="amo_promise", **SMALL)
        r = run_gups(cfg, ranks=4, machine="generic")
        assert r.error_fraction == 0.0
        assert r.passes_hpcc_verification

    def test_rma_variant_within_hpcc_tolerance(self):
        """Unsynchronized RMA updates may race, but HPCC's 1% bound must
        hold under the deterministic scheduler."""
        cfg = GupsConfig(variant="rma_future", **SMALL)
        r = run_gups(cfg, ranks=4, machine="generic")
        assert r.passes_hpcc_verification

    def test_table_collected(self):
        cfg = GupsConfig(variant="raw", **SMALL)
        r = run_gups(cfg, ranks=2, machine="generic")
        assert r.table is not None
        assert len(r.table) == 1 << SMALL["table_log2"]


class TestMultiNodeGups:
    def test_amo_variant_across_nodes(self):
        """GUPS with off-node targets: atomics stay exact (AM path)."""
        cfg = GupsConfig(
            variant="amo_promise", table_log2=9, updates_per_rank=24,
            batch=8,
        )
        r = run_gups(
            cfg, ranks=4, machine="generic", conduit="udp",
        )
        assert r.matches_oracle
        # now split across two nodes: half the targets go off-node
        from repro.runtime.runtime import spmd_run as _run  # noqa: F401
        from repro.apps.gups import _gups_body
        import numpy as np

        res = _run(
            lambda: _gups_body(cfg),
            ranks=4,
            n_nodes=2,
            conduit="udp",
            seed=cfg.seed,
            segment_bytes=1 << 16,
        )
        table = np.concatenate([v[2] for v in res.values])
        assert list(table) == list(oracle_table(cfg, 4))

    def test_raw_variant_rejects_multinode(self):
        from repro.apps.gups import _gups_body
        from repro.runtime.runtime import spmd_run as _run

        cfg = GupsConfig(
            variant="raw", table_log2=9, updates_per_rank=8, batch=8
        )
        with pytest.raises(ValueError, match="single-node"):
            _run(
                lambda: _gups_body(cfg),
                ranks=2,
                n_nodes=2,
                conduit="udp",
            )
