"""Unit tests for the cooperative token-passing scheduler (run through
spmd_run, which is its only supported entry point)."""

import pytest

from repro import barrier, current_ctx, rank_me, rank_n
from repro.errors import DeadlockError
from repro.runtime.runtime import spmd_run


class TestBasicSpmd:
    def test_single_rank(self):
        assert spmd_run(lambda: 42, ranks=1).values == [42]

    def test_many_ranks_all_run(self):
        res = spmd_run(rank_me, ranks=8)
        assert res.values == list(range(8))

    def test_rank_n_visible(self):
        res = spmd_run(rank_n, ranks=5)
        assert res.values == [5] * 5

    def test_args_forwarded(self):
        res = spmd_run(lambda a, b: a + b, ranks=2, args=(10, 5))
        assert res.values == [15, 15]

    def test_exception_propagates(self):
        def boom():
            if rank_me() == 1:
                raise ValueError("kaboom")
            barrier()

        with pytest.raises(ValueError, match="kaboom"):
            spmd_run(boom, ranks=3)

    def test_rank0_exception_propagates(self):
        def boom():
            raise KeyError("r0")

        with pytest.raises(KeyError):
            spmd_run(boom, ranks=2)


class TestDeterminism:
    def test_interleaving_is_deterministic(self):
        def body():
            order = []
            ctx = current_ctx()
            barrier()
            for _ in range(3):
                ctx.yield_to_others()
                order.append(ctx.clock.now_ns)
            barrier()
            return tuple(order)

        a = spmd_run(body, ranks=4, seed=7)
        b = spmd_run(body, ranks=4, seed=7)
        assert a.values == b.values
        assert [c.clock.now_ns for c in a.world.contexts] == [
            c.clock.now_ns for c in b.world.contexts
        ]

    def test_yield_round_robin_visits_all(self):
        log = []

        def body():
            me = rank_me()
            ctx = current_ctx()
            for _ in range(2):
                log.append(me)
                ctx.yield_to_others()
            return None

        spmd_run(body, ranks=3)
        # first pass visits 0,1,2 in order (round-robin from rank 0)
        assert log[:3] == [0, 1, 2]


class TestBlocking:
    def test_block_until_peer_produces(self):
        def body():
            ctx = current_ctx()
            world = ctx.world
            if rank_me() == 0:
                ctx.block_until(lambda: getattr(world, "_flag", False))
                return "saw flag"
            world._flag = True
            return "set flag"

        res = spmd_run(body, ranks=2)
        assert res.values == ["saw flag", "set flag"]

    def test_deadlock_detected(self):
        def body():
            current_ctx().block_until(lambda: False)

        with pytest.raises(DeadlockError):
            spmd_run(body, ranks=2)

    def test_partial_deadlock_detected(self):
        def body():
            if rank_me() == 0:
                return "done"
            current_ctx().block_until(lambda: False)

        with pytest.raises(DeadlockError):
            spmd_run(body, ranks=2)

    def test_immediate_true_predicate_never_blocks(self):
        def body():
            current_ctx().block_until(lambda: True)
            return "ok"

        assert spmd_run(body, ranks=2).values == ["ok", "ok"]
