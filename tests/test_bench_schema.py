"""Artifact-schema tests: every committed ``BENCH_*.json`` validates,
and the validator actually rejects the failure shapes the gates rely on
it to catch (quick baselines, env/deterministic mixing, truncation).
"""

import copy
import glob
import json
import os

import pytest

from repro.bench.schema import (
    is_environment_key,
    strip_environment,
    validate_artifact,
    validate_artifact_file,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
COMMITTED = sorted(glob.glob(os.path.join(REPO_ROOT, "BENCH_*.json")))


@pytest.mark.parametrize(
    "path", COMMITTED, ids=[os.path.basename(p) for p in COMMITTED]
)
def test_committed_artifact_validates(path):
    assert validate_artifact_file(path) == []


@pytest.mark.parametrize(
    "path",
    [p for p in COMMITTED if ".quick." not in os.path.basename(p)],
    ids=[
        os.path.basename(p)
        for p in COMMITTED
        if ".quick." not in os.path.basename(p)
    ],
)
def test_committed_baseline_is_full_run(path):
    with open(path) as fh:
        assert json.load(fh)["quick"] is False


def test_committed_artifacts_exist():
    # the repo's perf trajectory is these files; losing them all would
    # silently disable every CI gate
    names = {os.path.basename(p) for p in COMMITTED}
    assert {"BENCH_cont.json", "BENCH_sched.json", "BENCH_serve.json"} <= names


class TestEnvironmentClassifier:
    def test_wall_and_interpreter_keys(self):
        for key in ("python", "invocation", "thread_s", "event_s",
                    "wall_s", "wall_s_total", "wake_switches_per_s",
                    "storm_speedup_min", "meets_5x_scheduler_bound",
                    "speedup"):
            assert is_environment_key(key), key

    def test_deterministic_keys(self):
        for key in ("solve_ns", "mean_gap_ns", "switches", "gap_modes",
                    "offered_rate_rps", "slo_ns", "ranks", "zipf_s",
                    "gap_ratio", "checksum"):
            assert not is_environment_key(key), key


class TestStripEnvironment:
    def test_legacy_strip_removes_wall_keys(self):
        doc = {
            "bench": "cont", "quick": False, "python": "3.11",
            "rows": [{"solve_ns": 10, "thread_s": 0.5, "event_s": 0.1}],
        }
        det = strip_environment(doc)
        assert det == {"bench": "cont", "quick": False,
                       "rows": [{"solve_ns": 10}]}

    def test_ab_strip_is_structural(self):
        doc = {"bench": "ab", "quick": False,
               "deterministic": {"speedup": 2.0},
               "environment": {"python": "3.11"}}
        det = strip_environment(doc)
        assert "environment" not in det
        # ab speedups are virtual-time ratios: they stay
        assert det["deterministic"]["speedup"] == 2.0

    def test_idempotent(self):
        for path in COMMITTED:
            with open(path) as fh:
                doc = json.load(fh)
            det = strip_environment(doc)
            assert strip_environment(det) == det


class TestRejections:
    @pytest.fixture()
    def serve_doc(self):
        with open(os.path.join(REPO_ROOT, "BENCH_serve.json")) as fh:
            return json.load(fh)

    def test_unknown_bench_rejected(self):
        errs = validate_artifact({"bench": "mystery", "quick": False})
        assert any("unknown bench" in e for e in errs)

    def test_missing_quick_flag_rejected(self, serve_doc):
        doc = copy.deepcopy(serve_doc)
        del doc["quick"]
        assert any("quick" in e for e in validate_artifact(doc))

    def test_nonfinite_number_rejected(self, serve_doc):
        doc = copy.deepcopy(serve_doc)
        doc["headline"]["bad"] = float("inf")
        assert any("non-finite" in e for e in validate_artifact(doc))

    def test_truncated_sections_rejected(self):
        for bench, required in (
            ("cont", "rows"),
            ("sched", "storm"),
        ):
            errs = validate_artifact({"bench": bench, "quick": False,
                                      "headline": {}})
            assert errs, bench

    def test_quick_at_canonical_name_rejected(self, tmp_path, serve_doc):
        doc = copy.deepcopy(serve_doc)
        doc["quick"] = True
        full = tmp_path / "BENCH_serve.json"
        full.write_text(json.dumps(doc))
        errs = validate_artifact_file(str(full))
        assert any("canonical baseline name" in e for e in errs)
        # the same doc at the quick name is fine
        quick = tmp_path / "BENCH_serve.quick.json"
        quick.write_text(json.dumps(doc))
        assert validate_artifact_file(str(quick)) == []

    def test_unreadable_file_reported(self, tmp_path):
        bad = tmp_path / "BENCH_x.json"
        bad.write_text("{not json")
        errs = validate_artifact_file(str(bad))
        assert any("unreadable" in e for e in errs)

    def test_ab_wall_key_in_deterministic_rejected(self):
        from repro.bench import ab

        doc = ab.run_ab_spec(ab.WAKE_SCAN, quick=True)
        doc = copy.deepcopy(doc)
        doc["deterministic"]["points"][0]["wall_s"] = 1.0
        errs = validate_artifact(doc)
        assert any("wall/interpreter-flavored" in e for e in errs)
